//! # loopml-repro — workspace-level examples and integration tests
//!
//! This crate hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`) of the `loopml` reproduction
//! of *Stephenson & Amarasinghe, "Predicting Unroll Factors Using
//! Supervised Classification" (CGO 2005)*.
//!
//! The library itself lives in the workspace crates:
//!
//! * [`loopml_ir`] — loop IR and dependence analysis;
//! * [`loopml_opt`] — unrolling and the optimizations it enables;
//! * [`loopml_machine`] — the Itanium 2-flavoured machine model;
//! * [`loopml_corpus`] — the synthetic 72-benchmark training corpus;
//! * [`loopml_ml`] — near neighbors, SVMs, LOOCV, LDA, feature selection;
//! * [`loopml_rt`] — zero-dependency runtime: deterministic PRNG, scoped
//!   worker pool, property-test and bench harnesses;
//! * [`loopml`] — features, labeling, heuristics, evaluation.
//!
//! Run `cargo run --example quickstart` to see the end-to-end flow, and
//! `cargo run --release -p loopml-bench --bin repro -- all` to regenerate
//! every table and figure of the paper.

pub use loopml;
pub use loopml_corpus;
pub use loopml_ir;
pub use loopml_machine;
pub use loopml_ml;
pub use loopml_opt;
pub use loopml_rt;
