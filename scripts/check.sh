#!/usr/bin/env bash
# Repository gate: release build, full test suite, formatting.
#
# Runs entirely offline — the workspace has no external dependencies
# (enforced by tests/zero_deps.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test --workspace -q
cargo fmt --check
echo "check.sh: all gates passed"
