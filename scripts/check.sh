#!/usr/bin/env bash
# Repository gate: release build, full test suite, clippy, formatting,
# and the corpus lint (loopml-lint must report zero deny diagnostics
# over the built-in corpus at every unroll factor).
#
# Runs entirely offline — the workspace has no external dependencies
# (enforced by tests/zero_deps.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
cargo run --release -p loopml-lint
echo "check.sh: all gates passed"
