#!/usr/bin/env bash
# Repository gate: release build, full test suite, clippy, formatting,
# the corpus lint (loopml-lint must report zero deny diagnostics over
# the built-in corpus at every unroll factor), and the perf gate (the
# smoke-scale `repro perf` must emit a well-formed BENCH_ml.json with no
# stage more than 2x slower than scripts/bench_baseline.json).
#
# Runs entirely offline — the workspace has no external dependencies
# (enforced by tests/zero_deps.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
cargo run --release -p loopml-lint
cargo run --release -p loopml-bench --bin repro -- perf --smoke
cargo run --release -p loopml-bench --bin repro -- perf-check \
    BENCH_ml.json scripts/bench_baseline.json
echo "check.sh: all gates passed"
