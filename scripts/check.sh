#!/usr/bin/env bash
# Repository gate: release build, full test suite, clippy, formatting,
# the corpus lint (loopml-lint must report zero deny diagnostics over
# the built-in corpus at every unroll factor), the prover gate (the
# legality-prover corpus scan must show zero prover/oracle
# disagreements, zero denies, and >= 70% affine-corpus coverage), the
# perf gate (the
# smoke-scale `repro perf` must emit a well-formed BENCH_ml.json with no
# stage more than 2x slower than scripts/bench_baseline.json), the sweep
# gate (the smoke-scale `repro sweep` must select hyperparameters with
# exactly one pairwise distance-matrix build, score at least two model
# families, and crown a cross-family winner), the serve gate (a
# smoke-trained artifact served through the `loopml-serve` daemon must
# answer replayed batches byte-identically to the in-process heuristic,
# repeated for each tree/forest/MLP zoo artifact),
# and the chaos gate (a fixed-seed LOOPML_FAULTS labeling run must
# complete with the expected quarantine, keep every non-faulted label
# bit-identical to a clean run, and resume from partial checkpoints
# byte-identically), and the shard gate (three independent
# `repro label --shard i/3` processes merged by `repro label-merge`
# must produce a file byte-identical to the single-process run), and
# the chaos-serve gate (the daemon fed malformed, oversized, and
# fault-injected traffic at all three serve sites must answer every
# well-formed request byte-identically to a clean run and drain a
# schema-validated serve-stats document), and the supervisor gate
# (`repro label-supervise 3` with one shard chaos-killed mid-run must
# self-heal and merge labels byte-identical to the single-process run).
#
# Runs entirely offline — the workspace has no external dependencies
# (enforced by tests/zero_deps.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
cargo run --release -p loopml-lint
cargo run --release -p loopml-bench --bin repro -- lint --smoke --stats
cargo run --release -p loopml-bench --bin repro -- perf --smoke
cargo run --release -p loopml-bench --bin repro -- perf-check \
    BENCH_ml.json scripts/bench_baseline.json
cargo run --release -p loopml-bench --bin repro -- sweep --smoke

# Family-sweep gate: the cross-family sweep must have scored at least
# two model families over its single distance build and crowned a
# winner from the fixed vocabulary. `repro sweep` already exits nonzero
# on either violation; these greps keep the report's wire format honest.
echo "check.sh: family-sweep gate (multi-family scoring / winner)"
grep -q '"winner":{"family":"\(nn\|svm\|tree\|forest\|mlp\)"' SWEEP_ml.json
grep -q '"distance_builds":1' SWEEP_ml.json
scored=0
for fam in nn svm tree forest mlp; do
    if grep -q "\"$fam\":{\"cells\":\[{" SWEEP_ml.json; then
        scored=$((scored + 1))
    fi
done
[ "$scored" -ge 2 ]

# Serve gate: train a smoke artifact, replay the suite through the
# in-process serving loop (serve-bench verifies bit-identity against
# LearnedHeuristic and dumps the exact wire traffic), then feed the same
# requests to the loopml-serve daemon binary and demand byte-identical
# responses.
serve_dir=$(mktemp -d)
trap 'rm -rf "$serve_dir"' EXIT
echo "check.sh: serve gate (train / serve-bench / daemon diff)"
cargo run --release -q -p loopml-bench --bin repro -- train --smoke \
    --out "$serve_dir/model.json"
cargo run --release -q -p loopml-bench --bin repro -- serve-bench --smoke \
    --artifact "$serve_dir/model.json" \
    --dump-requests "$serve_dir/requests.jsonl" \
    --dump-responses "$serve_dir/responses.jsonl"
cargo run --release -q -p loopml-serve --bin loopml-serve -- \
    --artifact "$serve_dir/model.json" \
    < "$serve_dir/requests.jsonl" > "$serve_dir/daemon.jsonl"
cmp "$serve_dir/responses.jsonl" "$serve_dir/daemon.jsonl"

# Zoo serve gate: every new model family must survive the same
# round trip — train an artifact, replay the suite through the
# in-process serving loop, and demand the daemon answer the identical
# requests byte-for-byte.
for model in tree forest mlp; do
    echo "check.sh: zoo serve gate ($model artifact / daemon diff)"
    cargo run --release -q -p loopml-bench --bin repro -- train --smoke \
        --model "$model" --out "$serve_dir/$model.json"
    cargo run --release -q -p loopml-bench --bin repro -- serve-bench --smoke \
        --artifact "$serve_dir/$model.json" \
        --dump-requests "$serve_dir/${model}_requests.jsonl" \
        --dump-responses "$serve_dir/${model}_responses.jsonl"
    cargo run --release -q -p loopml-serve --bin loopml-serve -- \
        --artifact "$serve_dir/$model.json" \
        < "$serve_dir/${model}_requests.jsonl" > "$serve_dir/${model}_daemon.jsonl"
    cmp "$serve_dir/${model}_responses.jsonl" "$serve_dir/${model}_daemon.jsonl"
done

# Chaos-serve gate: the hardened daemon. The same request stream is
# interleaved with a ping, a non-JSON line, an over-limit line, and a
# malformed request, then replayed twice — once clean, once with
# deterministic faults injected at serve.decode/predict/write (seed 42
# empirically fires all three sites without exhausting the retry
# budget). Well-formed requests must be answered byte-identically in
# both runs, garbage must be answered in place (never kill the
# transport), and the shutdown sentinel must drain a validated
# loopml/serve-stats/v1 document.
echo "check.sh: chaos-serve gate (malformed / oversized / faulted traffic)"
{
    printf '{"control":"ping"}\n'
    head -n 3 "$serve_dir/requests.jsonl"
    echo "this is not json"
    head -c 70000 /dev/zero | tr '\0' x
    echo
    printf '{"id":"bad","features":"nope"}\n'
    tail -n +4 "$serve_dir/requests.jsonl"
    printf '{"control":"stats"}\n'
    printf '{"control":"shutdown"}\n'
} > "$serve_dir/chaos_in.jsonl"
LOOPML_SERVE_MAX_LINE=65536 \
    cargo run --release -q -p loopml-serve --bin loopml-serve -- \
    --artifact "$serve_dir/model.json" --stats-out "$serve_dir/stats_clean.json" \
    < "$serve_dir/chaos_in.jsonl" > "$serve_dir/chaos_clean.jsonl"
LOOPML_SERVE_MAX_LINE=65536 LOOPML_SERVE_RETRIES=8 LOOPML_FAULTS=42:0.25 \
    cargo run --release -q -p loopml-serve --bin loopml-serve -- \
    --artifact "$serve_dir/model.json" --stats-out "$serve_dir/stats_chaos.json" \
    < "$serve_dir/chaos_in.jsonl" > "$serve_dir/chaos_out.jsonl"
grep '"factors"' "$serve_dir/chaos_clean.jsonl" > "$serve_dir/factors_clean.jsonl"
grep '"factors"' "$serve_dir/chaos_out.jsonl" > "$serve_dir/factors_chaos.jsonl"
cmp "$serve_dir/factors_clean.jsonl" "$serve_dir/factors_chaos.jsonl"
cmp "$serve_dir/factors_clean.jsonl" "$serve_dir/responses.jsonl"
[ "$(wc -l < "$serve_dir/factors_chaos.jsonl")" -eq \
  "$(wc -l < "$serve_dir/requests.jsonl")" ]
cargo run --release -q -p loopml-bench --bin repro -- serve-stats-check \
    "$serve_dir/stats_chaos.json" --require-faults --require-drained
cargo run --release -q -p loopml-bench --bin repro -- serve-stats-check \
    "$serve_dir/stats_clean.json" --require-drained

# Chaos gate: deterministic fault injection through the full CLI.
chaos_dir=$(mktemp -d)
trap 'rm -rf "$serve_dir" "$chaos_dir"' EXIT
repro_label() {
    cargo run --release -q -p loopml-bench --bin repro -- label --smoke "$@"
}
echo "check.sh: chaos gate (clean / chaos / diff / resume)"
repro_label --ckpt-dir "$chaos_dir/ck" \
    --out "$chaos_dir/clean.json" --degradation "$chaos_dir/clean_deg.json"
LOOPML_FAULTS=20260806:0.06:label.measure repro_label \
    --out "$chaos_dir/chaos.json" --degradation "$chaos_dir/chaos_deg.json"
cargo run --release -q -p loopml-bench --bin repro -- label-diff \
    "$chaos_dir/clean.json" "$chaos_dir/chaos.json" --expect-quarantine
# Simulate a crash: lose some checkpoints, resume, demand byte-identity.
rm "$chaos_dir"/ck/ckpt_001_* "$chaos_dir"/ck/ckpt_004_*
repro_label --ckpt-dir "$chaos_dir/ck" --resume \
    --out "$chaos_dir/resumed.json" --degradation "$chaos_dir/resumed_deg.json"
cmp "$chaos_dir/clean.json" "$chaos_dir/resumed.json"
cmp "$chaos_dir/clean_deg.json" "$chaos_dir/resumed_deg.json"

# Shard gate: the multi-process labeling work queue. Three disjoint
# shards labeled by independent processes, merged back into global
# order, must be byte-identical to the single-process file.
shard_dir=$(mktemp -d)
trap 'rm -rf "$serve_dir" "$chaos_dir" "$shard_dir"' EXIT
echo "check.sh: shard gate (3-way label shards / merge / diff)"
repro_label --out "$shard_dir/single.json" --degradation "$shard_dir/single_deg.json"
for i in 0 1 2; do
    repro_label --shard "$i/3" --out "$shard_dir/shard$i.json" \
        --degradation "$shard_dir/deg$i.json" &
done
wait
cargo run --release -q -p loopml-bench --bin repro -- label-merge \
    "$shard_dir/shard0.json" "$shard_dir/shard1.json" "$shard_dir/shard2.json" \
    --out "$shard_dir/merged.json"
cmp "$shard_dir/single.json" "$shard_dir/merged.json"

# Supervisor gate: the self-healing work queue. One shard is
# chaos-killed after its first heartbeat; the supervisor must restart
# it from checkpoints and the merged labels and degradation report must
# still be byte-identical to the single-process run.
echo "check.sh: supervisor gate (chaos-killed shard / self-heal / diff)"
cargo run --release -q -p loopml-bench --bin repro -- label-supervise 3 \
    --smoke --chaos-kill 1:1 --dir "$shard_dir/sup" \
    --out "$shard_dir/supervised.json" \
    --degradation "$shard_dir/supervised_deg.json"
cmp "$shard_dir/single.json" "$shard_dir/supervised.json"
cmp "$shard_dir/single_deg.json" "$shard_dir/supervised_deg.json"

echo "check.sh: all gates passed"
