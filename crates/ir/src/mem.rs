//! Symbolic memory access descriptors.
//!
//! Every memory instruction carries a [`MemRef`] describing its address as
//! an affine function of the canonical induction variable:
//!
//! ```text
//! address(i) = base + stride * i + offset
//! ```
//!
//! where `i` is the iteration number of the loop the instruction lives in.
//! This is the form a compiler's dependence analysis works with, and it is
//! sufficient to derive loop-carried memory-to-memory dependence distances,
//! to recognize adjacent accesses for coalescing, and to model cache-line
//! behaviour.

use std::fmt;

/// Identity of a symbolic base array / pointer.
///
/// Two accesses can only alias if they share a base. (The corpus generator
/// never creates distinct bases that alias, mirroring the restrict/Fortran
/// semantics ORC relies on for its unrolled-loop optimizations.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// How precisely dependence analysis can relate a pair of references:
/// the alias-class partition the legality prover (and the prover-derived
/// features) reason over. Ordered roughly from "fully resolved" to
/// "nothing is known".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AliasClass {
    /// Provably distinct base arrays: the pair can never touch the same
    /// memory (restrict/Fortran semantics, see [`ArrayId`]).
    DistinctBases,
    /// Same base, same stride, both affine: the dependence relation is
    /// fully determined — an exact distance, or proven independence.
    ExactAffine,
    /// Same base with differing strides, but the GCD test proves the two
    /// address lattices never land their access windows on each other
    /// (see [`MemRef::gcd_disjoint`]).
    GcdDisjoint,
    /// Same base with differing strides and the GCD test cannot rule out
    /// a conflict: collisions recur at irregular intervals.
    IrregularOverlap,
    /// At least one side is data-dependent (`a[idx[i]]`): affine
    /// analysis is defeated.
    Indirect,
    /// At least one side's base is an unanalyzable pointer: it may alias
    /// anything, including other bases.
    Ambiguous,
}

/// An affine (or opaque) memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Symbolic base array.
    pub base: ArrayId,
    /// Bytes the address advances per loop iteration. Zero means the
    /// address is loop-invariant.
    pub stride: i64,
    /// Constant byte offset relative to the base within an iteration.
    pub offset: i64,
    /// Access width in bytes (4 or 8 for scalar, 16 for paired accesses).
    pub width: u8,
    /// `true` if the subscript is data-dependent (e.g. `a[idx[i]]`): the
    /// access defeats affine dependence analysis and must be treated
    /// conservatively.
    pub indirect: bool,
    /// `true` if the *base* is an unanalyzable pointer (C code without
    /// `restrict`): the address pattern is still affine — caches see the
    /// real stride — but dependence analysis must assume it may alias any
    /// other ambiguous access, so unrolled copies cannot be reordered
    /// around stores.
    pub ambiguous: bool,
}

impl MemRef {
    /// Creates an affine reference.
    pub fn affine(base: ArrayId, stride: i64, offset: i64, width: u8) -> Self {
        MemRef {
            base,
            stride,
            offset,
            width,
            indirect: false,
            ambiguous: false,
        }
    }

    /// Creates an indirect (data-dependent) reference; `stride` is the
    /// statistically expected address advance (used only by cache models).
    pub fn indirect(base: ArrayId, expected_stride: i64, width: u8) -> Self {
        MemRef {
            base,
            stride: expected_stride,
            offset: 0,
            width,
            indirect: true,
            ambiguous: false,
        }
    }

    /// Returns this reference with the ambiguous-pointer flag set (see
    /// [`MemRef::ambiguous`]).
    pub fn as_ambiguous(self) -> Self {
        MemRef {
            ambiguous: true,
            ..self
        }
    }

    /// Returns this reference advanced by `iters` whole iterations, as the
    /// unroller does when materializing copy `iters` of the loop body.
    pub fn advanced(self, iters: i64) -> Self {
        if self.indirect {
            // An indirect access has no meaningful constant offset.
            return self;
        }
        MemRef {
            offset: self.offset + self.stride * iters,
            ..self
        }
    }

    /// `true` if `self` and `other` are provably adjacent accesses of the
    /// same width that a wide memory operation could merge: same base, same
    /// stride, offsets exactly `width` apart, and neither indirect.
    pub fn adjacent_to(self, other: MemRef) -> bool {
        !self.indirect
            && !other.indirect
            && !self.ambiguous
            && !other.ambiguous
            && self.base == other.base
            && self.stride == other.stride
            && self.width == other.width
            && (other.offset - self.offset == i64::from(self.width))
    }

    /// Loop-carried dependence distance from `self` to `other`, if the two
    /// references can touch the same address.
    ///
    /// Returns:
    /// * `Some(0)` — they conflict within the same iteration;
    /// * `Some(d)` with `d > 0` — `other` at iteration `i + d` touches the
    ///   address `self` touches at iteration `i`;
    /// * `None` — provably independent (within the `max_distance` horizon).
    ///
    /// Indirect references and stride mismatches are handled conservatively
    /// by returning `Some(1)`.
    pub fn dependence_distance(self, other: MemRef, max_distance: i64) -> Option<i64> {
        if self.ambiguous || other.ambiguous {
            // Unanalyzable pointers may alias anything, including accesses
            // to other bases — conservatively, in the very same iteration.
            // (Dependence analysis additionally materializes the wrapped
            // distance-1 edge; see loopml-ir's deps module.)
            return Some(0);
        }
        if self.base != other.base {
            return None;
        }
        if self.indirect || other.indirect {
            return Some(1);
        }
        if self.stride != other.stride {
            // Differing strides on the same base: the GCD test can prove
            // the address lattices disjoint; otherwise conflicts occur
            // at irregular intervals and Some(1) is the conservative
            // answer.
            return if self.gcd_disjoint(other).is_some() {
                None
            } else {
                Some(1)
            };
        }
        let delta = self.offset - other.offset;
        if self.stride == 0 {
            // Loop-invariant address: conflict iff identical ranges overlap.
            return if overlaps(self.offset, self.width, other.offset, other.width) {
                Some(1)
            } else {
                None
            };
        }
        // Same stride s: other at iteration i+d hits self's iteration-i
        // address when s*d = offset(self) - offset(other).
        if delta == 0 {
            return Some(0);
        }
        if delta % self.stride != 0 {
            // Check partial overlap of access ranges at distance floor.
            if overlaps(
                self.offset % self.stride,
                self.width,
                other.offset % self.stride,
                other.width,
            ) {
                return Some(1);
            }
            return None;
        }
        let d = delta / self.stride;
        if d > 0 && d <= max_distance {
            Some(d)
        } else if d < 0 && -d <= max_distance {
            // The conflict runs the other direction; callers query both
            // orders, so report independence in this direction.
            None
        } else {
            None
        }
    }

    /// GCD (Banerjee-style) disjointness test for two affine references
    /// on the same base with arbitrary strides.
    ///
    /// The accesses collide iff some address difference
    /// `stride_a·i − stride_b·j` lands in the window where the byte
    /// ranges `[oa, oa+wa)` and `[ob, ob+wb)` overlap; every achievable
    /// difference is a multiple of `g = gcd(|stride_a|, |stride_b|)`, so
    /// if no multiple of `g` lies in the closed integer window
    /// `[ob−oa−wa+1, ob−oa+wb−1]` the pair is disjoint over *all*
    /// iteration pairs (ignoring iteration bounds, which only makes the
    /// test more conservative in the other direction — it never claims
    /// disjointness that bounds could restore).
    ///
    /// Returns `Some(g)` — the modulus that proves it — when disjoint,
    /// `None` when a conflict is possible or the test does not apply
    /// (indirect/ambiguous references, distinct bases).
    pub fn gcd_disjoint(self, other: MemRef) -> Option<i64> {
        if self.indirect
            || other.indirect
            || self.ambiguous
            || other.ambiguous
            || self.base != other.base
        {
            return None;
        }
        let delta = other.offset - self.offset;
        let g = gcd(self.stride.unsigned_abs(), other.stride.unsigned_abs()) as i64;
        if g == 0 {
            // Both loop-invariant: disjoint iff the fixed windows miss.
            return if overlaps(self.offset, self.width, other.offset, other.width) {
                None
            } else {
                Some(0)
            };
        }
        let lo = delta - i64::from(self.width) + 1;
        let hi = delta + i64::from(other.width) - 1;
        // A multiple of g lies in [lo, hi] iff floor(hi/g) >= ceil(lo/g).
        let floor_hi = hi.div_euclid(g);
        let ceil_lo = -((-lo).div_euclid(g));
        if floor_hi >= ceil_lo {
            None
        } else {
            Some(g)
        }
    }

    /// Alias-class partition of this pair of references (symmetric); see
    /// [`AliasClass`]. The precedence mirrors
    /// [`dependence_distance`](Self::dependence_distance): ambiguity
    /// defeats everything, distinct bases never alias even when
    /// indirect (an indirect subscript still indexes *its own* base),
    /// and only then does the subscript shape matter.
    pub fn alias_class(self, other: MemRef) -> AliasClass {
        if self.ambiguous || other.ambiguous {
            return AliasClass::Ambiguous;
        }
        if self.base != other.base {
            return AliasClass::DistinctBases;
        }
        if self.indirect || other.indirect {
            return AliasClass::Indirect;
        }
        if self.stride == other.stride {
            return AliasClass::ExactAffine;
        }
        if self.gcd_disjoint(other).is_some() {
            AliasClass::GcdDisjoint
        } else {
            AliasClass::IrregularOverlap
        }
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn overlaps(off_a: i64, width_a: u8, off_b: i64, width_b: u8) -> bool {
    let (a0, a1) = (off_a, off_a + i64::from(width_a));
    let (b0, b1) = (off_b, off_b + i64::from(width_b));
    a0 < b1 && b0 < a1
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.indirect {
            write!(f, "{}[*i]/{}", self.base, self.width)
        } else {
            write!(
                f,
                "{}[{}i{}{}]/{}",
                self.base,
                self.stride,
                if self.offset >= 0 { "+" } else { "" },
                self.offset,
                self.width
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(stride: i64, offset: i64) -> MemRef {
        MemRef::affine(ArrayId(0), stride, offset, 8)
    }

    #[test]
    fn advancing_moves_offset() {
        let m = a(8, 0).advanced(3);
        assert_eq!(m.offset, 24);
        assert_eq!(m.stride, 8);
    }

    #[test]
    fn advancing_indirect_is_identity() {
        let m = MemRef::indirect(ArrayId(1), 8, 8);
        assert_eq!(m.advanced(5), m);
    }

    #[test]
    fn adjacency() {
        assert!(a(8, 0).adjacent_to(a(8, 8)));
        assert!(!a(8, 0).adjacent_to(a(8, 16)));
        assert!(!a(8, 0).adjacent_to(a(16, 8)));
        let other_base = MemRef::affine(ArrayId(1), 8, 8, 8);
        assert!(!a(8, 0).adjacent_to(other_base));
    }

    #[test]
    fn same_iteration_conflict() {
        assert_eq!(a(8, 0).dependence_distance(a(8, 0), 8), Some(0));
    }

    #[test]
    fn carried_distance() {
        // self reads a[i+2] (offset 16), other writes a[i] (offset 0):
        // other at iteration i+2 writes what self read at iteration i.
        assert_eq!(a(8, 16).dependence_distance(a(8, 0), 8), Some(2));
        // Opposite direction reports independence in this direction.
        assert_eq!(a(8, 0).dependence_distance(a(8, 16), 8), None);
    }

    #[test]
    fn different_bases_never_conflict() {
        let b = MemRef::affine(ArrayId(1), 8, 0, 8);
        assert_eq!(a(8, 0).dependence_distance(b, 8), None);
    }

    #[test]
    fn indirect_is_conservative() {
        let ind = MemRef::indirect(ArrayId(0), 8, 8);
        assert_eq!(a(8, 0).dependence_distance(ind, 8), Some(1));
    }

    #[test]
    fn invariant_address_conflicts_when_overlapping() {
        assert_eq!(a(0, 0).dependence_distance(a(0, 0), 8), Some(1));
        assert_eq!(a(0, 0).dependence_distance(a(0, 32), 8), None);
    }

    #[test]
    fn distance_beyond_horizon_is_independent() {
        assert_eq!(a(8, 800).dependence_distance(a(8, 0), 8), None);
    }

    #[test]
    fn non_divisible_delta_without_overlap() {
        // stride 16, offsets 0 and 4, widths 4: ranges [0,4) and [4,8) per
        // stride period never overlap.
        let x = MemRef::affine(ArrayId(0), 16, 0, 4);
        let y = MemRef::affine(ArrayId(0), 16, 4, 4);
        assert_eq!(x.dependence_distance(y, 8), None);
    }

    #[test]
    fn gcd_proves_mixed_stride_lattices_disjoint() {
        // 8i vs 16j+4, width 4: differences are multiples of 8, but a
        // conflict needs one in [1, 7] — impossible.
        let x = MemRef::affine(ArrayId(0), 8, 0, 4);
        let y = MemRef::affine(ArrayId(0), 16, 4, 4);
        assert_eq!(x.gcd_disjoint(y), Some(8));
        assert_eq!(y.gcd_disjoint(x), Some(8));
        // The refinement reaches dependence_distance: formerly Some(1).
        assert_eq!(x.dependence_distance(y, 8), None);
        assert_eq!(y.dependence_distance(x, 8), None);
        assert_eq!(x.alias_class(y), AliasClass::GcdDisjoint);
    }

    #[test]
    fn gcd_keeps_colliding_mixed_strides_conservative() {
        // 8i vs 16j, width 8: i = 2j collides at every even iteration.
        let x = MemRef::affine(ArrayId(0), 8, 0, 8);
        let y = MemRef::affine(ArrayId(0), 16, 0, 8);
        assert_eq!(x.gcd_disjoint(y), None);
        assert_eq!(x.dependence_distance(y, 8), Some(1));
        assert_eq!(x.alias_class(y), AliasClass::IrregularOverlap);
    }

    #[test]
    fn gcd_window_boundaries_are_closed() {
        // 8i vs 12j+7, width 1 each: window is exactly [7, 7], and
        // gcd(8,12) = 4 has no multiple there — disjoint.
        let x = MemRef::affine(ArrayId(0), 8, 0, 1);
        let y = MemRef::affine(ArrayId(0), 12, 7, 1);
        assert_eq!(x.gcd_disjoint(y), Some(4));
        // Shift to offset 8: the window [8, 8] contains 4·2 — possible.
        let y_hit = MemRef::affine(ArrayId(0), 12, 8, 1);
        assert_eq!(x.gcd_disjoint(y_hit), None);
    }

    #[test]
    fn gcd_test_does_not_apply_to_opaque_refs() {
        let x = MemRef::affine(ArrayId(0), 8, 0, 8);
        assert_eq!(x.gcd_disjoint(MemRef::indirect(ArrayId(0), 16, 8)), None);
        assert_eq!(
            x.gcd_disjoint(MemRef::affine(ArrayId(0), 16, 4, 4).as_ambiguous()),
            None
        );
        assert_eq!(x.gcd_disjoint(MemRef::affine(ArrayId(1), 16, 4, 4)), None);
    }

    #[test]
    fn gcd_handles_invariant_pairs() {
        // Both loop-invariant: plain window check, reported as gcd 0.
        assert_eq!(a(0, 0).gcd_disjoint(a(0, 32)), Some(0));
        assert_eq!(a(0, 0).gcd_disjoint(a(0, 4)), None);
        // One invariant side: differences are multiples of the moving
        // stride.
        let fixed = MemRef::affine(ArrayId(0), 0, 4, 4);
        let moving = MemRef::affine(ArrayId(0), 8, 0, 4);
        assert_eq!(fixed.gcd_disjoint(moving), Some(8));
        assert_eq!(fixed.dependence_distance(moving, 8), None);
        let moving_hit = MemRef::affine(ArrayId(0), 8, 0, 8);
        assert_eq!(fixed.gcd_disjoint(moving_hit), None);
    }

    #[test]
    fn alias_class_partition() {
        let affine = a(8, 0);
        let other_base = MemRef::affine(ArrayId(1), 8, 0, 8);
        let ind = MemRef::indirect(ArrayId(0), 8, 8);
        assert_eq!(affine.alias_class(a(8, 16)), AliasClass::ExactAffine);
        assert_eq!(affine.alias_class(other_base), AliasClass::DistinctBases);
        assert_eq!(affine.alias_class(ind), AliasClass::Indirect);
        // Ambiguity trumps everything, even distinct bases.
        let amb = MemRef::affine(ArrayId(1), 8, 0, 8).as_ambiguous();
        assert_eq!(affine.alias_class(amb), AliasClass::Ambiguous);
        assert_eq!(ind.alias_class(amb), AliasClass::Ambiguous);
        // Indirect on a *different* base still cannot alias.
        let ind_other = MemRef::indirect(ArrayId(2), 8, 8);
        assert_eq!(affine.alias_class(ind_other), AliasClass::DistinctBases);
        // Symmetry.
        assert_eq!(ind.alias_class(affine), AliasClass::Indirect);
    }
}
