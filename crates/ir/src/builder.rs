//! A small DSL for constructing well-formed loops.
//!
//! [`LoopBuilder`] hands out fresh virtual registers, accumulates body
//! instructions, and on [`LoopBuilder::build`] appends the canonical loop
//! control sequence: the induction-variable update, the loop-closing
//! compare, and the backward branch.

use crate::inst::Inst;
use crate::loops::{Loop, SourceLang, TripCount};
use crate::mem::MemRef;
use crate::opcode::Opcode;
use crate::reg::Reg;

/// Builder for [`Loop`] values.
///
/// # Examples
///
/// ```
/// use loopml_ir::{ArrayId, Inst, LoopBuilder, MemRef, Opcode, TripCount};
///
/// let mut b = LoopBuilder::new("daxpy", TripCount::Known(1000));
/// let x = b.fp_reg();
/// let y = b.fp_reg();
/// let r = b.fp_reg();
/// b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
/// b.load(y, MemRef::affine(ArrayId(1), 8, 0, 8));
/// b.inst(Inst::new(Opcode::Fma, vec![r], vec![x, y]));
/// b.store(r, MemRef::affine(ArrayId(1), 8, 0, 8));
/// let l = b.build();
/// assert!(l.is_unrollable());
/// ```
#[derive(Debug, Clone)]
pub struct LoopBuilder {
    name: String,
    trip_count: TripCount,
    nest_level: u32,
    lang: SourceLang,
    body: Vec<Inst>,
    next_int: u32,
    next_fp: u32,
    next_pred: u32,
    iv: Reg,
    limit: Reg,
}

impl LoopBuilder {
    /// Starts a new loop named `name` with the given trip count.
    ///
    /// Register `r0` is reserved for the canonical induction variable and
    /// `r1` for the loop bound; fresh registers start at `r2`/`f0`/`p0`.
    pub fn new(name: impl Into<String>, trip_count: TripCount) -> Self {
        LoopBuilder {
            name: name.into(),
            trip_count,
            nest_level: 1,
            lang: SourceLang::C,
            body: Vec::new(),
            next_int: 2,
            next_fp: 0,
            next_pred: 0,
            iv: Reg::int(0),
            limit: Reg::int(1),
        }
    }

    /// Sets the nesting depth (1 = outermost).
    pub fn nest_level(&mut self, level: u32) -> &mut Self {
        self.nest_level = level;
        self
    }

    /// Sets the source language.
    pub fn lang(&mut self, lang: SourceLang) -> &mut Self {
        self.lang = lang;
        self
    }

    /// The canonical induction-variable register.
    pub fn iv(&self) -> Reg {
        self.iv
    }

    /// Allocates a fresh integer register.
    pub fn int_reg(&mut self) -> Reg {
        let r = Reg::int(self.next_int);
        self.next_int += 1;
        r
    }

    /// Allocates a fresh floating-point register.
    pub fn fp_reg(&mut self) -> Reg {
        let r = Reg::fp(self.next_fp);
        self.next_fp += 1;
        r
    }

    /// Allocates a fresh predicate register.
    pub fn pred_reg(&mut self) -> Reg {
        let r = Reg::pred(self.next_pred);
        self.next_pred += 1;
        r
    }

    /// Appends an arbitrary instruction.
    pub fn inst(&mut self, inst: Inst) -> &mut Self {
        self.body.push(inst);
        self
    }

    /// Appends `dst = load mem`.
    pub fn load(&mut self, dst: Reg, mem: MemRef) -> &mut Self {
        self.inst(Inst::mem(Opcode::Load, vec![dst], vec![], mem))
    }

    /// Appends `store src -> mem`.
    pub fn store(&mut self, src: Reg, mem: MemRef) -> &mut Self {
        self.inst(Inst::mem(Opcode::Store, vec![], vec![src], mem))
    }

    /// Appends a binary arithmetic instruction `dst = op a, b`.
    pub fn binop(&mut self, op: Opcode, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.inst(Inst::new(op, vec![dst], vec![a, b]))
    }

    /// Appends a unary instruction `dst = op a`.
    pub fn unop(&mut self, op: Opcode, dst: Reg, a: Reg) -> &mut Self {
        self.inst(Inst::new(op, vec![dst], vec![a]))
    }

    /// Appends a compare defining predicate `p` from `a` and `b`, then a
    /// conditional early exit guarded by `p`.
    pub fn early_exit(&mut self, a: Reg, b: Reg) -> &mut Self {
        let p = self.pred_reg();
        let cmp = if a.class() == crate::reg::RegClass::Fp {
            Opcode::FCmp
        } else {
            Opcode::Cmp
        };
        self.inst(Inst::new(cmp, vec![p], vec![a, b]));
        self.inst(Inst {
            opcode: Opcode::BrExit,
            defs: vec![],
            uses: vec![],
            mem: None,
            predicate: Some(p),
            induction: false,
        })
    }

    /// Appends a call instruction (which makes the loop non-unrollable).
    pub fn call(&mut self) -> &mut Self {
        self.inst(Inst::new(Opcode::Call, vec![], vec![]))
    }

    /// Number of instructions appended so far (loop control not included).
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// Finishes the loop: appends the induction update, the loop-closing
    /// compare and backward branch, and returns the completed [`Loop`].
    pub fn build(mut self) -> Loop {
        let iv = self.iv;
        let limit = self.limit;
        self.body
            .push(Inst::new(Opcode::Add, vec![iv], vec![iv]).as_induction());
        let p = Reg::pred(self.next_pred);
        self.body
            .push(Inst::new(Opcode::Cmp, vec![p], vec![iv, limit]));
        self.body.push(Inst {
            opcode: Opcode::Br,
            defs: vec![],
            uses: vec![],
            mem: None,
            predicate: Some(p),
            induction: false,
        });
        Loop {
            name: self.name,
            body: self.body,
            trip_count: self.trip_count,
            nest_level: self.nest_level,
            lang: self.lang,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::ArrayId;

    #[test]
    fn fresh_registers_are_distinct() {
        let mut b = LoopBuilder::new("t", TripCount::Known(1));
        let r1 = b.int_reg();
        let r2 = b.int_reg();
        let f1 = b.fp_reg();
        assert_ne!(r1, r2);
        assert_ne!(r1, f1);
        assert_ne!(r1, b.iv());
    }

    #[test]
    fn build_appends_control_triplet() {
        let b = LoopBuilder::new("t", TripCount::Known(1));
        let l = b.build();
        assert_eq!(l.len(), 3);
        assert!(l.body[0].induction);
        assert_eq!(l.body[1].opcode, Opcode::Cmp);
        assert_eq!(l.body[2].opcode, Opcode::Br);
        assert_eq!(l.body[2].predicate, Some(l.body[1].defs[0]));
    }

    #[test]
    fn early_exit_emits_guarded_branch() {
        let mut b = LoopBuilder::new("t", TripCount::Unknown { estimate: 64 });
        let x = b.int_reg();
        let y = b.int_reg();
        b.early_exit(x, y);
        let l = b.build();
        assert_eq!(l.early_exits(), 1);
        let exit = l
            .body
            .iter()
            .find(|i| i.opcode == Opcode::BrExit)
            .expect("exit branch");
        assert!(exit.predicate.is_some());
    }

    #[test]
    fn fp_early_exit_uses_fcmp() {
        let mut b = LoopBuilder::new("t", TripCount::Known(8));
        let x = b.fp_reg();
        let y = b.fp_reg();
        b.early_exit(x, y);
        let l = b.build();
        assert!(l.body.iter().any(|i| i.opcode == Opcode::FCmp));
    }

    #[test]
    fn helpers_emit_expected_opcodes() {
        let mut b = LoopBuilder::new("t", TripCount::Known(8));
        let f = b.fp_reg();
        let g = b.fp_reg();
        let m = MemRef::affine(ArrayId(0), 8, 0, 8);
        b.load(f, m);
        b.binop(Opcode::FMul, g, f, f);
        b.unop(Opcode::FSqrt, g, g);
        b.store(g, m);
        let l = b.build();
        let ops: Vec<Opcode> = l.body.iter().map(|i| i.opcode).collect();
        assert!(ops.starts_with(&[Opcode::Load, Opcode::FMul, Opcode::FSqrt, Opcode::Store]));
    }
}
