//! IR instructions.

use std::fmt;

use crate::mem::MemRef;
use crate::opcode::Opcode;
use crate::reg::Reg;

/// A single IR instruction.
///
/// Instructions are a flat three-address form: an opcode, defined
/// registers, used registers, an optional memory descriptor (required for
/// memory opcodes), an optional guarding predicate, and a flag marking the
/// canonical induction-variable update.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Operation performed.
    pub opcode: Opcode,
    /// Registers defined (written).
    pub defs: Vec<Reg>,
    /// Registers used (read). Does not include the guard predicate.
    pub uses: Vec<Reg>,
    /// Memory access descriptor; `Some` iff the opcode accesses memory.
    pub mem: Option<MemRef>,
    /// Guarding predicate register, if the instruction is predicated.
    pub predicate: Option<Reg>,
    /// `true` if this is the canonical induction-variable update
    /// (`i = i + step`); the unroller folds these across copies.
    pub induction: bool,
}

impl Inst {
    /// Creates a plain (non-memory, unpredicated) instruction.
    pub fn new(opcode: Opcode, defs: Vec<Reg>, uses: Vec<Reg>) -> Self {
        debug_assert!(
            !opcode.is_mem(),
            "memory opcode {opcode} requires Inst::mem"
        );
        Inst {
            opcode,
            defs,
            uses,
            mem: None,
            predicate: None,
            induction: false,
        }
    }

    /// Creates a memory instruction with its access descriptor.
    pub fn mem(opcode: Opcode, defs: Vec<Reg>, uses: Vec<Reg>, mem: MemRef) -> Self {
        debug_assert!(opcode.is_mem(), "{opcode} is not a memory opcode");
        Inst {
            opcode,
            defs,
            uses,
            mem: Some(mem),
            predicate: None,
            induction: false,
        }
    }

    /// Returns `self` guarded by predicate register `p`.
    pub fn predicated(mut self, p: Reg) -> Self {
        self.predicate = Some(p);
        self
    }

    /// Marks `self` as the canonical induction-variable update.
    pub fn as_induction(mut self) -> Self {
        self.induction = true;
        self
    }

    /// Total operand count (defs + uses + predicate), one of the paper's
    /// loop features.
    pub fn operand_count(&self) -> usize {
        self.defs.len() + self.uses.len() + usize::from(self.predicate.is_some())
    }

    /// All registers read by this instruction, including the guard.
    pub fn reads(&self) -> impl Iterator<Item = Reg> + '_ {
        self.uses.iter().copied().chain(self.predicate)
    }

    /// `true` if the instruction writes memory.
    pub fn is_store(&self) -> bool {
        matches!(self.opcode, Opcode::Store | Opcode::StorePair)
    }

    /// `true` if the instruction reads memory (prefetches excluded: they
    /// do not create true dependences).
    pub fn is_load(&self) -> bool {
        matches!(self.opcode, Opcode::Load | Opcode::LoadPair)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = self.predicate {
            write!(f, "({p}) ")?;
        }
        write!(f, "{}", self.opcode)?;
        for (i, d) in self.defs.iter().enumerate() {
            write!(f, "{}{d}", if i == 0 { " " } else { "," })?;
        }
        if !self.defs.is_empty() && (!self.uses.is_empty() || self.mem.is_some()) {
            write!(f, " =")?;
        }
        for u in &self.uses {
            write!(f, " {u}")?;
        }
        if let Some(m) = self.mem {
            write!(f, " {m}")?;
        }
        if self.induction {
            write!(f, " ;iv")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::ArrayId;

    #[test]
    fn operand_count_includes_predicate() {
        let i = Inst::new(
            Opcode::Add,
            vec![Reg::int(1)],
            vec![Reg::int(2), Reg::int(3)],
        );
        assert_eq!(i.operand_count(), 3);
        let p = i.predicated(Reg::pred(0));
        assert_eq!(p.operand_count(), 4);
    }

    #[test]
    fn reads_include_guard() {
        let i =
            Inst::new(Opcode::Add, vec![Reg::int(1)], vec![Reg::int(2)]).predicated(Reg::pred(3));
        let reads: Vec<Reg> = i.reads().collect();
        assert_eq!(reads, vec![Reg::int(2), Reg::pred(3)]);
    }

    #[test]
    fn load_store_classification() {
        let m = MemRef::affine(ArrayId(0), 8, 0, 8);
        let ld = Inst::mem(Opcode::Load, vec![Reg::fp(0)], vec![], m);
        let st = Inst::mem(Opcode::Store, vec![], vec![Reg::fp(0)], m);
        let pf = Inst::mem(Opcode::Prefetch, vec![], vec![], m);
        assert!(ld.is_load() && !ld.is_store());
        assert!(st.is_store() && !st.is_load());
        assert!(!pf.is_load() && !pf.is_store());
    }

    #[test]
    fn display_round_trips_visually() {
        let m = MemRef::affine(ArrayId(2), 8, 16, 8);
        let ld = Inst::mem(Opcode::Load, vec![Reg::fp(4)], vec![], m);
        let s = ld.to_string();
        assert!(s.contains("load"), "{s}");
        assert!(s.contains("f4"), "{s}");
        assert!(s.contains("A2"), "{s}");
    }

    #[test]
    fn induction_marker() {
        let iv = Inst::new(Opcode::Add, vec![Reg::int(0)], vec![Reg::int(0)]).as_induction();
        assert!(iv.induction);
        assert!(iv.to_string().ends_with(";iv"));
    }
}
