//! Dependence analysis over loop bodies.
//!
//! [`DepGraph::analyze`] computes, for a single iteration of a loop:
//!
//! * **register dependences** — true (def→use), anti (use→def) and output
//!   (def→def) edges, including *loop-carried* true dependences where a use
//!   reads the value produced by the previous iteration (reduction chains);
//! * **memory dependences** — intra-iteration and loop-carried
//!   memory-to-memory dependences derived from the affine access
//!   descriptors (see [`MemRef::dependence_distance`]);
//! * **control dependences** — early exits order side-effecting
//!   instructions; guarded instructions depend on their predicate via the
//!   ordinary register edges.
//!
//! The resulting graph drives feature extraction (dependence heights,
//! memory dependence counts), the machine model's schedulers, and the
//! recurrence-constrained initiation-interval bound for software
//! pipelining.

use std::fmt;

use crate::loops::Loop;
use crate::mem::MemRef;
use crate::opcode::Opcode;

/// Maximum loop-carried distance tracked; dependences farther apart than
/// the largest unroll factor cannot constrain any decision made here.
pub const MAX_CARRIED_DISTANCE: i64 = 8;

/// Kind of dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Register true dependence (def → use).
    Reg,
    /// Register anti dependence (use → later def).
    RegAnti,
    /// Register output dependence (def → later def).
    RegOut,
    /// Memory dependence (at least one side is a store).
    Mem,
    /// Control dependence (early exit ordering).
    Ctrl,
}

/// A dependence edge between two body instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dep {
    /// Source instruction index (the earlier instruction of the pair in
    /// iteration space: for carried edges the source executes `distance`
    /// iterations before the destination).
    pub src: usize,
    /// Destination instruction index.
    pub dst: usize,
    /// Minimum issue-to-issue latency in cycles (static estimate).
    pub latency: u32,
    /// Iteration distance: 0 for intra-iteration edges.
    pub distance: u32,
    /// Edge kind.
    pub kind: DepKind,
}

/// The dependence graph of one loop iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct DepGraph {
    n: usize,
    deps: Vec<Dep>,
}

impl DepGraph {
    /// Builds a graph directly from its parts, without analysis.
    ///
    /// Verification tooling uses this to construct graphs (including
    /// deliberately malformed ones) and check them against the invariants
    /// [`DepGraph::analyze`] guarantees. `n` is the body length the edges
    /// index into; edges are not validated here.
    pub fn from_parts(n: usize, deps: Vec<Dep>) -> Self {
        DepGraph { n, deps }
    }

    /// Analyzes `l` and builds its dependence graph.
    pub fn analyze(l: &Loop) -> Self {
        let body = &l.body;
        let n = body.len();
        let mut deps = Vec::new();

        // --- register dependences ---
        // For each use, find the nearest preceding def (true dep) or, if
        // none precedes it, the nearest following def (loop-carried true
        // dep with distance 1).
        for (j, inst) in body.iter().enumerate() {
            for r in inst.reads() {
                let prev_def = body[..j]
                    .iter()
                    .enumerate()
                    .rev()
                    .find(|(_, p)| p.defs.contains(&r));
                if let Some((i, p)) = prev_def {
                    deps.push(Dep {
                        src: i,
                        dst: j,
                        latency: p.opcode.static_latency(),
                        distance: 0,
                        kind: DepKind::Reg,
                    });
                } else if let Some((i, p)) = body
                    .iter()
                    .enumerate()
                    .skip(j)
                    .find(|(_, p)| p.defs.contains(&r))
                {
                    deps.push(Dep {
                        src: i,
                        dst: j,
                        latency: p.opcode.static_latency(),
                        distance: 1,
                        kind: DepKind::Reg,
                    });
                }
                // Anti dependence: this use must issue no later than the
                // next redefinition.
                if let Some(i) = body
                    .iter()
                    .enumerate()
                    .skip(j + 1)
                    .find(|(_, p)| p.defs.contains(&r))
                    .map(|(i, _)| i)
                {
                    deps.push(Dep {
                        src: j,
                        dst: i,
                        latency: 0,
                        distance: 0,
                        kind: DepKind::RegAnti,
                    });
                }
            }
            // Output dependence to the next def of the same register.
            for d in &inst.defs {
                if let Some(i) = body
                    .iter()
                    .enumerate()
                    .skip(j + 1)
                    .find(|(_, p)| p.defs.contains(d))
                    .map(|(i, _)| i)
                {
                    deps.push(Dep {
                        src: j,
                        dst: i,
                        latency: 1,
                        distance: 0,
                        kind: DepKind::RegOut,
                    });
                }
            }
        }

        // --- memory dependences ---
        let mem_insts: Vec<(usize, MemRef, bool, bool)> = body
            .iter()
            .enumerate()
            .filter_map(|(i, inst)| {
                let m = inst.mem?;
                if inst.is_load() || inst.is_store() {
                    Some((i, m, inst.is_load(), inst.is_store()))
                } else {
                    None
                }
            })
            .collect();
        for (ai, &(i, mi, _, si)) in mem_insts.iter().enumerate() {
            for &(j, mj, _, sj) in &mem_insts[ai + 1..] {
                if !si && !sj {
                    continue; // load-load pairs carry no dependence
                }
                if mi.ambiguous || mj.ambiguous {
                    // Unanalyzable pointers: ordered within the iteration
                    // *and* across iterations (the wrapped direction).
                    deps.push(Dep {
                        src: i,
                        dst: j,
                        latency: mem_dep_latency(body[i].opcode, si, sj),
                        distance: 0,
                        kind: DepKind::Mem,
                    });
                    deps.push(Dep {
                        src: j,
                        dst: i,
                        latency: mem_dep_latency(body[j].opcode, sj, si),
                        distance: 1,
                        kind: DepKind::Mem,
                    });
                    continue;
                }
                // Same-iteration and forward-carried: j at iteration k+d
                // touches what i touched at iteration k.
                if let Some(d) = mi.dependence_distance(mj, MAX_CARRIED_DISTANCE) {
                    deps.push(Dep {
                        src: i,
                        dst: j,
                        latency: mem_dep_latency(body[i].opcode, si, sj),
                        distance: d as u32,
                        kind: DepKind::Mem,
                    });
                }
                // Reverse-carried: i at iteration k+d touches what j
                // touched at iteration k.
                if let Some(d) = mj.dependence_distance(mi, MAX_CARRIED_DISTANCE) {
                    if d > 0 {
                        deps.push(Dep {
                            src: j,
                            dst: i,
                            latency: mem_dep_latency(body[j].opcode, sj, si),
                            distance: d as u32,
                            kind: DepKind::Mem,
                        });
                    }
                }
            }
        }

        // --- control dependences ---
        // Side-effecting instructions cannot move above an earlier early
        // exit (loads and arithmetic may be control-speculated, as the
        // Itanium architecture permits).
        for (e, inst) in body.iter().enumerate() {
            if inst.opcode != Opcode::BrExit {
                continue;
            }
            for (j, later) in body.iter().enumerate().skip(e + 1) {
                let side_effecting =
                    later.is_store() || later.opcode.is_branch() || later.opcode == Opcode::Call;
                if side_effecting {
                    deps.push(Dep {
                        src: e,
                        dst: j,
                        latency: 0,
                        distance: 0,
                        kind: DepKind::Ctrl,
                    });
                }
            }
        }

        DepGraph { n, deps }
    }

    /// Number of instructions in the analyzed body.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the body had no instructions.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All dependence edges.
    pub fn deps(&self) -> &[Dep] {
        &self.deps
    }

    /// Intra-iteration edges (distance 0).
    pub fn intra(&self) -> impl Iterator<Item = &Dep> {
        self.deps.iter().filter(|d| d.distance == 0)
    }

    /// Loop-carried edges (distance ≥ 1).
    pub fn carried(&self) -> impl Iterator<Item = &Dep> {
        self.deps.iter().filter(|d| d.distance > 0)
    }

    /// Memory-to-memory dependences (any distance).
    pub fn mem_deps(&self) -> impl Iterator<Item = &Dep> {
        self.deps.iter().filter(|d| d.kind == DepKind::Mem)
    }

    /// Minimum distance over loop-carried memory dependences, if any.
    pub fn min_carried_mem_distance(&self) -> Option<u32> {
        self.mem_deps()
            .filter(|d| d.distance > 0)
            .map(|d| d.distance)
            .min()
    }

    /// Number of loop-carried *register* true dependences (reduction
    /// chains and similar recurrences).
    pub fn carried_reg_deps(&self) -> usize {
        self.deps
            .iter()
            .filter(|d| d.kind == DepKind::Reg && d.distance > 0)
            .count()
    }

    /// The recurrence-constrained minimum initiation interval using a
    /// caller-supplied per-edge latency (so machine models can substitute
    /// their own latencies). This is the smallest integer `ii ≥ 1` such
    /// that the graph with edge weights `latency − ii·distance` has no
    /// positive-weight cycle.
    pub fn rec_mii<F: Fn(&Dep) -> u32>(&self, latency_of: F) -> u32 {
        if self.n == 0 {
            return 1;
        }
        let max_lat: i64 = self
            .deps
            .iter()
            .map(|d| i64::from(latency_of(d)))
            .max()
            .unwrap_or(1);
        let mut lo = 1i64;
        let mut hi = (max_lat * self.n as i64).max(1);
        // Invariant: hi is always feasible (weights all ≤ 0 on cycles).
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.has_positive_cycle(mid, &latency_of) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo as u32
    }

    /// Bellman-Ford positive-cycle detection with weights
    /// `latency − ii·distance`.
    fn has_positive_cycle<F: Fn(&Dep) -> u32>(&self, ii: i64, latency_of: &F) -> bool {
        // Longest-path relaxation: a positive cycle exists iff relaxation
        // still succeeds after n rounds.
        let mut dist = vec![0i64; self.n];
        for round in 0..=self.n {
            let mut changed = false;
            for d in &self.deps {
                let w = i64::from(latency_of(d)) - ii * i64::from(d.distance);
                if dist[d.src] + w > dist[d.dst] {
                    dist[d.dst] = dist[d.src] + w;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
            if round == self.n {
                return true;
            }
        }
        false
    }
}

fn mem_dep_latency(src_op: Opcode, src_is_store: bool, dst_is_store: bool) -> u32 {
    match (src_is_store, dst_is_store) {
        // Store → load: forwarding through memory.
        (true, false) => src_op.static_latency().max(1),
        // Load → store (anti): same-cycle issue is fine in-order.
        (false, true) => 0,
        // Store → store: ordering only.
        (true, true) => 1,
        (false, false) => unreachable!("load-load pairs are filtered out"),
    }
}

impl fmt::Display for DepGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "depgraph({} insts, {} edges)", self.n, self.deps.len())?;
        for d in &self.deps {
            writeln!(
                f,
                "  {} -> {} lat={} dist={} {:?}",
                d.src, d.dst, d.latency, d.distance, d.kind
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::inst::Inst;
    use crate::loops::TripCount;
    use crate::mem::{ArrayId, MemRef};

    /// acc = acc + x[i]  (a serial reduction)
    fn reduction() -> Loop {
        let mut b = LoopBuilder::new("red", TripCount::Known(100));
        let x = b.fp_reg();
        let acc = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.inst(Inst::new(Opcode::FAdd, vec![acc], vec![acc, x]));
        b.build()
    }

    #[test]
    fn reduction_has_carried_reg_dep() {
        let g = DepGraph::analyze(&reduction());
        assert!(g.carried_reg_deps() >= 1, "{g}");
    }

    #[test]
    fn true_dep_load_to_add() {
        let l = reduction();
        let g = DepGraph::analyze(&l);
        // load (0) -> fadd (1) true dep, distance 0.
        assert!(g
            .intra()
            .any(|d| d.src == 0 && d.dst == 1 && d.kind == DepKind::Reg));
    }

    #[test]
    fn rec_mii_of_reduction_is_fadd_latency() {
        let l = reduction();
        let g = DepGraph::analyze(&l);
        // The recurrence acc -> acc has one FAdd (latency 4) per iteration.
        let mii = g.rec_mii(|d| d.latency);
        assert_eq!(mii, Opcode::FAdd.static_latency());
    }

    #[test]
    fn rec_mii_of_independent_loop_is_one_or_iv_bound() {
        // x[i] = y[i] * 2 has no recurrence except the iv update (lat 1).
        let mut b = LoopBuilder::new("par", TripCount::Known(100));
        let x = b.fp_reg();
        let y = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.binop(Opcode::FMul, y, x, x);
        b.store(y, MemRef::affine(ArrayId(1), 8, 0, 8));
        let g = DepGraph::analyze(&b.build());
        assert_eq!(g.rec_mii(|d| d.latency), 1);
    }

    #[test]
    fn carried_mem_dep_distance() {
        // a[i+2] = a[i] + 1.0 : write at i lands on the read of i+2.
        let mut b = LoopBuilder::new("carry", TripCount::Known(100));
        let x = b.fp_reg();
        let y = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.binop(Opcode::FAdd, y, x, x);
        b.store(y, MemRef::affine(ArrayId(0), 8, 16, 8));
        let g = DepGraph::analyze(&b.build());
        assert_eq!(g.min_carried_mem_distance(), Some(2));
    }

    #[test]
    fn same_iteration_store_load_conflict() {
        let mut b = LoopBuilder::new("fwd", TripCount::Known(100));
        let x = b.fp_reg();
        let y = b.fp_reg();
        let m = MemRef::affine(ArrayId(0), 8, 0, 8);
        b.store(x, m);
        b.load(y, m);
        let g = DepGraph::analyze(&b.build());
        assert!(g.mem_deps().any(|d| d.distance == 0 && d.src < d.dst));
    }

    #[test]
    fn exits_order_stores() {
        let mut b = LoopBuilder::new("exit", TripCount::Unknown { estimate: 50 });
        let x = b.int_reg();
        let y = b.int_reg();
        b.early_exit(x, y);
        let f = b.fp_reg();
        b.store(f, MemRef::affine(ArrayId(0), 8, 0, 8));
        let g = DepGraph::analyze(&b.build());
        assert!(g.deps().iter().any(|d| d.kind == DepKind::Ctrl));
    }

    #[test]
    fn load_load_is_independent() {
        let mut b = LoopBuilder::new("ll", TripCount::Known(10));
        let x = b.fp_reg();
        let y = b.fp_reg();
        let m = MemRef::affine(ArrayId(0), 8, 0, 8);
        b.load(x, m);
        b.load(y, m);
        let g = DepGraph::analyze(&b.build());
        assert_eq!(g.mem_deps().count(), 0);
    }

    #[test]
    fn rec_mii_monotone_in_latency() {
        let g = DepGraph::analyze(&reduction());
        let a = g.rec_mii(|d| d.latency);
        let b = g.rec_mii(|d| d.latency * 2);
        assert!(b >= a);
    }

    /// a[i + k] = f(a[i]) for a byte gap of `gap` = 8·k.
    fn carried_at(gap: i64) -> Loop {
        let mut b = LoopBuilder::new("horizon", TripCount::Known(100));
        let x = b.fp_reg();
        let y = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.binop(Opcode::FAdd, y, x, x);
        b.store(y, MemRef::affine(ArrayId(0), 8, gap, 8));
        b.build()
    }

    #[test]
    fn carried_distance_at_the_horizon_is_tracked() {
        // Distance exactly MAX_CARRIED_DISTANCE (8 iterations · 8 bytes)
        // is the last one that constrains an unroll decision.
        let g = DepGraph::analyze(&carried_at(8 * MAX_CARRIED_DISTANCE));
        assert_eq!(g.min_carried_mem_distance(), Some(8));
    }

    #[test]
    fn carried_distance_past_the_horizon_is_dropped() {
        // One iteration farther (distance 9) is beyond every unroll
        // factor considered and must not materialize an edge.
        let g = DepGraph::analyze(&carried_at(8 * (MAX_CARRIED_DISTANCE + 1)));
        assert_eq!(g.min_carried_mem_distance(), None);
        assert_eq!(g.mem_deps().count(), 0);
    }

    fn cyc(src: usize, dst: usize, latency: u32, distance: u32) -> Dep {
        Dep {
            src,
            dst,
            latency,
            distance,
            kind: DepKind::Reg,
        }
    }

    #[test]
    fn rec_mii_binary_search_lands_on_the_cycle_bound() {
        // Two-node cycle: total latency 4 + 3 = 7 over total distance
        // 1 + 1 = 2, so the smallest feasible ii is ceil(7/2) = 4 — the
        // positive-cycle test must fail at 3 and pass at 4.
        let g = DepGraph::from_parts(2, vec![cyc(0, 1, 4, 1), cyc(1, 0, 3, 1)]);
        assert_eq!(g.rec_mii(|d| d.latency), 4);

        // Self-recurrence: latency 6 over distance 2 → ceil(6/2) = 3.
        let g = DepGraph::from_parts(1, vec![cyc(0, 0, 6, 2)]);
        assert_eq!(g.rec_mii(|d| d.latency), 3);

        // An exactly-divisible cycle must not round up: 8 over 2 → 4.
        let g = DepGraph::from_parts(1, vec![cyc(0, 0, 8, 2)]);
        assert_eq!(g.rec_mii(|d| d.latency), 4);
    }

    #[test]
    fn rec_mii_acyclic_graph_needs_no_slack() {
        // Long latencies without a cycle never force ii above 1.
        let g = DepGraph::from_parts(3, vec![cyc(0, 1, 9, 0), cyc(1, 2, 9, 0)]);
        assert_eq!(g.rec_mii(|d| d.latency), 1);
    }
}
