//! # loopml-ir — a mid-level loop IR for unroll-factor prediction
//!
//! This crate is the compiler substrate of the `loopml` reproduction of
//! *Stephenson & Amarasinghe, "Predicting Unroll Factors Using Supervised
//! Classification" (CGO 2005)*. It provides the representation the paper's
//! methodology needs from ORC:
//!
//! * a typed, three-address instruction set with Itanium-flavoured
//!   predicates and wide memory operations ([`Opcode`], [`Inst`]);
//! * affine symbolic memory descriptors supporting exact loop-carried
//!   dependence distances ([`MemRef`]);
//! * innermost [`Loop`]s with trip-count knowledge and source metadata,
//!   grouped into weighted [`Benchmark`]s;
//! * dependence analysis ([`DepGraph`]), DAG structure ([`DagSummary`]) and
//!   liveness ([`LivenessSummary`]) — the raw material for the paper's 38
//!   loop features and for the machine model's schedulers.
//!
//! # Examples
//!
//! ```
//! use loopml_ir::{ArrayId, DepGraph, Inst, LoopBuilder, MemRef, Opcode, TripCount};
//!
//! // for (i = 0; i < 1000; i++) y[i] += a * x[i];
//! let mut b = LoopBuilder::new("daxpy", TripCount::Known(1000));
//! let x = b.fp_reg();
//! let y = b.fp_reg();
//! let r = b.fp_reg();
//! b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
//! b.load(y, MemRef::affine(ArrayId(1), 8, 0, 8));
//! b.inst(Inst::new(Opcode::Fma, vec![r], vec![x, y]));
//! b.store(r, MemRef::affine(ArrayId(1), 8, 0, 8));
//! let daxpy = b.build();
//!
//! let deps = DepGraph::analyze(&daxpy);
//! assert!(daxpy.is_unrollable());
//! assert_eq!(deps.rec_mii(|d| d.latency), 1); // no recurrence: pipelines freely
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod dag;
pub mod deps;
pub mod inst;
pub mod liveness;
pub mod loops;
pub mod mem;
pub mod opcode;
pub mod pretty;
pub mod program;
pub mod reg;

pub use builder::LoopBuilder;
pub use dag::{summarize, DagSummary};
pub use deps::{Dep, DepGraph, DepKind, MAX_CARRIED_DISTANCE};
pub use inst::Inst;
pub use liveness::{analyze as analyze_liveness, LivenessSummary};
pub use loops::{Loop, SourceLang, TripCount};
pub use mem::{AliasClass, ArrayId, MemRef};
pub use opcode::{OpClass, Opcode};
pub use pretty::{annotate_dependences, render_schedule};
pub use program::{Benchmark, WeightedLoop};
pub use reg::{Reg, RegClass};
