//! Whole-benchmark containers.
//!
//! A [`Benchmark`] is a named collection of weighted innermost loops plus
//! the fraction of runtime spent outside loops — the granularity at which
//! Figures 4 and 5 of the paper report speedups.

use std::fmt;

use crate::loops::{Loop, SourceLang};

/// A loop together with its share of the benchmark's loop runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedLoop {
    /// The loop itself.
    pub body: Loop,
    /// Relative weight of this loop within the benchmark's loop time
    /// (weights across a benchmark sum to 1.0).
    pub weight: f64,
    /// Number of times the loop is entered per program run (amortizes
    /// prologue/epilogue and cold-instruction-cache costs).
    pub entries: u64,
}

/// A benchmark: a named program composed of loops.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// Benchmark name, e.g. `"171.swim"`.
    pub name: String,
    /// Source language.
    pub lang: SourceLang,
    /// Weighted innermost loops.
    pub loops: Vec<WeightedLoop>,
    /// Fraction of total program runtime not spent in the measured loops
    /// (unaffected by unrolling decisions).
    pub non_loop_fraction: f64,
    /// `true` if the benchmark is floating-point dominated (the SPECfp
    /// side of the suite); used when aggregating Figure 4/5 means.
    pub is_fp: bool,
}

impl Benchmark {
    /// Creates a benchmark, normalizing loop weights to sum to one.
    ///
    /// # Panics
    ///
    /// Panics if `loops` is empty or all weights are zero.
    pub fn new(
        name: impl Into<String>,
        lang: SourceLang,
        mut loops: Vec<WeightedLoop>,
        non_loop_fraction: f64,
        is_fp: bool,
    ) -> Self {
        assert!(!loops.is_empty(), "benchmark must contain loops");
        let total: f64 = loops.iter().map(|w| w.weight).sum();
        assert!(total > 0.0, "loop weights must not all be zero");
        for w in &mut loops {
            w.weight /= total;
        }
        Benchmark {
            name: name.into(),
            lang,
            loops,
            non_loop_fraction: non_loop_fraction.clamp(0.0, 0.95),
            is_fp,
        }
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// `true` if the benchmark has no loops (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Iterator over the loops.
    pub fn iter(&self) -> impl Iterator<Item = &WeightedLoop> {
        self.loops.iter()
    }

    /// The unrollable loops with their indices.
    pub fn unrollable(&self) -> impl Iterator<Item = (usize, &WeightedLoop)> {
        self.loops
            .iter()
            .enumerate()
            .filter(|(_, w)| w.body.is_unrollable())
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} loops, non-loop {:.0}%",
            self.name,
            self.lang,
            self.loops.len(),
            self.non_loop_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::loops::TripCount;

    fn wl(weight: f64) -> WeightedLoop {
        WeightedLoop {
            body: LoopBuilder::new("l", TripCount::Known(10)).build(),
            weight,
            entries: 1,
        }
    }

    #[test]
    fn weights_are_normalized() {
        let b = Benchmark::new("b", SourceLang::C, vec![wl(2.0), wl(6.0)], 0.3, false);
        assert!((b.loops[0].weight - 0.25).abs() < 1e-12);
        assert!((b.loops[1].weight - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must contain loops")]
    fn empty_is_rejected() {
        let _ = Benchmark::new("b", SourceLang::C, vec![], 0.3, false);
    }

    #[test]
    fn non_loop_fraction_is_clamped() {
        let b = Benchmark::new("b", SourceLang::C, vec![wl(1.0)], 2.0, false);
        assert!(b.non_loop_fraction <= 0.95);
    }

    #[test]
    fn unrollable_filters_calls() {
        let mut call_loop = LoopBuilder::new("c", TripCount::Known(5));
        call_loop.call();
        let b = Benchmark::new(
            "b",
            SourceLang::C,
            vec![
                wl(1.0),
                WeightedLoop {
                    body: call_loop.build(),
                    weight: 1.0,
                    entries: 1,
                },
            ],
            0.2,
            false,
        );
        assert_eq!(b.unrollable().count(), 1);
    }
}
