//! Operation codes for the mid-level loop IR.
//!
//! The opcode set is deliberately close to what a compiler for an EPIC
//! machine (such as the Open Research Compiler targeting Itanium 2) sees at
//! the point where loop unrolling decisions are made: typed arithmetic,
//! explicit memory operations with optional *paired* (wide) variants
//! produced by memory-access coalescing, compares producing predicate
//! registers, and branches.

use std::fmt;

/// Functional classification of an [`Opcode`].
///
/// Machine models map each class to a functional-unit kind and issue
/// constraints; the IR itself only uses the class for feature extraction
/// and static estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Simple integer ALU operation (add, logical, shift, compare).
    IntAlu,
    /// Integer multiply (and long-latency integer ops).
    IntMul,
    /// Floating-point add/sub/compare/convert.
    FpAlu,
    /// Floating-point multiply and fused multiply-add.
    FpMul,
    /// Floating-point divide and square root (long latency, unpipelined).
    FpDiv,
    /// Memory load (including paired/wide loads).
    Load,
    /// Memory store (including paired/wide stores).
    Store,
    /// Branch (backward loop branch, early exit, unconditional).
    Branch,
    /// Procedure call.
    Call,
    /// Register move / immediate materialization / select.
    Move,
    /// No-op (explicit scheduling filler).
    Nop,
}

impl OpClass {
    /// All classes, in a stable order (useful for resource accounting).
    pub const ALL: [OpClass; 11] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Call,
        OpClass::Move,
        OpClass::Nop,
    ];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Operation code of a single IR instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    // --- integer arithmetic ---
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Integer compare, defines a predicate register.
    Cmp,
    /// Sign/zero extension or truncation.
    Ext,

    // --- floating point ---
    /// Floating-point addition.
    FAdd,
    /// Floating-point subtraction.
    FSub,
    /// Floating-point multiplication.
    FMul,
    /// Fused multiply-add.
    Fma,
    /// Floating-point division.
    FDiv,
    /// Floating-point square root.
    FSqrt,
    /// Floating-point compare, defines a predicate register.
    FCmp,
    /// Int -> float conversion.
    CvtIf,
    /// Float -> int conversion.
    CvtFi,

    // --- memory ---
    /// Load a single element.
    Load,
    /// Wide load of two adjacent elements (produced by coalescing).
    LoadPair,
    /// Store a single element.
    Store,
    /// Wide store of two adjacent elements (produced by coalescing).
    StorePair,
    /// Software prefetch (no register result consumed by the loop).
    Prefetch,

    // --- control ---
    /// Backward loop branch (closes the loop).
    Br,
    /// Conditional early exit out of the loop.
    BrExit,
    /// Procedure call inside the loop body.
    Call,

    // --- data movement ---
    /// Register-to-register move.
    Mov,
    /// Immediate materialization.
    MovI,
    /// Predicated select between two registers.
    Select,
    /// Explicit no-op.
    Nop,
}

impl Opcode {
    /// Functional class of this opcode.
    pub fn class(self) -> OpClass {
        use Opcode::*;
        match self {
            Add | Sub | Shl | Shr | And | Or | Xor | Cmp | Ext => OpClass::IntAlu,
            Mul => OpClass::IntMul,
            FAdd | FSub | FCmp | CvtIf | CvtFi => OpClass::FpAlu,
            FMul | Fma => OpClass::FpMul,
            FDiv | FSqrt => OpClass::FpDiv,
            Load | LoadPair | Prefetch => OpClass::Load,
            Store | StorePair => OpClass::Store,
            Br | BrExit => OpClass::Branch,
            Call => OpClass::Call,
            Mov | MovI | Select => OpClass::Move,
            Nop => OpClass::Nop,
        }
    }

    /// `true` if the operation is a floating-point computation.
    pub fn is_fp(self) -> bool {
        matches!(
            self.class(),
            OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv
        )
    }

    /// `true` if the operation accesses memory.
    pub fn is_mem(self) -> bool {
        matches!(self.class(), OpClass::Load | OpClass::Store)
    }

    /// `true` if the operation is any branch.
    pub fn is_branch(self) -> bool {
        self.class() == OpClass::Branch
    }

    /// `true` for "implicit" instructions: moves, immediates, selects and
    /// nops that exist to glue real computation together. The count of
    /// implicit instructions is one of the paper's loop features.
    pub fn is_implicit(self) -> bool {
        matches!(self.class(), OpClass::Move | OpClass::Nop)
    }

    /// Compiler-internal static latency estimate in cycles.
    ///
    /// This is the estimate a compiler would use for critical-path features
    /// and scheduling priorities. A machine model is free to use different
    /// (more detailed) latencies.
    pub fn static_latency(self) -> u32 {
        use Opcode::*;
        match self {
            Add | Sub | Shl | Shr | And | Or | Xor | Cmp | Ext => 1,
            Mul => 3,
            FAdd | FSub | FCmp | CvtIf | CvtFi => 4,
            FMul | Fma => 4,
            FDiv => 24,
            FSqrt => 28,
            Load | LoadPair => 3,
            Prefetch => 1,
            Store | StorePair => 1,
            Br | BrExit => 1,
            Call => 8,
            Mov | MovI | Select => 1,
            Nop => 1,
        }
    }

    /// `true` if this opcode defines a predicate register.
    pub fn defines_predicate(self) -> bool {
        matches!(self, Opcode::Cmp | Opcode::FCmp)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = format!("{self:?}").to_lowercase();
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_consistent() {
        assert_eq!(Opcode::Add.class(), OpClass::IntAlu);
        assert_eq!(Opcode::Fma.class(), OpClass::FpMul);
        assert_eq!(Opcode::LoadPair.class(), OpClass::Load);
        assert_eq!(Opcode::StorePair.class(), OpClass::Store);
        assert_eq!(Opcode::BrExit.class(), OpClass::Branch);
    }

    #[test]
    fn fp_detection() {
        assert!(Opcode::FAdd.is_fp());
        assert!(Opcode::FDiv.is_fp());
        assert!(!Opcode::Load.is_fp());
        assert!(!Opcode::Add.is_fp());
    }

    #[test]
    fn mem_detection() {
        for op in [
            Opcode::Load,
            Opcode::Store,
            Opcode::LoadPair,
            Opcode::StorePair,
            Opcode::Prefetch,
        ] {
            assert!(op.is_mem(), "{op} should be a memory op");
        }
        assert!(!Opcode::Br.is_mem());
    }

    #[test]
    fn latencies_positive_and_divide_is_slow() {
        for class in OpClass::ALL {
            let _ = class; // exercise ALL
        }
        assert!(Opcode::FDiv.static_latency() > Opcode::FMul.static_latency());
        assert!(Opcode::Load.static_latency() > Opcode::Add.static_latency());
    }

    #[test]
    fn implicit_ops() {
        assert!(Opcode::Mov.is_implicit());
        assert!(Opcode::Nop.is_implicit());
        assert!(!Opcode::Add.is_implicit());
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Opcode::FAdd.to_string(), "fadd");
        assert_eq!(OpClass::IntAlu.to_string(), "IntAlu");
    }
}
