//! Virtual registers.

use std::fmt;

/// Register class: the Itanium-style split between integer, floating-point
/// and predicate register files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// General-purpose integer register.
    Int,
    /// Floating-point register.
    Fp,
    /// One-bit predicate register.
    Pred,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => f.write_str("r"),
            RegClass::Fp => f.write_str("f"),
            RegClass::Pred => f.write_str("p"),
        }
    }
}

/// A virtual register: a class plus an index.
///
/// The IR is in a pre-register-allocation form, so indices are unbounded;
/// machine models estimate pressure against physical file sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg {
    class: RegClass,
    index: u32,
}

impl Reg {
    /// Creates a register of the given class.
    pub fn new(class: RegClass, index: u32) -> Self {
        Reg { class, index }
    }

    /// Integer register `r<index>`.
    pub fn int(index: u32) -> Self {
        Reg::new(RegClass::Int, index)
    }

    /// Floating-point register `f<index>`.
    pub fn fp(index: u32) -> Self {
        Reg::new(RegClass::Fp, index)
    }

    /// Predicate register `p<index>`.
    pub fn pred(index: u32) -> Self {
        Reg::new(RegClass::Pred, index)
    }

    /// The register class.
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The index within the class.
    pub fn index(self) -> u32 {
        self.index
    }

    /// Returns a copy of this register with the index shifted by `offset`.
    /// Used by the unroller when renaming per-copy definitions.
    pub fn offset_index(self, offset: u32) -> Self {
        Reg {
            class: self.class,
            index: self.index + offset,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.class, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let r = Reg::int(4);
        assert_eq!(r.class(), RegClass::Int);
        assert_eq!(r.index(), 4);
        assert_eq!(Reg::fp(2).class(), RegClass::Fp);
        assert_eq!(Reg::pred(0).class(), RegClass::Pred);
    }

    #[test]
    fn display() {
        assert_eq!(Reg::int(3).to_string(), "r3");
        assert_eq!(Reg::fp(7).to_string(), "f7");
        assert_eq!(Reg::pred(1).to_string(), "p1");
    }

    #[test]
    fn offsetting_preserves_class() {
        let r = Reg::fp(10).offset_index(100);
        assert_eq!(r, Reg::fp(110));
    }

    #[test]
    fn ordering_groups_by_class() {
        assert!(Reg::int(5) < Reg::fp(0));
    }
}
