//! Loops, trip counts and source metadata.

use std::fmt;

use crate::inst::Inst;
use crate::opcode::Opcode;
use crate::reg::Reg;

/// Trip count of a loop, as known to the compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TripCount {
    /// The compiler proved the loop runs exactly this many iterations.
    Known(u64),
    /// The trip count is unknown at compile time; `estimate` is the
    /// dynamic average (used by machine models to simulate execution, but
    /// invisible to heuristics and feature extraction, which see `-1`).
    Unknown {
        /// Average dynamic trip count used when simulating the loop.
        estimate: u64,
    },
}

impl TripCount {
    /// The value feature extraction reports: the trip count if known,
    /// `-1.0` otherwise (exactly the encoding in the paper's Table 1).
    pub fn feature_value(self) -> f64 {
        match self {
            TripCount::Known(n) => n as f64,
            TripCount::Unknown { .. } => -1.0,
        }
    }

    /// Dynamic iteration count a simulator should execute.
    pub fn dynamic(self) -> u64 {
        match self {
            TripCount::Known(n) => n,
            TripCount::Unknown { estimate } => estimate,
        }
    }

    /// `true` if the compiler knows the count.
    pub fn is_known(self) -> bool {
        matches!(self, TripCount::Known(_))
    }
}

impl fmt::Display for TripCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TripCount::Known(n) => write!(f, "{n}"),
            TripCount::Unknown { estimate } => write!(f, "?~{estimate}"),
        }
    }
}

/// Source language of the benchmark a loop came from. The paper treats the
/// language as a loop feature (C vs Fortran loops have systematically
/// different shapes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SourceLang {
    /// C.
    C,
    /// FORTRAN 77.
    Fortran,
    /// Fortran 90.
    Fortran90,
}

impl SourceLang {
    /// Numeric encoding used in feature vectors.
    pub fn feature_value(self) -> f64 {
        match self {
            SourceLang::C => 0.0,
            SourceLang::Fortran => 1.0,
            SourceLang::Fortran90 => 2.0,
        }
    }
}

impl fmt::Display for SourceLang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceLang::C => f.write_str("C"),
            SourceLang::Fortran => f.write_str("Fortran"),
            SourceLang::Fortran90 => f.write_str("Fortran90"),
        }
    }
}

/// An innermost loop: the unit the paper classifies.
///
/// The body is a straight-line sequence of instructions ending in the
/// backward branch; early exits appear as [`Opcode::BrExit`] instructions
/// inside the body. Memory addresses are affine in the canonical induction
/// variable (see [`crate::MemRef`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// Human-readable name, e.g. `"172.mgrid/resid_l3"`.
    pub name: String,
    /// Instruction sequence for one iteration, including induction update,
    /// loop-closing compare and backward branch.
    pub body: Vec<Inst>,
    /// Trip count knowledge.
    pub trip_count: TripCount,
    /// Nesting depth (1 = not nested inside another loop).
    pub nest_level: u32,
    /// Source language of the enclosing benchmark.
    pub lang: SourceLang,
}

impl Loop {
    /// Number of instructions in the body.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// `true` if the body is empty (never true for well-formed loops).
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Count of instructions satisfying `pred`.
    pub fn count_ops<F: Fn(&Inst) -> bool>(&self, pred: F) -> usize {
        self.body.iter().filter(|i| pred(i)).count()
    }

    /// Number of early-exit branches in the body.
    pub fn early_exits(&self) -> usize {
        self.count_ops(|i| i.opcode == Opcode::BrExit)
    }

    /// `true` if the body contains a call.
    pub fn has_call(&self) -> bool {
        self.body.iter().any(|i| i.opcode == Opcode::Call)
    }

    /// `true` if the loop can be unrolled by the compiler: it must contain
    /// no calls (calls defeat ORC-style unrolling) and have a recognizable
    /// loop-closing structure.
    pub fn is_unrollable(&self) -> bool {
        !self.has_call() && self.body.iter().any(|i| i.opcode == Opcode::Br)
    }

    /// All registers defined anywhere in the body.
    pub fn defined_regs(&self) -> Vec<Reg> {
        let mut v: Vec<Reg> = self
            .body
            .iter()
            .flat_map(|i| i.defs.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Registers that are live into the loop: used (at any position) before
    /// any definition in straight-line body order, plus registers used but
    /// never defined.
    pub fn live_in_regs(&self) -> Vec<Reg> {
        let mut defined = std::collections::HashSet::new();
        let mut live_in = Vec::new();
        for inst in &self.body {
            for r in inst.reads() {
                if !defined.contains(&r) && !live_in.contains(&r) {
                    live_in.push(r);
                }
            }
            for d in &inst.defs {
                defined.insert(*d);
            }
        }
        live_in.sort_unstable();
        live_in
    }

    /// Static code size estimate in bytes. Itanium packs three 41-bit
    /// instructions plus a template into a 128-byte-per-8-bundle stream;
    /// we charge 16 bytes per bundle of 3 instructions.
    pub fn code_bytes(&self) -> u64 {
        let bundles = (self.body.len() as u64).div_ceil(3);
        bundles * 16
    }
}

impl fmt::Display for Loop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "loop {} (trips={}, nest={}, lang={}):",
            self.name, self.trip_count, self.nest_level, self.lang
        )?;
        for inst in &self.body {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::mem::{ArrayId, MemRef};

    fn sample() -> Loop {
        let mut b = LoopBuilder::new("t", TripCount::Known(100));
        let x = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        let y = b.fp_reg();
        b.inst(Inst::new(Opcode::FAdd, vec![y], vec![x, x]));
        b.store(y, MemRef::affine(ArrayId(1), 8, 0, 8));
        b.build()
    }

    #[test]
    fn builder_closes_loop() {
        let l = sample();
        assert!(l.is_unrollable());
        assert!(l.body.iter().any(|i| i.induction));
        assert_eq!(l.body.last().unwrap().opcode, Opcode::Br);
    }

    #[test]
    fn trip_count_features() {
        assert_eq!(TripCount::Known(10).feature_value(), 10.0);
        assert_eq!(TripCount::Unknown { estimate: 5 }.feature_value(), -1.0);
        assert_eq!(TripCount::Unknown { estimate: 5 }.dynamic(), 5);
    }

    #[test]
    fn live_in_detects_upward_exposed() {
        let l = sample();
        let live_in = l.live_in_regs();
        // The induction variable is read by the address computation only
        // implicitly (via MemRef), but the iv update reads the iv itself.
        assert!(!live_in.is_empty());
    }

    #[test]
    fn call_blocks_unrolling() {
        let mut b = LoopBuilder::new("c", TripCount::Known(10));
        b.inst(Inst::new(Opcode::Call, vec![], vec![]));
        let l = b.build();
        assert!(l.has_call());
        assert!(!l.is_unrollable());
    }

    #[test]
    fn code_bytes_rounds_to_bundles() {
        let l = sample();
        // 3 body insts + iv + cmp + br = 6 insts = 2 bundles = 32 bytes.
        assert_eq!(l.len(), 6);
        assert_eq!(l.code_bytes(), 32);
    }

    #[test]
    fn lang_feature_values_are_distinct() {
        let vals = [
            SourceLang::C.feature_value(),
            SourceLang::Fortran.feature_value(),
            SourceLang::Fortran90.feature_value(),
        ];
        assert_eq!(vals.len(), 3);
        assert!(vals[0] < vals[1] && vals[1] < vals[2]);
    }
}
