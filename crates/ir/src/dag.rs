//! The intra-iteration dependence DAG and derived structural properties.
//!
//! The features the paper extracts (critical path, "parallel
//! computations", dependence heights, fan-in) are all properties of the
//! distance-0 subgraph of the dependence graph, which — because every
//! intra-iteration edge points forward in program order — is a DAG.

use crate::deps::{Dep, DepGraph, DepKind};
use crate::loops::Loop;
use crate::opcode::OpClass;

/// Structural summary of a loop body's intra-iteration dependence DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct DagSummary {
    /// Latency-weighted critical path through one iteration, in cycles.
    pub critical_path: u32,
    /// Resource-bound static estimate of the body's cycle length on a
    /// generic 6-issue EPIC machine.
    pub resource_cycles: u32,
    /// Number of parallel "computations": weakly connected components of
    /// the DAG containing at least one real (non-control, non-implicit)
    /// instruction.
    pub computations: usize,
    /// Maximum latency-weighted dependence height over computations.
    pub max_dependence_height: u32,
    /// Maximum chain of memory dependences (latency-weighted).
    pub max_memory_height: u32,
    /// Maximum chain of control dependences (edge count).
    pub max_control_height: u32,
    /// Mean dependence height over computations.
    pub avg_dependence_height: f64,
    /// Maximum in-degree over DAG nodes ("instruction fan-in").
    pub max_fan_in: usize,
    /// Mean in-degree over DAG nodes.
    pub avg_fan_in: f64,
}

/// Computes the DAG summary of `l` given its dependence graph `g`.
///
/// `g` must have been produced by [`DepGraph::analyze`] on the same loop.
pub fn summarize(l: &Loop, g: &DepGraph) -> DagSummary {
    let n = l.body.len();
    // Intra edges always point forward in program order; sorting by source
    // index lets a single pass relax longest paths (all edges into a node
    // are processed before any edge out of it).
    let mut intra: Vec<&Dep> = g.intra().collect();
    intra.sort_by_key(|d| d.src);

    // Earliest start times by longest path over intra-iteration edges.
    let mut start = vec![0u32; n];
    for d in &intra {
        debug_assert!(d.src < d.dst, "intra edges point forward");
        start[d.dst] = start[d.dst].max(start[d.src] + d.latency);
    }
    let critical_path = l
        .body
        .iter()
        .enumerate()
        .map(|(i, inst)| start[i] + inst.opcode.static_latency())
        .max()
        .unwrap_or(0);

    // Static resource estimate on a generic EPIC machine: 6-wide issue,
    // 4 memory ports, 2 FP units, 3 branch slots.
    let count =
        |f: &dyn Fn(OpClass) -> bool| l.body.iter().filter(|i| f(i.opcode.class())).count() as u32;
    let mem = count(&|c| matches!(c, OpClass::Load | OpClass::Store));
    let fp = count(&|c| matches!(c, OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv));
    let br = count(&|c| matches!(c, OpClass::Branch));
    let total = n as u32;
    let resource_cycles = [
        total.div_ceil(6),
        mem.div_ceil(4),
        fp.div_ceil(2),
        br.div_ceil(3),
    ]
    .into_iter()
    .max()
    .unwrap_or(0)
    .max(1);

    // Weakly connected components via union-find over intra edges.
    let mut uf = UnionFind::new(n);
    for d in &intra {
        uf.union(d.src, d.dst);
    }
    // A computation is a component with at least one real operation.
    let mut has_real = vec![false; n];
    for (i, inst) in l.body.iter().enumerate() {
        let real = !inst.opcode.is_implicit()
            && !inst.opcode.is_branch()
            && !inst.induction
            && !inst.opcode.defines_predicate();
        if real {
            has_real[uf.find(i)] = true;
        }
    }
    let mut roots: Vec<usize> = (0..n).map(|i| uf.find(i)).collect();
    roots.sort_unstable();
    roots.dedup();
    let comp_roots: Vec<usize> = roots.into_iter().filter(|&r| has_real[r]).collect();
    let computations = comp_roots.len();

    // Heights per computation: the max finish time restricted to nodes of
    // that component.
    let mut heights: Vec<u32> = Vec::with_capacity(computations);
    for &r in &comp_roots {
        let h = l
            .body
            .iter()
            .enumerate()
            .filter(|(i, _)| uf.find(*i) == r)
            .map(|(i, inst)| start[i] + inst.opcode.static_latency())
            .max()
            .unwrap_or(0);
        heights.push(h);
    }
    let max_dependence_height = heights.iter().copied().max().unwrap_or(0);
    let avg_dependence_height = if heights.is_empty() {
        0.0
    } else {
        heights.iter().map(|&h| f64::from(h)).sum::<f64>() / heights.len() as f64
    };

    // Memory height: longest latency-weighted chain over Mem edges only.
    let mut mstart = vec![0u32; n];
    let mut max_memory_height = 0;
    for d in &intra {
        if d.kind == DepKind::Mem {
            mstart[d.dst] = mstart[d.dst].max(mstart[d.src] + d.latency.max(1));
            max_memory_height = max_memory_height.max(mstart[d.dst]);
        }
    }

    // Control height: longest chain of Ctrl edges (edge count).
    let mut cstart = vec![0u32; n];
    let mut max_control_height = 0;
    for d in &intra {
        if d.kind == DepKind::Ctrl {
            cstart[d.dst] = cstart[d.dst].max(cstart[d.src] + 1);
            max_control_height = max_control_height.max(cstart[d.dst]);
        }
    }

    // Fan-in over true dependence edges.
    let mut indeg = vec![0usize; n];
    for d in &intra {
        if matches!(d.kind, DepKind::Reg | DepKind::Mem) {
            indeg[d.dst] += 1;
        }
    }
    let max_fan_in = indeg.iter().copied().max().unwrap_or(0);
    let avg_fan_in = if n == 0 {
        0.0
    } else {
        indeg.iter().sum::<usize>() as f64 / n as f64
    };

    DagSummary {
        critical_path,
        resource_cycles,
        computations,
        max_dependence_height,
        max_memory_height,
        max_control_height,
        avg_dependence_height,
        max_fan_in,
        avg_fan_in,
    }
}

/// Minimal union-find for component analysis.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::inst::Inst;
    use crate::loops::TripCount;
    use crate::mem::{ArrayId, MemRef};
    use crate::opcode::Opcode;

    fn two_streams() -> Loop {
        // Two independent computations: x[i] = a[i]+a[i]; y[i] = b[i]*b[i].
        let mut b = LoopBuilder::new("two", TripCount::Known(100));
        let a = b.fp_reg();
        let x = b.fp_reg();
        b.load(a, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.binop(Opcode::FAdd, x, a, a);
        b.store(x, MemRef::affine(ArrayId(1), 8, 0, 8));
        let c = b.fp_reg();
        let y = b.fp_reg();
        b.load(c, MemRef::affine(ArrayId(2), 8, 0, 8));
        b.binop(Opcode::FMul, y, c, c);
        b.store(y, MemRef::affine(ArrayId(3), 8, 0, 8));
        b.build()
    }

    #[test]
    fn counts_parallel_computations() {
        let l = two_streams();
        let g = DepGraph::analyze(&l);
        let s = summarize(&l, &g);
        assert_eq!(s.computations, 2, "{s:?}");
    }

    #[test]
    fn critical_path_covers_load_use_chain() {
        let l = two_streams();
        let g = DepGraph::analyze(&l);
        let s = summarize(&l, &g);
        // load(3) + fmul(4) + store(1) = 8 at least.
        assert!(s.critical_path >= 8, "{s:?}");
    }

    #[test]
    fn resource_estimate_at_least_one() {
        let l = LoopBuilder::new("empty-ish", TripCount::Known(1)).build();
        let g = DepGraph::analyze(&l);
        let s = summarize(&l, &g);
        assert!(s.resource_cycles >= 1);
    }

    #[test]
    fn fan_in_detects_joins() {
        // r = a + b requires two loads feeding one add: fan-in 2.
        let mut b = LoopBuilder::new("join", TripCount::Known(10));
        let x = b.fp_reg();
        let y = b.fp_reg();
        let r = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.load(y, MemRef::affine(ArrayId(1), 8, 0, 8));
        b.inst(Inst::new(Opcode::FAdd, vec![r], vec![x, y]));
        let l = b.build();
        let g = DepGraph::analyze(&l);
        let s = summarize(&l, &g);
        assert!(s.max_fan_in >= 2, "{s:?}");
    }

    #[test]
    fn memory_height_follows_store_load_chain() {
        let mut b = LoopBuilder::new("chain", TripCount::Known(10));
        let x = b.fp_reg();
        let y = b.fp_reg();
        let m = MemRef::affine(ArrayId(0), 8, 0, 8);
        b.store(x, m);
        b.load(y, m);
        let l = b.build();
        let g = DepGraph::analyze(&l);
        let s = summarize(&l, &g);
        assert!(s.max_memory_height >= 1, "{s:?}");
    }

    #[test]
    fn control_height_counts_exit_chains() {
        let mut b = LoopBuilder::new("exits", TripCount::Unknown { estimate: 16 });
        let x = b.int_reg();
        let y = b.int_reg();
        b.early_exit(x, y);
        let f = b.fp_reg();
        b.store(f, MemRef::affine(ArrayId(0), 8, 0, 8));
        let l = b.build();
        let g = DepGraph::analyze(&l);
        let s = summarize(&l, &g);
        assert!(s.max_control_height >= 1, "{s:?}");
    }

    #[test]
    fn avg_height_at_most_max() {
        let l = two_streams();
        let g = DepGraph::analyze(&l);
        let s = summarize(&l, &g);
        assert!(s.avg_dependence_height <= f64::from(s.max_dependence_height) + 1e-9);
    }
}
