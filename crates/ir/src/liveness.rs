//! Straight-line liveness estimation for loop bodies.
//!
//! Register pressure is one of the key mechanisms by which unrolling hurts
//! (§3 of the paper). This module computes a static live-range summary of a
//! loop body used both as a feature ("live range size") and by machine
//! models to estimate spill behaviour before scheduling.

use std::collections::HashMap;

use crate::loops::Loop;
use crate::reg::{Reg, RegClass};

/// Live-range summary of a loop body.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LivenessSummary {
    /// Maximum number of simultaneously live integer registers.
    pub max_live_int: usize,
    /// Maximum number of simultaneously live floating-point registers.
    pub max_live_fp: usize,
    /// Mean number of live registers (all classes) per body position —
    /// the paper's "live range size" feature.
    pub avg_live: f64,
    /// Total number of distinct virtual registers referenced.
    pub vregs: usize,
}

/// Computes the live-range summary of `l`.
///
/// Registers whose first use precedes their (only) definition are
/// loop-carried and treated as live across the entire body. Live-in-only
/// registers (never defined in the loop) are loop-invariant and counted as
/// live everywhere.
pub fn analyze(l: &Loop) -> LivenessSummary {
    let n = l.body.len();
    if n == 0 {
        return LivenessSummary {
            max_live_int: 0,
            max_live_fp: 0,
            avg_live: 0.0,
            vregs: 0,
        };
    }

    #[derive(Default, Clone, Copy)]
    struct Range {
        first_def: Option<usize>,
        first_use: Option<usize>,
        last_use: Option<usize>,
    }

    let mut ranges: HashMap<Reg, Range> = HashMap::new();
    for (i, inst) in l.body.iter().enumerate() {
        for r in inst.reads() {
            let e = ranges.entry(r).or_default();
            if e.first_use.is_none() {
                e.first_use = Some(i);
            }
            e.last_use = Some(i);
        }
        for &d in &inst.defs {
            let e = ranges.entry(d).or_default();
            if e.first_def.is_none() {
                e.first_def = Some(i);
            }
        }
    }

    // Live interval per register in [0, n] positions; carried and
    // invariant registers span the whole body.
    let mut live_at = vec![(0usize, 0usize); 0];
    let mut intervals: Vec<(Reg, usize, usize)> = Vec::with_capacity(ranges.len());
    for (&r, rg) in &ranges {
        let (start, end) = match (rg.first_def, rg.first_use, rg.last_use) {
            // Defined, then used strictly after: plain interval.
            (Some(d), Some(u), Some(lu)) if u > d => (d, lu),
            // Used at-or-before its definition: loop-carried, spans body.
            (Some(_), Some(_), Some(_)) => (0, n - 1),
            // Defined but never used (e.g. a store-fed value consumed by
            // memory): live for one position.
            (Some(d), None, None) => (d, d),
            // Used but never defined: loop-invariant input.
            (None, _, Some(_)) => (0, n - 1),
            _ => (0, 0),
        };
        intervals.push((r, start, end));
    }
    live_at.clear();

    let mut live_counts_int = vec![0usize; n];
    let mut live_counts_fp = vec![0usize; n];
    let mut live_counts_all = vec![0usize; n];
    for &(r, s, e) in &intervals {
        for pos in s..=e.min(n - 1) {
            live_counts_all[pos] += 1;
            match r.class() {
                RegClass::Int => live_counts_int[pos] += 1,
                RegClass::Fp => live_counts_fp[pos] += 1,
                RegClass::Pred => {}
            }
        }
    }

    LivenessSummary {
        max_live_int: live_counts_int.iter().copied().max().unwrap_or(0),
        max_live_fp: live_counts_fp.iter().copied().max().unwrap_or(0),
        avg_live: live_counts_all.iter().sum::<usize>() as f64 / n as f64,
        vregs: ranges.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::inst::Inst;
    use crate::loops::TripCount;
    use crate::mem::{ArrayId, MemRef};
    use crate::opcode::Opcode;

    #[test]
    fn empty_loop_body() {
        let l = Loop {
            name: "empty".into(),
            body: vec![],
            trip_count: TripCount::Known(1),
            nest_level: 1,
            lang: crate::loops::SourceLang::C,
        };
        let s = analyze(&l);
        assert_eq!(s.vregs, 0);
        assert_eq!(s.avg_live, 0.0);
    }

    #[test]
    fn reduction_accumulator_is_live_everywhere() {
        let mut b = LoopBuilder::new("red", TripCount::Known(100));
        let x = b.fp_reg();
        let acc = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.inst(Inst::new(Opcode::FAdd, vec![acc], vec![acc, x]));
        let l = b.build();
        let s = analyze(&l);
        assert!(s.max_live_fp >= 1, "{s:?}");
        assert!(s.avg_live > 0.0);
    }

    #[test]
    fn more_temporaries_more_pressure() {
        let mk = |temps: usize| {
            let mut b = LoopBuilder::new("t", TripCount::Known(10));
            let mut regs = Vec::new();
            for k in 0..temps {
                let r = b.fp_reg();
                b.load(r, MemRef::affine(ArrayId(k as u32), 8, 0, 8));
                regs.push(r);
            }
            // One consumer keeps them all live until the end.
            let out = b.fp_reg();
            let mut acc = regs[0];
            for &r in &regs[1..] {
                let t = b.fp_reg();
                b.binop(Opcode::FAdd, t, acc, r);
                acc = t;
            }
            b.store(acc, MemRef::affine(ArrayId(99), 8, 0, 8));
            let _ = out;
            analyze(&b.build())
        };
        assert!(mk(8).max_live_fp > mk(2).max_live_fp);
    }

    #[test]
    fn vreg_count_includes_control_regs() {
        let l = LoopBuilder::new("ctl", TripCount::Known(4)).build();
        let s = analyze(&l);
        // iv, limit, and branch predicate.
        assert!(s.vregs >= 3, "{s:?}");
    }
}
