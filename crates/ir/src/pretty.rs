//! Pretty-printing helpers for loops and schedules: compact textual
//! dumps used by examples, debugging tools and test failure messages.

use std::fmt::Write as _;

use crate::deps::DepGraph;
use crate::loops::Loop;

/// Renders a loop side by side with its dependence counts: one line per
/// instruction with in/out degree annotations.
pub fn annotate_dependences(l: &Loop, g: &DepGraph) -> String {
    let n = l.body.len();
    let mut indeg = vec![0usize; n];
    let mut outdeg = vec![0usize; n];
    let mut carried_in = vec![0usize; n];
    for d in g.deps() {
        if d.distance == 0 {
            outdeg[d.src] += 1;
            indeg[d.dst] += 1;
        } else {
            carried_in[d.dst] += 1;
        }
    }
    let mut s = String::new();
    let _ = writeln!(s, "loop {} ({} instructions)", l.name, n);
    for (i, inst) in l.body.iter().enumerate() {
        let carried = if carried_in[i] > 0 {
            format!(" carried:{}", carried_in[i])
        } else {
            String::new()
        };
        let _ = writeln!(
            s,
            "  [{i:>3}] in:{:<2} out:{:<2}{carried:<10} {inst}",
            indeg[i], outdeg[i]
        );
    }
    s
}

/// Renders a cycle-by-cycle view of a schedule: which instructions issue
/// at each cycle (given their start times).
pub fn render_schedule(l: &Loop, starts: &[u32]) -> String {
    assert_eq!(starts.len(), l.body.len(), "one start per instruction");
    let length = starts.iter().copied().max().map_or(0, |m| m + 1);
    let mut s = String::new();
    for cycle in 0..length {
        let _ = write!(s, "cycle {cycle:>3}:");
        for (i, inst) in l.body.iter().enumerate() {
            if starts[i] == cycle {
                let _ = write!(s, "  {}", inst.opcode);
            }
        }
        let _ = writeln!(s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::loops::TripCount;
    use crate::mem::{ArrayId, MemRef};

    fn sample() -> Loop {
        let mut b = LoopBuilder::new("t", TripCount::Known(8));
        let x = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.store(x, MemRef::affine(ArrayId(1), 8, 0, 8));
        b.build()
    }

    #[test]
    fn annotation_lists_every_instruction() {
        let l = sample();
        let g = DepGraph::analyze(&l);
        let s = annotate_dependences(&l, &g);
        assert_eq!(s.lines().count(), l.len() + 1);
        assert!(s.contains("load"));
    }

    #[test]
    fn schedule_rendering_covers_all_cycles() {
        let l = sample();
        let starts: Vec<u32> = (0..l.len() as u32).collect();
        let s = render_schedule(&l, &starts);
        assert_eq!(s.lines().count(), l.len());
        assert!(s.starts_with("cycle   0:"));
    }

    #[test]
    #[should_panic(expected = "one start per instruction")]
    fn schedule_rendering_validates_lengths() {
        let l = sample();
        let _ = render_schedule(&l, &[0, 1]);
    }
}
