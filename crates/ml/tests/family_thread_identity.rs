//! Per-family fit determinism: training any zoo member under
//! `LOOPML_THREADS=1` and `LOOPML_THREADS=4` must produce bit-identical
//! serialized state. Lives in its own test binary because it mutates the
//! process-global thread-count environment variable.

use loopml_ml::{
    BaggedForest, Classifier, Dataset, DecisionTree, ForestParams, Mlp, MlpParams, MulticlassSvm,
    NearNeighbors, SvmParams, TreeParams, DEFAULT_RADIUS,
};

/// A deterministic four-class corpus big enough that a parallel fit
/// would actually interleave if a family ever consulted the pool.
fn corpus() -> Dataset {
    let mut x = Vec::new();
    let mut y = Vec::new();
    let centers = [(0.0, 0.0), (8.0, 0.0), (0.0, 8.0), (8.0, 8.0)];
    for (c, &(cx, cy)) in centers.iter().enumerate() {
        for k in 0..12 {
            x.push(vec![
                cx + (k % 3) as f64 * 0.4,
                cy + (k / 3) as f64 * 0.4,
                (k as f64).sin(),
            ]);
            y.push(c);
        }
    }
    let n = x.len();
    Dataset::new(
        x,
        y,
        4,
        vec!["a".into(), "b".into(), "c".into()],
        (0..n).map(|i| format!("e{i}")).collect(),
    )
}

fn zoo() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(NearNeighbors::new(DEFAULT_RADIUS)),
        Box::new(MulticlassSvm::new(SvmParams::default())),
        Box::new(DecisionTree::new(TreeParams::default())),
        Box::new(BaggedForest::new(ForestParams::default())),
        Box::new(Mlp::new(MlpParams::default())),
    ]
}

#[test]
fn every_family_fits_bit_identically_at_1_and_4_threads() {
    let data = corpus();
    for template in zoo() {
        let mut states = Vec::new();
        for threads in ["1", "4"] {
            std::env::set_var("LOOPML_THREADS", threads);
            let mut m = template.fresh();
            m.fit(&data);
            // Serialized text covers every learned weight/threshold, so
            // string equality is bit-identity of the whole model.
            states.push(m.save().to_string());
        }
        std::env::remove_var("LOOPML_THREADS");
        assert_eq!(
            states[0],
            states[1],
            "{} fit diverged between 1 and 4 threads",
            template.name()
        );
    }
}
