//! Sweep determinism and single-distance-build guarantees.
//!
//! Lives in its own integration-test binary on purpose: the
//! [`loopml_ml::distance_builds`] counter is process-global, and the unit
//! tests build distance matrices freely. Here the only builders are these
//! tests, serialized by a mutex, so counter deltas are exact.

use std::sync::Mutex;

use loopml_ml::{distance_builds, sweep_threads, Dataset, SvmGrid, SweepConfig};

static COUNTER_LOCK: Mutex<()> = Mutex::new(());

/// Four "benchmarks", each contributing loops from every class — a
/// deterministic, LOGO-friendly corpus with enough examples that the
/// parallel job queue actually interleaves.
fn corpus() -> (Dataset, Vec<usize>) {
    let mut x = Vec::new();
    let mut y = Vec::new();
    let mut group = Vec::new();
    let centers = [(0.0, 0.0), (8.0, 0.0), (0.0, 8.0), (8.0, 8.0)];
    for (c, &(cx, cy)) in centers.iter().enumerate() {
        for k in 0..12 {
            // Deterministic jitter; k % 4 spreads each class over all
            // four benchmarks.
            x.push(vec![
                cx + (k % 3) as f64 * 0.4,
                cy + (k / 3) as f64 * 0.4,
                (k as f64).sin(),
            ]);
            y.push(c);
            group.push(k % 4);
        }
    }
    let n = x.len();
    let data = Dataset::new(
        x,
        y,
        4,
        vec!["a".into(), "b".into(), "c".into()],
        (0..n).map(|i| format!("e{i}")).collect(),
    );
    (data, group)
}

#[test]
fn sweep_is_bit_identical_across_thread_counts() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let (data, group) = corpus();
    let cfg = SweepConfig::default();
    let serial = sweep_threads(&data, &group, &cfg, 1);
    for threads in [2, 4, 8] {
        let par = sweep_threads(&data, &group, &cfg, threads);
        // PartialEq over every cell accuracy, selected params and
        // counters: bit-identical, not approximately equal.
        assert_eq!(serial, par, "sweep diverged at {threads} threads");
    }
}

#[test]
fn sweep_builds_exactly_one_distance_matrix() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let (data, group) = corpus();
    // A bigger-than-default grid: the build count must stay 1 no matter
    // how many gammas, Cs and radii are swept — and the distance-free
    // families (tree/forest/MLP, swept at their defaults here) must not
    // add any.
    let cfg = SweepConfig {
        svm: SvmGrid {
            gammas: vec![0.1, 0.25, 1.0, 4.0],
            cs: vec![0.5, 1.0, 10.0, 100.0],
            ..SvmGrid::default()
        },
        radii: vec![0.1, 0.15, 0.3, 0.45, 0.6, 1.0],
        ..SweepConfig::default()
    };
    let before = distance_builds();
    let report = sweep_threads(&data, &group, &cfg, 4);
    assert_eq!(
        distance_builds() - before,
        1,
        "sweep must compute pairwise distances exactly once"
    );
    assert_eq!(report.distance_builds, 1, "report must carry the proof");
    assert_eq!(report.svm_cells.len(), 16);
    assert_eq!(report.nn_cells.len(), 6);
}

#[test]
fn counter_is_monotonic_across_sweeps() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let (data, group) = corpus();
    let cfg = SweepConfig::default();
    let before = distance_builds();
    let a = sweep_threads(&data, &group, &cfg, 2);
    let b = sweep_threads(&data, &group, &cfg, 2);
    assert_eq!(distance_builds() - before, 2, "one build per sweep");
    assert_eq!(a, b, "same inputs, same report");
}
