//! Leave-one-out cross validation (paper §4.2).
//!
//! LOOCV is the accuracy methodology of the paper: train on N−1 examples,
//! classify the held-out one, repeat N times. For the two classifiers we
//! care about there are fast exact(-leaning) paths — NN supports
//! exclusion at query time, and the SVM only changes when a support
//! vector is removed — plus a fully generic path for arbitrary
//! classifiers.

use crate::classify::Classifier;
use crate::dataset::Dataset;
use crate::nn::NearNeighbors;
use crate::svm::{MulticlassSvm, SvmParams};

/// Result of a cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Predicted label for each example when it was held out.
    pub predictions: Vec<usize>,
    /// Fraction of held-out examples classified correctly.
    pub accuracy: f64,
}

fn result_from(predictions: Vec<usize>, truth: &[usize]) -> CvResult {
    let correct = predictions
        .iter()
        .zip(truth)
        .filter(|(p, y)| p == y)
        .count();
    let accuracy = if truth.is_empty() {
        0.0
    } else {
        correct as f64 / truth.len() as f64
    };
    CvResult {
        predictions,
        accuracy,
    }
}

/// LOOCV for radius near neighbors: exact, via query-time exclusion.
pub fn loocv_nn(data: &Dataset, radius: f64) -> CvResult {
    let nn = NearNeighbors::fit(data, radius);
    let predictions = (0..data.len())
        .map(|i| nn.predict_excluding(&data.x[i], i).label)
        .collect();
    result_from(predictions, &data.y)
}

/// LOOCV for the multi-class SVM: exact for examples that are not support
/// vectors, warm-start re-converged otherwise.
pub fn loocv_svm(data: &Dataset, params: SvmParams) -> CvResult {
    let svm = MulticlassSvm::fit(data, params);
    result_from(svm.loo_predictions(), &data.y)
}

/// Generic LOOCV: refits `clf` on the N−1 remaining examples for every
/// fold. Use only for small datasets or cheap classifiers; the fast paths
/// above avoid the N retrains. The classifier is left fitted to the last
/// fold on return.
pub fn loocv(data: &Dataset, clf: &mut dyn Classifier) -> CvResult {
    let n = data.len();
    let mut predictions = Vec::with_capacity(n);
    let mut drop = vec![false; n];
    for i in 0..n {
        drop[i] = true;
        let train = data.without_examples(&drop);
        drop[i] = false;
        clf.fit(&train);
        predictions.push(clf.predict(&data.x[i]));
    }
    result_from(predictions, &data.y)
}

/// Leave-one-*group*-out predictions (the Figure 4/5 protocol: when
/// compiling a benchmark, all of its loops are excluded from training).
/// `group` assigns each example to a group; `clf` is refitted once per
/// group with that group held out, and left fitted to the last fold.
pub fn logo_predictions(data: &Dataset, group: &[usize], clf: &mut dyn Classifier) -> Vec<usize> {
    assert_eq!(group.len(), data.len());
    let mut predictions = vec![0usize; data.len()];
    let mut groups: Vec<usize> = group.to_vec();
    groups.sort_unstable();
    groups.dedup();
    for g in groups {
        let drop: Vec<bool> = group.iter().map(|&gi| gi == g).collect();
        let train = data.without_examples(&drop);
        if train.is_empty() {
            continue;
        }
        clf.fit(&train);
        for i in 0..data.len() {
            if group[i] == g {
                predictions[i] = clf.predict(&data.x[i]);
            }
        }
    }
    predictions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::DEFAULT_RADIUS;

    fn clusters() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)].iter().enumerate() {
            for k in 0..6 {
                x.push(vec![cx + 0.2 * (k % 3) as f64, cy + 0.2 * (k / 3) as f64]);
                y.push(c);
            }
        }
        let n = x.len();
        Dataset::new(
            x,
            y,
            3,
            vec!["a".into(), "b".into()],
            (0..n).map(|i| format!("e{i}")).collect(),
        )
    }

    #[test]
    fn nn_loocv_high_on_separable() {
        let r = loocv_nn(&clusters(), DEFAULT_RADIUS);
        assert!(r.accuracy >= 0.9, "{}", r.accuracy);
        assert_eq!(r.predictions.len(), 18);
    }

    #[test]
    fn svm_loocv_high_on_separable() {
        let r = loocv_svm(&clusters(), SvmParams::default());
        assert!(r.accuracy >= 0.9, "{}", r.accuracy);
    }

    #[test]
    fn generic_matches_nn_fast_path() {
        let d = clusters();
        let fast = loocv_nn(&d, DEFAULT_RADIUS);
        let slow = loocv(&d, &mut NearNeighbors::new(DEFAULT_RADIUS));
        assert_eq!(fast.predictions, slow.predictions);
    }

    #[test]
    fn logo_excludes_whole_groups() {
        let d = clusters();
        // Each cluster its own group: training never sees the cluster, so
        // accuracy collapses — proving the group really was excluded.
        let group: Vec<usize> = d.y.clone();
        let preds = logo_predictions(&d, &group, &mut NearNeighbors::new(DEFAULT_RADIUS));
        let correct = preds.iter().zip(&d.y).filter(|(p, y)| p == y).count();
        assert_eq!(correct, 0, "held-out clusters must be unpredictable");
    }

    #[test]
    fn accuracy_is_a_fraction() {
        let r = loocv_nn(&clusters(), DEFAULT_RADIUS);
        assert!((0.0..=1.0).contains(&r.accuracy));
    }
}
