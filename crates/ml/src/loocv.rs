//! Leave-one-out cross validation (paper §4.2).
//!
//! LOOCV is the accuracy methodology of the paper: train on N−1 examples,
//! classify the held-out one, repeat N times. For the two classifiers we
//! care about there are fast exact(-leaning) paths — NN supports
//! exclusion at query time, and the SVM only changes when a support
//! vector is removed — plus a fully generic path for arbitrary
//! classifiers.
//!
//! Every fold is a pure function of the dataset, so all three entry
//! points fan folds out across [`loopml_rt::par_map`] workers
//! (`LOOPML_THREADS` overrides the count) with results bit-identical to
//! a serial run: the pool changes *when* a fold runs, never what it
//! computes or where its prediction lands. The generic path hands each
//! worker a [`Classifier::fresh`] copy of the prototype classifier and
//! one scratch training set reused across that worker's folds
//! ([`Dataset::copy_excluding_into`]), so the per-fold dataset clone of
//! the naive implementation disappears.

use crate::classify::Classifier;
use crate::dataset::Dataset;
use crate::nn::NearNeighbors;
use crate::svm::{MulticlassSvm, SvmParams};
use loopml_rt::{num_threads, par_map_threads};

/// Result of a cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Predicted label for each example when it was held out.
    pub predictions: Vec<usize>,
    /// Fraction of held-out examples classified correctly.
    pub accuracy: f64,
}

fn result_from(predictions: Vec<usize>, truth: &[usize]) -> CvResult {
    let correct = predictions
        .iter()
        .zip(truth)
        .filter(|(p, y)| p == y)
        .count();
    let accuracy = if truth.is_empty() {
        0.0
    } else {
        correct as f64 / truth.len() as f64
    };
    CvResult {
        predictions,
        accuracy,
    }
}

/// Splits `0..n` into at most `parts` contiguous, balanced ranges. The
/// partition only affects which worker computes which folds, never the
/// folds' results, so any `parts` yields identical predictions.
fn fold_blocks(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut blocks = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        blocks.push(start..start + len);
        start += len;
    }
    blocks
}

/// An empty dataset to use as a reusable scratch training set.
fn scratch_dataset() -> Dataset {
    Dataset {
        x: Vec::new(),
        y: Vec::new(),
        classes: 0,
        feature_names: Vec::new(),
        example_names: Vec::new(),
    }
}

/// LOOCV for radius near neighbors: exact, via query-time exclusion.
/// Queries run in parallel. Already streaming: each fold touches only
/// the fitted model's rows, so there is no n×n buffer to tile.
pub fn loocv_nn(data: &Dataset, radius: f64) -> CvResult {
    loocv_nn_threads(data, radius, num_threads())
}

/// [`loocv_nn`] with an explicit worker count (used by the equivalence
/// tests and the scaled perf stages to pin the fan-out). Folds are
/// batched into contiguous blocks — one scheduling unit per worker
/// instead of one per query — which matters once the corpus scales to
/// tens of thousands of loops; predictions are position-indexed, so any
/// block partition reassembles to the identical result.
pub fn loocv_nn_threads(data: &Dataset, radius: f64, threads: usize) -> CvResult {
    let nn = NearNeighbors::fit(data, radius);
    let blocks = fold_blocks(data.len(), threads);
    let per_block: Vec<Vec<usize>> = par_map_threads(threads, &blocks, |block| {
        block
            .clone()
            .map(|i| nn.predict_excluding(&data.x[i], i).label)
            .collect()
    });
    result_from(per_block.concat(), &data.y)
}

/// LOOCV for the multi-class SVM: exact for examples that are not support
/// vectors, warm-start re-converged otherwise. Both the one-vs-rest
/// training and the per-example folds run in parallel.
pub fn loocv_svm(data: &Dataset, params: SvmParams) -> CvResult {
    let svm = MulticlassSvm::fit(data, params);
    result_from(svm.loo_predictions(), &data.y)
}

/// Generic LOOCV: trains a [`Classifier::fresh`] copy of `clf` on the
/// N−1 remaining examples for every fold. Use only for small datasets or
/// cheap classifiers; the fast paths above avoid the N retrains. Folds
/// run in parallel, bit-identical to a serial run; `clf` itself is never
/// mutated.
pub fn loocv(data: &Dataset, clf: &dyn Classifier) -> CvResult {
    loocv_threads(data, clf, num_threads())
}

/// [`loocv`] with an explicit worker count (used by the equivalence tests
/// to force serial vs. multi-threaded execution).
pub fn loocv_threads(data: &Dataset, clf: &dyn Classifier, threads: usize) -> CvResult {
    let blocks = fold_blocks(data.len(), threads);
    let per_block: Vec<Vec<usize>> = par_map_threads(threads, &blocks, |block| {
        let mut model = clf.fresh();
        let mut train = scratch_dataset();
        block
            .clone()
            .map(|i| {
                data.copy_excluding_into(i, &mut train);
                model.fit(&train);
                model.predict(&data.x[i])
            })
            .collect()
    });
    result_from(per_block.concat(), &data.y)
}

/// Leave-one-*group*-out predictions (the Figure 4/5 protocol: when
/// compiling a benchmark, all of its loops are excluded from training).
/// `group` assigns each example to a group; a [`Classifier::fresh`] copy
/// of `clf` is fitted once per group with that group held out, with the
/// groups processed in parallel (bit-identical to serial). Groups whose
/// exclusion would empty the training set predict class 0.
pub fn logo_predictions(data: &Dataset, group: &[usize], clf: &dyn Classifier) -> Vec<usize> {
    logo_predictions_threads(data, group, clf, num_threads())
}

/// [`logo_predictions`] with an explicit worker count (used by the
/// equivalence tests to force serial vs. multi-threaded execution).
pub fn logo_predictions_threads(
    data: &Dataset,
    group: &[usize],
    clf: &dyn Classifier,
    threads: usize,
) -> Vec<usize> {
    assert_eq!(group.len(), data.len());
    let mut groups: Vec<usize> = group.to_vec();
    groups.sort_unstable();
    groups.dedup();
    let per_group: Vec<Vec<(usize, usize)>> = par_map_threads(threads, &groups, |&g| {
        let members: Vec<usize> = (0..data.len()).filter(|&i| group[i] == g).collect();
        let drop: Vec<bool> = group.iter().map(|&gi| gi == g).collect();
        let train = data.without_examples(&drop);
        if train.is_empty() {
            return members.into_iter().map(|i| (i, 0)).collect();
        }
        let mut model = clf.fresh();
        model.fit(&train);
        members
            .into_iter()
            .map(|i| (i, model.predict(&data.x[i])))
            .collect()
    });
    let mut predictions = vec![0usize; data.len()];
    for (i, p) in per_group.into_iter().flatten() {
        predictions[i] = p;
    }
    predictions
}

/// Leave-one-group-out *accuracy* of `clf`: the fraction of examples
/// predicted correctly by [`logo_predictions`]. The scalar the
/// hyperparameter sweep ranks every model-family cell by.
pub fn logo_accuracy(data: &Dataset, group: &[usize], clf: &dyn Classifier) -> f64 {
    logo_accuracy_threads(data, group, clf, num_threads())
}

/// [`logo_accuracy`] with an explicit worker count.
pub fn logo_accuracy_threads(
    data: &Dataset,
    group: &[usize],
    clf: &dyn Classifier,
    threads: usize,
) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let preds = logo_predictions_threads(data, group, clf, threads);
    let correct = preds.iter().zip(&data.y).filter(|(p, y)| p == y).count();
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::DEFAULT_RADIUS;

    fn clusters() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)].iter().enumerate() {
            for k in 0..6 {
                x.push(vec![cx + 0.2 * (k % 3) as f64, cy + 0.2 * (k / 3) as f64]);
                y.push(c);
            }
        }
        let n = x.len();
        Dataset::new(
            x,
            y,
            3,
            vec!["a".into(), "b".into()],
            (0..n).map(|i| format!("e{i}")).collect(),
        )
    }

    #[test]
    fn nn_loocv_high_on_separable() {
        let r = loocv_nn(&clusters(), DEFAULT_RADIUS);
        assert!(r.accuracy >= 0.9, "{}", r.accuracy);
        assert_eq!(r.predictions.len(), 18);
    }

    #[test]
    fn svm_loocv_high_on_separable() {
        let r = loocv_svm(&clusters(), SvmParams::default());
        assert!(r.accuracy >= 0.9, "{}", r.accuracy);
    }

    #[test]
    fn generic_matches_nn_fast_path() {
        let d = clusters();
        let fast = loocv_nn(&d, DEFAULT_RADIUS);
        let slow = loocv(&d, &NearNeighbors::new(DEFAULT_RADIUS));
        assert_eq!(fast.predictions, slow.predictions);
    }

    #[test]
    fn logo_excludes_whole_groups() {
        let d = clusters();
        // Each cluster its own group: training never sees the cluster, so
        // accuracy collapses — proving the group really was excluded.
        let group: Vec<usize> = d.y.clone();
        let preds = logo_predictions(&d, &group, &NearNeighbors::new(DEFAULT_RADIUS));
        let correct = preds.iter().zip(&d.y).filter(|(p, y)| p == y).count();
        assert_eq!(correct, 0, "held-out clusters must be unpredictable");
    }

    #[test]
    fn accuracy_is_a_fraction() {
        let r = loocv_nn(&clusters(), DEFAULT_RADIUS);
        assert!((0.0..=1.0).contains(&r.accuracy));
    }

    #[test]
    fn fold_blocks_cover_everything_in_order() {
        for n in [0usize, 1, 5, 18, 100] {
            for parts in [1usize, 2, 3, 4, 7, 200] {
                let blocks = fold_blocks(n, parts);
                let flat: Vec<usize> = blocks.iter().flat_map(|b| b.clone()).collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn nn_loocv_blocked_matches_every_thread_count() {
        let d = clusters();
        let serial = loocv_nn_threads(&d, DEFAULT_RADIUS, 1);
        for threads in [2, 4, 7] {
            assert_eq!(
                serial,
                loocv_nn_threads(&d, DEFAULT_RADIUS, threads),
                "diverged at {threads} threads"
            );
        }
        assert_eq!(serial, loocv_nn(&d, DEFAULT_RADIUS));
    }

    #[test]
    fn parallel_loocv_is_bit_identical_to_serial() {
        // The determinism contract mirrored from parallel labeling: any
        // thread count must reproduce the serial fold-by-fold reference
        // exactly — predictions, order, accuracy.
        let d = clusters();
        let nn = NearNeighbors::new(DEFAULT_RADIUS);
        let svm = MulticlassSvm::new(SvmParams::default());
        for clf in [&nn as &dyn Classifier, &svm as &dyn Classifier] {
            let serial = loocv_threads(&d, clf, 1);
            for threads in [2, 4] {
                assert_eq!(
                    serial,
                    loocv_threads(&d, clf, threads),
                    "{} diverged at {threads} threads",
                    clf.name()
                );
            }
            // And through the default (env/core-count) entry point.
            assert_eq!(serial, loocv(&d, clf));
        }
    }

    #[test]
    fn logo_accuracy_counts_correct_predictions() {
        let d = clusters();
        let group: Vec<usize> = (0..d.len()).map(|i| i % 2).collect();
        let nn = NearNeighbors::new(DEFAULT_RADIUS);
        let preds = logo_predictions(&d, &group, &nn);
        let correct = preds.iter().zip(&d.y).filter(|(p, y)| p == y).count();
        let expected = correct as f64 / d.len() as f64;
        assert_eq!(logo_accuracy(&d, &group, &nn), expected);
        for threads in [1, 4] {
            assert_eq!(logo_accuracy_threads(&d, &group, &nn, threads), expected);
        }
    }

    #[test]
    fn parallel_logo_is_bit_identical_to_serial() {
        let d = clusters();
        let group: Vec<usize> = (0..d.len()).map(|i| i % 5).collect();
        let nn = NearNeighbors::new(DEFAULT_RADIUS);
        let serial = logo_predictions_threads(&d, &group, &nn, 1);
        for threads in [2, 4] {
            assert_eq!(
                serial,
                logo_predictions_threads(&d, &group, &nn, threads),
                "diverged at {threads} threads"
            );
        }
        assert_eq!(serial, logo_predictions(&d, &group, &nn));
    }
}
