//! Bagged forest of deterministic CART trees.
//!
//! Bootstrap aggregation over [`DecisionTree`]: each member tree trains
//! on an n-of-n sample drawn *with replacement* from the training set,
//! and prediction is a majority vote with ties broken toward the
//! smallest class index. The resample for tree `t` comes from its own
//! [`loopml_rt::Rng`] stream seeded by `seed` and `t` alone — never by
//! execution order — so fitting is bit-identical however the trees are
//! scheduled, and refits of the same data reproduce the same forest
//! exactly. Trees are fitted sequentially: the callers that parallelize
//! (LOOCV, LOGO, the sweep) already fan out across folds, and a nested
//! pool would add scheduling without adding work.

use crate::classify::{expect_kind, Classifier};
use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeParams};
use loopml_rt::{Json, Rng};

/// Hyperparameters of a [`BaggedForest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestParams {
    /// Number of bootstrap trees.
    pub trees: usize,
    /// Hyperparameters of every member tree.
    pub tree: TreeParams,
    /// Seed of the bootstrap streams (tree `t` uses a stream derived
    /// from `seed` and `t`).
    pub seed: u64,
}

impl Default for ForestParams {
    /// 16 default trees — enough for the vote to stabilize on the
    /// paper-scale corpus while keeping LOGO sweeps cheap.
    fn default() -> Self {
        ForestParams {
            trees: 16,
            tree: TreeParams::default(),
            seed: 0x666f_7265,
        }
    }
}

impl ForestParams {
    /// Serializes the hyperparameters.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("trees", Json::Num(self.trees as f64)),
            ("tree", self.tree.to_json()),
            ("seed", Json::Num(self.seed as f64)),
        ])
    }

    /// Parses hyperparameters written by [`to_json`](Self::to_json).
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let trees = doc
            .get("trees")
            .and_then(Json::as_num)
            .filter(|v| *v >= 1.0 && v.fract() == 0.0)
            .map(|v| v as usize)
            .ok_or("forest params have no positive tree count")?;
        let tree =
            TreeParams::from_json(doc.get("tree").ok_or("forest params have no tree block")?)?;
        let seed = doc
            .get("seed")
            .and_then(Json::as_num)
            .filter(|v| *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64)
            .map(|v| v as u64)
            .ok_or("forest params have no whole seed")?;
        Ok(ForestParams { trees, tree, seed })
    }
}

/// A bootstrap-aggregated ensemble of [`DecisionTree`]s.
#[derive(Debug, Clone)]
pub struct BaggedForest {
    params: ForestParams,
    members: Vec<DecisionTree>,
    classes: usize,
}

impl BaggedForest {
    /// An *unfitted* forest carrying only its hyperparameters; call
    /// [`Classifier::fit`] before use. Until then it predicts class 0.
    ///
    /// # Panics
    ///
    /// Panics if `trees` is zero or `tree.min_leaf` is zero.
    pub fn new(params: ForestParams) -> Self {
        assert!(params.trees >= 1, "a forest needs at least one tree");
        assert!(params.tree.min_leaf >= 1, "min_leaf must be at least 1");
        BaggedForest {
            params,
            members: Vec::new(),
            classes: 0,
        }
    }

    /// Trains the forest: one bootstrap resample and one tree per member.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(data: &Dataset, params: ForestParams) -> Self {
        let mut forest = BaggedForest::new(params);
        assert!(!data.is_empty(), "cannot fit to an empty dataset");
        let n = data.len();
        forest.classes = data.classes;
        forest.members = (0..params.trees)
            .map(|t| {
                // Seed depends on (seed, t) only: tree t's sample is the
                // same whether the forest is fitted alone or inside a
                // parallel cross-validation fold.
                let mut rng = Rng::seed_from_u64(
                    params.seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                let pick: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                let boot = Dataset::new(
                    pick.iter().map(|&i| data.x[i].clone()).collect(),
                    pick.iter().map(|&i| data.y[i]).collect(),
                    data.classes,
                    data.feature_names.clone(),
                    pick.iter()
                        .map(|&i| data.example_names[i].clone())
                        .collect(),
                );
                DecisionTree::fit(&boot, params.tree)
            })
            .collect();
        forest
    }

    /// Number of fitted member trees (0 before the first fit).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` until the first fit.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The hyperparameters this forest was constructed with.
    pub fn params(&self) -> ForestParams {
        self.params
    }
}

impl Classifier for BaggedForest {
    fn fit(&mut self, data: &Dataset) {
        *self = BaggedForest::fit(data, self.params);
    }

    fn predict(&self, x: &[f64]) -> usize {
        if self.members.is_empty() {
            return 0;
        }
        let mut votes = vec![0u64; self.classes.max(1)];
        for tree in &self.members {
            let c = tree.predict(x);
            if c < votes.len() {
                votes[c] += 1;
            }
        }
        // Majority with ties toward the smallest class, mirroring the
        // member trees' own tie-break.
        let mut best = 0usize;
        for (c, &v) in votes.iter().enumerate() {
            if v > votes[best] {
                best = c;
            }
        }
        best
    }

    fn name(&self) -> &str {
        "Forest"
    }

    fn fresh(&self) -> Box<dyn Classifier> {
        Box::new(BaggedForest::new(self.params))
    }

    fn save(&self) -> Json {
        Json::obj([
            ("kind", Json::Str("Forest".into())),
            ("params", self.params.to_json()),
            ("classes", Json::Num(self.classes as f64)),
            (
                "members",
                Json::Arr(self.members.iter().map(Classifier::save).collect()),
            ),
        ])
    }

    fn load(&mut self, state: &Json) -> Result<(), String> {
        expect_kind(state, "Forest")?;
        let params =
            ForestParams::from_json(state.get("params").ok_or("Forest state has no params")?)?;
        let classes = state
            .get("classes")
            .and_then(Json::as_num)
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .map(|v| v as usize)
            .ok_or("Forest state has no class count")?;
        let raw = state
            .get("members")
            .and_then(Json::as_arr)
            .ok_or("Forest state has no members")?;
        let mut members = Vec::with_capacity(raw.len());
        for doc in raw {
            let mut tree = DecisionTree::new(params.tree);
            tree.load(doc)
                .map_err(|e| format!("Forest member failed to load: {e}"))?;
            members.push(tree);
        }
        *self = BaggedForest {
            params,
            members,
            classes,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)].iter().enumerate() {
            for k in 0..6 {
                x.push(vec![cx + 0.2 * (k % 3) as f64, cy + 0.2 * (k / 3) as f64]);
                y.push(c);
            }
        }
        let n = x.len();
        Dataset::new(
            x,
            y,
            3,
            vec!["a".into(), "b".into()],
            (0..n).map(|i| format!("e{i}")).collect(),
        )
    }

    #[test]
    fn learns_separable_clusters() {
        let d = clusters();
        let forest = BaggedForest::fit(&d, ForestParams::default());
        assert_eq!(forest.len(), 16);
        for (x, &y) in d.x.iter().zip(&d.y) {
            assert_eq!(Classifier::predict(&forest, x), y);
        }
    }

    #[test]
    fn refit_is_deterministic() {
        let d = clusters();
        let a = BaggedForest::fit(&d, ForestParams::default());
        let b = BaggedForest::fit(&d, ForestParams::default());
        assert_eq!(a.save().to_string(), b.save().to_string());
    }

    #[test]
    fn different_seeds_draw_different_bootstraps() {
        let d = clusters();
        let a = BaggedForest::fit(&d, ForestParams::default());
        let b = BaggedForest::fit(
            &d,
            ForestParams {
                seed: 1234,
                ..ForestParams::default()
            },
        );
        assert_ne!(a.save().to_string(), b.save().to_string());
    }

    #[test]
    fn unfitted_predicts_zero() {
        let forest = BaggedForest::new(ForestParams::default());
        assert_eq!(Classifier::predict(&forest, &[1.0, 2.0]), 0);
    }

    #[test]
    fn save_load_round_trips_bitwise() {
        let d = clusters();
        let forest = BaggedForest::fit(
            &d,
            ForestParams {
                trees: 5,
                ..ForestParams::default()
            },
        );
        let state = forest.save();
        let reparsed = Json::parse(&state.to_string()).expect("valid JSON");
        let mut copy = BaggedForest::new(ForestParams::default());
        copy.load(&reparsed).expect("load");
        assert_eq!(copy.len(), 5);
        for x in &d.x {
            assert_eq!(
                Classifier::predict(&copy, x),
                Classifier::predict(&forest, x)
            );
        }
    }

    #[test]
    fn load_rejects_malformed_states() {
        let d = clusters();
        let forest = BaggedForest::fit(
            &d,
            ForestParams {
                trees: 2,
                ..ForestParams::default()
            },
        );
        let good = forest.save().to_string();
        let mut victim = BaggedForest::new(ForestParams::default());
        for bad in [
            good.replace("\"kind\":\"Forest\"", "\"kind\":\"Tree\""),
            good.replace("\"trees\":2", "\"trees\":0"),
            good.replace("\"kind\":\"Tree\"", "\"kind\":\"NN\""),
        ] {
            let doc = Json::parse(&bad).expect("still JSON");
            assert!(victim.load(&doc).is_err(), "should reject: {bad}");
        }
        assert!(victim.is_empty(), "failed loads must not mutate");
    }
}
