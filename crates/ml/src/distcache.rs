//! Incremental pairwise-distance caching — the algebra that makes greedy
//! feature selection and kernel re-computation cheap.
//!
//! Squared Euclidean distance over a feature subset `S` is *additive
//! across features*:
//!
//! ```text
//! dist2_S(i, j) = Σ_{f ∈ S} (x[i][f] − x[j][f])²
//! ```
//!
//! so the n×n distance matrix of `S ∪ {f}` is the matrix of `S` plus
//! feature `f`'s own n×n contribution. [`FeatureDistCache`] exploits
//! this: it normalizes the data once and keeps each feature's normalized
//! column — an exact rank-1 factoring of that feature's contribution
//! matrix (`(col[i] − col[j])²`) — so greedy forward selection evaluates
//! every candidate subset `S ∪ {f}` with an O(n²) accumulate instead of
//! an O(n²·|S|) recompute.
//!
//! The columns are deliberately *not* expanded into dense per-feature
//! matrices: at full-corpus scale those are `d·n²·8 ≈ 3.6 GB` and every
//! greedy sweep streams them from DRAM, which measures *slower* than
//! recomputing `(col[i] − col[j])²` on the fly from the ~1 MB of columns
//! that stay resident in L2 (one subtract and multiply per pair versus a
//! DRAM load). See DESIGN.md §8 for the measurements.
//!
//! Min-max normalization is per-column, so normalizing the full dataset
//! once yields bitwise the same columns as normalizing any
//! `select_features` subset — the cached contributions are exact for
//! every subset.
//!
//! [`DistanceMatrix`] is the companion full-subset cache: compute the
//! pairwise distances once, then derive an RBF kernel for *any* gamma via
//! [`crate::KernelCache::from_distances`] without re-touching feature
//! vectors (the enabler for gamma sweeps).

use crate::dataset::{dist2, Dataset, MinMaxNormalizer};
use loopml_rt::par_map_threads;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global count of [`DistanceMatrix::compute`] invocations. The
/// sweep subsystem's whole premise is "one distance pass, many kernels";
/// this counter turns that claim into something a test (and the `repro
/// sweep` report) can assert instead of trusting.
static BUILDS: AtomicU64 = AtomicU64::new(0);

/// Number of pairwise distance-matrix builds performed by this process so
/// far. Monotonic; callers snapshot it before a sweep and assert the
/// delta (the counter is process-global, so absolute values are
/// meaningless in a multi-test process).
pub fn distance_builds() -> u64 {
    BUILDS.load(Ordering::Relaxed)
}

/// Counts one streaming distance pass toward [`distance_builds`]. The
/// streaming sweep touches every pair exactly once without materializing
/// a [`DistanceMatrix`], so it still counts as one build — the "one
/// distance pass, many kernels" invariant the sweep gate asserts.
pub(crate) fn record_streaming_build() {
    BUILDS.fetch_add(1, Ordering::Relaxed);
}

/// Live bytes currently held in pairwise-distance buffers (dense
/// matrices, greedy base matrices, streaming tiles).
static CUR_BYTES: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`CUR_BYTES`] since the last reset.
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// High-water mark, in bytes, of concurrently-live pairwise-distance
/// buffers since the last [`reset_distance_bytes`]. This is the number
/// the scaling gate bounds: tiled/streaming evaluation keeps it at
/// `workers · tile_rows · n · 8` instead of `n² · 8`.
pub fn peak_distance_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Zeroes the live/peak distance-buffer accounting. Call at a
/// measurement boundary (buffers created before the reset are no longer
/// counted when they drop — the counters saturate at zero rather than
/// underflow).
pub fn reset_distance_bytes() {
    CUR_BYTES.store(0, Ordering::Relaxed);
    PEAK_BYTES.store(0, Ordering::Relaxed);
}

/// RAII accounting for one distance buffer: registers `bytes` as live on
/// creation (bumping the peak), releases them on drop.
pub(crate) struct DistAlloc(u64);

impl DistAlloc {
    pub(crate) fn new(bytes: u64) -> Self {
        let cur = CUR_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
        PEAK_BYTES.fetch_max(cur, Ordering::Relaxed);
        DistAlloc(bytes)
    }
}

impl Drop for DistAlloc {
    fn drop(&mut self) {
        // Saturating: a reset between creation and drop zeroed CUR.
        let _ = CUR_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
            Some(c.saturating_sub(self.0))
        });
    }
}

/// Live bytes currently held in RBF kernel buffers (full per-gamma
/// matrices and the streaming sweep's kernel strips) — the *other*
/// quadratic resident, called out in ROADMAP as the largest matrices the
/// sweep keeps. Tracked by the same RAII discipline as the distance
/// buffers so the scaling gate accounts for every n×n allocation, not
/// just distances.
static KERNEL_CUR: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`KERNEL_CUR`] since the last reset.
static KERNEL_PEAK: AtomicU64 = AtomicU64::new(0);

/// High-water mark, in bytes, of concurrently-live RBF kernel buffers
/// since the last [`reset_kernel_bytes`]. Reported as
/// `peak_kernel_bytes` in `BENCH_ml.json`, where the scaling gate bounds
/// it — a budget claim over distance bytes alone is vacuous if per-gamma
/// kernels dwarf it unobserved.
pub fn peak_kernel_bytes() -> u64 {
    KERNEL_PEAK.load(Ordering::Relaxed)
}

/// Zeroes the live/peak kernel-buffer accounting, mirroring
/// [`reset_distance_bytes`] (same saturating-drop semantics for buffers
/// that straddle the reset).
pub fn reset_kernel_bytes() {
    KERNEL_CUR.store(0, Ordering::Relaxed);
    KERNEL_PEAK.store(0, Ordering::Relaxed);
}

/// RAII accounting for one kernel buffer: registers `bytes` as live on
/// creation (bumping the kernel peak), releases them on drop. Cloning
/// registers a second allocation — a cloned `KernelCache` really does
/// hold a second n×n buffer.
#[derive(Debug)]
pub(crate) struct KernelAlloc(u64);

impl KernelAlloc {
    pub(crate) fn new(bytes: u64) -> Self {
        let cur = KERNEL_CUR.fetch_add(bytes, Ordering::Relaxed) + bytes;
        KERNEL_PEAK.fetch_max(cur, Ordering::Relaxed);
        KernelAlloc(bytes)
    }
}

impl Clone for KernelAlloc {
    fn clone(&self) -> Self {
        KernelAlloc::new(self.0)
    }
}

impl Drop for KernelAlloc {
    fn drop(&mut self) {
        // Saturating: a reset between creation and drop zeroed CUR.
        let _ = KERNEL_CUR.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
            Some(c.saturating_sub(self.0))
        });
    }
}

/// Default budget a full n×n distance buffer may occupy before the ML
/// hot paths switch to tiled/streaming evaluation: 256 MiB.
pub const DEFAULT_TILE_BUDGET_BYTES: u64 = 256 * 1024 * 1024;

/// The distance-buffer budget in bytes. `LOOPML_TILE_BYTES` overrides
/// the default (invalid or zero values fall back silently — the budget
/// only selects an execution strategy, every strategy is bit-identical).
pub fn tile_budget_bytes() -> u64 {
    match std::env::var("LOOPML_TILE_BYTES") {
        Ok(s) => s
            .trim()
            .parse()
            .ok()
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_TILE_BUDGET_BYTES),
        Err(_) => DEFAULT_TILE_BUDGET_BYTES,
    }
}

/// Tile height (rows per strip) such that `threads` concurrent strip
/// buffers of `tile_rows × n` stay within the [`tile_budget_bytes`]
/// budget. At least 1 (a single row is the smallest streamable unit),
/// at most `n`.
pub fn tile_rows_for(n: usize, threads: usize) -> usize {
    let workers = threads.max(1) as u64;
    let row_bytes = 8 * n.max(1) as u64;
    let per_worker = tile_budget_bytes() / workers / row_bytes;
    (per_worker as usize).clamp(1, n.max(1))
}

/// Full pairwise squared-distance matrix over a set of rows, stored flat
/// row-major (`d2[i * n + j]`).
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    d2: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes all pairwise squared distances (symmetric; each pair is
    /// computed once and mirrored).
    pub fn compute(xs: &[Vec<f64>]) -> Self {
        BUILDS.fetch_add(1, Ordering::Relaxed);
        let n = xs.len();
        // Record the dense buffer against the peak tracker. The matrix
        // outlives this function, so the bytes are registered as a
        // transient high-water bump rather than held live (callers that
        // care about sustained footprint use the streaming paths, which
        // account their tiles with RAII guards).
        drop(DistAlloc::new((n * n * 8) as u64));
        let mut d2 = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = dist2(&xs[i], &xs[j]);
                d2[i * n + j] = v;
                d2[j * n + i] = v;
            }
        }
        DistanceMatrix { n, d2 }
    }

    /// Number of rows.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Squared distance between rows `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.d2[i * self.n + j]
    }

    /// Row `i` of the matrix: squared distances from `i` to every row.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.d2[i * self.n..(i + 1) * self.n]
    }
}

/// Per-feature pairwise squared-distance contributions over a normalized
/// dataset, plus the labels — everything the leave-self-out 1-NN greedy
/// criterion needs.
///
/// Each feature's contribution matrix is held in factored form as its
/// normalized column (`(col[i] − col[j])²` on demand); the full column
/// set is `d · n · 8` bytes and stays cache-resident even at corpus
/// scale, so deriving a contribution costs one subtract-multiply per
/// pair instead of a DRAM load from a dense `d · n²` expansion.
#[derive(Debug, Clone)]
pub struct FeatureDistCache {
    n: usize,
    d: usize,
    /// Normalized feature columns, column-major: `cols[f * n + i]`.
    cols: Vec<f64>,
    labels: Vec<usize>,
}

impl FeatureDistCache {
    /// Normalizes `data` (per-column min-max, exactly as every classifier
    /// in this crate does) and caches the per-feature columns.
    pub fn fit(data: &Dataset) -> Self {
        let n = data.len();
        let d = data.dims();
        let mut cols = vec![0.0; d * n];
        if n > 0 {
            let norm = MinMaxNormalizer::fit(&data.x);
            let xs = norm.transform(&data.x);
            for (i, row) in xs.iter().enumerate() {
                for (f, &v) in row.iter().enumerate() {
                    cols[f * n + i] = v;
                }
            }
        }
        FeatureDistCache {
            n,
            d,
            cols,
            labels: data.y.clone(),
        }
    }

    /// Number of examples.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of features.
    pub fn dims(&self) -> usize {
        self.d
    }

    /// Adds feature `f`'s pairwise contribution into `base` (a flat n×n
    /// matrix): afterwards `base[i*n+j] += (x[i][f] − x[j][f])²`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range or `base` has the wrong length.
    pub fn accumulate(&self, f: usize, base: &mut [f64]) {
        assert!(f < self.d, "feature index out of range");
        assert_eq!(base.len(), self.n * self.n, "base must be n×n");
        let col = &self.cols[f * self.n..(f + 1) * self.n];
        for i in 0..self.n {
            let ci = col[i];
            let row = &mut base[i * self.n..(i + 1) * self.n];
            for (b, &cj) in row.iter_mut().zip(col) {
                let d = ci - cj;
                *b += d * d;
            }
        }
    }

    /// Leave-self-out 1-NN training error of the subset `S ∪ {f}`, where
    /// `base` is the accumulated distance matrix of `S` (all zeros for
    /// the empty set). O(n²), no allocation: the candidate's contribution
    /// is fused into the nearest-neighbor scan instead of being written
    /// anywhere. Nearest-neighbor ties break toward the lower index,
    /// exactly like [`crate::nn1_training_error`]'s scan.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range or `base` has the wrong length.
    pub fn nn1_error_with(&self, base: &[f64], f: usize) -> f64 {
        assert!(f < self.d, "feature index out of range");
        assert_eq!(base.len(), self.n * self.n, "base must be n×n");
        let n = self.n;
        if n < 2 {
            return 1.0;
        }
        let col = &self.cols[f * n..(f + 1) * n];
        let mut errors = 0usize;
        for i in 0..n {
            let brow = &base[i * n..(i + 1) * n];
            let mut best = (f64::INFINITY, 0usize);
            let ci = col[i];
            for j in 0..n {
                if j == i {
                    continue;
                }
                let d = ci - col[j];
                let d2 = brow[j] + d * d;
                if d2 < best.0 {
                    best = (d2, j);
                }
            }
            if self.labels[best.1] != self.labels[i] {
                errors += 1;
            }
        }
        errors as f64 / n as f64
    }

    /// Leave-self-out 1-NN training errors of every candidate subset
    /// `S ∪ {f}`, `f` over `candidates`, in one fused sweep — the hot
    /// loop of greedy forward selection. Equivalent to calling
    /// [`nn1_error_with`](Self::nn1_error_with) per candidate but far
    /// faster: each example's accumulated-distance row is read once and
    /// scanned for all candidates while it is cache-hot, with a 4-lane
    /// argmin instead of a branchy per-pair function call. Work is
    /// parallelized over contiguous example blocks; error counts are
    /// integers, so any block partition sums to the same result and the
    /// output is bit-identical for every `threads` value.
    ///
    /// # Panics
    ///
    /// Panics if any candidate is out of range or `base` has the wrong
    /// length.
    pub fn nn1_errors_batch(&self, base: &[f64], candidates: &[usize], threads: usize) -> Vec<f64> {
        assert_eq!(base.len(), self.n * self.n, "base must be n×n");
        for &f in candidates {
            assert!(f < self.d, "feature index out of range");
        }
        let n = self.n;
        if n < 2 {
            return vec![1.0; candidates.len()];
        }
        let workers = threads.max(1).min(n);
        let blocks: Vec<(usize, usize)> = (0..workers)
            .map(|w| {
                let lo = w * n / workers;
                let hi = (w + 1) * n / workers;
                (lo, hi)
            })
            .filter(|(lo, hi)| lo < hi)
            .collect();
        let counts = par_map_threads(threads, &blocks, |&(lo, hi)| {
            let mut errs = vec![0u32; candidates.len()];
            for i in lo..hi {
                let brow = &base[i * n..(i + 1) * n];
                self.scan_row_candidates(brow, i, candidates, &mut errs);
            }
            errs
        });
        Self::sum_error_counts(counts, candidates.len(), n)
    }

    /// Tiled sibling of [`nn1_errors_batch`](Self::nn1_errors_batch):
    /// instead of reading a caller-held n×n accumulated matrix, each
    /// worker materializes only a `tile_rows × n` strip of it (the
    /// selected features' contributions re-accumulated in selection
    /// order), scans the strip's rows for every candidate, and drops the
    /// strip — peak memory is `workers · tile_rows · n · 8` bytes
    /// instead of `n² · 8`.
    ///
    /// Bit-identical to the dense path at any `tile_rows` and any
    /// `threads`: every matrix element is an independent left-to-right
    /// sum over the selected features (the same operation sequence
    /// [`accumulate`](Self::accumulate) performs), and each row's argmin
    /// is the very same two-pass scan.
    ///
    /// # Panics
    ///
    /// Panics if `tile_rows` is zero or any feature index is out of
    /// range.
    pub fn nn1_errors_batch_tiled(
        &self,
        selected: &[usize],
        candidates: &[usize],
        tile_rows: usize,
        threads: usize,
    ) -> Vec<f64> {
        assert!(tile_rows > 0, "tile_rows must be positive");
        for &f in selected.iter().chain(candidates) {
            assert!(f < self.d, "feature index out of range");
        }
        let n = self.n;
        if n < 2 {
            return vec![1.0; candidates.len()];
        }
        let tile = tile_rows.min(n);
        let strips: Vec<(usize, usize)> = (0..n)
            .step_by(tile)
            .map(|lo| (lo, (lo + tile).min(n)))
            .collect();
        let counts = par_map_threads(threads, &strips, |&(lo, hi)| {
            let rows = hi - lo;
            let _acct = DistAlloc::new((rows * n * 8) as u64);
            let mut strip = vec![0.0f64; rows * n];
            // Accumulate the selected features in selection order — the
            // same per-element operation sequence the dense accumulate
            // performs, so every strip element is bitwise equal to the
            // corresponding dense matrix element.
            for &f in selected {
                let col = &self.cols[f * n..(f + 1) * n];
                for (r, i) in (lo..hi).enumerate() {
                    let ci = col[i];
                    let row = &mut strip[r * n..(r + 1) * n];
                    for (b, &cj) in row.iter_mut().zip(col) {
                        let d = ci - cj;
                        *b += d * d;
                    }
                }
            }
            let mut errs = vec![0u32; candidates.len()];
            for (r, i) in (lo..hi).enumerate() {
                let brow = &strip[r * n..(r + 1) * n];
                self.scan_row_candidates(brow, i, candidates, &mut errs);
            }
            errs
        });
        Self::sum_error_counts(counts, candidates.len(), n)
    }

    /// One example's contribution to every candidate's error count:
    /// finds `i`'s nearest neighbor under `S ∪ {f}` for each candidate
    /// `f` (via the shared two-pass argmin) and bumps the candidate's
    /// error if the labels differ. `brow` is row `i` of the accumulated
    /// matrix of `S` — whether it came from a dense buffer or a strip.
    fn scan_row_candidates(&self, brow: &[f64], i: usize, candidates: &[usize], errs: &mut [u32]) {
        let n = self.n;
        for (ci, &f) in candidates.iter().enumerate() {
            let col = &self.cols[f * n..(f + 1) * n];
            let ci_v = col[i];
            let lo = min_col_range(brow, col, ci_v, 0, i);
            let hi = min_col_range(brow, col, ci_v, i + 1, n);
            // `<=` sends exact cross-range ties to the first
            // range: the lowest index wins, just like the serial
            // ascending scan.
            let nearest = if lo <= hi {
                find_col(brow, col, ci_v, 0, i, lo)
            } else {
                find_col(brow, col, ci_v, i + 1, n, hi)
            };
            if self.labels[nearest] != self.labels[i] {
                errs[ci] += 1;
            }
        }
    }

    /// Sums per-block integer error counts and converts to error rates.
    /// Integer tallies make the result independent of the block
    /// partition, hence of `threads` and `tile_rows`.
    fn sum_error_counts(counts: Vec<Vec<u32>>, len: usize, n: usize) -> Vec<f64> {
        let mut total = vec![0u64; len];
        for block in counts {
            for (t, c) in total.iter_mut().zip(block) {
                *t += u64::from(c);
            }
        }
        total.into_iter().map(|e| e as f64 / n as f64).collect()
    }
}

/// Minimum of `brow[j] + (ci − col[j])²` over `j ∈ [lo, hi)` (`+∞` when
/// empty). Min-only on purpose: without index tracking the loop is a
/// pure arithmetic-and-min reduction the compiler vectorizes, and the
/// compare-select keeps the minimum equal to one of the computed values
/// exactly, so the winning index is recovered afterwards by an equality
/// scan ([`find_col`]) over the same values.
///
/// `inline(never)`: compiled standalone this is a clean packed-min loop;
/// inlined into the candidate sweep it merges with surrounding control
/// flow and loses half its throughput (measured ~2.5× slower on the
/// smoke corpus). The call overhead is amortized over an O(n) scan.
#[inline(never)]
fn min_col_range(brow: &[f64], col: &[f64], ci: f64, lo: usize, hi: usize) -> f64 {
    const LANES: usize = 4;
    let a = &brow[lo..hi];
    let c = &col[lo..hi];
    let chunks = a.len() / LANES * LANES;
    let mut mv = [f64::INFINITY; LANES];
    let mut k = 0;
    while k < chunks {
        for l in 0..LANES {
            // Compare-select rather than `f64::min`: identical for the
            // NaN-free sums here, and it compiles to the packed-min
            // instruction `f64::min`'s NaN handling blocks.
            let d = ci - c[k + l];
            let v = a[k + l] + d * d;
            mv[l] = if v < mv[l] { v } else { mv[l] };
        }
        k += LANES;
    }
    let mut m = mv[0].min(mv[1]).min(mv[2].min(mv[3]));
    for k in chunks..a.len() {
        let d = ci - c[k];
        m = m.min(a[k] + d * d);
    }
    m
}

/// First `j ∈ [lo, hi)` with `brow[j] + (ci − col[j])² == target` — the
/// lowest index attaining the minimum, the same winner a serial
/// ascending strict-`<` scan picks.
///
/// # Panics
///
/// Panics if no element equals `target` (impossible when `target` came
/// from [`min_col_range`] over the same range).
#[inline]
fn find_col(brow: &[f64], col: &[f64], ci: f64, lo: usize, hi: usize, target: f64) -> usize {
    (lo..hi)
        .find(|&j| {
            let d = ci - col[j];
            brow[j] + d * d == target
        })
        .expect("minimum came from this range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopml_rt::Rng;

    fn arb_dataset(rng: &mut Rng, n: usize, d: usize) -> Dataset {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-100.0..100.0)).collect())
            .collect();
        let y: Vec<usize> = (0..n).map(|_| rng.gen_range(0..4usize)).collect();
        Dataset::new(
            x,
            y,
            4,
            (0..d).map(|j| format!("f{j}")).collect(),
            (0..n).map(|i| format!("e{i}")).collect(),
        )
    }

    #[test]
    fn distance_matrix_matches_dist2() {
        let mut rng = Rng::seed_from_u64(7);
        let data = arb_dataset(&mut rng, 12, 5);
        let dm = DistanceMatrix::compute(&data.x);
        for i in 0..data.len() {
            for j in 0..data.len() {
                assert_eq!(
                    dm.get(i, j).to_bits(),
                    dist2(&data.x[i], &data.x[j]).to_bits()
                );
            }
            assert_eq!(dm.row(i)[i], 0.0);
        }
    }

    /// The incremental accumulate over random subsets must match a direct
    /// `dist2` over the subset's normalized columns (within FP
    /// reassociation tolerance — `dist2` sums lanes, the cache sums in
    /// selection order).
    #[test]
    fn accumulated_subsets_match_direct_dist2() {
        let mut rng = Rng::seed_from_u64(0xCAFE);
        for _ in 0..10 {
            let n = rng.gen_range(4..16usize);
            let d = rng.gen_range(2..9usize);
            let data = arb_dataset(&mut rng, n, d);
            let cache = FeatureDistCache::fit(&data);
            // Random subset, random order.
            let len = rng.gen_range(1..=d);
            let mut subset = Vec::new();
            while subset.len() < len {
                let f = rng.gen_range(0..d);
                if !subset.contains(&f) {
                    subset.push(f);
                }
            }
            let mut base = vec![0.0; n * n];
            for &f in &subset {
                cache.accumulate(f, &mut base);
            }
            let sub = data.select_features(&subset);
            let xs = MinMaxNormalizer::fit(&sub.x).transform(&sub.x);
            for i in 0..n {
                for j in 0..n {
                    let direct = dist2(&xs[i], &xs[j]);
                    let cached = base[i * n + j];
                    assert!(
                        (cached - direct).abs() <= 1e-9 * direct.max(1.0),
                        "subset {subset:?} ({i},{j}): cached {cached} vs direct {direct}"
                    );
                }
            }
        }
    }

    #[test]
    fn nn1_error_with_matches_reference() {
        use crate::feature_select::nn1_training_error;
        let mut rng = Rng::seed_from_u64(0x5EED);
        for _ in 0..10 {
            let n = rng.gen_range(4..20usize);
            let d = rng.gen_range(1..7usize);
            let data = arb_dataset(&mut rng, n, d);
            let cache = FeatureDistCache::fit(&data);
            // Build up a subset feature by feature, comparing the fused
            // candidate evaluation against the reference at every step.
            let mut base = vec![0.0; n * n];
            let mut subset: Vec<usize> = Vec::new();
            for f in 0..d {
                let mut cols = subset.clone();
                cols.push(f);
                let reference = nn1_training_error(&data.select_features(&cols));
                let cached = cache.nn1_error_with(&base, f);
                assert_eq!(cached, reference, "subset {cols:?}");
                cache.accumulate(f, &mut base);
                subset.push(f);
            }
        }
    }

    /// The batched sweep must agree exactly with the per-candidate path —
    /// at every thread count, and on tie-heavy integer data where argmin
    /// tie-breaking (lowest index wins) actually gets exercised.
    #[test]
    fn batch_matches_single_candidate_path() {
        let mut rng = Rng::seed_from_u64(0x417);
        for round in 0..12 {
            let n = rng.gen_range(4..24usize);
            let d = rng.gen_range(1..8usize);
            let data = if round % 2 == 0 {
                arb_dataset(&mut rng, n, d)
            } else {
                // Small-integer features: many exactly-tied distances.
                let x: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..d).map(|_| rng.gen_range(0..3) as f64).collect())
                    .collect();
                let y: Vec<usize> = (0..n).map(|_| rng.gen_range(0..3usize)).collect();
                Dataset::new(
                    x,
                    y,
                    3,
                    (0..d).map(|j| format!("f{j}")).collect(),
                    (0..n).map(|i| format!("e{i}")).collect(),
                )
            };
            let cache = FeatureDistCache::fit(&data);
            let mut base = vec![0.0; n * n];
            if d > 1 {
                cache.accumulate(d - 1, &mut base);
            }
            let candidates: Vec<usize> = (0..d).collect();
            let single: Vec<f64> = candidates
                .iter()
                .map(|&f| cache.nn1_error_with(&base, f))
                .collect();
            for threads in [1, 2, 4] {
                assert_eq!(
                    cache.nn1_errors_batch(&base, &candidates, threads),
                    single,
                    "round {round}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn tiny_datasets_report_full_error() {
        let data = arb_dataset(&mut Rng::seed_from_u64(1), 1, 2);
        let cache = FeatureDistCache::fit(&data);
        assert_eq!(cache.nn1_error_with(&[0.0], 0), 1.0);
    }
}
