//! Incremental pairwise-distance caching — the algebra that makes greedy
//! feature selection and kernel re-computation cheap.
//!
//! Squared Euclidean distance over a feature subset `S` is *additive
//! across features*:
//!
//! ```text
//! dist2_S(i, j) = Σ_{f ∈ S} (x[i][f] − x[j][f])²
//! ```
//!
//! so the n×n distance matrix of `S ∪ {f}` is the matrix of `S` plus
//! feature `f`'s own n×n contribution. [`FeatureDistCache`] exploits
//! this: it normalizes the data once and keeps each feature's normalized
//! column — an exact rank-1 factoring of that feature's contribution
//! matrix (`(col[i] − col[j])²`) — so greedy forward selection evaluates
//! every candidate subset `S ∪ {f}` with an O(n²) accumulate instead of
//! an O(n²·|S|) recompute.
//!
//! The columns are deliberately *not* expanded into dense per-feature
//! matrices: at full-corpus scale those are `d·n²·8 ≈ 3.6 GB` and every
//! greedy sweep streams them from DRAM, which measures *slower* than
//! recomputing `(col[i] − col[j])²` on the fly from the ~1 MB of columns
//! that stay resident in L2 (one subtract and multiply per pair versus a
//! DRAM load). See DESIGN.md §8 for the measurements.
//!
//! Min-max normalization is per-column, so normalizing the full dataset
//! once yields bitwise the same columns as normalizing any
//! `select_features` subset — the cached contributions are exact for
//! every subset.
//!
//! [`DistanceMatrix`] is the companion full-subset cache: compute the
//! pairwise distances once, then derive an RBF kernel for *any* gamma via
//! [`crate::KernelCache::from_distances`] without re-touching feature
//! vectors (the enabler for gamma sweeps).

use crate::dataset::{dist2, Dataset, MinMaxNormalizer};
use loopml_rt::par_map_threads;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global count of [`DistanceMatrix::compute`] invocations. The
/// sweep subsystem's whole premise is "one distance pass, many kernels";
/// this counter turns that claim into something a test (and the `repro
/// sweep` report) can assert instead of trusting.
static BUILDS: AtomicU64 = AtomicU64::new(0);

/// Number of pairwise distance-matrix builds performed by this process so
/// far. Monotonic; callers snapshot it before a sweep and assert the
/// delta (the counter is process-global, so absolute values are
/// meaningless in a multi-test process).
pub fn distance_builds() -> u64 {
    BUILDS.load(Ordering::Relaxed)
}

/// Full pairwise squared-distance matrix over a set of rows, stored flat
/// row-major (`d2[i * n + j]`).
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    d2: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes all pairwise squared distances (symmetric; each pair is
    /// computed once and mirrored).
    pub fn compute(xs: &[Vec<f64>]) -> Self {
        BUILDS.fetch_add(1, Ordering::Relaxed);
        let n = xs.len();
        let mut d2 = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = dist2(&xs[i], &xs[j]);
                d2[i * n + j] = v;
                d2[j * n + i] = v;
            }
        }
        DistanceMatrix { n, d2 }
    }

    /// Number of rows.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Squared distance between rows `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.d2[i * self.n + j]
    }

    /// Row `i` of the matrix: squared distances from `i` to every row.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.d2[i * self.n..(i + 1) * self.n]
    }
}

/// Per-feature pairwise squared-distance contributions over a normalized
/// dataset, plus the labels — everything the leave-self-out 1-NN greedy
/// criterion needs.
///
/// Each feature's contribution matrix is held in factored form as its
/// normalized column (`(col[i] − col[j])²` on demand); the full column
/// set is `d · n · 8` bytes and stays cache-resident even at corpus
/// scale, so deriving a contribution costs one subtract-multiply per
/// pair instead of a DRAM load from a dense `d · n²` expansion.
#[derive(Debug, Clone)]
pub struct FeatureDistCache {
    n: usize,
    d: usize,
    /// Normalized feature columns, column-major: `cols[f * n + i]`.
    cols: Vec<f64>,
    labels: Vec<usize>,
}

impl FeatureDistCache {
    /// Normalizes `data` (per-column min-max, exactly as every classifier
    /// in this crate does) and caches the per-feature columns.
    pub fn fit(data: &Dataset) -> Self {
        let n = data.len();
        let d = data.dims();
        let mut cols = vec![0.0; d * n];
        if n > 0 {
            let norm = MinMaxNormalizer::fit(&data.x);
            let xs = norm.transform(&data.x);
            for (i, row) in xs.iter().enumerate() {
                for (f, &v) in row.iter().enumerate() {
                    cols[f * n + i] = v;
                }
            }
        }
        FeatureDistCache {
            n,
            d,
            cols,
            labels: data.y.clone(),
        }
    }

    /// Number of examples.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of features.
    pub fn dims(&self) -> usize {
        self.d
    }

    /// Adds feature `f`'s pairwise contribution into `base` (a flat n×n
    /// matrix): afterwards `base[i*n+j] += (x[i][f] − x[j][f])²`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range or `base` has the wrong length.
    pub fn accumulate(&self, f: usize, base: &mut [f64]) {
        assert!(f < self.d, "feature index out of range");
        assert_eq!(base.len(), self.n * self.n, "base must be n×n");
        let col = &self.cols[f * self.n..(f + 1) * self.n];
        for i in 0..self.n {
            let ci = col[i];
            let row = &mut base[i * self.n..(i + 1) * self.n];
            for (b, &cj) in row.iter_mut().zip(col) {
                let d = ci - cj;
                *b += d * d;
            }
        }
    }

    /// Leave-self-out 1-NN training error of the subset `S ∪ {f}`, where
    /// `base` is the accumulated distance matrix of `S` (all zeros for
    /// the empty set). O(n²), no allocation: the candidate's contribution
    /// is fused into the nearest-neighbor scan instead of being written
    /// anywhere. Nearest-neighbor ties break toward the lower index,
    /// exactly like [`crate::nn1_training_error`]'s scan.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range or `base` has the wrong length.
    pub fn nn1_error_with(&self, base: &[f64], f: usize) -> f64 {
        assert!(f < self.d, "feature index out of range");
        assert_eq!(base.len(), self.n * self.n, "base must be n×n");
        let n = self.n;
        if n < 2 {
            return 1.0;
        }
        let col = &self.cols[f * n..(f + 1) * n];
        let mut errors = 0usize;
        for i in 0..n {
            let brow = &base[i * n..(i + 1) * n];
            let mut best = (f64::INFINITY, 0usize);
            let ci = col[i];
            for j in 0..n {
                if j == i {
                    continue;
                }
                let d = ci - col[j];
                let d2 = brow[j] + d * d;
                if d2 < best.0 {
                    best = (d2, j);
                }
            }
            if self.labels[best.1] != self.labels[i] {
                errors += 1;
            }
        }
        errors as f64 / n as f64
    }

    /// Leave-self-out 1-NN training errors of every candidate subset
    /// `S ∪ {f}`, `f` over `candidates`, in one fused sweep — the hot
    /// loop of greedy forward selection. Equivalent to calling
    /// [`nn1_error_with`](Self::nn1_error_with) per candidate but far
    /// faster: each example's accumulated-distance row is read once and
    /// scanned for all candidates while it is cache-hot, with a 4-lane
    /// argmin instead of a branchy per-pair function call. Work is
    /// parallelized over contiguous example blocks; error counts are
    /// integers, so any block partition sums to the same result and the
    /// output is bit-identical for every `threads` value.
    ///
    /// # Panics
    ///
    /// Panics if any candidate is out of range or `base` has the wrong
    /// length.
    pub fn nn1_errors_batch(&self, base: &[f64], candidates: &[usize], threads: usize) -> Vec<f64> {
        assert_eq!(base.len(), self.n * self.n, "base must be n×n");
        for &f in candidates {
            assert!(f < self.d, "feature index out of range");
        }
        let n = self.n;
        if n < 2 {
            return vec![1.0; candidates.len()];
        }
        let workers = threads.max(1).min(n);
        let blocks: Vec<(usize, usize)> = (0..workers)
            .map(|w| {
                let lo = w * n / workers;
                let hi = (w + 1) * n / workers;
                (lo, hi)
            })
            .filter(|(lo, hi)| lo < hi)
            .collect();
        let counts = par_map_threads(threads, &blocks, |&(lo, hi)| {
            let mut errs = vec![0u32; candidates.len()];
            for i in lo..hi {
                let brow = &base[i * n..(i + 1) * n];
                for (ci, &f) in candidates.iter().enumerate() {
                    let col = &self.cols[f * n..(f + 1) * n];
                    let ci_v = col[i];
                    let lo = min_col_range(brow, col, ci_v, 0, i);
                    let hi = min_col_range(brow, col, ci_v, i + 1, n);
                    // `<=` sends exact cross-range ties to the first
                    // range: the lowest index wins, just like the serial
                    // ascending scan.
                    let nearest = if lo <= hi {
                        find_col(brow, col, ci_v, 0, i, lo)
                    } else {
                        find_col(brow, col, ci_v, i + 1, n, hi)
                    };
                    if self.labels[nearest] != self.labels[i] {
                        errs[ci] += 1;
                    }
                }
            }
            errs
        });
        let mut total = vec![0u64; candidates.len()];
        for block in counts {
            for (t, c) in total.iter_mut().zip(block) {
                *t += u64::from(c);
            }
        }
        total.into_iter().map(|e| e as f64 / n as f64).collect()
    }
}

/// Minimum of `brow[j] + (ci − col[j])²` over `j ∈ [lo, hi)` (`+∞` when
/// empty). Min-only on purpose: without index tracking the loop is a
/// pure arithmetic-and-min reduction the compiler vectorizes, and the
/// compare-select keeps the minimum equal to one of the computed values
/// exactly, so the winning index is recovered afterwards by an equality
/// scan ([`find_col`]) over the same values.
///
/// `inline(never)`: compiled standalone this is a clean packed-min loop;
/// inlined into the candidate sweep it merges with surrounding control
/// flow and loses half its throughput (measured ~2.5× slower on the
/// smoke corpus). The call overhead is amortized over an O(n) scan.
#[inline(never)]
fn min_col_range(brow: &[f64], col: &[f64], ci: f64, lo: usize, hi: usize) -> f64 {
    const LANES: usize = 4;
    let a = &brow[lo..hi];
    let c = &col[lo..hi];
    let chunks = a.len() / LANES * LANES;
    let mut mv = [f64::INFINITY; LANES];
    let mut k = 0;
    while k < chunks {
        for l in 0..LANES {
            // Compare-select rather than `f64::min`: identical for the
            // NaN-free sums here, and it compiles to the packed-min
            // instruction `f64::min`'s NaN handling blocks.
            let d = ci - c[k + l];
            let v = a[k + l] + d * d;
            mv[l] = if v < mv[l] { v } else { mv[l] };
        }
        k += LANES;
    }
    let mut m = mv[0].min(mv[1]).min(mv[2].min(mv[3]));
    for k in chunks..a.len() {
        let d = ci - c[k];
        m = m.min(a[k] + d * d);
    }
    m
}

/// First `j ∈ [lo, hi)` with `brow[j] + (ci − col[j])² == target` — the
/// lowest index attaining the minimum, the same winner a serial
/// ascending strict-`<` scan picks.
///
/// # Panics
///
/// Panics if no element equals `target` (impossible when `target` came
/// from [`min_col_range`] over the same range).
#[inline]
fn find_col(brow: &[f64], col: &[f64], ci: f64, lo: usize, hi: usize, target: f64) -> usize {
    (lo..hi)
        .find(|&j| {
            let d = ci - col[j];
            brow[j] + d * d == target
        })
        .expect("minimum came from this range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopml_rt::Rng;

    fn arb_dataset(rng: &mut Rng, n: usize, d: usize) -> Dataset {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-100.0..100.0)).collect())
            .collect();
        let y: Vec<usize> = (0..n).map(|_| rng.gen_range(0..4usize)).collect();
        Dataset::new(
            x,
            y,
            4,
            (0..d).map(|j| format!("f{j}")).collect(),
            (0..n).map(|i| format!("e{i}")).collect(),
        )
    }

    #[test]
    fn distance_matrix_matches_dist2() {
        let mut rng = Rng::seed_from_u64(7);
        let data = arb_dataset(&mut rng, 12, 5);
        let dm = DistanceMatrix::compute(&data.x);
        for i in 0..data.len() {
            for j in 0..data.len() {
                assert_eq!(
                    dm.get(i, j).to_bits(),
                    dist2(&data.x[i], &data.x[j]).to_bits()
                );
            }
            assert_eq!(dm.row(i)[i], 0.0);
        }
    }

    /// The incremental accumulate over random subsets must match a direct
    /// `dist2` over the subset's normalized columns (within FP
    /// reassociation tolerance — `dist2` sums lanes, the cache sums in
    /// selection order).
    #[test]
    fn accumulated_subsets_match_direct_dist2() {
        let mut rng = Rng::seed_from_u64(0xCAFE);
        for _ in 0..10 {
            let n = rng.gen_range(4..16usize);
            let d = rng.gen_range(2..9usize);
            let data = arb_dataset(&mut rng, n, d);
            let cache = FeatureDistCache::fit(&data);
            // Random subset, random order.
            let len = rng.gen_range(1..=d);
            let mut subset = Vec::new();
            while subset.len() < len {
                let f = rng.gen_range(0..d);
                if !subset.contains(&f) {
                    subset.push(f);
                }
            }
            let mut base = vec![0.0; n * n];
            for &f in &subset {
                cache.accumulate(f, &mut base);
            }
            let sub = data.select_features(&subset);
            let xs = MinMaxNormalizer::fit(&sub.x).transform(&sub.x);
            for i in 0..n {
                for j in 0..n {
                    let direct = dist2(&xs[i], &xs[j]);
                    let cached = base[i * n + j];
                    assert!(
                        (cached - direct).abs() <= 1e-9 * direct.max(1.0),
                        "subset {subset:?} ({i},{j}): cached {cached} vs direct {direct}"
                    );
                }
            }
        }
    }

    #[test]
    fn nn1_error_with_matches_reference() {
        use crate::feature_select::nn1_training_error;
        let mut rng = Rng::seed_from_u64(0x5EED);
        for _ in 0..10 {
            let n = rng.gen_range(4..20usize);
            let d = rng.gen_range(1..7usize);
            let data = arb_dataset(&mut rng, n, d);
            let cache = FeatureDistCache::fit(&data);
            // Build up a subset feature by feature, comparing the fused
            // candidate evaluation against the reference at every step.
            let mut base = vec![0.0; n * n];
            let mut subset: Vec<usize> = Vec::new();
            for f in 0..d {
                let mut cols = subset.clone();
                cols.push(f);
                let reference = nn1_training_error(&data.select_features(&cols));
                let cached = cache.nn1_error_with(&base, f);
                assert_eq!(cached, reference, "subset {cols:?}");
                cache.accumulate(f, &mut base);
                subset.push(f);
            }
        }
    }

    /// The batched sweep must agree exactly with the per-candidate path —
    /// at every thread count, and on tie-heavy integer data where argmin
    /// tie-breaking (lowest index wins) actually gets exercised.
    #[test]
    fn batch_matches_single_candidate_path() {
        let mut rng = Rng::seed_from_u64(0x417);
        for round in 0..12 {
            let n = rng.gen_range(4..24usize);
            let d = rng.gen_range(1..8usize);
            let data = if round % 2 == 0 {
                arb_dataset(&mut rng, n, d)
            } else {
                // Small-integer features: many exactly-tied distances.
                let x: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..d).map(|_| rng.gen_range(0..3) as f64).collect())
                    .collect();
                let y: Vec<usize> = (0..n).map(|_| rng.gen_range(0..3usize)).collect();
                Dataset::new(
                    x,
                    y,
                    3,
                    (0..d).map(|j| format!("f{j}")).collect(),
                    (0..n).map(|i| format!("e{i}")).collect(),
                )
            };
            let cache = FeatureDistCache::fit(&data);
            let mut base = vec![0.0; n * n];
            if d > 1 {
                cache.accumulate(d - 1, &mut base);
            }
            let candidates: Vec<usize> = (0..d).collect();
            let single: Vec<f64> = candidates
                .iter()
                .map(|&f| cache.nn1_error_with(&base, f))
                .collect();
            for threads in [1, 2, 4] {
                assert_eq!(
                    cache.nn1_errors_batch(&base, &candidates, threads),
                    single,
                    "round {round}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn tiny_datasets_report_full_error() {
        let data = arb_dataset(&mut Rng::seed_from_u64(1), 1, 2);
        let cache = FeatureDistCache::fit(&data);
        assert_eq!(cache.nn1_error_with(&[0.0], 0), 1.0);
    }
}
