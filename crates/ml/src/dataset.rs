//! Labeled datasets and feature normalization.

use std::fmt;

/// A labeled training set: one feature vector and one class label per
/// example, plus feature names for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature vectors (row per example).
    pub x: Vec<Vec<f64>>,
    /// Class labels in `0..classes`.
    pub y: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
    /// Feature names, `feature_names.len() == x[i].len()`.
    pub feature_names: Vec<String>,
    /// Example names (for reporting / grouping by benchmark).
    pub example_names: Vec<String>,
}

impl Dataset {
    /// Builds a dataset, validating shapes.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged, labels exceed `classes`, or lengths
    /// disagree.
    pub fn new(
        x: Vec<Vec<f64>>,
        y: Vec<usize>,
        classes: usize,
        feature_names: Vec<String>,
        example_names: Vec<String>,
    ) -> Self {
        assert_eq!(x.len(), y.len(), "one label per example");
        assert_eq!(x.len(), example_names.len(), "one name per example");
        let d = feature_names.len();
        assert!(x.iter().all(|r| r.len() == d), "ragged feature rows");
        assert!(y.iter().all(|&l| l < classes), "label out of range");
        Dataset {
            x,
            y,
            classes,
            feature_names,
            example_names,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` if there are no examples.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of features.
    pub fn dims(&self) -> usize {
        self.feature_names.len()
    }

    /// A new dataset keeping only the feature columns in `keep` (indices
    /// into the current feature set, order preserved).
    pub fn select_features(&self, keep: &[usize]) -> Dataset {
        let x = self
            .x
            .iter()
            .map(|row| keep.iter().map(|&k| row[k]).collect())
            .collect();
        Dataset {
            x,
            y: self.y.clone(),
            classes: self.classes,
            feature_names: keep
                .iter()
                .map(|&k| self.feature_names[k].clone())
                .collect(),
            example_names: self.example_names.clone(),
        }
    }

    /// A new dataset excluding the examples whose indices are in `drop`
    /// (used for leave-one-benchmark-out training).
    pub fn without_examples(&self, drop: &[bool]) -> Dataset {
        assert_eq!(drop.len(), self.len());
        let keep: Vec<usize> = (0..self.len()).filter(|&i| !drop[i]).collect();
        Dataset {
            x: keep.iter().map(|&i| self.x[i].clone()).collect(),
            y: keep.iter().map(|&i| self.y[i]).collect(),
            classes: self.classes,
            feature_names: self.feature_names.clone(),
            example_names: keep
                .iter()
                .map(|&i| self.example_names[i].clone())
                .collect(),
        }
    }

    /// Copies this dataset minus example `exclude` into `out`, reusing
    /// `out`'s row, label, and name allocations. This is the allocation-free
    /// (after the first fold) leave-one-out training-set constructor:
    /// calling it N times with the same scratch dataset touches the
    /// allocator only while `out` grows to its steady-state shape.
    ///
    /// # Panics
    ///
    /// Panics if `exclude` is out of range.
    pub fn copy_excluding_into(&self, exclude: usize, out: &mut Dataset) {
        assert!(exclude < self.len(), "exclude index out of range");
        out.classes = self.classes;
        out.feature_names.clone_from(&self.feature_names);
        let kept = self.len() - 1;
        out.x.truncate(kept);
        out.y.clear();
        out.example_names.truncate(kept);
        let mut w = 0usize;
        for (i, row) in self.x.iter().enumerate() {
            if i == exclude {
                continue;
            }
            if w < out.x.len() {
                out.x[w].clone_from(row);
                out.example_names[w].clone_from(&self.example_names[i]);
            } else {
                out.x.push(row.clone());
                out.example_names.push(self.example_names[i].clone());
            }
            out.y.push(self.y[i]);
            w += 1;
        }
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dataset: {} examples x {} features, {} classes",
            self.len(),
            self.dims(),
            self.classes
        )
    }
}

/// Min-max feature normalization to `[0, 1]`, the scheme the paper uses so
/// that large-valued features (like trip counts) do not dominate the
/// Euclidean distance.
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxNormalizer {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl MinMaxNormalizer {
    /// The identity normalizer over zero features: [`apply`] leaves every
    /// row unchanged. This is the state of a not-yet-fitted model.
    ///
    /// [`apply`]: MinMaxNormalizer::apply
    pub fn identity() -> Self {
        MinMaxNormalizer {
            lo: Vec::new(),
            hi: Vec::new(),
        }
    }

    /// Fits the normalizer to a dataset's feature ranges.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(x: &[Vec<f64>]) -> Self {
        assert!(!x.is_empty(), "cannot fit a normalizer to no data");
        let d = x[0].len();
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for row in x {
            for (j, &v) in row.iter().enumerate() {
                lo[j] = lo[j].min(v);
                hi[j] = hi[j].max(v);
            }
        }
        MinMaxNormalizer { lo, hi }
    }

    /// Normalizes one vector in place. Constant features map to 0. The
    /// [`identity`](MinMaxNormalizer::identity) normalizer is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `row`'s length differs from the fitted dimension. A
    /// longer row used to die on a bare index out of bounds and a
    /// shorter one was silently half-normalized; both are dimension
    /// mismatches upstream (a feature-subset model fed a full vector,
    /// or vice versa) and must fail loudly.
    pub fn apply(&self, row: &mut [f64]) {
        if self.lo.is_empty() {
            return;
        }
        assert_eq!(
            row.len(),
            self.lo.len(),
            "normalizer fitted on {} features cannot normalize a {}-feature row",
            self.lo.len(),
            row.len()
        );
        for (j, v) in row.iter_mut().enumerate() {
            let span = self.hi[j] - self.lo[j];
            *v = if span > 0.0 {
                (*v - self.lo[j]) / span
            } else {
                0.0
            };
            // Clamp novel examples outside the training range.
            *v = v.clamp(0.0, 1.0);
        }
    }

    /// Returns a normalized copy of the whole design matrix.
    pub fn transform(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter()
            .map(|r| {
                let mut r = r.clone();
                self.apply(&mut r);
                r
            })
            .collect()
    }

    /// Serializes the fitted ranges for a model artifact. Round-trips
    /// bit-exactly through [`from_json`](MinMaxNormalizer::from_json);
    /// the [`identity`](MinMaxNormalizer::identity) normalizer
    /// serializes (and restores) as empty ranges.
    pub fn to_json(&self) -> loopml_rt::Json {
        loopml_rt::Json::obj([
            ("lo", loopml_rt::Json::from_f64s(&self.lo)),
            ("hi", loopml_rt::Json::from_f64s(&self.hi)),
        ])
    }

    /// Restores ranges written by [`to_json`](MinMaxNormalizer::to_json).
    pub fn from_json(doc: &loopml_rt::Json) -> Result<Self, String> {
        let lo = doc
            .get("lo")
            .and_then(loopml_rt::Json::as_f64s)
            .ok_or("normalizer state has no lo array")?;
        let hi = doc
            .get("hi")
            .and_then(loopml_rt::Json::as_f64s)
            .ok_or("normalizer state has no hi array")?;
        if lo.len() != hi.len() {
            return Err(format!(
                "normalizer ranges disagree: {} lo vs {} hi",
                lo.len(),
                hi.len()
            ));
        }
        Ok(MinMaxNormalizer { lo, hi })
    }
}

/// Squared Euclidean distance.
///
/// The hot kernel of the whole ML layer (every NN query, every kernel
/// entry). Processed in fixed-width 4-lane chunks with independent
/// accumulators so the autovectorizer can keep the lanes in SIMD
/// registers; the tail runs scalar, so vectors shorter than one chunk
/// take exactly the naive path. Reassociating the sum can perturb the
/// last bits relative to a strict left-to-right loop — harmless for
/// distance comparisons, and pinned against the naive loop (to 1e-12
/// relative) by `dist2_matches_naive_loop`.
///
/// # Panics
///
/// Panics if the vectors have different lengths. An earlier version
/// silently truncated to `min(a.len(), b.len())`, which turned a
/// feature-subset/full-vector mix-up into a *wrong distance* instead of
/// an error; every caller is expected to present matching dimensions.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    const LANES: usize = 4;
    assert_eq!(
        a.len(),
        b.len(),
        "dist2 over mismatched dimensions ({} vs {})",
        a.len(),
        b.len()
    );
    let n = a.len();
    let chunks = n / LANES * LANES;
    let mut acc = [0.0f64; LANES];
    for (ca, cb) in a[..chunks]
        .chunks_exact(LANES)
        .zip(b[..chunks].chunks_exact(LANES))
    {
        for l in 0..LANES {
            let d = ca[l] - cb[l];
            acc[l] += d * d;
        }
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in a[chunks..].iter().zip(&b[chunks..]) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![vec![0.0, 10.0], vec![1.0, 20.0], vec![2.0, 40.0]],
            vec![0, 1, 1],
            2,
            vec!["a".into(), "b".into()],
            vec!["e0".into(), "e1".into(), "e2".into()],
        )
    }

    #[test]
    fn shapes_validated() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dims(), 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_labels_rejected() {
        let _ = Dataset::new(
            vec![vec![0.0]],
            vec![5],
            2,
            vec!["a".into()],
            vec!["e".into()],
        );
    }

    #[test]
    fn feature_selection_keeps_order() {
        let d = toy().select_features(&[1]);
        assert_eq!(d.dims(), 1);
        assert_eq!(d.feature_names, vec!["b".to_string()]);
        assert_eq!(d.x[2], vec![40.0]);
    }

    #[test]
    fn example_exclusion() {
        let d = toy().without_examples(&[false, true, false]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.example_names, vec!["e0".to_string(), "e2".to_string()]);
    }

    #[test]
    fn normalization_hits_unit_interval() {
        let d = toy();
        let n = MinMaxNormalizer::fit(&d.x);
        let t = n.transform(&d.x);
        assert_eq!(t[0], vec![0.0, 0.0]);
        assert_eq!(t[2], vec![1.0, 1.0]);
        assert!((t[1][1] - (20.0 - 10.0) / 30.0).abs() < 1e-12);
    }

    #[test]
    fn constant_features_map_to_zero() {
        let x = vec![vec![5.0], vec![5.0]];
        let n = MinMaxNormalizer::fit(&x);
        let t = n.transform(&x);
        assert_eq!(t, vec![vec![0.0], vec![0.0]]);
    }

    #[test]
    fn novel_values_clamped() {
        let d = toy();
        let n = MinMaxNormalizer::fit(&d.x);
        let mut row = vec![-10.0, 1000.0];
        n.apply(&mut row);
        assert_eq!(row, vec![0.0, 1.0]);
    }

    #[test]
    fn normalizer_json_round_trips_bit_exactly() {
        let n = MinMaxNormalizer::fit(&toy().x);
        let doc = loopml_rt::Json::parse(&n.to_json().to_string()).expect("valid JSON");
        let back = MinMaxNormalizer::from_json(&doc).expect("restores");
        assert_eq!(back, n);
        let id = MinMaxNormalizer::identity();
        assert_eq!(
            MinMaxNormalizer::from_json(&id.to_json()).expect("identity restores"),
            id
        );
        // Mismatched range lengths are rejected.
        let bad = loopml_rt::Json::parse(r#"{"lo":[0.0],"hi":[1.0,2.0]}"#).unwrap();
        assert!(MinMaxNormalizer::from_json(&bad).is_err());
        assert!(MinMaxNormalizer::from_json(&loopml_rt::Json::Null).is_err());
    }

    #[test]
    fn identity_normalizer_is_noop() {
        let n = MinMaxNormalizer::identity();
        let mut row = vec![-3.0, 0.0, 1e9];
        n.apply(&mut row);
        assert_eq!(row, vec![-3.0, 0.0, 1e9]);
    }

    #[test]
    #[should_panic(expected = "normalizer fitted on 2 features")]
    fn normalizer_rejects_longer_rows() {
        // Used to index lo/hi by the row's length: bare OOB panic.
        let n = MinMaxNormalizer::fit(&toy().x);
        let mut row = vec![1.0, 2.0, 3.0];
        n.apply(&mut row);
    }

    #[test]
    #[should_panic(expected = "normalizer fitted on 2 features")]
    fn normalizer_rejects_shorter_rows() {
        // Used to silently half-normalize: only the columns present.
        let n = MinMaxNormalizer::fit(&toy().x);
        let mut row = vec![1.0];
        n.apply(&mut row);
    }

    #[test]
    #[should_panic(expected = "dist2 over mismatched dimensions (2 vs 3)")]
    fn dist2_rejects_mismatched_lengths() {
        // Used to silently truncate to min(a.len(), b.len()) — a wrong
        // distance, not an error.
        let _ = dist2(&[0.0, 1.0], &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn dist2_basics() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist2(&[1.0], &[1.0]), 0.0);
    }

    /// The strict left-to-right reference the chunked kernel is pinned
    /// against.
    fn dist2_naive(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }

    #[test]
    fn dist2_matches_naive_loop() {
        let mut rng = loopml_rt::Rng::seed_from_u64(0xD157);
        for dims in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 38, 100] {
            for _ in 0..20 {
                let a: Vec<f64> = (0..dims).map(|_| rng.gen_range(-50.0..50.0)).collect();
                let b: Vec<f64> = (0..dims).map(|_| rng.gen_range(-50.0..50.0)).collect();
                let fast = dist2(&a, &b);
                let naive = dist2_naive(&a, &b);
                assert!(
                    (fast - naive).abs() <= 1e-12 * naive.max(1.0),
                    "dims={dims}: chunked {fast} vs naive {naive}"
                );
            }
        }
        // Below one full chunk the kernel *is* the naive loop: bit-equal.
        // (dims = 0 is excluded: `Iterator::sum` for f64 uses -0.0 as its
        // identity, so the naive empty sum is -0.0 while the kernel
        // returns +0.0 — equal as values, not as bits.)
        for dims in 1..4usize {
            let a: Vec<f64> = (0..dims).map(|_| rng.gen_range(-50.0..50.0)).collect();
            let b: Vec<f64> = (0..dims).map(|_| rng.gen_range(-50.0..50.0)).collect();
            assert_eq!(dist2(&a, &b).to_bits(), dist2_naive(&a, &b).to_bits());
        }
        assert_eq!(dist2(&[], &[]), 0.0);
    }

    #[test]
    fn copy_excluding_matches_without_examples() {
        let d = toy();
        let mut scratch = Dataset {
            x: Vec::new(),
            y: Vec::new(),
            classes: 0,
            feature_names: Vec::new(),
            example_names: Vec::new(),
        };
        for i in 0..d.len() {
            let mut drop = vec![false; d.len()];
            drop[i] = true;
            d.copy_excluding_into(i, &mut scratch);
            assert_eq!(scratch, d.without_examples(&drop), "fold {i}");
        }
    }

    #[test]
    fn copy_excluding_reuses_row_allocations() {
        let d = toy();
        let mut scratch = Dataset {
            x: Vec::new(),
            y: Vec::new(),
            classes: 0,
            feature_names: Vec::new(),
            example_names: Vec::new(),
        };
        d.copy_excluding_into(0, &mut scratch);
        let rows_before: Vec<*const f64> = scratch.x.iter().map(|r| r.as_ptr()).collect();
        d.copy_excluding_into(2, &mut scratch);
        let rows_after: Vec<*const f64> = scratch.x.iter().map(|r| r.as_ptr()).collect();
        assert_eq!(rows_before, rows_after, "row buffers must be reused");
    }
}
