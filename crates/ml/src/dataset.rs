//! Labeled datasets and feature normalization.

use std::fmt;

/// A labeled training set: one feature vector and one class label per
/// example, plus feature names for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature vectors (row per example).
    pub x: Vec<Vec<f64>>,
    /// Class labels in `0..classes`.
    pub y: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
    /// Feature names, `feature_names.len() == x[i].len()`.
    pub feature_names: Vec<String>,
    /// Example names (for reporting / grouping by benchmark).
    pub example_names: Vec<String>,
}

impl Dataset {
    /// Builds a dataset, validating shapes.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged, labels exceed `classes`, or lengths
    /// disagree.
    pub fn new(
        x: Vec<Vec<f64>>,
        y: Vec<usize>,
        classes: usize,
        feature_names: Vec<String>,
        example_names: Vec<String>,
    ) -> Self {
        assert_eq!(x.len(), y.len(), "one label per example");
        assert_eq!(x.len(), example_names.len(), "one name per example");
        let d = feature_names.len();
        assert!(x.iter().all(|r| r.len() == d), "ragged feature rows");
        assert!(y.iter().all(|&l| l < classes), "label out of range");
        Dataset {
            x,
            y,
            classes,
            feature_names,
            example_names,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` if there are no examples.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of features.
    pub fn dims(&self) -> usize {
        self.feature_names.len()
    }

    /// A new dataset keeping only the feature columns in `keep` (indices
    /// into the current feature set, order preserved).
    pub fn select_features(&self, keep: &[usize]) -> Dataset {
        let x = self
            .x
            .iter()
            .map(|row| keep.iter().map(|&k| row[k]).collect())
            .collect();
        Dataset {
            x,
            y: self.y.clone(),
            classes: self.classes,
            feature_names: keep
                .iter()
                .map(|&k| self.feature_names[k].clone())
                .collect(),
            example_names: self.example_names.clone(),
        }
    }

    /// A new dataset excluding the examples whose indices are in `drop`
    /// (used for leave-one-benchmark-out training).
    pub fn without_examples(&self, drop: &[bool]) -> Dataset {
        assert_eq!(drop.len(), self.len());
        let keep: Vec<usize> = (0..self.len()).filter(|&i| !drop[i]).collect();
        Dataset {
            x: keep.iter().map(|&i| self.x[i].clone()).collect(),
            y: keep.iter().map(|&i| self.y[i]).collect(),
            classes: self.classes,
            feature_names: self.feature_names.clone(),
            example_names: keep
                .iter()
                .map(|&i| self.example_names[i].clone())
                .collect(),
        }
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dataset: {} examples x {} features, {} classes",
            self.len(),
            self.dims(),
            self.classes
        )
    }
}

/// Min-max feature normalization to `[0, 1]`, the scheme the paper uses so
/// that large-valued features (like trip counts) do not dominate the
/// Euclidean distance.
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxNormalizer {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl MinMaxNormalizer {
    /// The identity normalizer over zero features: [`apply`] leaves every
    /// row unchanged. This is the state of a not-yet-fitted model.
    ///
    /// [`apply`]: MinMaxNormalizer::apply
    pub fn identity() -> Self {
        MinMaxNormalizer {
            lo: Vec::new(),
            hi: Vec::new(),
        }
    }

    /// Fits the normalizer to a dataset's feature ranges.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(x: &[Vec<f64>]) -> Self {
        assert!(!x.is_empty(), "cannot fit a normalizer to no data");
        let d = x[0].len();
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for row in x {
            for (j, &v) in row.iter().enumerate() {
                lo[j] = lo[j].min(v);
                hi[j] = hi[j].max(v);
            }
        }
        MinMaxNormalizer { lo, hi }
    }

    /// Normalizes one vector in place. Constant features map to 0. The
    /// [`identity`](MinMaxNormalizer::identity) normalizer is a no-op.
    pub fn apply(&self, row: &mut [f64]) {
        if self.lo.is_empty() {
            return;
        }
        for (j, v) in row.iter_mut().enumerate() {
            let span = self.hi[j] - self.lo[j];
            *v = if span > 0.0 {
                (*v - self.lo[j]) / span
            } else {
                0.0
            };
            // Clamp novel examples outside the training range.
            *v = v.clamp(0.0, 1.0);
        }
    }

    /// Returns a normalized copy of the whole design matrix.
    pub fn transform(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter()
            .map(|r| {
                let mut r = r.clone();
                self.apply(&mut r);
                r
            })
            .collect()
    }
}

/// Squared Euclidean distance.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![vec![0.0, 10.0], vec![1.0, 20.0], vec![2.0, 40.0]],
            vec![0, 1, 1],
            2,
            vec!["a".into(), "b".into()],
            vec!["e0".into(), "e1".into(), "e2".into()],
        )
    }

    #[test]
    fn shapes_validated() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dims(), 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_labels_rejected() {
        let _ = Dataset::new(
            vec![vec![0.0]],
            vec![5],
            2,
            vec!["a".into()],
            vec!["e".into()],
        );
    }

    #[test]
    fn feature_selection_keeps_order() {
        let d = toy().select_features(&[1]);
        assert_eq!(d.dims(), 1);
        assert_eq!(d.feature_names, vec!["b".to_string()]);
        assert_eq!(d.x[2], vec![40.0]);
    }

    #[test]
    fn example_exclusion() {
        let d = toy().without_examples(&[false, true, false]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.example_names, vec!["e0".to_string(), "e2".to_string()]);
    }

    #[test]
    fn normalization_hits_unit_interval() {
        let d = toy();
        let n = MinMaxNormalizer::fit(&d.x);
        let t = n.transform(&d.x);
        assert_eq!(t[0], vec![0.0, 0.0]);
        assert_eq!(t[2], vec![1.0, 1.0]);
        assert!((t[1][1] - (20.0 - 10.0) / 30.0).abs() < 1e-12);
    }

    #[test]
    fn constant_features_map_to_zero() {
        let x = vec![vec![5.0], vec![5.0]];
        let n = MinMaxNormalizer::fit(&x);
        let t = n.transform(&x);
        assert_eq!(t, vec![vec![0.0], vec![0.0]]);
    }

    #[test]
    fn novel_values_clamped() {
        let d = toy();
        let n = MinMaxNormalizer::fit(&d.x);
        let mut row = vec![-10.0, 1000.0];
        n.apply(&mut row);
        assert_eq!(row, vec![0.0, 1.0]);
    }

    #[test]
    fn identity_normalizer_is_noop() {
        let n = MinMaxNormalizer::identity();
        let mut row = vec![-3.0, 0.0, 1e9];
        n.apply(&mut row);
        assert_eq!(row, vec![-3.0, 0.0, 1e9]);
    }

    #[test]
    fn dist2_basics() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist2(&[1.0], &[1.0]), 0.0);
    }
}
