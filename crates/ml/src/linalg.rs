//! Minimal dense linear algebra: just enough for LDA (matrix inverse and
//! symmetric eigendecomposition) without external dependencies.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged or empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Inverse by Gauss-Jordan elimination with partial pivoting.
    ///
    /// Returns `None` if the matrix is (numerically) singular.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "inverse needs a square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Partial pivot.
            let pivot = (col..n).max_by(|&i, &j| {
                a[(i, col)]
                    .abs()
                    .partial_cmp(&a[(j, col)].abs())
                    .expect("finite")
            })?;
            if a[(pivot, col)].abs() < 1e-12 {
                return None;
            }
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let d = a[(col, col)];
            for j in 0..n {
                a[(col, j)] /= d;
                inv[(col, j)] /= d;
            }
            for i in 0..n {
                if i == col {
                    continue;
                }
                let f = a[(i, col)];
                if f == 0.0 {
                    continue;
                }
                for j in 0..n {
                    a[(i, j)] -= f * a[(col, j)];
                    inv[(i, j)] -= f * inv[(col, j)];
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, i: usize, j: usize) {
        for c in 0..self.cols {
            self.data.swap(i * self.cols + c, j * self.cols + c);
        }
    }

    /// Eigendecomposition of a *symmetric* matrix by cyclic Jacobi
    /// rotations. Returns `(eigenvalues, eigenvectors)` sorted by
    /// descending eigenvalue; eigenvectors are the columns of the returned
    /// matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn sym_eigen(&self) -> (Vec<f64>, Matrix) {
        assert_eq!(self.rows, self.cols, "eigen needs a square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        for _sweep in 0..100 {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += a[(i, j)] * a[(i, j)];
                }
            }
            if off < 1e-20 {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a[(p, q)];
                    if apq.abs() < 1e-15 {
                        continue;
                    }
                    let theta = (a[(q, q)] - a[(p, p)]) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akq = a[(k, q)];
                        a[(k, p)] = c * akp - s * akq;
                        a[(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let aqk = a[(q, k)];
                        a[(p, k)] = c * apk - s * aqk;
                        a[(q, k)] = s * apk + c * aqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| a[(j, j)].partial_cmp(&a[(i, i)]).expect("finite"));
        let vals: Vec<f64> = order.iter().map(|&i| a[(i, i)]).collect();
        let mut vecs = Matrix::zeros(n, n);
        for (new_col, &old_col) in order.iter().enumerate() {
            for r in 0..n {
                vecs[(r, new_col)] = v[(r, old_col)];
            }
        }
        (vals, vecs)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_inverse() {
        let i = Matrix::identity(4);
        assert_eq!(i.inverse().unwrap(), i);
    }

    #[test]
    fn inverse_round_trip() {
        let m = Matrix::from_rows(&[
            vec![4.0, 2.0, 0.5],
            vec![2.0, 5.0, 1.0],
            vec![0.5, 1.0, 3.0],
        ]);
        let inv = m.inverse().expect("invertible");
        let prod = m.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - want).abs() < 1e-9, "{prod}");
            }
        }
    }

    #[test]
    fn singular_detected() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn eigen_of_diagonal() {
        let m = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 7.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        let (vals, _) = m.sym_eigen();
        assert!((vals[0] - 7.0).abs() < 1e-9);
        assert!((vals[1] - 3.0).abs() < 1e-9);
        assert!((vals[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eigen_reconstructs() {
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let (vals, vecs) = m.sym_eigen();
        // A v = lambda v for each column.
        for k in 0..2 {
            for r in 0..2 {
                let av: f64 = (0..2).map(|c| m[(r, c)] * vecs[(c, k)]).sum();
                assert!((av - vals[k] * vecs[(r, k)]).abs() < 1e-8);
            }
        }
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let ab = a.matmul(&b);
        assert_eq!(ab, Matrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]));
        assert_eq!(
            a.transpose(),
            Matrix::from_rows(&[vec![1.0, 3.0], vec![2.0, 4.0]])
        );
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rejected() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
