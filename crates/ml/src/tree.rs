//! Deterministic CART-style decision tree.
//!
//! The paper stops at near neighbors and the SVM, but its follow-on
//! line (Balamane et al., the Tiramisu unrolling model — see PAPERS.md)
//! shows richer models pay off on this task. The tree is the
//! *interpretable* member of the zoo: every internal node is a readable
//! `feature <= threshold` test over the same min-max-normalized space
//! the other models see, so the split features can be compared directly
//! against the mutual-information ranking in
//! [`crate::feature_select::mutual_information`] (see
//! [`DecisionTree::split_features`]).
//!
//! Training is deterministic by construction — no randomness anywhere:
//! candidate thresholds are midpoints between adjacent *distinct* sorted
//! values, split scores are computed from integer class counts, and ties
//! break on the fixed (impurity gain, feature index, threshold) order.
//! Two fits of the same data are bit-identical at any `LOOPML_THREADS`
//! because the fit never consults the worker pool.

use crate::classify::{expect_kind, Classifier};
use crate::dataset::{Dataset, MinMaxNormalizer};
use loopml_rt::Json;

/// Hyperparameters of a [`DecisionTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum number of split levels above a leaf (0 = a single leaf).
    pub max_depth: usize,
    /// Minimum examples each side of a split must keep.
    pub min_leaf: usize,
}

impl Default for TreeParams {
    /// Depth 6 with 2-example leaves: deep enough to separate the
    /// paper's 8 classes, shallow enough to stay readable.
    fn default() -> Self {
        TreeParams {
            max_depth: 6,
            min_leaf: 2,
        }
    }
}

impl TreeParams {
    /// Serializes the hyperparameters (the identity-bearing part of a
    /// saved tree, see `loopml::model_fingerprint`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("max_depth", Json::Num(self.max_depth as f64)),
            ("min_leaf", Json::Num(self.min_leaf as f64)),
        ])
    }

    /// Parses hyperparameters written by [`to_json`](Self::to_json).
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_num)
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .map(|v| v as usize)
                .ok_or_else(|| format!("tree params have no whole {key}"))
        };
        let max_depth = field("max_depth")?;
        let min_leaf = field("min_leaf")?;
        if min_leaf == 0 {
            return Err("tree min_leaf must be at least 1".into());
        }
        Ok(TreeParams {
            max_depth,
            min_leaf,
        })
    }
}

/// One node of the flattened tree. `feature == usize::MAX` marks a leaf
/// (the serialized form uses `null` instead of the sentinel).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Node {
    feature: usize,
    threshold: f64,
    left: usize,
    right: usize,
    label: usize,
}

const LEAF: usize = usize::MAX;

/// A CART-style classification tree with Gini-impurity splits.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    params: TreeParams,
    normalizer: Option<MinMaxNormalizer>,
    nodes: Vec<Node>,
    classes: usize,
    dims: usize,
}

impl DecisionTree {
    /// An *unfitted* tree carrying only its hyperparameters; call
    /// [`Classifier::fit`] before use. Until then it predicts class 0.
    ///
    /// # Panics
    ///
    /// Panics if `min_leaf` is zero.
    pub fn new(params: TreeParams) -> Self {
        assert!(params.min_leaf >= 1, "min_leaf must be at least 1");
        DecisionTree {
            params,
            normalizer: None,
            nodes: Vec::new(),
            classes: 0,
            dims: 0,
        }
    }

    /// Trains a tree on the normalized dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `min_leaf` is zero.
    pub fn fit(data: &Dataset, params: TreeParams) -> Self {
        assert!(params.min_leaf >= 1, "min_leaf must be at least 1");
        assert!(!data.is_empty(), "cannot fit to an empty dataset");
        let normalizer = MinMaxNormalizer::fit(&data.x);
        let xs = normalizer.transform(&data.x);
        let mut tree = DecisionTree {
            params,
            normalizer: Some(normalizer),
            nodes: Vec::new(),
            classes: data.classes,
            dims: data.dims(),
        };
        let idx: Vec<usize> = (0..data.len()).collect();
        tree.build(&xs, &data.y, &idx, 0);
        tree
    }

    /// Grows the subtree over `idx` and returns its node id.
    fn build(&mut self, xs: &[Vec<f64>], ys: &[usize], idx: &[usize], depth: usize) -> usize {
        let n = idx.len();
        let mut counts = vec![0u64; self.classes];
        for &i in idx {
            counts[ys[i]] += 1;
        }
        // Majority label; exact ties go to the smallest class index so
        // the tree never depends on anything but the data.
        let label = majority(&counts);
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        let leaf_id = |nodes: &mut Vec<Node>| {
            nodes.push(Node {
                feature: LEAF,
                threshold: 0.0,
                left: 0,
                right: 0,
                label,
            });
            nodes.len() - 1
        };
        if pure || depth >= self.params.max_depth || n < 2 * self.params.min_leaf {
            return leaf_id(&mut self.nodes);
        }

        // The no-split score: sum of squared class counts over n. A
        // split is only taken when it strictly beats this — maximizing
        // sum(left²)/n_left + sum(right²)/n_right is exactly minimizing
        // the count-weighted Gini impurity, computed from integers so
        // every platform agrees bitwise.
        let parent_score = score(&counts, n);
        let mut best: Option<(f64, usize, f64, Vec<usize>, usize)> = None;
        let mut sorted = idx.to_vec();
        // Indexing `xs[example][feature]` column-by-column; an iterator
        // over rows cannot express the per-feature scan.
        #[allow(clippy::needless_range_loop)]
        for feature in 0..self.dims {
            // Stable order: by value, then example index — ties in the
            // data can never reorder the candidate scan.
            sorted.sort_by(|&a, &b| xs[a][feature].total_cmp(&xs[b][feature]).then(a.cmp(&b)));
            let mut left = vec![0u64; self.classes];
            let mut right = counts.clone();
            for k in 1..n {
                let moved = sorted[k - 1];
                left[ys[moved]] += 1;
                right[ys[moved]] -= 1;
                let (lo, hi) = (xs[sorted[k - 1]][feature], xs[sorted[k]][feature]);
                if lo == hi || k < self.params.min_leaf || n - k < self.params.min_leaf {
                    continue;
                }
                let gain = score(&left, k) + score(&right, n - k);
                // Strictly-greater keeps the first candidate in
                // (feature asc, threshold asc) scan order on ties.
                if best.as_ref().is_none_or(|(g, ..)| gain > *g) {
                    let mut threshold = lo + (hi - lo) / 2.0;
                    if !(threshold > lo && threshold < hi) {
                        // Adjacent floats: fall back to the exact left
                        // value so `<= threshold` still splits at k.
                        threshold = lo;
                    }
                    best = Some((gain, feature, threshold, sorted.clone(), k));
                }
            }
        }
        let Some((gain, feature, threshold, order, k)) = best else {
            return leaf_id(&mut self.nodes);
        };
        if gain <= parent_score {
            return leaf_id(&mut self.nodes);
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            feature,
            threshold,
            left: 0,
            right: 0,
            label,
        });
        let left = self.build(xs, ys, &order[..k], depth + 1);
        let right = self.build(xs, ys, &order[k..], depth + 1);
        self.nodes[id].left = left;
        self.nodes[id].right = right;
        id
    }

    /// Every internal node's `(feature, threshold)` test, in node-creation
    /// (depth-first, root-first) order — the interpretability surface the
    /// EXPERIMENTS doc compares against the mutual-information ranking.
    pub fn split_features(&self) -> Vec<(usize, f64)> {
        self.nodes
            .iter()
            .filter(|n| n.feature != LEAF)
            .map(|n| (n.feature, n.threshold))
            .collect()
    }

    /// Number of nodes (0 before the first fit).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` until the first fit.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The hyperparameters this tree was constructed with.
    pub fn params(&self) -> TreeParams {
        self.params
    }
}

/// Index of the largest count; exact ties go to the smallest class.
fn majority(counts: &[u64]) -> usize {
    let mut best = 0usize;
    for (c, &v) in counts.iter().enumerate() {
        if v > counts[best] {
            best = c;
        }
    }
    best
}

/// `sum(counts²) / n` — the negated, count-weighted Gini impurity term.
fn score(counts: &[u64], n: usize) -> f64 {
    let sq: u64 = counts.iter().map(|&c| c * c).sum();
    sq as f64 / n as f64
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset) {
        *self = DecisionTree::fit(data, self.params);
    }

    fn predict(&self, x: &[f64]) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        assert_eq!(
            x.len(),
            self.dims,
            "tree fitted on {} features cannot score a {}-feature query",
            self.dims,
            x.len()
        );
        let mut q = x.to_vec();
        if let Some(n) = &self.normalizer {
            n.apply(&mut q);
        }
        let mut at = 0usize;
        loop {
            let node = self.nodes[at];
            if node.feature == LEAF {
                return node.label;
            }
            at = if q[node.feature] <= node.threshold {
                node.left
            } else {
                node.right
            };
        }
    }

    fn name(&self) -> &str {
        "Tree"
    }

    fn fresh(&self) -> Box<dyn Classifier> {
        Box::new(DecisionTree::new(self.params))
    }

    fn save(&self) -> Json {
        Json::obj([
            ("kind", Json::Str("Tree".into())),
            ("params", self.params.to_json()),
            ("classes", Json::Num(self.classes as f64)),
            ("dims", Json::Num(self.dims as f64)),
            (
                "normalizer",
                match &self.normalizer {
                    Some(n) => n.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "nodes",
                Json::Arr(
                    self.nodes
                        .iter()
                        .map(|n| {
                            Json::obj([
                                (
                                    "feature",
                                    if n.feature == LEAF {
                                        Json::Null
                                    } else {
                                        Json::Num(n.feature as f64)
                                    },
                                ),
                                ("threshold", Json::Num(n.threshold)),
                                ("left", Json::Num(n.left as f64)),
                                ("right", Json::Num(n.right as f64)),
                                ("label", Json::Num(n.label as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn load(&mut self, state: &Json) -> Result<(), String> {
        expect_kind(state, "Tree")?;
        let params = TreeParams::from_json(state.get("params").ok_or("Tree state has no params")?)?;
        let whole = |key: &str| {
            state
                .get(key)
                .and_then(Json::as_num)
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .map(|v| v as usize)
                .ok_or_else(|| format!("Tree state has no whole {key}"))
        };
        let classes = whole("classes")?;
        let dims = whole("dims")?;
        let normalizer = match state.get("normalizer") {
            Some(Json::Null) => None,
            Some(doc) => Some(MinMaxNormalizer::from_json(doc)?),
            None => return Err("Tree state has no normalizer".into()),
        };
        let raw = state
            .get("nodes")
            .and_then(Json::as_arr)
            .ok_or("Tree state has no nodes")?;
        let mut nodes = Vec::with_capacity(raw.len());
        for doc in raw {
            let num = |key: &str| {
                doc.get(key)
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("Tree node has no {key}"))
            };
            let feature = match doc.get("feature") {
                Some(Json::Null) => LEAF,
                Some(v) => {
                    let f = v
                        .as_num()
                        .filter(|f| *f >= 0.0 && f.fract() == 0.0)
                        .ok_or("Tree node feature is not a whole number")?
                        as usize;
                    if f >= dims {
                        return Err(format!("Tree node splits on feature {f} of {dims}"));
                    }
                    f
                }
                None => return Err("Tree node has no feature".into()),
            };
            let threshold = num("threshold")?;
            if !threshold.is_finite() {
                return Err("Tree node threshold is not finite".into());
            }
            let (left, right, label) = (num("left")?, num("right")?, num("label")?);
            let node = Node {
                feature,
                threshold,
                left: left as usize,
                right: right as usize,
                label: label as usize,
            };
            if node.label >= classes.max(1) {
                return Err("Tree node label out of class range".into());
            }
            if node.feature != LEAF && (node.left >= raw.len() || node.right >= raw.len()) {
                return Err("Tree node child index out of range".into());
            }
            nodes.push(node);
        }
        *self = DecisionTree {
            params,
            normalizer,
            nodes,
            classes,
            dims,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(x: Vec<Vec<f64>>, y: Vec<usize>, classes: usize) -> Dataset {
        let n = x.len();
        let d = x[0].len();
        Dataset::new(
            x,
            y,
            classes,
            (0..d).map(|j| format!("f{j}")).collect(),
            (0..n).map(|i| format!("e{i}")).collect(),
        )
    }

    fn clusters() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)].iter().enumerate() {
            for k in 0..6 {
                x.push(vec![cx + 0.2 * (k % 3) as f64, cy + 0.2 * (k / 3) as f64]);
                y.push(c);
            }
        }
        dataset(x, y, 3)
    }

    #[test]
    fn learns_separable_clusters() {
        let d = clusters();
        let tree = DecisionTree::fit(&d, TreeParams::default());
        for (x, &y) in d.x.iter().zip(&d.y) {
            assert_eq!(Classifier::predict(&tree, x), y);
        }
        assert!(!tree.split_features().is_empty());
    }

    #[test]
    fn splits_pick_the_informative_feature() {
        // Feature 0 is pure noise-free signal, feature 1 is constant:
        // every split must test feature 0.
        let d = dataset(
            vec![
                vec![0.0, 7.0],
                vec![1.0, 7.0],
                vec![10.0, 7.0],
                vec![11.0, 7.0],
            ],
            vec![0, 0, 1, 1],
            2,
        );
        let tree = DecisionTree::fit(
            &d,
            TreeParams {
                min_leaf: 1,
                ..TreeParams::default()
            },
        );
        let splits = tree.split_features();
        assert!(!splits.is_empty());
        assert!(splits.iter().all(|&(f, _)| f == 0), "{splits:?}");
    }

    #[test]
    fn depth_zero_is_the_majority_leaf() {
        let d = dataset(vec![vec![0.0], vec![1.0], vec![2.0]], vec![1, 1, 0], 2);
        let tree = DecisionTree::fit(
            &d,
            TreeParams {
                max_depth: 0,
                min_leaf: 1,
            },
        );
        assert_eq!(tree.len(), 1);
        for x in &d.x {
            assert_eq!(Classifier::predict(&tree, x), 1);
        }
    }

    #[test]
    fn majority_ties_pick_the_smallest_class() {
        assert_eq!(majority(&[2, 2, 1]), 0);
        assert_eq!(majority(&[1, 3, 3]), 1);
        assert_eq!(majority(&[0, 0, 0]), 0);
    }

    #[test]
    fn min_leaf_bounds_leaf_sizes() {
        let d = clusters();
        let tree = DecisionTree::fit(
            &d,
            TreeParams {
                max_depth: 16,
                min_leaf: 4,
            },
        );
        // Count examples reaching each leaf by replaying the training set.
        let mut reach = vec![0usize; tree.len()];
        let xs = tree.normalizer.as_ref().unwrap().transform(&d.x);
        for q in &xs {
            let mut at = 0usize;
            loop {
                let node = tree.nodes[at];
                if node.feature == LEAF {
                    reach[at] += 1;
                    break;
                }
                at = if q[node.feature] <= node.threshold {
                    node.left
                } else {
                    node.right
                };
            }
        }
        for (id, node) in tree.nodes.iter().enumerate() {
            if node.feature == LEAF {
                assert!(reach[id] >= 4, "leaf {id} holds {} examples", reach[id]);
            }
        }
    }

    #[test]
    fn refit_is_deterministic() {
        let d = clusters();
        let a = DecisionTree::fit(&d, TreeParams::default());
        let b = DecisionTree::fit(&d, TreeParams::default());
        assert_eq!(a.nodes, b.nodes);
    }

    #[test]
    fn unfitted_predicts_zero() {
        let tree = DecisionTree::new(TreeParams::default());
        assert_eq!(Classifier::predict(&tree, &[1.0, 2.0]), 0);
    }

    #[test]
    fn save_load_round_trips_bitwise() {
        let d = clusters();
        let tree = DecisionTree::fit(&d, TreeParams::default());
        let state = tree.save();
        let reparsed = Json::parse(&state.to_string()).expect("valid JSON");
        let mut copy = DecisionTree::new(TreeParams {
            max_depth: 1,
            min_leaf: 1,
        });
        copy.load(&reparsed).expect("load");
        assert_eq!(copy.nodes, tree.nodes);
        assert_eq!(copy.params, tree.params);
        for x in &d.x {
            assert_eq!(Classifier::predict(&copy, x), Classifier::predict(&tree, x));
        }
    }

    #[test]
    fn load_rejects_malformed_states() {
        let d = clusters();
        let tree = DecisionTree::fit(&d, TreeParams::default());
        let good = tree.save().to_string();
        let mut victim = DecisionTree::new(TreeParams::default());
        for bad in [
            good.replace("\"kind\":\"Tree\"", "\"kind\":\"NN\""),
            good.replace("\"min_leaf\":2", "\"min_leaf\":0"),
            good.replace("\"left\":", "\"left\":99999, \"was\":"),
        ] {
            let doc = Json::parse(&bad).expect("still JSON");
            assert!(victim.load(&doc).is_err(), "should reject: {bad}");
        }
        assert!(victim.is_empty(), "failed loads must not mutate");
    }

    #[test]
    #[should_panic(expected = "tree fitted on 2 features")]
    fn query_dimension_mismatch_rejected() {
        let d = clusters();
        let tree = DecisionTree::fit(&d, TreeParams::default());
        let _ = Classifier::predict(&tree, &[0.0]);
    }
}
