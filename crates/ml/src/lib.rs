//! # loopml-ml — the supervised-learning stack
//!
//! From-scratch implementations of every learning component the paper
//! uses (*Stephenson & Amarasinghe, CGO 2005*):
//!
//! * [`Dataset`] / [`MinMaxNormalizer`] — labeled loop examples with the
//!   paper's equal-weight feature normalization;
//! * [`Classifier`] — the object-safe `fit`/`predict`/`name` interface
//!   every model implements, so pipelines work with `&mut dyn Classifier`;
//! * [`NearNeighbors`] — radius-0.3 near-neighbor classification with
//!   majority vote, 1-NN fallback, and vote confidence (§5.1);
//! * [`MulticlassSvm`] — RBF-kernel soft-margin SVMs combined through
//!   one-vs-rest output codes with Hamming decoding (§5.2);
//! * [`DecisionTree`] / [`BaggedForest`] / [`Mlp`] — the post-paper model
//!   zoo: a deterministic CART tree with interpretable splits, a
//!   bootstrap-aggregated forest over it, and a one-hidden-layer
//!   perceptron with a fixed SGD schedule — all behind [`Classifier`];
//! * [`loocv_nn`] / [`loocv_svm`] / [`loocv`] — leave-one-out
//!   cross validation (§4.2), plus [`logo_predictions`] for the
//!   leave-one-benchmark-out protocol of Figures 4/5;
//! * [`Lda2d`] — the 2-D linear-discriminant projection behind Figures
//!   1 and 2;
//! * [`mutual_information`] / [`greedy_forward`] — the feature-selection
//!   methods of Tables 3 and 4, with [`greedy_forward_nn`] the
//!   incremental fast path for the 1-NN criterion;
//! * [`DistanceMatrix`] / [`FeatureDistCache`] — pairwise-distance
//!   caches: derive an RBF kernel for any gamma without re-touching
//!   feature vectors, and evaluate greedy candidate subsets with an
//!   O(n²) accumulate (distances are additive across features);
//! * [`sweep`] — LOGO-scored hyperparameter selection across every model
//!   family (SVM gamma × C grid, NN radius, tree depth/min-leaf, forest
//!   size, MLP width/lr) over exactly one shared distance matrix, with a
//!   deterministic cross-family winner;
//! * [`linalg`] — the small dense linear-algebra kernel underneath LDA.
//!
//! Cross-validation folds, greedy candidates, and the one-vs-rest SVM
//! trainers all fan out across [`loopml_rt::par_map`] workers
//! (`LOOPML_THREADS` overrides the count), with results bit-identical to
//! serial runs — each unit of work is a pure function, the pool only
//! reschedules it.
//!
//! # Examples
//!
//! ```
//! use loopml_ml::{loocv_nn, Dataset, DEFAULT_RADIUS};
//!
//! // Two separable classes.
//! let x = vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1]];
//! let y = vec![0, 0, 1, 1];
//! let data = Dataset::new(
//!     x, y, 2,
//!     vec!["f".into()],
//!     (0..4).map(|i| format!("e{i}")).collect(),
//! );
//! let cv = loocv_nn(&data, DEFAULT_RADIUS);
//! assert_eq!(cv.accuracy, 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod classify;
pub mod dataset;
pub mod distcache;
pub mod feature_select;
pub mod forest;
pub mod lda;
pub mod linalg;
pub mod loocv;
pub mod mlp;
pub mod nn;
pub mod svm;
pub mod sweep;
pub mod tree;

pub use classify::{Classifier, Constant};
pub use dataset::{dist2, Dataset, MinMaxNormalizer};
pub use distcache::{
    distance_builds, peak_distance_bytes, peak_kernel_bytes, reset_distance_bytes,
    reset_kernel_bytes, tile_budget_bytes, tile_rows_for, DistanceMatrix, FeatureDistCache,
    DEFAULT_TILE_BUDGET_BYTES,
};
pub use feature_select::{
    greedy_forward, greedy_forward_nn, greedy_forward_nn_threads, greedy_forward_nn_tiled,
    greedy_forward_nn_tiled_threads, greedy_forward_threads, mutual_information,
    nn1_training_error, GreedyStep, ScoredFeature, MIS_BINS,
};
pub use forest::{BaggedForest, ForestParams};
pub use lda::Lda2d;
pub use linalg::Matrix;
pub use loocv::{
    logo_accuracy, logo_accuracy_threads, logo_predictions, logo_predictions_threads, loocv,
    loocv_nn, loocv_nn_threads, loocv_svm, loocv_threads, CvResult,
};
pub use mlp::{Mlp, MlpParams};
pub use nn::{NearNeighbors, NnPrediction, DEFAULT_RADIUS};
pub use svm::{decode, KernelCache, MulticlassSvm, SvmParams};
pub use sweep::{
    sweep, sweep_threads, sweep_tiled_threads, ForestCell, ForestGrid, MlpCell, MlpGrid,
    RadiusCell, SvmCell, SvmGrid, SweepConfig, SweepReport, TreeCell, TreeGrid,
};
pub use tree::{DecisionTree, TreeParams};

#[cfg(test)]
mod proptests {
    use super::*;
    use loopml_rt::{check, Rng};

    /// Random dataset: 2..5 classes, 8..30 examples, 1..4 features with
    /// values in [-100, 100).
    fn arb_dataset(rng: &mut Rng) -> Dataset {
        let classes = rng.gen_range(2..5usize);
        let n = rng.gen_range(8..30usize);
        let d = rng.gen_range(1..4usize);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-100.0..100.0)).collect())
            .collect();
        let y: Vec<usize> = (0..n).map(|_| rng.gen_range(0..classes)).collect();
        Dataset::new(
            x,
            y,
            classes,
            (0..d).map(|j| format!("f{j}")).collect(),
            (0..n).map(|i| format!("e{i}")).collect(),
        )
    }

    #[test]
    fn normalization_bounds() {
        check("normalization_bounds", 24, |rng| {
            let data = arb_dataset(rng);
            let n = MinMaxNormalizer::fit(&data.x);
            for row in n.transform(&data.x) {
                for v in row {
                    assert!((0.0..=1.0).contains(&v));
                }
            }
        });
    }

    #[test]
    fn nn_loocv_accuracy_is_fraction() {
        check("nn_loocv_accuracy_is_fraction", 24, |rng| {
            let data = arb_dataset(rng);
            let r = loocv_nn(&data, DEFAULT_RADIUS);
            assert!((0.0..=1.0).contains(&r.accuracy));
            assert_eq!(r.predictions.len(), data.len());
            for p in r.predictions {
                assert!(p < data.classes);
            }
        });
    }

    #[test]
    fn svm_predictions_in_range() {
        check("svm_predictions_in_range", 24, |rng| {
            let data = arb_dataset(rng);
            let svm = MulticlassSvm::fit(
                &data,
                SvmParams {
                    max_sweeps: 15,
                    ..SvmParams::default()
                },
            );
            for x in &data.x {
                assert!(svm.predict(x) < data.classes);
            }
        });
    }

    #[test]
    fn mis_is_nonnegative_and_complete() {
        check("mis_is_nonnegative_and_complete", 24, |rng| {
            let data = arb_dataset(rng);
            let scores = mutual_information(&data);
            assert_eq!(scores.len(), data.dims());
            for s in scores {
                assert!(s.score >= -1e-9);
            }
        });
    }
}
