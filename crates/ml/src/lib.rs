//! # loopml-ml — the supervised-learning stack
//!
//! From-scratch implementations of every learning component the paper
//! uses (*Stephenson & Amarasinghe, CGO 2005*):
//!
//! * [`Dataset`] / [`MinMaxNormalizer`] — labeled loop examples with the
//!   paper's equal-weight feature normalization;
//! * [`NearNeighbors`] — radius-0.3 near-neighbor classification with
//!   majority vote, 1-NN fallback, and vote confidence (§5.1);
//! * [`MulticlassSvm`] — RBF-kernel soft-margin SVMs combined through
//!   one-vs-rest output codes with Hamming decoding (§5.2);
//! * [`loocv_nn`] / [`loocv_svm`] / [`loocv_generic`] — leave-one-out
//!   cross validation (§4.2), plus [`logo_predictions`] for the
//!   leave-one-benchmark-out protocol of Figures 4/5;
//! * [`Lda2d`] — the 2-D linear-discriminant projection behind Figures
//!   1 and 2;
//! * [`mutual_information`] / [`greedy_forward`] — the feature-selection
//!   methods of Tables 3 and 4;
//! * [`linalg`] — the small dense linear-algebra kernel underneath LDA.
//!
//! # Examples
//!
//! ```
//! use loopml_ml::{loocv_nn, Dataset, DEFAULT_RADIUS};
//!
//! // Two separable classes.
//! let x = vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1]];
//! let y = vec![0, 0, 1, 1];
//! let data = Dataset::new(
//!     x, y, 2,
//!     vec!["f".into()],
//!     (0..4).map(|i| format!("e{i}")).collect(),
//! );
//! let cv = loocv_nn(&data, DEFAULT_RADIUS);
//! assert_eq!(cv.accuracy, 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataset;
pub mod feature_select;
pub mod lda;
pub mod linalg;
pub mod loocv;
pub mod nn;
pub mod svm;

pub use dataset::{dist2, Dataset, MinMaxNormalizer};
pub use feature_select::{
    greedy_forward, mutual_information, nn1_training_error, GreedyStep, ScoredFeature, MIS_BINS,
};
pub use lda::Lda2d;
pub use linalg::Matrix;
pub use loocv::{logo_predictions, loocv_generic, loocv_nn, loocv_svm, CvResult};
pub use nn::{NearNeighbors, NnPrediction, DEFAULT_RADIUS};
pub use svm::{decode, KernelCache, MulticlassSvm, SvmParams};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_dataset() -> impl Strategy<Value = Dataset> {
        (2usize..5, 8usize..30, 1usize..4).prop_flat_map(|(classes, n, d)| {
            proptest::collection::vec(
                (
                    proptest::collection::vec(-100.0f64..100.0, d),
                    0usize..classes,
                ),
                n,
            )
            .prop_map(move |rows| {
                let x: Vec<Vec<f64>> = rows.iter().map(|(r, _)| r.clone()).collect();
                let y: Vec<usize> = rows.iter().map(|(_, l)| *l).collect();
                Dataset::new(
                    x,
                    y,
                    classes,
                    (0..d).map(|j| format!("f{j}")).collect(),
                    (0..n).map(|i| format!("e{i}")).collect(),
                )
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn normalization_bounds(data in arb_dataset()) {
            let n = MinMaxNormalizer::fit(&data.x);
            for row in n.transform(&data.x) {
                for v in row {
                    prop_assert!((0.0..=1.0).contains(&v));
                }
            }
        }

        #[test]
        fn nn_loocv_accuracy_is_fraction(data in arb_dataset()) {
            let r = loocv_nn(&data, DEFAULT_RADIUS);
            prop_assert!((0.0..=1.0).contains(&r.accuracy));
            prop_assert_eq!(r.predictions.len(), data.len());
            for p in r.predictions {
                prop_assert!(p < data.classes);
            }
        }

        #[test]
        fn svm_predictions_in_range(data in arb_dataset()) {
            let svm = MulticlassSvm::fit(&data, SvmParams {
                max_sweeps: 15, ..SvmParams::default()
            });
            for x in &data.x {
                prop_assert!(svm.predict(x) < data.classes);
            }
        }

        #[test]
        fn mis_is_nonnegative_and_complete(data in arb_dataset()) {
            let scores = mutual_information(&data);
            prop_assert_eq!(scores.len(), data.dims());
            for s in scores {
                prop_assert!(s.score >= -1e-9);
            }
        }
    }
}
