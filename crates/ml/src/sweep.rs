//! Hyperparameter sweeps over one cached distance matrix.
//!
//! The paper fixes the NN radius (0.3) and the SVM kernel width by hand;
//! this module *selects* them by the same train-many/pick-by-held-out-
//! error discipline the paper applies to feature selection (§6). The
//! expensive object every candidate shares is the n×n pairwise distance
//! matrix over normalized features, and everything downstream is a cheap
//! function of it:
//!
//! * an RBF kernel for any gamma is one exp-pass over the matrix
//!   ([`KernelCache::from_distances`]) — never a second O(n²·d) distance
//!   computation;
//! * a different C re-runs coordinate descent on an existing kernel;
//! * a different NN radius is just a new threshold over cached d².
//!
//! So the whole sweep performs **exactly one** [`DistanceMatrix::compute`]
//! (asserted via [`distance_builds`] by tests and by the `repro sweep`
//! report). Each grid cell is scored by leave-one-benchmark-out (LOGO)
//! accuracy — the Figure 4/5 protocol: all loops of a benchmark are
//! excluded from training when that benchmark is evaluated. For the SVM
//! this uses the dual coordinate-descent trainer's active-set restriction:
//! dual variables stay zero outside the training fold, so the full-corpus
//! kernel serves every fold without per-fold kernels.
//!
//! One deliberate deviation from a fully per-fold protocol: features are
//! min-max normalized over the *full* dataset, not refitted per LOGO fold
//! (refitting would need per-fold distance matrices, defeating the single
//! shared cache). The same normalization is used for every cell, so the
//! comparison between cells — the argmax the sweep exists to find — is
//! apples-to-apples. See DESIGN.md §10.
//!
//! Grid cells fan out across [`loopml_rt::par_map`] workers; every unit
//! of work is a pure function and per-cell error tallies are integers, so
//! results are bit-identical at any `LOOPML_THREADS` setting.

use crate::dataset::{dist2, Dataset, MinMaxNormalizer};
use crate::distcache::{
    distance_builds, record_streaming_build, tile_budget_bytes, tile_rows_for, DistAlloc,
    DistanceMatrix,
};
use crate::nn::DEFAULT_RADIUS;
use crate::svm::{decision_at, decode, train_binary, KernelCache, SvmParams};
use loopml_rt::{num_threads, par_map_threads};

/// The gamma × C grid swept for the SVM, plus the non-swept
/// hyperparameters every cell shares.
#[derive(Debug, Clone, PartialEq)]
pub struct SvmGrid {
    /// RBF kernel widths to try.
    pub gammas: Vec<f64>,
    /// Soft-margin penalties to try.
    pub cs: Vec<f64>,
    /// Tolerance / sweep budget shared by every cell; `base.gamma` and
    /// `base.c` are ignored (overwritten per cell).
    pub base: SvmParams,
}

impl Default for SvmGrid {
    /// A 3×3 grid bracketing the paper defaults (gamma 1.0, C 10.0) by
    /// 4× / 10× in each direction, with a reduced sweep budget — the
    /// sweep ranks cells, it does not need each to be converged to the
    /// last KKT digit.
    fn default() -> Self {
        SvmGrid {
            gammas: vec![0.25, 1.0, 4.0],
            cs: vec![1.0, 10.0, 100.0],
            base: SvmParams {
                max_sweeps: 30,
                ..SvmParams::default()
            },
        }
    }
}

/// Everything `sweep` needs besides the data: the SVM grid and the NN
/// radii to threshold the cached distances with.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// SVM gamma × C grid.
    pub svm: SvmGrid,
    /// NN neighborhood radii to try.
    pub radii: Vec<f64>,
}

impl Default for SweepConfig {
    /// The default grid plus five radii bracketing the paper's 0.3.
    fn default() -> Self {
        SweepConfig {
            svm: SvmGrid::default(),
            radii: vec![0.15, 0.3, 0.45, 0.6, 1.0],
        }
    }
}

/// One evaluated SVM grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmCell {
    /// RBF kernel width of this cell.
    pub gamma: f64,
    /// Soft-margin penalty of this cell.
    pub c: f64,
    /// Leave-one-benchmark-out accuracy.
    pub accuracy: f64,
}

/// One evaluated NN radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadiusCell {
    /// Neighborhood radius.
    pub radius: f64,
    /// Leave-one-benchmark-out accuracy.
    pub accuracy: f64,
}

/// The full result of a hyperparameter sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Every SVM grid cell, gamma-major (all C for the first gamma, then
    /// the next gamma, …).
    pub svm_cells: Vec<SvmCell>,
    /// Every NN radius, in configuration order.
    pub nn_cells: Vec<RadiusCell>,
    /// The winning SVM hyperparameters (highest LOGO accuracy; ties go to
    /// the earliest cell in grid order). `base` defaults when the grid is
    /// empty.
    pub selected_svm: SvmParams,
    /// LOGO accuracy of [`selected_svm`](Self::selected_svm) (0.0 when
    /// the grid is empty).
    pub svm_accuracy: f64,
    /// The winning NN radius ([`DEFAULT_RADIUS`] when no radii given).
    pub selected_radius: f64,
    /// LOGO accuracy of [`selected_radius`](Self::selected_radius) (0.0
    /// when no radii were given).
    pub nn_accuracy: f64,
    /// How many [`DistanceMatrix::compute`] calls the sweep performed —
    /// the design says exactly one, and this is the proof.
    pub distance_builds: u64,
    /// Number of examples swept over.
    pub n_examples: usize,
    /// Number of LOGO groups (benchmarks).
    pub n_groups: usize,
}

/// Sweeps the SVM grid and NN radii over `data`, scoring every candidate
/// by leave-one-group-out accuracy (`group[i]` is example `i`'s
/// benchmark), with exactly one pairwise distance computation.
///
/// # Panics
///
/// Panics if `data` is empty or `group.len() != data.len()`.
pub fn sweep(data: &Dataset, group: &[usize], cfg: &SweepConfig) -> SweepReport {
    sweep_threads(data, group, cfg, num_threads())
}

/// [`sweep`] with an explicit worker count (used by the determinism tests
/// to force serial vs. multi-threaded execution).
///
/// Picks its own memory strategy: when the n×n distance matrix fits the
/// [`tile_budget_bytes`] budget it is materialized once and shared
/// (every kernel an exp-pass over it); past the budget the sweep runs
/// [`sweep_tiled_threads`], which streams the distance pass row by row
/// and never holds more than `workers · n · 8` distance bytes. Both
/// strategies are bit-identical.
pub fn sweep_threads(
    data: &Dataset,
    group: &[usize],
    cfg: &SweepConfig,
    threads: usize,
) -> SweepReport {
    let n = data.len();
    let dense_bytes = (n as u64) * (n as u64) * 8;
    if dense_bytes > tile_budget_bytes() {
        return sweep_tiled_threads(data, group, cfg, tile_rows_for(n, threads), threads);
    }
    assert!(!data.is_empty(), "cannot sweep an empty dataset");
    assert_eq!(group.len(), data.len(), "one group per example");
    let builds_before = distance_builds();

    let xs = MinMaxNormalizer::fit(&data.x).transform(&data.x);
    let dm = DistanceMatrix::compute(&xs);

    // One kernel per gamma, each an exp-pass over the shared matrix.
    let kernels: Vec<KernelCache> = par_map_threads(threads, &cfg.svm.gammas, |&g| {
        KernelCache::from_distances(&dm, g)
    });

    // NN: a radius is a threshold over the cached d² — replicate
    // `predict_excluding`'s vote semantics with the whole group excluded.
    let radius_indices: Vec<usize> = (0..cfg.radii.len()).collect();
    let nn_cells: Vec<RadiusCell> = par_map_threads(threads, &radius_indices, |&ri| {
        let r2 = cfg.radii[ri] * cfg.radii[ri];
        let mut correct = 0u64;
        for i in 0..n {
            if nn_predict_row(dm.row(i), i, data, group, r2) == data.y[i] {
                correct += 1;
            }
        }
        RadiusCell {
            radius: cfg.radii[ri],
            accuracy: correct as f64 / n as f64,
        }
    });

    finish_report(data, group, cfg, threads, &kernels, nn_cells, builds_before)
}

/// Streaming sibling of [`sweep_threads`]: the pairwise distance pass is
/// evaluated in row strips of `tile_rows` examples, each worker holding
/// one n-length distance row at a time. Every row immediately feeds (a)
/// each gamma's kernel strip — the same `exp(-γ·d²) + 1` entries
/// [`KernelCache::from_distances`] produces — and (b) the NN radius
/// tallies, then is overwritten; the full n×n distance matrix never
/// exists. The assembled kernels are what the SVM trainer inherently
/// needs, so kernel memory is unchanged; *distance* memory drops from
/// `n² · 8` to `workers · n · 8` bytes. Counts toward
/// [`distance_builds`] as one build (every pair is touched exactly
/// once). Bit-identical to the dense path at any `tile_rows` and any
/// `threads`: `dist2` is bitwise symmetric, so row-major evaluation
/// equals the mirrored dense matrix, and all tallies are integers.
///
/// # Panics
///
/// Panics if `data` is empty, `group.len() != data.len()`, or
/// `tile_rows` is zero.
pub fn sweep_tiled_threads(
    data: &Dataset,
    group: &[usize],
    cfg: &SweepConfig,
    tile_rows: usize,
    threads: usize,
) -> SweepReport {
    assert!(!data.is_empty(), "cannot sweep an empty dataset");
    assert_eq!(group.len(), data.len(), "one group per example");
    assert!(tile_rows > 0, "tile_rows must be positive");
    let builds_before = distance_builds();

    let n = data.len();
    let xs = MinMaxNormalizer::fit(&data.x).transform(&data.x);
    record_streaming_build();

    let tile = tile_rows.min(n);
    let strips: Vec<(usize, usize)> = (0..n)
        .step_by(tile)
        .map(|lo| (lo, (lo + tile).min(n)))
        .collect();
    let r2s: Vec<f64> = cfg.radii.iter().map(|r| r * r).collect();
    let per_strip: Vec<(Vec<Vec<f64>>, Vec<u64>)> =
        par_map_threads(threads, &strips, |&(lo, hi)| {
            let rows = hi - lo;
            let _acct = DistAlloc::new((n * 8) as u64);
            let mut d2row = vec![0.0f64; n];
            let mut kstrips: Vec<Vec<f64>> = cfg
                .svm
                .gammas
                .iter()
                .map(|_| vec![0.0f64; rows * n])
                .collect();
            let mut correct = vec![0u64; cfg.radii.len()];
            for (r, i) in (lo..hi).enumerate() {
                for (j, d2) in d2row.iter_mut().enumerate() {
                    *d2 = dist2(&xs[i], &xs[j]);
                }
                for (gi, &g) in cfg.svm.gammas.iter().enumerate() {
                    let krow = &mut kstrips[gi][r * n..(r + 1) * n];
                    for (kv, &d2) in krow.iter_mut().zip(&d2row) {
                        *kv = (-g * d2).exp() + 1.0;
                    }
                }
                for (ri, &r2) in r2s.iter().enumerate() {
                    if nn_predict_row(&d2row, i, data, group, r2) == data.y[i] {
                        correct[ri] += 1;
                    }
                }
            }
            (kstrips, correct)
        });

    // Assemble each gamma's kernel from its strips (strip order is row
    // order) and fold the per-strip NN tallies.
    let kernels: Vec<KernelCache> = (0..cfg.svm.gammas.len())
        .map(|gi| {
            let mut k = Vec::with_capacity(n * n);
            for (kstrips, _) in &per_strip {
                k.extend_from_slice(&kstrips[gi]);
            }
            KernelCache::from_parts(n, k)
        })
        .collect();
    let mut nn_correct = vec![0u64; cfg.radii.len()];
    for (_, correct) in &per_strip {
        for (t, &c) in nn_correct.iter_mut().zip(correct) {
            *t += c;
        }
    }
    let nn_cells: Vec<RadiusCell> = cfg
        .radii
        .iter()
        .zip(&nn_correct)
        .map(|(&radius, &c)| RadiusCell {
            radius,
            accuracy: c as f64 / n as f64,
        })
        .collect();

    finish_report(data, group, cfg, threads, &kernels, nn_cells, builds_before)
}

/// Predicted label for example `i` given row `i` of the pairwise d²
/// matrix: `predict_excluding`'s vote semantics with `i`'s whole group
/// excluded (majority within the radius when strict, else nearest).
fn nn_predict_row(d2row: &[f64], i: usize, data: &Dataset, group: &[usize], r2: f64) -> usize {
    let mut votes = vec![0usize; data.classes];
    let mut in_radius = 0usize;
    let mut nearest: Option<(f64, usize)> = None;
    for (j, &d2) in d2row.iter().enumerate() {
        if group[j] == group[i] {
            continue;
        }
        if d2 <= r2 {
            votes[data.y[j]] += 1;
            in_radius += 1;
        }
        if nearest.is_none_or(|(best, _)| d2 < best) {
            nearest = Some((d2, data.y[j]));
        }
    }
    let best_class = (0..data.classes).max_by_key(|&c| votes[c]).unwrap_or(0);
    let best_votes = votes.get(best_class).copied().unwrap_or(0);
    let runner_up = (0..data.classes)
        .filter(|&c| c != best_class)
        .map(|c| votes[c])
        .max()
        .unwrap_or(0);
    if in_radius > 0 && best_votes > runner_up {
        best_class
    } else {
        nearest.map(|(_, y)| y).unwrap_or(0)
    }
}

/// Shared tail of both sweep strategies: scores the SVM grid by LOGO
/// over the per-gamma kernels, picks the winners, and assembles the
/// report.
fn finish_report(
    data: &Dataset,
    group: &[usize],
    cfg: &SweepConfig,
    threads: usize,
    kernels: &[KernelCache],
    nn_cells: Vec<RadiusCell>,
    builds_before: u64,
) -> SweepReport {
    let n = data.len();
    let mut groups: Vec<usize> = group.to_vec();
    groups.sort_unstable();
    groups.dedup();

    // Flatten (gamma, C, held-out group) into independent jobs: each
    // trains one multiclass machine on the fold's active set and counts
    // correct predictions on the held-out members. Integer tallies make
    // any job-to-worker assignment sum to the same accuracy.
    let n_groups = groups.len();
    let jobs: Vec<(usize, usize, usize)> = (0..cfg.svm.gammas.len())
        .flat_map(|gi| {
            (0..cfg.svm.cs.len()).flat_map(move |ci| (0..n_groups).map(move |fi| (gi, ci, fi)))
        })
        .collect();
    let correct_per_job: Vec<u64> = par_map_threads(threads, &jobs, |&(gi, ci, fi)| {
        let g = groups[fi];
        let members: Vec<usize> = (0..n).filter(|&i| group[i] == g).collect();
        let active: Vec<usize> = (0..n).filter(|&i| group[i] != g).collect();
        if active.is_empty() {
            // Empty training fold predicts class 0, like `logo_predictions`.
            return members.iter().filter(|&&i| data.y[i] == 0).count() as u64;
        }
        let params = SvmParams {
            gamma: cfg.svm.gammas[gi],
            c: cfg.svm.cs[ci],
            ..cfg.svm.base
        };
        let kc = &kernels[gi];
        let labels_by_class: Vec<Vec<f64>> = (0..data.classes)
            .map(|class| {
                data.y
                    .iter()
                    .map(|&y| if y == class { 1.0 } else { -1.0 })
                    .collect()
            })
            .collect();
        // One-vs-rest machines restricted to the fold's training set:
        // dual variables stay zero outside `active`, so the full-corpus
        // kernel is exact for this fold.
        let alphas: Vec<Vec<f64>> = labels_by_class
            .iter()
            .map(|labels| {
                train_binary(
                    kc,
                    labels,
                    &params,
                    None,
                    None,
                    params.max_sweeps,
                    Some(&active),
                )
            })
            .collect();
        members
            .iter()
            .filter(|&&i| {
                let decisions: Vec<f64> = labels_by_class
                    .iter()
                    .zip(&alphas)
                    .map(|(labels, alpha)| decision_at(kc, labels, alpha, i))
                    .collect();
                decode(&decisions) == data.y[i]
            })
            .count() as u64
    });

    let mut svm_cells = Vec::with_capacity(cfg.svm.gammas.len() * cfg.svm.cs.len());
    for (cell, chunk) in correct_per_job.chunks(groups.len().max(1)).enumerate() {
        let gi = cell / cfg.svm.cs.len().max(1);
        let ci = cell % cfg.svm.cs.len().max(1);
        svm_cells.push(SvmCell {
            gamma: cfg.svm.gammas[gi],
            c: cfg.svm.cs[ci],
            accuracy: chunk.iter().sum::<u64>() as f64 / n as f64,
        });
    }

    let best_svm = argmax_accuracy(svm_cells.iter().map(|c| c.accuracy));
    let (selected_svm, svm_accuracy) = match best_svm {
        Some(k) => (
            SvmParams {
                gamma: svm_cells[k].gamma,
                c: svm_cells[k].c,
                ..cfg.svm.base
            },
            svm_cells[k].accuracy,
        ),
        None => (cfg.svm.base, 0.0),
    };
    let best_nn = argmax_accuracy(nn_cells.iter().map(|c| c.accuracy));
    let (selected_radius, nn_accuracy) = match best_nn {
        Some(k) => (nn_cells[k].radius, nn_cells[k].accuracy),
        None => (DEFAULT_RADIUS, 0.0),
    };

    SweepReport {
        svm_cells,
        nn_cells,
        selected_svm,
        svm_accuracy,
        selected_radius,
        nn_accuracy,
        distance_builds: distance_builds() - builds_before,
        n_examples: n,
        n_groups: groups.len(),
    }
}

/// Index of the highest accuracy; exact ties go to the earliest index
/// (grid order), which is what makes selection independent of the worker
/// schedule.
fn argmax_accuracy(accuracies: impl Iterator<Item = f64>) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (k, a) in accuracies.enumerate() {
        if best.is_none_or(|(_, b)| a > b) {
            best = Some((k, a));
        }
    }
    best.map(|(k, _)| k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svm::KernelCache;

    /// Three well-separated clusters, each split across two "benchmarks"
    /// so LOGO folds still see every class.
    fn clusters() -> (Dataset, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut group = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for k in 0..8 {
                x.push(vec![cx + (k % 3) as f64 * 0.3, cy + (k / 3) as f64 * 0.3]);
                y.push(c);
                group.push(k % 2);
            }
        }
        let n = x.len();
        let data = Dataset::new(
            x,
            y,
            3,
            vec!["a".into(), "b".into()],
            (0..n).map(|i| format!("e{i}")).collect(),
        );
        (data, group)
    }

    #[test]
    fn sweep_scores_every_cell_and_selects_a_winner() {
        let (data, group) = clusters();
        let cfg = SweepConfig::default();
        let r = sweep_threads(&data, &group, &cfg, 1);
        assert_eq!(r.svm_cells.len(), cfg.svm.gammas.len() * cfg.svm.cs.len());
        assert_eq!(r.nn_cells.len(), cfg.radii.len());
        assert_eq!(r.n_examples, data.len());
        assert_eq!(r.n_groups, 2);
        for cell in &r.svm_cells {
            assert!((0.0..=1.0).contains(&cell.accuracy));
        }
        // Separable clusters with both groups covering every class: the
        // winners must classify well.
        assert!(r.svm_accuracy >= 0.9, "svm accuracy {}", r.svm_accuracy);
        assert!(r.nn_accuracy >= 0.9, "nn accuracy {}", r.nn_accuracy);
        assert!(cfg.svm.gammas.contains(&r.selected_svm.gamma));
        assert!(cfg.svm.cs.contains(&r.selected_svm.c));
        assert!(cfg.radii.contains(&r.selected_radius));
        // The selected accuracy really is the maximum over cells.
        let max_svm = r
            .svm_cells
            .iter()
            .map(|c| c.accuracy)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(r.svm_accuracy, max_svm);
    }

    #[test]
    fn per_cell_kernels_match_direct_compute() {
        // The sweep derives every gamma's kernel from the one cached
        // distance matrix; each must equal a from-scratch KernelCache
        // bit-for-bit.
        let (data, _) = clusters();
        let xs = MinMaxNormalizer::fit(&data.x).transform(&data.x);
        let dm = DistanceMatrix::compute(&xs);
        for gamma in SvmGrid::default().gammas {
            let direct = KernelCache::compute(&xs, gamma);
            let derived = KernelCache::from_distances(&dm, gamma);
            assert_eq!(direct.entries(), derived.entries(), "gamma={gamma}");
        }
    }

    #[test]
    fn tiled_sweep_is_bit_identical_to_dense() {
        // The streaming sweep must reproduce the dense report exactly —
        // cells, winners, and the one-build invariant — at every tile
        // size and thread count.
        let (data, group) = clusters();
        let cfg = SweepConfig::default();
        let dense = sweep_threads(&data, &group, &cfg, 1);
        assert_eq!(dense.distance_builds, 1);
        for tile in [1usize, 7, 64] {
            for threads in [1usize, 4] {
                let tiled = sweep_tiled_threads(&data, &group, &cfg, tile, threads);
                assert_eq!(dense, tiled, "tile={tile} threads={threads}");
            }
        }
    }

    #[test]
    fn empty_grid_falls_back_to_defaults() {
        let (data, group) = clusters();
        let cfg = SweepConfig {
            svm: SvmGrid {
                gammas: vec![],
                cs: vec![],
                ..SvmGrid::default()
            },
            radii: vec![],
        };
        let r = sweep_threads(&data, &group, &cfg, 1);
        assert!(r.svm_cells.is_empty());
        assert!(r.nn_cells.is_empty());
        assert_eq!(r.selected_svm, cfg.svm.base);
        assert_eq!(r.selected_radius, DEFAULT_RADIUS);
    }

    #[test]
    fn ties_select_the_earliest_cell() {
        assert_eq!(argmax_accuracy([0.5, 0.5, 0.5].into_iter()), Some(0));
        assert_eq!(argmax_accuracy([0.1, 0.7, 0.7].into_iter()), Some(1));
        assert_eq!(argmax_accuracy(std::iter::empty()), None);
    }

    #[test]
    fn singleton_group_predicts_like_logo() {
        // One group holds everything: every fold's training set is empty,
        // so predictions are class 0 — the `logo_predictions` convention.
        let (data, _) = clusters();
        let group = vec![0usize; data.len()];
        let cfg = SweepConfig::default();
        let r = sweep_threads(&data, &group, &cfg, 1);
        let class0 = data.y.iter().filter(|&&y| y == 0).count() as f64 / data.len() as f64;
        for cell in &r.svm_cells {
            assert_eq!(cell.accuracy, class0);
        }
        assert_eq!(r.n_groups, 1);
    }
}
