//! Hyperparameter sweeps over one cached distance matrix.
//!
//! The paper fixes the NN radius (0.3) and the SVM kernel width by hand;
//! this module *selects* them by the same train-many/pick-by-held-out-
//! error discipline the paper applies to feature selection (§6). The
//! expensive object every candidate shares is the n×n pairwise distance
//! matrix over normalized features, and everything downstream is a cheap
//! function of it:
//!
//! * an RBF kernel for any gamma is one exp-pass over the matrix
//!   ([`KernelCache::from_distances`]) — never a second O(n²·d) distance
//!   computation;
//! * a different C re-runs coordinate descent on an existing kernel;
//! * a different NN radius is just a new threshold over cached d².
//!
//! So the whole sweep performs **exactly one** [`DistanceMatrix::compute`]
//! (asserted via [`distance_builds`] by tests and by the `repro sweep`
//! report). Each grid cell is scored by leave-one-benchmark-out (LOGO)
//! accuracy — the Figure 4/5 protocol: all loops of a benchmark are
//! excluded from training when that benchmark is evaluated. For the SVM
//! this uses the dual coordinate-descent trainer's active-set restriction:
//! dual variables stay zero outside the training fold, so the full-corpus
//! kernel serves every fold without per-fold kernels.
//!
//! Beyond the paper's two models, the sweep carries a **model-family
//! axis**: decision-tree depth × min-leaf, bagged-forest size, and MLP
//! width × learning rate are scored by the same LOGO protocol and ranked
//! against the NN and SVM winners, yielding a single cross-family winner
//! per report. These families are *distance-free* — each cell refits on
//! raw feature vectors per fold (with per-fold min-max normalization,
//! unlike the shared-matrix NN/SVM path; see DESIGN.md §16) and never
//! touches the distance matrix, so [`distance_builds`] still advances by
//! exactly one per sweep. Ties between families go to the fixed order
//! NN, SVM, tree, forest, MLP.
//!
//! One deliberate deviation from a fully per-fold protocol: features are
//! min-max normalized over the *full* dataset, not refitted per LOGO fold
//! (refitting would need per-fold distance matrices, defeating the single
//! shared cache). The same normalization is used for every cell, so the
//! comparison between cells — the argmax the sweep exists to find — is
//! apples-to-apples. See DESIGN.md §10.
//!
//! Grid cells fan out across [`loopml_rt::par_map`] workers; every unit
//! of work is a pure function and per-cell error tallies are integers, so
//! results are bit-identical at any `LOOPML_THREADS` setting.

use crate::dataset::{dist2, Dataset, MinMaxNormalizer};
use crate::distcache::{
    distance_builds, record_streaming_build, tile_budget_bytes, tile_rows_for, DistAlloc,
    DistanceMatrix, KernelAlloc,
};
use crate::forest::{BaggedForest, ForestParams};
use crate::loocv::logo_accuracy_threads;
use crate::mlp::{Mlp, MlpParams};
use crate::nn::DEFAULT_RADIUS;
use crate::svm::{decision_at, decode, train_binary, KernelCache, SvmParams};
use crate::tree::{DecisionTree, TreeParams};
use loopml_rt::{num_threads, par_map_threads};

/// The gamma × C grid swept for the SVM, plus the non-swept
/// hyperparameters every cell shares.
#[derive(Debug, Clone, PartialEq)]
pub struct SvmGrid {
    /// RBF kernel widths to try.
    pub gammas: Vec<f64>,
    /// Soft-margin penalties to try.
    pub cs: Vec<f64>,
    /// Tolerance / sweep budget shared by every cell; `base.gamma` and
    /// `base.c` are ignored (overwritten per cell).
    pub base: SvmParams,
}

impl Default for SvmGrid {
    /// A 3×3 grid bracketing the paper defaults (gamma 1.0, C 10.0) by
    /// 4× / 10× in each direction, with a reduced sweep budget — the
    /// sweep ranks cells, it does not need each to be converged to the
    /// last KKT digit.
    fn default() -> Self {
        SvmGrid {
            gammas: vec![0.25, 1.0, 4.0],
            cs: vec![1.0, 10.0, 100.0],
            base: SvmParams {
                max_sweeps: 30,
                ..SvmParams::default()
            },
        }
    }
}

/// The decision-tree depth × min-leaf grid.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeGrid {
    /// Maximum tree depths to try.
    pub max_depths: Vec<usize>,
    /// Minimum leaf sizes to try (each ≥ 1).
    pub min_leafs: Vec<usize>,
}

impl Default for TreeGrid {
    /// Shallow, default, and deep trees, with and without leaf smoothing.
    fn default() -> Self {
        TreeGrid {
            max_depths: vec![3, 6, 10],
            min_leafs: vec![1, 4],
        }
    }
}

/// The bagged-forest size axis, plus the per-tree hyperparameters and
/// bootstrap seed every cell shares.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestGrid {
    /// Ensemble sizes to try.
    pub sizes: Vec<usize>,
    /// Member-tree hyperparameters and bootstrap seed shared by every
    /// cell; `base.trees` is ignored (overwritten per cell).
    pub base: ForestParams,
}

impl Default for ForestGrid {
    /// Half and full default ensembles around the default member tree.
    fn default() -> Self {
        ForestGrid {
            sizes: vec![8, 16],
            base: ForestParams::default(),
        }
    }
}

/// The MLP hidden-width × learning-rate grid, plus the epoch budget and
/// init seed every cell shares.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpGrid {
    /// Hidden-layer widths to try.
    pub hiddens: Vec<usize>,
    /// Learning rates to try.
    pub lrs: Vec<f64>,
    /// Epochs and seed shared by every cell; `base.hidden` and `base.lr`
    /// are ignored (overwritten per cell).
    pub base: MlpParams,
}

impl Default for MlpGrid {
    /// Narrow and default widths at a gentle and an aggressive rate.
    fn default() -> Self {
        MlpGrid {
            hiddens: vec![8, 16],
            lrs: vec![0.05, 0.2],
            base: MlpParams::default(),
        }
    }
}

/// Everything `sweep` needs besides the data: one grid per model family.
/// A family with an empty grid (no cells) is skipped and cannot win.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// SVM gamma × C grid.
    pub svm: SvmGrid,
    /// NN neighborhood radii to try.
    pub radii: Vec<f64>,
    /// Decision-tree depth × min-leaf grid.
    pub tree: TreeGrid,
    /// Bagged-forest sizes.
    pub forest: ForestGrid,
    /// MLP width × learning-rate grid.
    pub mlp: MlpGrid,
}

impl Default for SweepConfig {
    /// Every family's default grid, with five radii bracketing the
    /// paper's 0.3.
    fn default() -> Self {
        SweepConfig {
            svm: SvmGrid::default(),
            radii: vec![0.15, 0.3, 0.45, 0.6, 1.0],
            tree: TreeGrid::default(),
            forest: ForestGrid::default(),
            mlp: MlpGrid::default(),
        }
    }
}

/// One evaluated SVM grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmCell {
    /// RBF kernel width of this cell.
    pub gamma: f64,
    /// Soft-margin penalty of this cell.
    pub c: f64,
    /// Leave-one-benchmark-out accuracy.
    pub accuracy: f64,
}

/// One evaluated NN radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadiusCell {
    /// Neighborhood radius.
    pub radius: f64,
    /// Leave-one-benchmark-out accuracy.
    pub accuracy: f64,
}

/// One evaluated decision-tree grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeCell {
    /// Maximum depth of this cell.
    pub max_depth: usize,
    /// Minimum leaf size of this cell.
    pub min_leaf: usize,
    /// Leave-one-benchmark-out accuracy.
    pub accuracy: f64,
}

/// One evaluated forest size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestCell {
    /// Ensemble size of this cell.
    pub trees: usize,
    /// Leave-one-benchmark-out accuracy.
    pub accuracy: f64,
}

/// One evaluated MLP grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpCell {
    /// Hidden width of this cell.
    pub hidden: usize,
    /// Learning rate of this cell.
    pub lr: f64,
    /// Leave-one-benchmark-out accuracy.
    pub accuracy: f64,
}

/// The full result of a hyperparameter sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Every SVM grid cell, gamma-major (all C for the first gamma, then
    /// the next gamma, …).
    pub svm_cells: Vec<SvmCell>,
    /// Every NN radius, in configuration order.
    pub nn_cells: Vec<RadiusCell>,
    /// The winning SVM hyperparameters (highest LOGO accuracy; ties go to
    /// the earliest cell in grid order). `base` defaults when the grid is
    /// empty.
    pub selected_svm: SvmParams,
    /// LOGO accuracy of [`selected_svm`](Self::selected_svm) (0.0 when
    /// the grid is empty).
    pub svm_accuracy: f64,
    /// The winning NN radius ([`DEFAULT_RADIUS`] when no radii given).
    pub selected_radius: f64,
    /// LOGO accuracy of [`selected_radius`](Self::selected_radius) (0.0
    /// when no radii were given).
    pub nn_accuracy: f64,
    /// Every decision-tree cell, depth-major (all min-leaf values for the
    /// first depth, then the next depth, …).
    pub tree_cells: Vec<TreeCell>,
    /// The winning tree hyperparameters (defaults when the grid is empty).
    pub selected_tree: TreeParams,
    /// LOGO accuracy of [`selected_tree`](Self::selected_tree) (0.0 when
    /// the grid is empty).
    pub tree_accuracy: f64,
    /// Every forest size, in configuration order.
    pub forest_cells: Vec<ForestCell>,
    /// The winning forest hyperparameters (`base` defaults when the size
    /// list is empty).
    pub selected_forest: ForestParams,
    /// LOGO accuracy of [`selected_forest`](Self::selected_forest) (0.0
    /// when the size list is empty).
    pub forest_accuracy: f64,
    /// Every MLP cell, width-major (all rates for the first width, then
    /// the next width, …).
    pub mlp_cells: Vec<MlpCell>,
    /// The winning MLP hyperparameters (`base` defaults when the grid is
    /// empty).
    pub selected_mlp: MlpParams,
    /// LOGO accuracy of [`selected_mlp`](Self::selected_mlp) (0.0 when
    /// the grid is empty).
    pub mlp_accuracy: f64,
    /// The model family with the highest LOGO accuracy among the families
    /// that scored at least one cell: `"nn"`, `"svm"`, `"tree"`,
    /// `"forest"`, or `"mlp"`. Ties break toward that fixed order;
    /// `"nn"` when no family scored anything.
    pub winner_family: String,
    /// LOGO accuracy of [`winner_family`](Self::winner_family) (0.0 when
    /// no family scored anything).
    pub winner_accuracy: f64,
    /// How many [`DistanceMatrix::compute`] calls the sweep performed —
    /// the design says exactly one, and this is the proof. The
    /// distance-free families (tree, forest, MLP) never advance it.
    pub distance_builds: u64,
    /// Number of examples swept over.
    pub n_examples: usize,
    /// Number of LOGO groups (benchmarks).
    pub n_groups: usize,
}

/// Sweeps the SVM grid and NN radii over `data`, scoring every candidate
/// by leave-one-group-out accuracy (`group[i]` is example `i`'s
/// benchmark), with exactly one pairwise distance computation.
///
/// # Panics
///
/// Panics if `data` is empty or `group.len() != data.len()`.
pub fn sweep(data: &Dataset, group: &[usize], cfg: &SweepConfig) -> SweepReport {
    sweep_threads(data, group, cfg, num_threads())
}

/// [`sweep`] with an explicit worker count (used by the determinism tests
/// to force serial vs. multi-threaded execution).
///
/// Picks its own memory strategy: when the n×n distance matrix fits the
/// [`tile_budget_bytes`] budget it is materialized once and shared
/// (every kernel an exp-pass over it); past the budget the sweep runs
/// [`sweep_tiled_threads`], which streams the distance pass row by row
/// and never holds more than `workers · n · 8` distance bytes. Both
/// strategies are bit-identical.
pub fn sweep_threads(
    data: &Dataset,
    group: &[usize],
    cfg: &SweepConfig,
    threads: usize,
) -> SweepReport {
    let n = data.len();
    let dense_bytes = (n as u64) * (n as u64) * 8;
    if dense_bytes > tile_budget_bytes() {
        return sweep_tiled_threads(data, group, cfg, tile_rows_for(n, threads), threads);
    }
    assert!(!data.is_empty(), "cannot sweep an empty dataset");
    assert_eq!(group.len(), data.len(), "one group per example");
    let builds_before = distance_builds();

    let xs = MinMaxNormalizer::fit(&data.x).transform(&data.x);
    let dm = DistanceMatrix::compute(&xs);

    // One kernel per gamma, each an exp-pass over the shared matrix.
    let kernels: Vec<KernelCache> = par_map_threads(threads, &cfg.svm.gammas, |&g| {
        KernelCache::from_distances(&dm, g)
    });

    // NN: a radius is a threshold over the cached d² — replicate
    // `predict_excluding`'s vote semantics with the whole group excluded.
    let radius_indices: Vec<usize> = (0..cfg.radii.len()).collect();
    let nn_cells: Vec<RadiusCell> = par_map_threads(threads, &radius_indices, |&ri| {
        let r2 = cfg.radii[ri] * cfg.radii[ri];
        let mut correct = 0u64;
        for i in 0..n {
            if nn_predict_row(dm.row(i), i, data, group, r2) == data.y[i] {
                correct += 1;
            }
        }
        RadiusCell {
            radius: cfg.radii[ri],
            accuracy: correct as f64 / n as f64,
        }
    });

    finish_report(data, group, cfg, threads, &kernels, nn_cells, builds_before)
}

/// Streaming sibling of [`sweep_threads`]: the pairwise distance pass is
/// evaluated in row strips of `tile_rows` examples, each worker holding
/// one n-length distance row at a time. Every row immediately feeds (a)
/// each gamma's kernel strip — the same `exp(-γ·d²) + 1` entries
/// [`KernelCache::from_distances`] produces — and (b) the NN radius
/// tallies, then is overwritten; the full n×n distance matrix never
/// exists. The assembled kernels are what the SVM trainer inherently
/// needs, so kernel memory is unchanged; *distance* memory drops from
/// `n² · 8` to `workers · n · 8` bytes. Counts toward
/// [`distance_builds`] as one build (every pair is touched exactly
/// once). Bit-identical to the dense path at any `tile_rows` and any
/// `threads`: `dist2` is bitwise symmetric, so row-major evaluation
/// equals the mirrored dense matrix, and all tallies are integers.
///
/// # Panics
///
/// Panics if `data` is empty, `group.len() != data.len()`, or
/// `tile_rows` is zero.
pub fn sweep_tiled_threads(
    data: &Dataset,
    group: &[usize],
    cfg: &SweepConfig,
    tile_rows: usize,
    threads: usize,
) -> SweepReport {
    assert!(!data.is_empty(), "cannot sweep an empty dataset");
    assert_eq!(group.len(), data.len(), "one group per example");
    assert!(tile_rows > 0, "tile_rows must be positive");
    let builds_before = distance_builds();

    let n = data.len();
    let xs = MinMaxNormalizer::fit(&data.x).transform(&data.x);
    record_streaming_build();

    let tile = tile_rows.min(n);
    let strips: Vec<(usize, usize)> = (0..n)
        .step_by(tile)
        .map(|lo| (lo, (lo + tile).min(n)))
        .collect();
    let r2s: Vec<f64> = cfg.radii.iter().map(|r| r * r).collect();
    // The kernel strips are kernel bytes: together they hold every
    // gamma's full n×n kernel and stay live until assembled below, so
    // they are registered with the kernel accounting as one block —
    // a deterministic upper bound on the gradual per-worker growth.
    let _strip_acct = KernelAlloc::new((cfg.svm.gammas.len() * n * n * 8) as u64);
    let per_strip: Vec<(Vec<Vec<f64>>, Vec<u64>)> =
        par_map_threads(threads, &strips, |&(lo, hi)| {
            let rows = hi - lo;
            let _acct = DistAlloc::new((n * 8) as u64);
            let mut d2row = vec![0.0f64; n];
            let mut kstrips: Vec<Vec<f64>> = cfg
                .svm
                .gammas
                .iter()
                .map(|_| vec![0.0f64; rows * n])
                .collect();
            let mut correct = vec![0u64; cfg.radii.len()];
            for (r, i) in (lo..hi).enumerate() {
                for (j, d2) in d2row.iter_mut().enumerate() {
                    *d2 = dist2(&xs[i], &xs[j]);
                }
                for (gi, &g) in cfg.svm.gammas.iter().enumerate() {
                    let krow = &mut kstrips[gi][r * n..(r + 1) * n];
                    for (kv, &d2) in krow.iter_mut().zip(&d2row) {
                        *kv = (-g * d2).exp() + 1.0;
                    }
                }
                for (ri, &r2) in r2s.iter().enumerate() {
                    if nn_predict_row(&d2row, i, data, group, r2) == data.y[i] {
                        correct[ri] += 1;
                    }
                }
            }
            (kstrips, correct)
        });

    // Assemble each gamma's kernel from its strips (strip order is row
    // order) and fold the per-strip NN tallies.
    let kernels: Vec<KernelCache> = (0..cfg.svm.gammas.len())
        .map(|gi| {
            let mut k = Vec::with_capacity(n * n);
            for (kstrips, _) in &per_strip {
                k.extend_from_slice(&kstrips[gi]);
            }
            KernelCache::from_parts(n, k)
        })
        .collect();
    let mut nn_correct = vec![0u64; cfg.radii.len()];
    for (_, correct) in &per_strip {
        for (t, &c) in nn_correct.iter_mut().zip(correct) {
            *t += c;
        }
    }
    let nn_cells: Vec<RadiusCell> = cfg
        .radii
        .iter()
        .zip(&nn_correct)
        .map(|(&radius, &c)| RadiusCell {
            radius,
            accuracy: c as f64 / n as f64,
        })
        .collect();

    finish_report(data, group, cfg, threads, &kernels, nn_cells, builds_before)
}

/// Predicted label for example `i` given row `i` of the pairwise d²
/// matrix: `predict_excluding`'s vote semantics with `i`'s whole group
/// excluded (majority within the radius when strict, else nearest).
fn nn_predict_row(d2row: &[f64], i: usize, data: &Dataset, group: &[usize], r2: f64) -> usize {
    let mut votes = vec![0usize; data.classes];
    let mut in_radius = 0usize;
    let mut nearest: Option<(f64, usize)> = None;
    for (j, &d2) in d2row.iter().enumerate() {
        if group[j] == group[i] {
            continue;
        }
        if d2 <= r2 {
            votes[data.y[j]] += 1;
            in_radius += 1;
        }
        if nearest.is_none_or(|(best, _)| d2 < best) {
            nearest = Some((d2, data.y[j]));
        }
    }
    let best_class = (0..data.classes).max_by_key(|&c| votes[c]).unwrap_or(0);
    let best_votes = votes.get(best_class).copied().unwrap_or(0);
    let runner_up = (0..data.classes)
        .filter(|&c| c != best_class)
        .map(|c| votes[c])
        .max()
        .unwrap_or(0);
    if in_radius > 0 && best_votes > runner_up {
        best_class
    } else {
        nearest.map(|(_, y)| y).unwrap_or(0)
    }
}

/// Shared tail of both sweep strategies: scores the SVM grid by LOGO
/// over the per-gamma kernels, picks the winners, and assembles the
/// report.
fn finish_report(
    data: &Dataset,
    group: &[usize],
    cfg: &SweepConfig,
    threads: usize,
    kernels: &[KernelCache],
    nn_cells: Vec<RadiusCell>,
    builds_before: u64,
) -> SweepReport {
    let n = data.len();
    let mut groups: Vec<usize> = group.to_vec();
    groups.sort_unstable();
    groups.dedup();

    // Flatten (gamma, C, held-out group) into independent jobs: each
    // trains one multiclass machine on the fold's active set and counts
    // correct predictions on the held-out members. Integer tallies make
    // any job-to-worker assignment sum to the same accuracy.
    let n_groups = groups.len();
    let jobs: Vec<(usize, usize, usize)> = (0..cfg.svm.gammas.len())
        .flat_map(|gi| {
            (0..cfg.svm.cs.len()).flat_map(move |ci| (0..n_groups).map(move |fi| (gi, ci, fi)))
        })
        .collect();
    let correct_per_job: Vec<u64> = par_map_threads(threads, &jobs, |&(gi, ci, fi)| {
        let g = groups[fi];
        let members: Vec<usize> = (0..n).filter(|&i| group[i] == g).collect();
        let active: Vec<usize> = (0..n).filter(|&i| group[i] != g).collect();
        if active.is_empty() {
            // Empty training fold predicts class 0, like `logo_predictions`.
            return members.iter().filter(|&&i| data.y[i] == 0).count() as u64;
        }
        let params = SvmParams {
            gamma: cfg.svm.gammas[gi],
            c: cfg.svm.cs[ci],
            ..cfg.svm.base
        };
        let kc = &kernels[gi];
        let labels_by_class: Vec<Vec<f64>> = (0..data.classes)
            .map(|class| {
                data.y
                    .iter()
                    .map(|&y| if y == class { 1.0 } else { -1.0 })
                    .collect()
            })
            .collect();
        // One-vs-rest machines restricted to the fold's training set:
        // dual variables stay zero outside `active`, so the full-corpus
        // kernel is exact for this fold.
        let alphas: Vec<Vec<f64>> = labels_by_class
            .iter()
            .map(|labels| {
                train_binary(
                    kc,
                    labels,
                    &params,
                    None,
                    None,
                    params.max_sweeps,
                    Some(&active),
                )
            })
            .collect();
        members
            .iter()
            .filter(|&&i| {
                let decisions: Vec<f64> = labels_by_class
                    .iter()
                    .zip(&alphas)
                    .map(|(labels, alpha)| decision_at(kc, labels, alpha, i))
                    .collect();
                decode(&decisions) == data.y[i]
            })
            .count() as u64
    });

    let mut svm_cells = Vec::with_capacity(cfg.svm.gammas.len() * cfg.svm.cs.len());
    for (cell, chunk) in correct_per_job.chunks(groups.len().max(1)).enumerate() {
        let gi = cell / cfg.svm.cs.len().max(1);
        let ci = cell % cfg.svm.cs.len().max(1);
        svm_cells.push(SvmCell {
            gamma: cfg.svm.gammas[gi],
            c: cfg.svm.cs[ci],
            accuracy: chunk.iter().sum::<u64>() as f64 / n as f64,
        });
    }

    let best_svm = argmax_accuracy(svm_cells.iter().map(|c| c.accuracy));
    let (selected_svm, svm_accuracy) = match best_svm {
        Some(k) => (
            SvmParams {
                gamma: svm_cells[k].gamma,
                c: svm_cells[k].c,
                ..cfg.svm.base
            },
            svm_cells[k].accuracy,
        ),
        None => (cfg.svm.base, 0.0),
    };
    let best_nn = argmax_accuracy(nn_cells.iter().map(|c| c.accuracy));
    let (selected_radius, nn_accuracy) = match best_nn {
        Some(k) => (nn_cells[k].radius, nn_cells[k].accuracy),
        None => (DEFAULT_RADIUS, 0.0),
    };

    // Distance-free families: every cell refits per LOGO fold directly on
    // the feature vectors, never touching the distance matrix or the
    // builds counter. Cells run in configuration order; the folds inside
    // each fan out across the workers with integer tallies, so any
    // thread count scores a cell identically.
    let mut tree_cells = Vec::with_capacity(cfg.tree.max_depths.len() * cfg.tree.min_leafs.len());
    for &max_depth in &cfg.tree.max_depths {
        for &min_leaf in &cfg.tree.min_leafs {
            let clf = DecisionTree::new(TreeParams {
                max_depth,
                min_leaf,
            });
            tree_cells.push(TreeCell {
                max_depth,
                min_leaf,
                accuracy: logo_accuracy_threads(data, group, &clf, threads),
            });
        }
    }
    let (selected_tree, tree_accuracy) =
        match argmax_accuracy(tree_cells.iter().map(|c| c.accuracy)) {
            Some(k) => (
                TreeParams {
                    max_depth: tree_cells[k].max_depth,
                    min_leaf: tree_cells[k].min_leaf,
                },
                tree_cells[k].accuracy,
            ),
            None => (TreeParams::default(), 0.0),
        };

    let mut forest_cells = Vec::with_capacity(cfg.forest.sizes.len());
    for &trees in &cfg.forest.sizes {
        let clf = BaggedForest::new(ForestParams {
            trees,
            ..cfg.forest.base
        });
        forest_cells.push(ForestCell {
            trees,
            accuracy: logo_accuracy_threads(data, group, &clf, threads),
        });
    }
    let (selected_forest, forest_accuracy) =
        match argmax_accuracy(forest_cells.iter().map(|c| c.accuracy)) {
            Some(k) => (
                ForestParams {
                    trees: forest_cells[k].trees,
                    ..cfg.forest.base
                },
                forest_cells[k].accuracy,
            ),
            None => (cfg.forest.base, 0.0),
        };

    let mut mlp_cells = Vec::with_capacity(cfg.mlp.hiddens.len() * cfg.mlp.lrs.len());
    for &hidden in &cfg.mlp.hiddens {
        for &lr in &cfg.mlp.lrs {
            let clf = Mlp::new(MlpParams {
                hidden,
                lr,
                ..cfg.mlp.base
            });
            mlp_cells.push(MlpCell {
                hidden,
                lr,
                accuracy: logo_accuracy_threads(data, group, &clf, threads),
            });
        }
    }
    let (selected_mlp, mlp_accuracy) = match argmax_accuracy(mlp_cells.iter().map(|c| c.accuracy)) {
        Some(k) => (
            MlpParams {
                hidden: mlp_cells[k].hidden,
                lr: mlp_cells[k].lr,
                ..cfg.mlp.base
            },
            mlp_cells[k].accuracy,
        ),
        None => (cfg.mlp.base, 0.0),
    };

    // Cross-family winner: highest accuracy among the families that
    // scored at least one cell, ties toward the fixed order below.
    let families = [
        ("nn", !nn_cells.is_empty(), nn_accuracy),
        ("svm", !svm_cells.is_empty(), svm_accuracy),
        ("tree", !tree_cells.is_empty(), tree_accuracy),
        ("forest", !forest_cells.is_empty(), forest_accuracy),
        ("mlp", !mlp_cells.is_empty(), mlp_accuracy),
    ];
    let mut winner: Option<(&str, f64)> = None;
    for (name, scored, acc) in families {
        if scored && winner.is_none_or(|(_, best)| acc > best) {
            winner = Some((name, acc));
        }
    }
    let (winner_family, winner_accuracy) = winner.unwrap_or(("nn", 0.0));

    SweepReport {
        svm_cells,
        nn_cells,
        selected_svm,
        svm_accuracy,
        selected_radius,
        nn_accuracy,
        tree_cells,
        selected_tree,
        tree_accuracy,
        forest_cells,
        selected_forest,
        forest_accuracy,
        mlp_cells,
        selected_mlp,
        mlp_accuracy,
        winner_family: winner_family.to_string(),
        winner_accuracy,
        distance_builds: distance_builds() - builds_before,
        n_examples: n,
        n_groups: groups.len(),
    }
}

/// Index of the highest accuracy; exact ties go to the earliest index
/// (grid order), which is what makes selection independent of the worker
/// schedule.
fn argmax_accuracy(accuracies: impl Iterator<Item = f64>) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (k, a) in accuracies.enumerate() {
        if best.is_none_or(|(_, b)| a > b) {
            best = Some((k, a));
        }
    }
    best.map(|(k, _)| k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svm::KernelCache;

    /// Three well-separated clusters, each split across two "benchmarks"
    /// so LOGO folds still see every class.
    fn clusters() -> (Dataset, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut group = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for k in 0..8 {
                x.push(vec![cx + (k % 3) as f64 * 0.3, cy + (k / 3) as f64 * 0.3]);
                y.push(c);
                group.push(k % 2);
            }
        }
        let n = x.len();
        let data = Dataset::new(
            x,
            y,
            3,
            vec!["a".into(), "b".into()],
            (0..n).map(|i| format!("e{i}")).collect(),
        );
        (data, group)
    }

    #[test]
    fn sweep_scores_every_cell_and_selects_a_winner() {
        let (data, group) = clusters();
        let cfg = SweepConfig::default();
        let r = sweep_threads(&data, &group, &cfg, 1);
        assert_eq!(r.svm_cells.len(), cfg.svm.gammas.len() * cfg.svm.cs.len());
        assert_eq!(r.nn_cells.len(), cfg.radii.len());
        assert_eq!(r.n_examples, data.len());
        assert_eq!(r.n_groups, 2);
        for cell in &r.svm_cells {
            assert!((0.0..=1.0).contains(&cell.accuracy));
        }
        // Separable clusters with both groups covering every class: the
        // winners must classify well.
        assert!(r.svm_accuracy >= 0.9, "svm accuracy {}", r.svm_accuracy);
        assert!(r.nn_accuracy >= 0.9, "nn accuracy {}", r.nn_accuracy);
        assert!(cfg.svm.gammas.contains(&r.selected_svm.gamma));
        assert!(cfg.svm.cs.contains(&r.selected_svm.c));
        assert!(cfg.radii.contains(&r.selected_radius));
        // The selected accuracy really is the maximum over cells.
        let max_svm = r
            .svm_cells
            .iter()
            .map(|c| c.accuracy)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(r.svm_accuracy, max_svm);
        // The family axis scored every cell of every family.
        assert_eq!(
            r.tree_cells.len(),
            cfg.tree.max_depths.len() * cfg.tree.min_leafs.len()
        );
        assert_eq!(r.forest_cells.len(), cfg.forest.sizes.len());
        assert_eq!(r.mlp_cells.len(), cfg.mlp.hiddens.len() * cfg.mlp.lrs.len());
        assert!(cfg.tree.max_depths.contains(&r.selected_tree.max_depth));
        assert!(cfg.forest.sizes.contains(&r.selected_forest.trees));
        assert!(cfg.mlp.hiddens.contains(&r.selected_mlp.hidden));
        // The winner is the best-scoring family, and its accuracy is the
        // max over family accuracies.
        let family_best = [
            r.nn_accuracy,
            r.svm_accuracy,
            r.tree_accuracy,
            r.forest_accuracy,
            r.mlp_accuracy,
        ]
        .into_iter()
        .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(r.winner_accuracy, family_best);
        assert!(["nn", "svm", "tree", "forest", "mlp"].contains(&r.winner_family.as_str()));
    }

    #[test]
    fn dense_sweep_is_bit_identical_across_thread_counts() {
        let (data, group) = clusters();
        let cfg = SweepConfig::default();
        let serial = sweep_threads(&data, &group, &cfg, 1);
        for threads in [2, 4] {
            assert_eq!(
                serial,
                sweep_threads(&data, &group, &cfg, threads),
                "diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn distance_free_families_never_advance_the_build_counter() {
        // Only tree/forest/MLP grids: the sweep still performs its one
        // distance pass (shared infrastructure), and the family scoring
        // adds zero further builds.
        let (data, group) = clusters();
        let cfg = SweepConfig {
            svm: SvmGrid {
                gammas: vec![],
                cs: vec![],
                ..SvmGrid::default()
            },
            radii: vec![],
            ..SweepConfig::default()
        };
        let r = sweep_threads(&data, &group, &cfg, 1);
        assert_eq!(r.distance_builds, 1);
        assert!(r.svm_cells.is_empty() && r.nn_cells.is_empty());
        assert!(!r.tree_cells.is_empty());
        // With NN and SVM unscored, the winner comes from the new
        // families — separable clusters score well for all of them.
        assert!(["tree", "forest", "mlp"].contains(&r.winner_family.as_str()));
        assert!(r.winner_accuracy >= 0.9, "{}", r.winner_accuracy);
    }

    #[test]
    fn per_cell_kernels_match_direct_compute() {
        // The sweep derives every gamma's kernel from the one cached
        // distance matrix; each must equal a from-scratch KernelCache
        // bit-for-bit.
        let (data, _) = clusters();
        let xs = MinMaxNormalizer::fit(&data.x).transform(&data.x);
        let dm = DistanceMatrix::compute(&xs);
        for gamma in SvmGrid::default().gammas {
            let direct = KernelCache::compute(&xs, gamma);
            let derived = KernelCache::from_distances(&dm, gamma);
            assert_eq!(direct.entries(), derived.entries(), "gamma={gamma}");
        }
    }

    #[test]
    fn tiled_sweep_is_bit_identical_to_dense() {
        // The streaming sweep must reproduce the dense report exactly —
        // cells, winners, and the one-build invariant — at every tile
        // size and thread count.
        let (data, group) = clusters();
        let cfg = SweepConfig::default();
        let dense = sweep_threads(&data, &group, &cfg, 1);
        assert_eq!(dense.distance_builds, 1);
        for tile in [1usize, 7, 64] {
            for threads in [1usize, 4] {
                let tiled = sweep_tiled_threads(&data, &group, &cfg, tile, threads);
                assert_eq!(dense, tiled, "tile={tile} threads={threads}");
            }
        }
    }

    #[test]
    fn empty_grid_falls_back_to_defaults() {
        let (data, group) = clusters();
        let cfg = SweepConfig {
            svm: SvmGrid {
                gammas: vec![],
                cs: vec![],
                ..SvmGrid::default()
            },
            radii: vec![],
            tree: TreeGrid {
                max_depths: vec![],
                min_leafs: vec![],
            },
            forest: ForestGrid {
                sizes: vec![],
                ..ForestGrid::default()
            },
            mlp: MlpGrid {
                hiddens: vec![],
                lrs: vec![],
                ..MlpGrid::default()
            },
        };
        let r = sweep_threads(&data, &group, &cfg, 1);
        assert!(r.svm_cells.is_empty());
        assert!(r.nn_cells.is_empty());
        assert!(r.tree_cells.is_empty());
        assert!(r.forest_cells.is_empty());
        assert!(r.mlp_cells.is_empty());
        assert_eq!(r.selected_svm, cfg.svm.base);
        assert_eq!(r.selected_radius, DEFAULT_RADIUS);
        assert_eq!(r.selected_tree, TreeParams::default());
        assert_eq!(r.selected_forest, cfg.forest.base);
        assert_eq!(r.selected_mlp, cfg.mlp.base);
        // No family scored anything: the winner falls back to NN at 0.
        assert_eq!(r.winner_family, "nn");
        assert_eq!(r.winner_accuracy, 0.0);
    }

    #[test]
    fn ties_select_the_earliest_cell() {
        assert_eq!(argmax_accuracy([0.5, 0.5, 0.5].into_iter()), Some(0));
        assert_eq!(argmax_accuracy([0.1, 0.7, 0.7].into_iter()), Some(1));
        assert_eq!(argmax_accuracy(std::iter::empty()), None);
    }

    #[test]
    fn singleton_group_predicts_like_logo() {
        // One group holds everything: every fold's training set is empty,
        // so predictions are class 0 — the `logo_predictions` convention.
        let (data, _) = clusters();
        let group = vec![0usize; data.len()];
        let cfg = SweepConfig::default();
        let r = sweep_threads(&data, &group, &cfg, 1);
        let class0 = data.y.iter().filter(|&&y| y == 0).count() as f64 / data.len() as f64;
        for cell in &r.svm_cells {
            assert_eq!(cell.accuracy, class0);
        }
        assert_eq!(r.n_groups, 1);
    }
}
