//! A tiny zero-dependency multi-layer perceptron.
//!
//! One tanh hidden layer and a softmax output, trained by plain
//! stochastic gradient descent on the cross-entropy loss — the smallest
//! member of the model family Balamane et al. ("Using Deep Neural
//! Networks for Estimating Loop Unrolling Factor", PAPERS.md) showed
//! beats classical classifiers on exactly this task.
//!
//! The determinism contract is the strictest of the zoo and the
//! simplest to honor: weights initialize from one [`loopml_rt::Rng`]
//! stream seeded by the hyperparameters alone, and the SGD schedule is
//! *fixed* — `epochs` passes over the examples in index order, one
//! update per example. Training never consults the worker pool, so a
//! fit is bit-identical at any `LOOPML_THREADS`, and refitting the same
//! data reproduces the same weights bit-for-bit.

use crate::classify::{expect_kind, Classifier};
use crate::dataset::{Dataset, MinMaxNormalizer};
use loopml_rt::{Json, Rng};

/// Hyperparameters of an [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpParams {
    /// Hidden-layer width.
    pub hidden: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// Full passes over the training set (each in index order).
    pub epochs: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for MlpParams {
    /// A 16-unit hidden layer, 120 index-order epochs at rate 0.1 —
    /// small enough that a LOGO sweep refits it per fold in milliseconds
    /// on the paper-scale corpus.
    fn default() -> Self {
        MlpParams {
            hidden: 16,
            lr: 0.1,
            epochs: 120,
            seed: 0x006d_6c70,
        }
    }
}

impl MlpParams {
    /// Serializes the hyperparameters.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("hidden", Json::Num(self.hidden as f64)),
            ("lr", Json::Num(self.lr)),
            ("epochs", Json::Num(self.epochs as f64)),
            ("seed", Json::Num(self.seed as f64)),
        ])
    }

    /// Parses hyperparameters written by [`to_json`](Self::to_json).
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let whole = |key: &str| {
            doc.get(key)
                .and_then(Json::as_num)
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .map(|v| v as usize)
                .ok_or_else(|| format!("MLP params have no whole {key}"))
        };
        let hidden = whole("hidden")?;
        if hidden == 0 {
            return Err("MLP hidden width must be at least 1".into());
        }
        let lr = doc
            .get("lr")
            .and_then(Json::as_num)
            .filter(|v| *v > 0.0 && v.is_finite())
            .ok_or("MLP params have no positive lr")?;
        let epochs = whole("epochs")?;
        let seed = whole("seed")? as u64;
        Ok(MlpParams {
            hidden,
            lr,
            epochs,
            seed,
        })
    }
}

/// A one-hidden-layer perceptron classifier.
#[derive(Debug, Clone)]
pub struct Mlp {
    params: MlpParams,
    normalizer: Option<MinMaxNormalizer>,
    /// `hidden × dims` input weights, row-major per hidden unit.
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    /// `classes × hidden` output weights, row-major per class.
    w2: Vec<Vec<f64>>,
    b2: Vec<f64>,
    classes: usize,
    dims: usize,
}

impl Mlp {
    /// An *unfitted* MLP carrying only its hyperparameters; call
    /// [`Classifier::fit`] before use. Until then it predicts class 0.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is zero or `lr` is not positive.
    pub fn new(params: MlpParams) -> Self {
        assert!(params.hidden >= 1, "hidden width must be at least 1");
        assert!(
            params.lr > 0.0 && params.lr.is_finite(),
            "learning rate must be positive"
        );
        Mlp {
            params,
            normalizer: None,
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: Vec::new(),
            classes: 0,
            dims: 0,
        }
    }

    /// Trains the network with the fixed deterministic SGD schedule.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(data: &Dataset, params: MlpParams) -> Self {
        let mut net = Mlp::new(params);
        assert!(!data.is_empty(), "cannot fit to an empty dataset");
        let normalizer = MinMaxNormalizer::fit(&data.x);
        let xs = normalizer.transform(&data.x);
        let (h, d, c) = (params.hidden, data.dims(), data.classes.max(1));
        let mut rng = Rng::seed_from_u64(params.seed);
        let scale1 = 1.0 / (d.max(1) as f64).sqrt();
        let scale2 = 1.0 / (h as f64).sqrt();
        let mut init = |fan: usize, scale: f64| -> Vec<f64> {
            (0..fan)
                .map(|_| (2.0 * rng.next_f64() - 1.0) * scale)
                .collect()
        };
        net.w1 = (0..h).map(|_| init(d, scale1)).collect();
        net.b1 = vec![0.0; h];
        net.w2 = (0..c).map(|_| init(h, scale2)).collect();
        net.b2 = vec![0.0; c];
        net.classes = data.classes;
        net.dims = d;
        net.normalizer = Some(normalizer);

        let mut hidden = vec![0.0f64; h];
        let mut probs = vec![0.0f64; c];
        let mut dpre = vec![0.0f64; h];
        for _ in 0..params.epochs {
            for (x, &y) in xs.iter().zip(&data.y) {
                net.forward(x, &mut hidden, &mut probs);
                // Softmax + cross-entropy gradient at the logits.
                probs[y] -= 1.0;
                // Backprop into the hidden layer with the *pre-update*
                // output weights.
                for (j, dj) in dpre.iter_mut().enumerate() {
                    let upstream: f64 = net
                        .w2
                        .iter()
                        .zip(&probs)
                        .map(|(row, &dl)| dl * row[j])
                        .sum();
                    *dj = upstream * (1.0 - hidden[j] * hidden[j]);
                }
                let lr = params.lr;
                for (row, &dl) in net.w2.iter_mut().zip(&probs) {
                    for (w, &hj) in row.iter_mut().zip(&hidden) {
                        *w -= lr * dl * hj;
                    }
                }
                for (b, &dl) in net.b2.iter_mut().zip(&probs) {
                    *b -= lr * dl;
                }
                for (row, &dj) in net.w1.iter_mut().zip(&dpre) {
                    for (w, &xi) in row.iter_mut().zip(x) {
                        *w -= lr * dj * xi;
                    }
                }
                for (b, &dj) in net.b1.iter_mut().zip(&dpre) {
                    *b -= lr * dj;
                }
            }
        }
        net
    }

    /// Forward pass over a normalized input; fills `hidden` with tanh
    /// activations and `out` with softmax probabilities.
    fn forward(&self, x: &[f64], hidden: &mut [f64], out: &mut [f64]) {
        for (hj, (row, &b)) in hidden.iter_mut().zip(self.w1.iter().zip(&self.b1)) {
            let z: f64 = row.iter().zip(x).map(|(&w, &xi)| w * xi).sum::<f64>() + b;
            *hj = z.tanh();
        }
        let mut max = f64::NEG_INFINITY;
        for (o, (row, &b)) in out.iter_mut().zip(self.w2.iter().zip(&self.b2)) {
            let z: f64 = row
                .iter()
                .zip(hidden.iter())
                .map(|(&w, &h)| w * h)
                .sum::<f64>()
                + b;
            *o = z;
            if z > max {
                max = z;
            }
        }
        let mut total = 0.0;
        for o in out.iter_mut() {
            *o = (*o - max).exp();
            total += *o;
        }
        for o in out.iter_mut() {
            *o /= total;
        }
    }

    /// The hyperparameters this network was constructed with.
    pub fn params(&self) -> MlpParams {
        self.params
    }
}

/// Reads a required matrix field: an array of equal-length numeric rows.
fn matrix_field(
    state: &Json,
    key: &str,
    rows: usize,
    cols: usize,
) -> Result<Vec<Vec<f64>>, String> {
    let m: Vec<Vec<f64>> = state
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("MLP state has no {key}"))?
        .iter()
        .map(Json::as_f64s)
        .collect::<Option<_>>()
        .ok_or_else(|| format!("MLP state {key} has a non-numeric row"))?;
    if m.len() != rows || m.iter().any(|r| r.len() != cols) {
        return Err(format!("MLP state {key} is not {rows}x{cols}"));
    }
    Ok(m)
}

impl Classifier for Mlp {
    fn fit(&mut self, data: &Dataset) {
        *self = Mlp::fit(data, self.params);
    }

    fn predict(&self, x: &[f64]) -> usize {
        if self.w1.is_empty() {
            return 0;
        }
        assert_eq!(
            x.len(),
            self.dims,
            "MLP fitted on {} features cannot score a {}-feature query",
            self.dims,
            x.len()
        );
        let mut q = x.to_vec();
        if let Some(n) = &self.normalizer {
            n.apply(&mut q);
        }
        let mut hidden = vec![0.0f64; self.params.hidden];
        let mut probs = vec![0.0f64; self.classes.max(1)];
        self.forward(&q, &mut hidden, &mut probs);
        // Argmax with ties toward the smallest class index.
        let mut best = 0usize;
        for (c, &p) in probs.iter().enumerate() {
            if p > probs[best] {
                best = c;
            }
        }
        best
    }

    fn name(&self) -> &str {
        "MLP"
    }

    fn fresh(&self) -> Box<dyn Classifier> {
        Box::new(Mlp::new(self.params))
    }

    fn save(&self) -> Json {
        let matrix = |m: &[Vec<f64>]| Json::Arr(m.iter().map(|r| Json::from_f64s(r)).collect());
        Json::obj([
            ("kind", Json::Str("MLP".into())),
            ("params", self.params.to_json()),
            ("classes", Json::Num(self.classes as f64)),
            ("dims", Json::Num(self.dims as f64)),
            (
                "normalizer",
                match &self.normalizer {
                    Some(n) => n.to_json(),
                    None => Json::Null,
                },
            ),
            ("w1", matrix(&self.w1)),
            ("b1", Json::from_f64s(&self.b1)),
            ("w2", matrix(&self.w2)),
            ("b2", Json::from_f64s(&self.b2)),
        ])
    }

    fn load(&mut self, state: &Json) -> Result<(), String> {
        expect_kind(state, "MLP")?;
        let params = MlpParams::from_json(state.get("params").ok_or("MLP state has no params")?)?;
        let whole = |key: &str| {
            state
                .get(key)
                .and_then(Json::as_num)
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .map(|v| v as usize)
                .ok_or_else(|| format!("MLP state has no whole {key}"))
        };
        let classes = whole("classes")?;
        let dims = whole("dims")?;
        let normalizer = match state.get("normalizer") {
            Some(Json::Null) => None,
            Some(doc) => Some(MinMaxNormalizer::from_json(doc)?),
            None => return Err("MLP state has no normalizer".into()),
        };
        let w1 = matrix_field(state, "w1", params.hidden, dims)?;
        let w2 = matrix_field(state, "w2", classes.max(1), params.hidden)?;
        let vector = |key: &str, len: usize| -> Result<Vec<f64>, String> {
            let v = state
                .get(key)
                .and_then(Json::as_f64s)
                .ok_or_else(|| format!("MLP state has no {key}"))?;
            if v.len() != len {
                return Err(format!("MLP state {key} has {} of {len} entries", v.len()));
            }
            Ok(v)
        };
        let b1 = vector("b1", params.hidden)?;
        let b2 = vector("b2", classes.max(1))?;
        *self = Mlp {
            params,
            normalizer,
            w1,
            b1,
            w2,
            b2,
            classes,
            dims,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)].iter().enumerate() {
            for k in 0..6 {
                x.push(vec![cx + 0.2 * (k % 3) as f64, cy + 0.2 * (k / 3) as f64]);
                y.push(c);
            }
        }
        let n = x.len();
        Dataset::new(
            x,
            y,
            3,
            vec!["a".into(), "b".into()],
            (0..n).map(|i| format!("e{i}")).collect(),
        )
    }

    #[test]
    fn learns_separable_clusters() {
        let d = clusters();
        let net = Mlp::fit(&d, MlpParams::default());
        for (x, &y) in d.x.iter().zip(&d.y) {
            assert_eq!(Classifier::predict(&net, x), y);
        }
    }

    #[test]
    fn refit_is_bit_identical() {
        let d = clusters();
        let a = Mlp::fit(&d, MlpParams::default());
        let b = Mlp::fit(&d, MlpParams::default());
        assert_eq!(a.save().to_string(), b.save().to_string());
    }

    #[test]
    fn different_seeds_train_different_weights() {
        let d = clusters();
        let a = Mlp::fit(&d, MlpParams::default());
        let b = Mlp::fit(
            &d,
            MlpParams {
                seed: 99,
                ..MlpParams::default()
            },
        );
        assert_ne!(a.save().to_string(), b.save().to_string());
    }

    #[test]
    fn unfitted_predicts_zero() {
        let net = Mlp::new(MlpParams::default());
        assert_eq!(Classifier::predict(&net, &[1.0, 2.0]), 0);
    }

    #[test]
    fn save_load_round_trips_bitwise() {
        let d = clusters();
        let net = Mlp::fit(
            &d,
            MlpParams {
                hidden: 5,
                ..MlpParams::default()
            },
        );
        let state = net.save();
        let reparsed = Json::parse(&state.to_string()).expect("valid JSON");
        let mut copy = Mlp::new(MlpParams::default());
        copy.load(&reparsed).expect("load");
        for x in &d.x {
            assert_eq!(Classifier::predict(&copy, x), Classifier::predict(&net, x));
        }
    }

    #[test]
    fn load_rejects_malformed_states() {
        let d = clusters();
        let net = Mlp::fit(
            &d,
            MlpParams {
                hidden: 3,
                ..MlpParams::default()
            },
        );
        let good = net.save().to_string();
        let mut victim = Mlp::new(MlpParams::default());
        for bad in [
            good.replace("\"kind\":\"MLP\"", "\"kind\":\"SVM\""),
            good.replace("\"hidden\":3", "\"hidden\":4"),
            good.replace("\"lr\":0.1", "\"lr\":0"),
        ] {
            let doc = Json::parse(&bad).expect("still JSON");
            assert!(victim.load(&doc).is_err(), "should reject: {bad}");
        }
        assert_eq!(Classifier::predict(&victim, &d.x[0]), 0, "still unfitted");
    }

    #[test]
    fn zero_epochs_is_the_initialized_network() {
        // epochs: 0 must be legal (pure init, no training) and still
        // answer in-range classes.
        let d = clusters();
        let net = Mlp::fit(
            &d,
            MlpParams {
                epochs: 0,
                ..MlpParams::default()
            },
        );
        for x in &d.x {
            assert!(Classifier::predict(&net, x) < d.classes);
        }
    }
}
