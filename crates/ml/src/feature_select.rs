//! Feature selection (paper §7): mutual information scoring and greedy
//! forward selection.
//!
//! Greedy forward selection re-evaluates a classifier for every candidate
//! feature at every step — the most expensive search in the paper. Two
//! accelerations live here: the candidate evaluations of each round fan
//! out across [`loopml_rt::par_map`] workers (bit-identical to serial —
//! candidates are scanned in index order and ties keep the lowest index
//! either way), and for the leave-self-out 1-NN criterion,
//! [`greedy_forward_nn`] swaps the O(n²·|S|) per-candidate distance
//! recompute for an O(n²) accumulate over the
//! [`FeatureDistCache`](crate::FeatureDistCache).

use crate::dataset::{Dataset, MinMaxNormalizer};
use crate::distcache::{tile_budget_bytes, tile_rows_for, DistAlloc, FeatureDistCache};
use loopml_rt::{num_threads, par_map_threads};

/// Number of equal-width bins used to discretize continuous features
/// before estimating probability mass functions.
pub const MIS_BINS: usize = 10;

/// A feature with its mutual information score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredFeature {
    /// Column index into the dataset.
    pub index: usize,
    /// Feature name.
    pub name: String,
    /// Mutual information score in bits.
    pub score: f64,
}

/// Computes the mutual information `I(f; u)` between each feature and the
/// label, returning features sorted by descending score (Table 3).
///
/// Continuous features are min-max normalized and binned into
/// [`MIS_BINS`] equal-width bins.
pub fn mutual_information(data: &Dataset) -> Vec<ScoredFeature> {
    let n = data.len();
    assert!(n > 0, "empty dataset");
    let norm = MinMaxNormalizer::fit(&data.x);
    let xs = norm.transform(&data.x);
    let d = data.dims();
    let classes = data.classes;

    let mut out = Vec::with_capacity(d);
    for j in 0..d {
        // Joint histogram over (bin, label).
        let mut joint = vec![vec![0.0f64; classes]; MIS_BINS];
        for (row, &y) in xs.iter().zip(&data.y) {
            let b = ((row[j] * MIS_BINS as f64) as usize).min(MIS_BINS - 1);
            joint[b][y] += 1.0;
        }
        let total = n as f64;
        let p_bin: Vec<f64> = joint
            .iter()
            .map(|r| r.iter().sum::<f64>() / total)
            .collect();
        let mut p_lab = vec![0.0f64; classes];
        for r in &joint {
            for (c, v) in r.iter().enumerate() {
                p_lab[c] += v / total;
            }
        }
        let mut mi = 0.0;
        for (b, r) in joint.iter().enumerate() {
            for (c, v) in r.iter().enumerate() {
                let p = v / total;
                if p > 0.0 {
                    mi += p * (p / (p_bin[b] * p_lab[c])).log2();
                }
            }
        }
        out.push(ScoredFeature {
            index: j,
            name: data.feature_names[j].clone(),
            score: mi,
        });
    }
    // total_cmp, not partial_cmp: a degenerate binning (constant column,
    // single-class fold) can yield a NaN score, and the ranking must
    // never panic on it. Tied scores break toward the lower column
    // index, so the ranking is a total, deterministic function of the
    // data alone.
    out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.index.cmp(&b.index)));
    out
}

/// One step of the greedy trace: the feature chosen and the training
/// error after adding it.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyStep {
    /// Column index of the chosen feature.
    pub index: usize,
    /// Feature name.
    pub name: String,
    /// Training error with the selected set so far.
    pub error: f64,
}

/// Greedy forward feature selection (Table 4).
///
/// Starting from the empty set, repeatedly adds the feature that
/// minimizes the training error of the classifier built by `train_error`:
/// a callback receiving a candidate dataset (the selected features plus
/// one candidate) and returning the training error in `[0, 1]`. Runs for
/// `steps` rounds. The candidate evaluations of each round run in
/// parallel (`train_error` must therefore be a pure function of the
/// dataset), bit-identical to a serial scan. For the 1-NN criterion,
/// prefer [`greedy_forward_nn`], which avoids rebuilding distances per
/// candidate entirely.
pub fn greedy_forward<F>(data: &Dataset, steps: usize, train_error: F) -> Vec<GreedyStep>
where
    F: Fn(&Dataset) -> f64 + Sync,
{
    greedy_forward_threads(data, steps, train_error, num_threads())
}

/// [`greedy_forward`] with an explicit worker count (used by the
/// equivalence tests to force serial vs. multi-threaded execution).
pub fn greedy_forward_threads<F>(
    data: &Dataset,
    steps: usize,
    train_error: F,
    threads: usize,
) -> Vec<GreedyStep>
where
    F: Fn(&Dataset) -> f64 + Sync,
{
    let d = data.dims();
    let mut selected: Vec<usize> = Vec::new();
    let mut trace = Vec::new();
    for _ in 0..steps.min(d) {
        let candidates: Vec<usize> = (0..d).filter(|c| !selected.contains(c)).collect();
        let errors = par_map_threads(threads, &candidates, |&cand| {
            let mut cols = selected.clone();
            cols.push(cand);
            train_error(&data.select_features(&cols))
        });
        let Some((idx, err)) = argmin(&candidates, &errors) else {
            break;
        };
        selected.push(idx);
        trace.push(GreedyStep {
            index: idx,
            name: data.feature_names[idx].clone(),
            error: err,
        });
    }
    trace
}

/// Greedy forward selection under the leave-self-out 1-NN criterion
/// (the NN column of Table 4), incremental: distances are additive
/// across features, so each candidate `S ∪ {f}` is evaluated with an
/// O(n²) accumulate over the precomputed per-feature cache instead of
/// the O(n²·|S|) recompute [`greedy_forward`] +
/// [`nn1_training_error`] performs. Candidates run in parallel; traces
/// are bit-identical to the direct path (both sum distances strictly
/// left-to-right in selection order).
pub fn greedy_forward_nn(data: &Dataset, steps: usize) -> Vec<GreedyStep> {
    greedy_forward_nn_threads(data, steps, num_threads())
}

/// [`greedy_forward_nn`] with an explicit worker count (used by the
/// equivalence tests to force serial vs. multi-threaded execution).
///
/// Picks its own memory strategy: when the accumulated n×n base matrix
/// fits the [`tile_budget_bytes`] budget it is held dense and updated
/// incrementally; past the budget the search switches to
/// [`greedy_forward_nn_tiled_threads`], which streams row strips and
/// never materializes the full matrix. Both strategies are bit-identical.
pub fn greedy_forward_nn_threads(data: &Dataset, steps: usize, threads: usize) -> Vec<GreedyStep> {
    let d = data.dims();
    let n = data.len();
    let dense_bytes = (n as u64) * (n as u64) * 8;
    if dense_bytes > tile_budget_bytes() {
        let tile = tile_rows_for(n, threads);
        return greedy_forward_nn_tiled_threads(data, steps, tile, threads);
    }
    let cache = FeatureDistCache::fit(data);
    // Accumulated distance matrix of the selected subset (empty set: 0).
    let _acct = DistAlloc::new(dense_bytes);
    let mut base = vec![0.0; n * n];
    let mut selected: Vec<usize> = Vec::new();
    let mut trace = Vec::new();
    for _ in 0..steps.min(d) {
        let candidates: Vec<usize> = (0..d).filter(|c| !selected.contains(c)).collect();
        let errors = cache.nn1_errors_batch(&base, &candidates, threads);
        let Some((idx, err)) = argmin(&candidates, &errors) else {
            break;
        };
        cache.accumulate(idx, &mut base);
        selected.push(idx);
        trace.push(GreedyStep {
            index: idx,
            name: data.feature_names[idx].clone(),
            error: err,
        });
    }
    trace
}

/// Greedy forward 1-NN selection over row strips: like
/// [`greedy_forward_nn`], but the accumulated base matrix is never
/// materialized — each worker rebuilds a `tile_rows × n` strip of it
/// (selected contributions re-accumulated in selection order) per
/// round, bounding peak memory at `workers · tile_rows · n · 8` bytes.
/// Trades O(n²·|S|) recompute work per round for the O(n²) memory; the
/// trace is bit-identical to the dense path at any tile size and any
/// thread count.
pub fn greedy_forward_nn_tiled(data: &Dataset, steps: usize, tile_rows: usize) -> Vec<GreedyStep> {
    greedy_forward_nn_tiled_threads(data, steps, tile_rows, num_threads())
}

/// [`greedy_forward_nn_tiled`] with an explicit worker count.
pub fn greedy_forward_nn_tiled_threads(
    data: &Dataset,
    steps: usize,
    tile_rows: usize,
    threads: usize,
) -> Vec<GreedyStep> {
    let d = data.dims();
    let cache = FeatureDistCache::fit(data);
    let mut selected: Vec<usize> = Vec::new();
    let mut trace = Vec::new();
    for _ in 0..steps.min(d) {
        let candidates: Vec<usize> = (0..d).filter(|c| !selected.contains(c)).collect();
        let errors = cache.nn1_errors_batch_tiled(&selected, &candidates, tile_rows, threads);
        let Some((idx, err)) = argmin(&candidates, &errors) else {
            break;
        };
        selected.push(idx);
        trace.push(GreedyStep {
            index: idx,
            name: data.feature_names[idx].clone(),
            error: err,
        });
    }
    trace
}

/// First strict minimum over `(candidates, errors)` — the same candidate
/// a serial ascending scan with `<` would pick.
fn argmin(candidates: &[usize], errors: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (&cand, &err) in candidates.iter().zip(errors) {
        if best.is_none_or(|(_, e)| err < e) {
            best = Some((cand, err));
        }
    }
    best
}

/// Training error of a 1-nearest-neighbor classifier evaluated
/// leave-self-out (the "single closest point" variant the paper uses for
/// greedy selection with NN).
///
/// Distances are summed strictly left-to-right over the dataset's
/// columns — the same floating-point operation sequence the
/// [`FeatureDistCache`] produces when it accumulates one feature column
/// at a time (candidate last), so the greedy trace from this direct
/// evaluator is bit-identical to the cached one. The chunked
/// [`crate::dist2`] kernel reassociates the sum and can flip
/// exactly-tied nearest neighbors; do not substitute it here.
pub fn nn1_training_error(data: &Dataset) -> f64 {
    let norm = MinMaxNormalizer::fit(&data.x);
    let xs = norm.transform(&data.x);
    let n = xs.len();
    if n < 2 {
        return 1.0;
    }
    let mut errors = 0usize;
    for i in 0..n {
        let mut best = (f64::INFINITY, 0usize);
        for j in 0..n {
            if j == i {
                continue;
            }
            let mut d2 = 0.0;
            for (a, b) in xs[i].iter().zip(&xs[j]) {
                let d = a - b;
                d2 += d * d;
            }
            if d2 < best.0 {
                best = (d2, j);
            }
        }
        if data.y[best.1] != data.y[i] {
            errors += 1;
        }
    }
    errors as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Label is a function of feature 0; feature 1 is noise; feature 2 is
    /// constant.
    fn toy() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for k in 0..40 {
            let informative = (k % 4) as f64;
            let noise = ((k * 7919) % 13) as f64;
            x.push(vec![informative, noise, 3.0]);
            y.push(k % 4);
        }
        let n = x.len();
        Dataset::new(
            x,
            y,
            4,
            vec!["informative".into(), "noise".into(), "const".into()],
            (0..n).map(|i| format!("e{i}")).collect(),
        )
    }

    #[test]
    fn mis_ranks_informative_first() {
        let scores = mutual_information(&toy());
        assert_eq!(scores[0].name, "informative");
        assert!(scores[0].score > scores[1].score);
    }

    #[test]
    fn constant_feature_scores_zero() {
        let scores = mutual_information(&toy());
        let c = scores.iter().find(|s| s.name == "const").unwrap();
        assert!(c.score.abs() < 1e-9);
    }

    #[test]
    fn all_constant_columns_rank_stably_without_panicking() {
        // Regression: the ranking used partial_cmp().expect("finite
        // scores"), which panics the moment any score comparison is
        // unordered. Every column constant → every score ties at ~0;
        // the sort must survive and fall back to ascending column index.
        let n = 12;
        let data = Dataset::new(
            (0..n).map(|_| vec![7.0, 7.0, 7.0]).collect(),
            (0..n).map(|k| k % 2).collect(),
            2,
            vec!["c0".into(), "c1".into(), "c2".into()],
            (0..n).map(|i| format!("e{i}")).collect(),
        );
        let scores = mutual_information(&data);
        assert_eq!(
            scores.iter().map(|s| s.index).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "tied scores must break toward the lower column index"
        );
    }

    #[test]
    fn tied_scores_break_toward_lower_index() {
        // Two identical informative columns: identical MI scores, and the
        // ranking must list the lower column index first every time.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for k in 0..20 {
            let v = (k % 2) as f64;
            x.push(vec![v, v]);
            y.push(k % 2);
        }
        let n = x.len();
        let data = Dataset::new(
            x,
            y,
            2,
            vec!["twin_a".into(), "twin_b".into()],
            (0..n).map(|i| format!("e{i}")).collect(),
        );
        let scores = mutual_information(&data);
        assert_eq!(scores[0].score, scores[1].score);
        assert_eq!(scores[0].index, 0);
        assert_eq!(scores[1].index, 1);
    }

    #[test]
    fn mis_scores_nonnegative() {
        for s in mutual_information(&toy()) {
            assert!(s.score >= -1e-12, "{s:?}");
        }
    }

    #[test]
    fn greedy_picks_informative_then_stalls() {
        let d = toy();
        let trace = greedy_forward(&d, 3, nn1_training_error);
        assert_eq!(trace[0].name, "informative");
        assert!(trace[0].error < 0.05, "{trace:?}");
        // Error never increases along the greedy trace by construction of
        // the search (it can plateau).
        for w in trace.windows(2) {
            assert!(w[1].error <= w[0].error + 0.25, "{trace:?}");
        }
    }

    #[test]
    fn nn1_error_perfect_on_clean_clusters() {
        let d = toy().select_features(&[0]);
        assert!(nn1_training_error(&d) < 0.05);
    }

    #[test]
    fn greedy_respects_step_budget() {
        let d = toy();
        assert_eq!(greedy_forward(&d, 2, nn1_training_error).len(), 2);
        assert!(greedy_forward(&d, 99, nn1_training_error).len() <= 3);
    }

    #[test]
    fn parallel_greedy_is_bit_identical_to_serial() {
        let d = toy();
        let serial = greedy_forward_threads(&d, 3, nn1_training_error, 1);
        let serial_nn = greedy_forward_nn_threads(&d, 3, 1);
        for threads in [2, 4] {
            assert_eq!(
                serial,
                greedy_forward_threads(&d, 3, nn1_training_error, threads),
                "direct greedy diverged at {threads} threads"
            );
            assert_eq!(
                serial_nn,
                greedy_forward_nn_threads(&d, 3, threads),
                "cached greedy diverged at {threads} threads"
            );
        }
        // And through the default (env/core-count) entry points.
        assert_eq!(serial, greedy_forward(&d, 3, nn1_training_error));
        assert_eq!(serial_nn, greedy_forward_nn(&d, 3));
    }

    #[test]
    fn cached_greedy_matches_direct_greedy() {
        // On the toy data and on random datasets the incremental path
        // must pick the same features with the same errors as the
        // recompute-from-scratch path.
        let d = toy();
        assert_eq!(
            greedy_forward(&d, 3, nn1_training_error),
            greedy_forward_nn(&d, 3)
        );
        let mut rng = loopml_rt::Rng::seed_from_u64(0x6EE0);
        for _ in 0..5 {
            let n = rng.gen_range(6..20usize);
            let dims = rng.gen_range(2..7usize);
            let x: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..dims).map(|_| rng.gen_range(-10.0..10.0)).collect())
                .collect();
            let y: Vec<usize> = (0..n).map(|_| rng.gen_range(0..3usize)).collect();
            let data = Dataset::new(
                x,
                y,
                3,
                (0..dims).map(|j| format!("f{j}")).collect(),
                (0..n).map(|i| format!("e{i}")).collect(),
            );
            let direct = greedy_forward(&data, dims, nn1_training_error);
            let cached = greedy_forward_nn(&data, dims);
            assert_eq!(direct, cached);
        }
    }

    /// Random dataset of `n` examples over 6 features, seeded from
    /// `(tile, n)` so every boundary case gets distinct data.
    fn boundary_dataset(tile: usize, n: usize) -> Dataset {
        let mut rng = loopml_rt::Rng::seed_from_u64(0x7A11ED ^ ((tile as u64) << 32) ^ n as u64);
        let d = 6;
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-10.0..10.0)).collect())
            .collect();
        let y: Vec<usize> = (0..n).map(|_| rng.gen_range(0..3usize)).collect();
        Dataset::new(
            x,
            y,
            3,
            (0..d).map(|j| format!("f{j}")).collect(),
            (0..n).map(|i| format!("e{i}")).collect(),
        )
    }

    #[test]
    fn tiled_greedy_argmin_matches_dense_at_boundary_sizes() {
        // The sharded (row-strip) evaluation must be bit-identical to
        // the dense base-matrix path at every tiling boundary: corpora
        // smaller than a tile, exactly one tile, one row past a tile,
        // and a ragged final strip — at 1 and 4 workers.
        for &tile in &[1usize, 7, 64] {
            for n in [1, tile.saturating_sub(1), tile, tile + 1, 3 * tile + 2] {
                if n == 0 {
                    continue;
                }
                let data = boundary_dataset(tile, n);
                let d = data.dims();
                let dense_trace = greedy_forward_nn_threads(&data, d, 1);
                let cache = FeatureDistCache::fit(&data);
                let candidates: Vec<usize> = (0..d).collect();
                let dense_errs = cache.nn1_errors_batch(&vec![0.0; n * n], &candidates, 1);
                for &threads in &[1usize, 4] {
                    let tiled_trace = greedy_forward_nn_tiled_threads(&data, d, tile, threads);
                    assert_eq!(
                        dense_trace, tiled_trace,
                        "greedy trace diverged: tile {tile}, n {n}, threads {threads}"
                    );
                    let tiled_errs = cache.nn1_errors_batch_tiled(&[], &candidates, tile, threads);
                    assert_eq!(
                        dense_errs, tiled_errs,
                        "argmin errors diverged: tile {tile}, n {n}, threads {threads}"
                    );
                }
            }
        }
    }
}
