//! Feature selection (paper §7): mutual information scoring and greedy
//! forward selection.

use crate::dataset::{Dataset, MinMaxNormalizer};

/// Number of equal-width bins used to discretize continuous features
/// before estimating probability mass functions.
pub const MIS_BINS: usize = 10;

/// A feature with its mutual information score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredFeature {
    /// Column index into the dataset.
    pub index: usize,
    /// Feature name.
    pub name: String,
    /// Mutual information score in bits.
    pub score: f64,
}

/// Computes the mutual information `I(f; u)` between each feature and the
/// label, returning features sorted by descending score (Table 3).
///
/// Continuous features are min-max normalized and binned into
/// [`MIS_BINS`] equal-width bins.
pub fn mutual_information(data: &Dataset) -> Vec<ScoredFeature> {
    let n = data.len();
    assert!(n > 0, "empty dataset");
    let norm = MinMaxNormalizer::fit(&data.x);
    let xs = norm.transform(&data.x);
    let d = data.dims();
    let classes = data.classes;

    let mut out = Vec::with_capacity(d);
    for j in 0..d {
        // Joint histogram over (bin, label).
        let mut joint = vec![vec![0.0f64; classes]; MIS_BINS];
        for (row, &y) in xs.iter().zip(&data.y) {
            let b = ((row[j] * MIS_BINS as f64) as usize).min(MIS_BINS - 1);
            joint[b][y] += 1.0;
        }
        let total = n as f64;
        let p_bin: Vec<f64> = joint
            .iter()
            .map(|r| r.iter().sum::<f64>() / total)
            .collect();
        let mut p_lab = vec![0.0f64; classes];
        for r in &joint {
            for (c, v) in r.iter().enumerate() {
                p_lab[c] += v / total;
            }
        }
        let mut mi = 0.0;
        for (b, r) in joint.iter().enumerate() {
            for (c, v) in r.iter().enumerate() {
                let p = v / total;
                if p > 0.0 {
                    mi += p * (p / (p_bin[b] * p_lab[c])).log2();
                }
            }
        }
        out.push(ScoredFeature {
            index: j,
            name: data.feature_names[j].clone(),
            score: mi,
        });
    }
    out.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
    out
}

/// One step of the greedy trace: the feature chosen and the training
/// error after adding it.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyStep {
    /// Column index of the chosen feature.
    pub index: usize,
    /// Feature name.
    pub name: String,
    /// Training error with the selected set so far.
    pub error: f64,
}

/// Greedy forward feature selection (Table 4).
///
/// Starting from the empty set, repeatedly adds the feature that
/// minimizes the training error of the classifier built by `train_error`:
/// a callback receiving a candidate dataset (the selected features plus
/// one candidate) and returning the training error in `[0, 1]`. Runs for
/// `steps` rounds.
pub fn greedy_forward<F>(data: &Dataset, steps: usize, mut train_error: F) -> Vec<GreedyStep>
where
    F: FnMut(&Dataset) -> f64,
{
    let d = data.dims();
    let mut selected: Vec<usize> = Vec::new();
    let mut trace = Vec::new();
    for _ in 0..steps.min(d) {
        let mut best: Option<(usize, f64)> = None;
        for cand in 0..d {
            if selected.contains(&cand) {
                continue;
            }
            let mut cols = selected.clone();
            cols.push(cand);
            let sub = data.select_features(&cols);
            let err = train_error(&sub);
            if best.is_none_or(|(_, e)| err < e) {
                best = Some((cand, err));
            }
        }
        let Some((idx, err)) = best else { break };
        selected.push(idx);
        trace.push(GreedyStep {
            index: idx,
            name: data.feature_names[idx].clone(),
            error: err,
        });
    }
    trace
}

/// Training error of a 1-nearest-neighbor classifier evaluated
/// leave-self-out (the "single closest point" variant the paper uses for
/// greedy selection with NN).
pub fn nn1_training_error(data: &Dataset) -> f64 {
    use crate::dataset::dist2;
    let norm = MinMaxNormalizer::fit(&data.x);
    let xs = norm.transform(&data.x);
    let n = xs.len();
    if n < 2 {
        return 1.0;
    }
    let mut errors = 0usize;
    for i in 0..n {
        let mut best = (f64::INFINITY, 0usize);
        for j in 0..n {
            if j == i {
                continue;
            }
            let d2 = dist2(&xs[i], &xs[j]);
            if d2 < best.0 {
                best = (d2, j);
            }
        }
        if data.y[best.1] != data.y[i] {
            errors += 1;
        }
    }
    errors as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Label is a function of feature 0; feature 1 is noise; feature 2 is
    /// constant.
    fn toy() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for k in 0..40 {
            let informative = (k % 4) as f64;
            let noise = ((k * 7919) % 13) as f64;
            x.push(vec![informative, noise, 3.0]);
            y.push(k % 4);
        }
        let n = x.len();
        Dataset::new(
            x,
            y,
            4,
            vec!["informative".into(), "noise".into(), "const".into()],
            (0..n).map(|i| format!("e{i}")).collect(),
        )
    }

    #[test]
    fn mis_ranks_informative_first() {
        let scores = mutual_information(&toy());
        assert_eq!(scores[0].name, "informative");
        assert!(scores[0].score > scores[1].score);
    }

    #[test]
    fn constant_feature_scores_zero() {
        let scores = mutual_information(&toy());
        let c = scores.iter().find(|s| s.name == "const").unwrap();
        assert!(c.score.abs() < 1e-9);
    }

    #[test]
    fn mis_scores_nonnegative() {
        for s in mutual_information(&toy()) {
            assert!(s.score >= -1e-12, "{s:?}");
        }
    }

    #[test]
    fn greedy_picks_informative_then_stalls() {
        let d = toy();
        let trace = greedy_forward(&d, 3, nn1_training_error);
        assert_eq!(trace[0].name, "informative");
        assert!(trace[0].error < 0.05, "{trace:?}");
        // Error never increases along the greedy trace by construction of
        // the search (it can plateau).
        for w in trace.windows(2) {
            assert!(w[1].error <= w[0].error + 0.25, "{trace:?}");
        }
    }

    #[test]
    fn nn1_error_perfect_on_clean_clusters() {
        let d = toy().select_features(&[0]);
        assert!(nn1_training_error(&d) < 0.05);
    }

    #[test]
    fn greedy_respects_step_budget() {
        let d = toy();
        assert_eq!(greedy_forward(&d, 2, nn1_training_error).len(), 2);
        assert!(greedy_forward(&d, 99, nn1_training_error).len() <= 3);
    }
}
