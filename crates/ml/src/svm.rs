//! Support vector machines trained by dual coordinate descent.
//!
//! The paper trains its multi-class classifier with the LS-SVMlab toolkit:
//! kernel machines with an RBF kernel, combined through one-vs-rest output
//! codes (§5.2). This module implements a soft-margin SVM in the
//! *bias-through-kernel* formulation (`K' = K + 1`), whose dual has only
//! box constraints and therefore admits simple, warm-startable coordinate
//! descent — the property the exact-ish leave-one-out path in
//! [`MulticlassSvm::loo_predictions`] exploits: removing a non-support
//! vector provably does not change the solution, and removing a support
//! vector only requires a short re-converge from the warm start.

use crate::classify::{expect_kind, Classifier};
use crate::dataset::{dist2, Dataset, MinMaxNormalizer};
use crate::distcache::{DistanceMatrix, KernelAlloc};
use loopml_rt::{num_threads, par_map, par_map_threads, Json};

/// SVM hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmParams {
    /// Soft-margin penalty.
    pub c: f64,
    /// RBF kernel width: `k(x,y) = exp(-gamma * ||x-y||^2)`.
    pub gamma: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Maximum full coordinate sweeps during training.
    pub max_sweeps: usize,
    /// Re-converge sweeps per leave-one-out retrain.
    pub loo_sweeps: usize,
}

impl SvmParams {
    /// Serializes the hyperparameters for a model artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("c", Json::Num(self.c)),
            ("gamma", Json::Num(self.gamma)),
            ("tol", Json::Num(self.tol)),
            ("max_sweeps", Json::Num(self.max_sweeps as f64)),
            ("loo_sweeps", Json::Num(self.loo_sweeps as f64)),
        ])
    }

    /// Parses hyperparameters written by [`to_json`](SvmParams::to_json).
    pub fn from_json(doc: &Json) -> Result<SvmParams, String> {
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("SVM params have no numeric {key:?}"))
        };
        let count = |key: &str| {
            num(key).and_then(|v| {
                if v >= 0.0 && v.fract() == 0.0 {
                    Ok(v as usize)
                } else {
                    Err(format!("SVM params {key:?} is not a whole count"))
                }
            })
        };
        Ok(SvmParams {
            c: num("c")?,
            gamma: num("gamma")?,
            tol: num("tol")?,
            max_sweeps: count("max_sweeps")?,
            loo_sweeps: count("loo_sweeps")?,
        })
    }
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            c: 10.0,
            gamma: 1.0,
            tol: 1e-3,
            max_sweeps: 60,
            loo_sweeps: 6,
        }
    }
}

/// Precomputed RBF kernel matrix (with the +1 bias term folded in).
///
/// Every n×n buffer a cache holds is registered with the crate-wide
/// kernel-byte accounting ([`crate::peak_kernel_bytes`]) for its whole
/// lifetime — cloning a cache registers a second buffer — so the
/// scaling-gate peak reflects kernels as faithfully as distances.
#[derive(Debug, Clone)]
pub struct KernelCache {
    n: usize,
    k: Vec<f64>,
    /// RAII registration of `k`'s bytes with the kernel accounting.
    _alloc: KernelAlloc,
}

impl KernelCache {
    /// The zero-sized cache carried by unfitted machines.
    pub(crate) fn empty() -> Self {
        KernelCache {
            n: 0,
            k: Vec::new(),
            _alloc: KernelAlloc::new(0),
        }
    }
    /// Computes the full kernel matrix over normalized rows: the pairwise
    /// distances once, then the RBF entries via [`from_distances`].
    ///
    /// [`from_distances`]: KernelCache::from_distances
    pub fn compute(xs: &[Vec<f64>], gamma: f64) -> Self {
        Self::from_distances(&DistanceMatrix::compute(xs), gamma)
    }

    /// Derives the RBF kernel matrix (with the +1 bias term folded in)
    /// from an already-computed pairwise distance matrix, for any gamma,
    /// without re-touching feature vectors — compute the distances once,
    /// sweep gamma for free.
    pub fn from_distances(dm: &DistanceMatrix, gamma: f64) -> Self {
        let n = dm.n();
        let alloc = KernelAlloc::new((n * n * 8) as u64);
        let mut k = vec![0.0; n * n];
        for i in 0..n {
            let drow = dm.row(i);
            let krow = &mut k[i * n..(i + 1) * n];
            for (kv, &d2) in krow.iter_mut().zip(drow) {
                *kv = (-gamma * d2).exp() + 1.0;
            }
        }
        KernelCache {
            n,
            k,
            _alloc: alloc,
        }
    }

    /// Builds a kernel cache from already-materialized entries — the
    /// streaming sweep derives RBF rows strip by strip (bit-identical to
    /// [`from_distances`](KernelCache::from_distances)) and assembles
    /// them here without ever holding a full distance matrix.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not n×n.
    pub(crate) fn from_parts(n: usize, k: Vec<f64>) -> Self {
        assert_eq!(k.len(), n * n, "kernel must be n×n");
        let alloc = KernelAlloc::new((n * n * 8) as u64);
        KernelCache {
            n,
            k,
            _alloc: alloc,
        }
    }

    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        &self.k[i * self.n..(i + 1) * self.n]
    }

    /// The flat n×n kernel entries — exposed so sweep tests can compare a
    /// [`from_distances`](KernelCache::from_distances)-derived kernel
    /// against a direct [`compute`](KernelCache::compute) bit-for-bit.
    #[cfg(test)]
    pub(crate) fn entries(&self) -> &[f64] {
        &self.k
    }
}

/// Trains one binary machine by dual coordinate descent.
///
/// `labels` are ±1. `alpha0` warm-starts the solver; `frozen` pins one
/// index at zero (the left-out example during LOO). `active` restricts
/// the coordinates optimized (and the decision values maintained) to a
/// subset — the support-vector set during LOO re-convergence, where
/// removing one point perturbs mostly the other support vectors. Returns
/// the dual variables.
pub(crate) fn train_binary(
    kc: &KernelCache,
    labels: &[f64],
    params: &SvmParams,
    alpha0: Option<&[f64]>,
    frozen: Option<usize>,
    sweeps: usize,
    active: Option<&[usize]>,
) -> Vec<f64> {
    let n = kc.n;
    let mut alpha = match alpha0 {
        Some(a) => a.to_vec(),
        None => vec![0.0; n],
    };
    if let Some(i) = frozen {
        alpha[i] = 0.0;
    }
    let full: Vec<usize>;
    let active: &[usize] = match active {
        Some(a) => a,
        None => {
            full = (0..n).collect();
            &full
        }
    };

    // f[p] = sum_j alpha_j y_j K'(active[p], j), maintained for the
    // active coordinates only.
    let mut f = vec![0.0; active.len()];
    for (p, &i) in active.iter().enumerate() {
        let row = kc.row(i);
        f[p] = alpha
            .iter()
            .zip(labels)
            .zip(row)
            .filter(|((a, _), _)| **a != 0.0)
            .map(|((a, y), k)| a * y * k)
            .sum();
    }

    for _sweep in 0..sweeps {
        let mut max_violation: f64 = 0.0;
        for (p, &i) in active.iter().enumerate() {
            if Some(i) == frozen {
                continue;
            }
            let yi = labels[i];
            let g = yi * f[p] - 1.0; // gradient of the dual w.r.t alpha_i (negated)
            let violation = if alpha[i] <= 0.0 {
                (-g).max(0.0)
            } else if alpha[i] >= params.c {
                g.max(0.0)
            } else {
                g.abs()
            };
            max_violation = max_violation.max(violation);
            if violation <= params.tol {
                continue;
            }
            let kii = kc.row(i)[i];
            let new_alpha = (alpha[i] - g / kii).clamp(0.0, params.c);
            let delta = new_alpha - alpha[i];
            if delta.abs() < 1e-12 {
                continue;
            }
            alpha[i] = new_alpha;
            let row = kc.row(i);
            let dy = delta * yi;
            for (q, &t) in active.iter().enumerate() {
                f[q] += dy * row[t];
            }
        }
        if max_violation <= params.tol {
            break;
        }
    }
    alpha
}

/// Decision value of a binary machine at training point `i`.
pub(crate) fn decision_at(kc: &KernelCache, labels: &[f64], alpha: &[f64], i: usize) -> f64 {
    let row = kc.row(i);
    alpha
        .iter()
        .zip(labels)
        .zip(row)
        .filter(|((a, _), _)| **a != 0.0)
        .map(|((a, y), k)| a * y * k)
        .sum()
}

/// A trained multi-class SVM using one-vs-rest output codes with Hamming
/// decoding (margin tie-break), as in the paper.
#[derive(Debug, Clone)]
pub struct MulticlassSvm {
    params: SvmParams,
    normalizer: MinMaxNormalizer,
    xs: Vec<Vec<f64>>,
    ys: Vec<usize>,
    classes: usize,
    /// Per-class dual variables.
    alphas: Vec<Vec<f64>>,
    kernel: KernelCache,
}

impl MulticlassSvm {
    /// An *unfitted* machine carrying only its hyperparameters; call
    /// [`Classifier::fit`] before use. Until then it predicts class 0.
    pub fn new(params: SvmParams) -> Self {
        MulticlassSvm {
            params,
            normalizer: MinMaxNormalizer::identity(),
            xs: Vec::new(),
            ys: Vec::new(),
            classes: 0,
            alphas: Vec::new(),
            kernel: KernelCache::empty(),
        }
    }

    /// Trains one binary machine per class (one-vs-rest). The per-class
    /// trainers are independent and run in parallel, bit-identical to a
    /// serial fit.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(data: &Dataset, params: SvmParams) -> Self {
        Self::fit_threads(data, params, num_threads())
    }

    /// [`fit`](MulticlassSvm::fit) with an explicit worker count (used by
    /// the equivalence tests to force serial vs. multi-threaded training).
    pub fn fit_threads(data: &Dataset, params: SvmParams, threads: usize) -> Self {
        assert!(!data.is_empty(), "cannot fit to an empty dataset");
        let normalizer = MinMaxNormalizer::fit(&data.x);
        let xs = normalizer.transform(&data.x);
        let kernel = KernelCache::compute(&xs, params.gamma);
        let classes: Vec<usize> = (0..data.classes).collect();
        let alphas = par_map_threads(threads, &classes, |&class| {
            let labels: Vec<f64> = data
                .y
                .iter()
                .map(|&y| if y == class { 1.0 } else { -1.0 })
                .collect();
            train_binary(
                &kernel,
                &labels,
                &params,
                None,
                None,
                params.max_sweeps,
                None,
            )
        });
        MulticlassSvm {
            params,
            normalizer,
            xs,
            ys: data.y.clone(),
            classes: data.classes,
            alphas,
            kernel,
        }
    }

    /// Per-class decision values for a raw feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the machine is fitted and `x`'s length differs from the
    /// training dimension (the normalizer and `dist2` both reject
    /// mismatched lengths rather than computing a wrong answer).
    pub fn decision_values(&self, x: &[f64]) -> Vec<f64> {
        if let Some(xi) = self.xs.first() {
            assert_eq!(
                x.len(),
                xi.len(),
                "SVM fitted on {} features cannot score a {}-feature query",
                xi.len(),
                x.len()
            );
        }
        let mut q = x.to_vec();
        self.normalizer.apply(&mut q);
        let krow: Vec<f64> = self
            .xs
            .iter()
            .map(|xi| (-self.params.gamma * dist2(&q, xi)).exp() + 1.0)
            .collect();
        (0..self.classes)
            .map(|c| {
                self.alphas[c]
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| **a != 0.0)
                    .map(|(j, a)| {
                        let yj = if self.ys[j] == c { 1.0 } else { -1.0 };
                        a * yj * krow[j]
                    })
                    .sum()
            })
            .collect()
    }

    /// Predicts the class of a raw feature vector via output-code
    /// decoding.
    pub fn predict(&self, x: &[f64]) -> usize {
        decode(&self.decision_values(x))
    }

    /// Exact-leaning leave-one-out predictions for every training
    /// example: machines in which the example is not a support vector are
    /// reused as-is (removal provably does not change them); the rest are
    /// re-converged from a warm start with the example frozen out. The
    /// per-example folds only read the trained machine, so they run in
    /// parallel, bit-identical to a serial pass.
    pub fn loo_predictions(&self) -> Vec<usize> {
        self.loo_predictions_threads(num_threads())
    }

    /// [`loo_predictions`](MulticlassSvm::loo_predictions) with an
    /// explicit worker count (used by the equivalence tests to force
    /// serial vs. multi-threaded execution).
    pub fn loo_predictions_threads(&self, threads: usize) -> Vec<usize> {
        let n = self.xs.len();
        // Per-class machinery computed once: one-vs-rest labels and the
        // support-vector active sets used for warm-start re-convergence.
        let labels_by_class: Vec<Vec<f64>> = (0..self.classes)
            .map(|c| {
                self.ys
                    .iter()
                    .map(|&y| if y == c { 1.0 } else { -1.0 })
                    .collect()
            })
            .collect();
        let active_by_class: Vec<Vec<usize>> = self
            .alphas
            .iter()
            .map(|a| (0..n).filter(|&j| a[j] > 0.0).collect())
            .collect();

        let indices: Vec<usize> = (0..n).collect();
        par_map_threads(threads, &indices, |&i| {
            let mut decisions = Vec::with_capacity(self.classes);
            for c in 0..self.classes {
                let labels = &labels_by_class[c];
                let d = if self.alphas[c][i] == 0.0 {
                    // Removing a non-support vector provably leaves the
                    // solution unchanged: reuse the trained machine.
                    decision_at(&self.kernel, labels, &self.alphas[c], i)
                } else {
                    let alpha = train_binary(
                        &self.kernel,
                        labels,
                        &self.params,
                        Some(&self.alphas[c]),
                        Some(i),
                        self.params.loo_sweeps,
                        Some(&active_by_class[c]),
                    );
                    decision_at(&self.kernel, labels, &alpha, i)
                };
                decisions.push(d);
            }
            decode(&decisions)
        })
    }

    /// Number of support vectors per class machine.
    pub fn support_counts(&self) -> Vec<usize> {
        self.alphas
            .iter()
            .map(|a| a.iter().filter(|&&v| v > 0.0).count())
            .collect()
    }
}

impl Classifier for MulticlassSvm {
    fn fit(&mut self, data: &Dataset) {
        *self = MulticlassSvm::fit(data, self.params);
    }

    fn predict(&self, x: &[f64]) -> usize {
        decode(&self.decision_values(x))
    }

    fn name(&self) -> &str {
        "SVM"
    }

    fn fresh(&self) -> Box<dyn Classifier> {
        Box::new(MulticlassSvm::new(self.params))
    }

    fn save(&self) -> Json {
        Json::obj([
            ("kind", Json::Str("SVM".into())),
            ("params", self.params.to_json()),
            ("classes", Json::Num(self.classes as f64)),
            ("normalizer", self.normalizer.to_json()),
            (
                "xs",
                Json::Arr(self.xs.iter().map(|r| Json::from_f64s(r)).collect()),
            ),
            ("ys", Json::from_usizes(&self.ys)),
            (
                "alphas",
                Json::Arr(self.alphas.iter().map(|a| Json::from_f64s(a)).collect()),
            ),
        ])
    }

    fn load(&mut self, state: &Json) -> Result<(), String> {
        expect_kind(state, "SVM")?;
        let params = SvmParams::from_json(state.get("params").unwrap_or(&Json::Null))?;
        let classes = state
            .get("classes")
            .and_then(Json::as_num)
            .filter(|c| *c >= 0.0 && c.fract() == 0.0)
            .ok_or("SVM state has no class count")? as usize;
        let normalizer =
            MinMaxNormalizer::from_json(state.get("normalizer").unwrap_or(&Json::Null))?;
        let xs: Vec<Vec<f64>> = state
            .get("xs")
            .and_then(Json::as_arr)
            .ok_or("SVM state has no xs")?
            .iter()
            .map(Json::as_f64s)
            .collect::<Option<_>>()
            .ok_or("SVM state has a non-numeric example row")?;
        let ys = state
            .get("ys")
            .and_then(Json::as_usizes)
            .ok_or("SVM state has no ys")?;
        let alphas: Vec<Vec<f64>> = state
            .get("alphas")
            .and_then(Json::as_arr)
            .ok_or("SVM state has no alphas")?
            .iter()
            .map(Json::as_f64s)
            .collect::<Option<_>>()
            .ok_or("SVM state has a non-numeric alpha row")?;
        if xs.len() != ys.len() {
            return Err(format!(
                "SVM state: {} rows vs {} labels",
                xs.len(),
                ys.len()
            ));
        }
        if let Some(first) = xs.first() {
            if xs.iter().any(|r| r.len() != first.len()) {
                return Err("SVM state has ragged example rows".into());
            }
        }
        if ys.iter().any(|&y| y >= classes) {
            return Err("SVM state has a label out of class range".into());
        }
        if alphas.len() != classes || alphas.iter().any(|a| a.len() != xs.len()) {
            return Err("SVM state alphas do not match classes x examples".into());
        }
        // The kernel matrix is derived state: recompute it from the
        // stored (already normalized) rows, exactly as fit would.
        let kernel = if xs.is_empty() {
            KernelCache::empty()
        } else {
            KernelCache::compute(&xs, params.gamma)
        };
        *self = MulticlassSvm {
            params,
            normalizer,
            xs,
            ys,
            classes,
            alphas,
            kernel,
        };
        Ok(())
    }

    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        // Per-class support-vector lists precomputed once for the whole
        // batch: `(j, alpha_j * y_j)` pairs in index order. `y_j` is
        // exactly ±1.0 and `a * yj * krow[j]` associates left, so
        // `(a * yj) * krow[j]` below is the same float operation sequence
        // as decision_values — bit-identical, just amortized.
        let machines: Vec<Vec<(usize, f64)>> = (0..self.classes)
            .map(|c| {
                self.alphas[c]
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| **a != 0.0)
                    .map(|(j, a)| (j, a * if self.ys[j] == c { 1.0 } else { -1.0 }))
                    .collect()
            })
            .collect();
        par_map(xs, |x| {
            if let Some(xi) = self.xs.first() {
                assert_eq!(
                    x.len(),
                    xi.len(),
                    "SVM fitted on {} features cannot score a {}-feature query",
                    xi.len(),
                    x.len()
                );
            }
            let mut q = x.clone();
            self.normalizer.apply(&mut q);
            let krow: Vec<f64> = self
                .xs
                .iter()
                .map(|xi| (-self.params.gamma * dist2(&q, xi)).exp() + 1.0)
                .collect();
            let decisions: Vec<f64> = machines
                .iter()
                .map(|m| m.iter().map(|&(j, w)| w * krow[j]).sum())
                .collect();
            decode(&decisions)
        })
    }
}

/// Output-code decoding for one-vs-rest: the codeword for class `c` is the
/// indicator vector `e_c`; the query's code is the sign pattern of the
/// decision values. The class at minimum Hamming distance wins; ties are
/// broken by the larger decision margin.
pub fn decode(decisions: &[f64]) -> usize {
    let bits: Vec<bool> = decisions.iter().map(|&d| d > 0.0).collect();
    let mut best = 0usize;
    let mut best_key = (usize::MAX, f64::NEG_INFINITY);
    for (c, &dec) in decisions.iter().enumerate() {
        let hamming: usize = bits
            .iter()
            .enumerate()
            .map(|(k, &b)| usize::from(b != (k == c)))
            .sum();
        let key = (hamming, dec);
        if key.0 < best_key.0 || (key.0 == best_key.0 && key.1 > best_key.1) {
            best = c;
            best_key = key;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(x: Vec<Vec<f64>>, y: Vec<usize>, classes: usize) -> Dataset {
        let n = x.len();
        let d = x[0].len();
        Dataset::new(
            x,
            y,
            classes,
            (0..d).map(|j| format!("f{j}")).collect(),
            (0..n).map(|i| format!("e{i}")).collect(),
        )
    }

    /// Three well-separated clusters in 2-D.
    fn clusters() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for k in 0..8 {
                let dx = (k % 3) as f64 * 0.3;
                let dy = (k / 3) as f64 * 0.3;
                x.push(vec![cx + dx, cy + dy]);
                y.push(c);
            }
        }
        dataset(x, y, 3)
    }

    #[test]
    fn separable_clusters_classified() {
        let d = clusters();
        let svm = MulticlassSvm::fit(&d, SvmParams::default());
        for (xi, &yi) in d.x.iter().zip(&d.y) {
            assert_eq!(svm.predict(xi), yi, "training point misclassified");
        }
        // Novel points near the centers.
        assert_eq!(svm.predict(&[0.4, 0.4]), 0);
        assert_eq!(svm.predict(&[10.2, 0.1]), 1);
        assert_eq!(svm.predict(&[0.1, 10.4]), 2);
    }

    #[test]
    fn loo_on_separable_data_is_accurate() {
        let d = clusters();
        let svm = MulticlassSvm::fit(&d, SvmParams::default());
        let preds = svm.loo_predictions();
        let correct = preds.iter().zip(&d.y).filter(|(p, y)| p == y).count();
        assert!(
            correct as f64 / d.len() as f64 >= 0.9,
            "LOO accuracy {correct}/{}",
            d.len()
        );
    }

    #[test]
    fn decode_prefers_unique_positive_bit() {
        assert_eq!(decode(&[-1.0, 2.0, -3.0]), 1);
    }

    #[test]
    fn decode_breaks_ties_by_margin() {
        // Two positive bits: both at Hamming distance 1 from their
        // codewords; the larger margin wins.
        assert_eq!(decode(&[1.0, 3.0, -1.0]), 1);
        // No positive bit: all at distance 1; least-negative wins.
        assert_eq!(decode(&[-5.0, -0.1, -2.0]), 1);
    }

    #[test]
    fn kernel_from_distances_matches_compute() {
        let d = clusters();
        let xs = MinMaxNormalizer::fit(&d.x).transform(&d.x);
        let dm = DistanceMatrix::compute(&xs);
        for gamma in [0.5, 1.0, 4.0] {
            let direct = KernelCache::compute(&xs, gamma);
            let derived = KernelCache::from_distances(&dm, gamma);
            assert_eq!(direct.k, derived.k, "gamma={gamma}");
        }
    }

    #[test]
    #[should_panic(expected = "SVM fitted on 2 features")]
    fn predict_rejects_wrong_dimension() {
        let d = clusters();
        let svm = MulticlassSvm::fit(&d, SvmParams::default());
        let _ = svm.predict(&[0.0, 0.0, 0.0]);
    }

    #[test]
    fn parallel_training_and_loo_are_bit_identical_to_serial() {
        let d = clusters();
        let p = SvmParams::default();
        let serial = MulticlassSvm::fit_threads(&d, p, 1);
        let serial_loo = serial.loo_predictions_threads(1);
        for threads in [2, 4] {
            let par = MulticlassSvm::fit_threads(&d, p, threads);
            assert_eq!(serial.alphas, par.alphas, "alphas diverged at {threads}");
            assert_eq!(
                serial_loo,
                par.loo_predictions_threads(threads),
                "LOO diverged at {threads}"
            );
        }
        assert_eq!(serial_loo, MulticlassSvm::fit(&d, p).loo_predictions());
    }

    #[test]
    fn support_vectors_exist_and_are_bounded() {
        let d = clusters();
        let svm = MulticlassSvm::fit(&d, SvmParams::default());
        for (c, &count) in svm.support_counts().iter().enumerate() {
            assert!(count > 0, "class {c} has no support vectors");
            assert!(count <= d.len());
        }
    }

    #[test]
    fn alphas_respect_box_constraints() {
        let d = clusters();
        let p = SvmParams::default();
        let svm = MulticlassSvm::fit(&d, p);
        for a in &svm.alphas {
            assert!(a.iter().all(|&v| (0.0..=p.c + 1e-9).contains(&v)));
        }
    }

    #[test]
    fn loaded_svm_is_bit_identical_including_recomputed_kernel() {
        let d = clusters();
        let svm = MulticlassSvm::fit(&d, SvmParams::default());
        let state = Json::parse(&Classifier::save(&svm).to_string()).unwrap();
        let mut copy = MulticlassSvm::new(SvmParams::default());
        Classifier::load(&mut copy, &state).expect("load");
        assert_eq!(svm.alphas, copy.alphas);
        assert_eq!(svm.kernel.k, copy.kernel.k, "kernel recompute diverged");
        for xi in &d.x {
            assert_eq!(svm.decision_values(xi), copy.decision_values(xi));
        }
        // The recomputed kernel also drives LOO identically.
        assert_eq!(
            svm.loo_predictions_threads(1),
            copy.loo_predictions_threads(1)
        );
    }

    #[test]
    fn unfitted_svm_round_trips() {
        let svm = MulticlassSvm::new(SvmParams {
            gamma: 0.25,
            ..SvmParams::default()
        });
        let state = Classifier::save(&svm);
        let mut copy = MulticlassSvm::new(SvmParams::default());
        Classifier::load(&mut copy, &state).expect("load");
        assert_eq!(copy.params, svm.params);
        assert_eq!(Classifier::predict(&copy, &[1.0]), 0);
    }

    #[test]
    fn load_rejects_mismatched_alpha_shape() {
        let d = clusters();
        let svm = MulticlassSvm::fit(&d, SvmParams::default());
        let mut state = Classifier::save(&svm);
        if let Json::Obj(map) = &mut state {
            map.insert("alphas".into(), Json::Arr(vec![Json::from_f64s(&[0.0])]));
        }
        let mut copy = MulticlassSvm::new(SvmParams::default());
        assert!(Classifier::load(&mut copy, &state).is_err());
    }

    #[test]
    fn kernel_bytes_are_tracked_for_the_caches_lifetime() {
        use crate::distcache::peak_kernel_bytes;
        let d = clusters();
        let xs = MinMaxNormalizer::fit(&d.x).transform(&d.x);
        let n = xs.len() as u64;
        let before = peak_kernel_bytes();
        let kc = KernelCache::compute(&xs, 1.0);
        // The accounting is process-global and other tests allocate
        // kernels concurrently, so assert only what must hold: the peak
        // grew by at least this cache's bytes, and a clone registers a
        // second live buffer.
        assert!(
            peak_kernel_bytes() >= before.max(n * n * 8),
            "peak must cover a live {n}x{n} kernel"
        );
        let copy = kc.clone();
        assert!(
            peak_kernel_bytes() >= 2 * n * n * 8,
            "clone holds a second buffer"
        );
        drop(copy);
        drop(kc);
    }

    #[test]
    fn noisy_overlap_does_not_crash_and_respects_c() {
        // Overlapping clusters: some points unclassifiable; alphas cap at C.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for k in 0..20 {
            let v = k as f64 * 0.1;
            x.push(vec![v]);
            y.push(k % 2);
        }
        let d = dataset(x, y, 2);
        let svm = MulticlassSvm::fit(
            &d,
            SvmParams {
                c: 1.0,
                ..SvmParams::default()
            },
        );
        let _ = svm.loo_predictions();
    }
}
