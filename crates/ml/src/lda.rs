//! Multi-class linear discriminant analysis, used to project the
//! high-dimensional feature space onto the 2-D planes of the paper's
//! Figures 1 and 2.
//!
//! The projection maximizes between-class scatter relative to
//! within-class scatter: the top generalized eigenvectors of
//! `Sw^{-1} Sb`, computed via the symmetric whitening trick
//! `Sw^{-1/2} Sb Sw^{-1/2}`.

use crate::dataset::Dataset;
use crate::linalg::Matrix;

/// A fitted 2-D LDA projection.
#[derive(Debug, Clone, PartialEq)]
pub struct Lda2d {
    /// Projection directions (2 rows × d columns).
    pub directions: [Vec<f64>; 2],
    /// Feature means subtracted before projecting.
    pub mean: Vec<f64>,
}

impl Lda2d {
    /// Fits the projection to a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or has fewer than 2 features.
    pub fn fit(data: &Dataset) -> Self {
        let n = data.len();
        let d = data.dims();
        assert!(n > 0, "empty dataset");
        assert!(d >= 2, "need at least two features");

        // Global and per-class means.
        let mut mean = vec![0.0; d];
        for row in &data.x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut class_sum = vec![vec![0.0; d]; data.classes];
        let mut class_n = vec![0usize; data.classes];
        for (row, &y) in data.x.iter().zip(&data.y) {
            class_n[y] += 1;
            for (s, v) in class_sum[y].iter_mut().zip(row) {
                *s += v;
            }
        }

        // Scatter matrices.
        let mut sw = Matrix::zeros(d, d);
        let mut sb = Matrix::zeros(d, d);
        for (row, &y) in data.x.iter().zip(&data.y) {
            let mu: Vec<f64> = class_sum[y].iter().map(|s| s / class_n[y] as f64).collect();
            for i in 0..d {
                for j in 0..d {
                    sw[(i, j)] += (row[i] - mu[i]) * (row[j] - mu[j]);
                }
            }
        }
        for (c, &nc) in class_n.iter().enumerate() {
            if nc == 0 {
                continue;
            }
            let mu: Vec<f64> = class_sum[c].iter().map(|s| s / nc as f64).collect();
            for i in 0..d {
                for j in 0..d {
                    sb[(i, j)] += nc as f64 * (mu[i] - mean[i]) * (mu[j] - mean[j]);
                }
            }
        }
        // Ridge for numerical stability (constant features etc.).
        for i in 0..d {
            sw[(i, i)] += 1e-6;
        }

        // Whitening: Sw^{-1/2} via eigendecomposition of Sw.
        let (wvals, wvecs) = sw.sym_eigen();
        let mut w_inv_sqrt = Matrix::zeros(d, d);
        for k in 0..d {
            let lam = wvals[k].max(1e-12);
            let s = 1.0 / lam.sqrt();
            for i in 0..d {
                for j in 0..d {
                    w_inv_sqrt[(i, j)] += wvecs[(i, k)] * s * wvecs[(j, k)];
                }
            }
        }
        let b = w_inv_sqrt.matmul(&sb).matmul(&w_inv_sqrt);
        let (_bvals, bvecs) = b.sym_eigen();

        // Top-2 directions mapped back through the whitening transform.
        let mut directions = [vec![0.0; d], vec![0.0; d]];
        for (slot, dir) in directions.iter_mut().enumerate() {
            for i in 0..d {
                let mut v = 0.0;
                for j in 0..d {
                    v += w_inv_sqrt[(i, j)] * bvecs[(j, slot)];
                }
                dir[i] = v;
            }
            // Normalize for stable plotting scales.
            let norm: f64 = dir.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 0.0 {
                for v in dir.iter_mut() {
                    *v /= norm;
                }
            }
        }

        Lda2d { directions, mean }
    }

    /// Projects one feature vector to the plane.
    pub fn project(&self, x: &[f64]) -> (f64, f64) {
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(v, m)| v - m).collect();
        let dot = |dir: &[f64]| dir.iter().zip(&centered).map(|(a, b)| a * b).sum();
        (dot(&self.directions[0]), dot(&self.directions[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two classes separated along a diagonal in 3-D, with one noise
    /// dimension.
    fn toy() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for k in 0..10 {
            let t = k as f64 * 0.1;
            x.push(vec![t, t, (k % 3) as f64]);
            y.push(0);
            x.push(vec![t + 3.0, t + 3.0, (k % 3) as f64]);
            y.push(1);
        }
        let n = x.len();
        Dataset::new(
            x,
            y,
            2,
            vec!["a".into(), "b".into(), "noise".into()],
            (0..n).map(|i| format!("e{i}")).collect(),
        )
    }

    #[test]
    fn projection_separates_classes() {
        let d = toy();
        let lda = Lda2d::fit(&d);
        let p0: Vec<f64> =
            d.x.iter()
                .zip(&d.y)
                .filter(|(_, &y)| y == 0)
                .map(|(x, _)| lda.project(x).0)
                .collect();
        let p1: Vec<f64> =
            d.x.iter()
                .zip(&d.y)
                .filter(|(_, &y)| y == 1)
                .map(|(x, _)| lda.project(x).0)
                .collect();
        let m0 = p0.iter().sum::<f64>() / p0.len() as f64;
        let m1 = p1.iter().sum::<f64>() / p1.len() as f64;
        let spread0 = p0.iter().map(|v| (v - m0).abs()).fold(0.0, f64::max);
        assert!(
            (m0 - m1).abs() > 2.0 * spread0,
            "classes should separate: means {m0} vs {m1}, spread {spread0}"
        );
    }

    #[test]
    fn directions_are_unit_norm() {
        let lda = Lda2d::fit(&toy());
        for dir in &lda.directions {
            let norm: f64 = dir.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn projection_is_deterministic() {
        let d = toy();
        let a = Lda2d::fit(&d);
        let b = Lda2d::fit(&d);
        assert_eq!(a, b);
    }

    #[test]
    fn handles_constant_features() {
        let mut d = toy();
        for row in &mut d.x {
            row.push(42.0); // constant column
        }
        d.feature_names.push("const".into());
        let lda = Lda2d::fit(&d);
        let (px, py) = lda.project(&d.x[0]);
        assert!(px.is_finite() && py.is_finite());
    }
}
