//! The object-safe classifier interface.
//!
//! Every model the pipeline can train — near neighbors, the multi-class
//! SVM, and heuristic baselines adapted from feature vectors — implements
//! [`Classifier`], so training loops, LOOCV, leave-one-benchmark-out
//! evaluation, and the learned heuristic all work with `&mut dyn
//! Classifier` / `Box<dyn Classifier>` instead of closure-returning
//! `train_*` functions.
//!
//! The protocol: construct an *unfitted* classifier carrying its
//! hyperparameters (e.g. `NearNeighbors::new(radius)`), then call
//! [`Classifier::fit`] with a training set — possibly many times, as
//! cross-validation refits the same object per fold. Predictions before
//! the first `fit` are a defined fallback (class 0), never a panic.
//!
//! Classifiers are `Send + Sync` so cross-validation can hand one
//! prototype to several worker threads; [`Classifier::fresh`] mints the
//! per-worker unfitted copies.

use crate::dataset::Dataset;
use loopml_rt::Json;

/// A trainable multi-class classifier over raw feature vectors.
///
/// The `Send + Sync` supertraits let cross-validation share a prototype
/// classifier across [`loopml_rt::par_map`] workers; every model in this
/// workspace is plain data, so the bounds are free.
pub trait Classifier: Send + Sync {
    /// Fits (or refits) the model to `data`, replacing any previous fit.
    fn fit(&mut self, data: &Dataset);

    /// Predicts a class label in `0..classes` for a raw feature vector.
    /// Unfitted classifiers predict 0.
    fn predict(&self, x: &[f64]) -> usize;

    /// Short human-readable model name for reports ("NN", "SVM", …).
    fn name(&self) -> &str;

    /// A fresh *unfitted* classifier carrying the same hyperparameters —
    /// the per-worker constructor behind parallel cross-validation, where
    /// each fold trains its own copy instead of refitting one shared
    /// `&mut` object.
    fn fresh(&self) -> Box<dyn Classifier>;

    /// Serializes the trained state — weights, normalizer, and the
    /// hyperparameters — as a [`Json`] value. The document carries a
    /// `"kind"` tag naming the model so [`load`](Classifier::load) can
    /// reject a state written by a different model. Every finite `f64`
    /// survives the JSON round trip bit-exactly, so a loaded model
    /// predicts bit-identically to the one that was saved.
    fn save(&self) -> Json;

    /// Restores a state produced by [`save`](Classifier::save) on a
    /// classifier of the same kind, replacing any previous fit. A
    /// malformed, truncated, or wrong-kind document is an error and
    /// leaves `self` unchanged.
    fn load(&mut self, state: &Json) -> Result<(), String>;

    /// Predicts a batch of raw feature vectors, in order. Equivalent to
    /// mapping [`predict`](Classifier::predict) — and bit-identical to
    /// it at any worker count — but models may amortize per-query setup
    /// across the batch (the serving layer's fast path).
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

/// Reads the `"kind"` tag of a saved state, erroring when it is absent
/// or different from what the loading model expects.
pub(crate) fn expect_kind(state: &Json, kind: &str) -> Result<(), String> {
    match state.get("kind").and_then(Json::as_str) {
        Some(k) if k == kind => Ok(()),
        Some(k) => Err(format!("state is for model kind {k:?}, not {kind:?}")),
        None => Err("state has no \"kind\" tag".into()),
    }
}

/// A classifier that always predicts the same class — the "never unroll" /
/// fixed-factor baseline, and a handy stub in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Constant {
    class: usize,
}

impl Constant {
    /// A classifier that always answers `class`.
    pub fn new(class: usize) -> Self {
        Constant { class }
    }
}

impl Classifier for Constant {
    fn fit(&mut self, _data: &Dataset) {}

    fn predict(&self, _x: &[f64]) -> usize {
        self.class
    }

    fn name(&self) -> &str {
        "constant"
    }

    fn fresh(&self) -> Box<dyn Classifier> {
        Box::new(*self)
    }

    fn save(&self) -> Json {
        Json::obj([
            ("kind", Json::Str("constant".into())),
            ("class", Json::Num(self.class as f64)),
        ])
    }

    fn load(&mut self, state: &Json) -> Result<(), String> {
        expect_kind(state, "constant")?;
        let class = state
            .get("class")
            .and_then(Json::as_num)
            .filter(|c| *c >= 0.0 && c.fract() == 0.0)
            .ok_or("constant state has no class")?;
        self.class = class as usize;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{BaggedForest, ForestParams};
    use crate::mlp::{Mlp, MlpParams};
    use crate::nn::{NearNeighbors, DEFAULT_RADIUS};
    use crate::svm::{MulticlassSvm, SvmParams};
    use crate::tree::{DecisionTree, TreeParams};

    /// One unfitted model of every kind in the zoo.
    fn zoo() -> Vec<Box<dyn Classifier>> {
        vec![
            Box::new(NearNeighbors::new(DEFAULT_RADIUS)),
            Box::new(MulticlassSvm::new(SvmParams::default())),
            Box::new(DecisionTree::new(TreeParams::default())),
            Box::new(BaggedForest::new(ForestParams {
                trees: 4,
                ..ForestParams::default()
            })),
            Box::new(Mlp::new(MlpParams::default())),
            Box::new(Constant::new(1)),
        ]
    }

    fn toy() -> Dataset {
        Dataset::new(
            vec![vec![0.0], vec![0.2], vec![5.0], vec![5.2]],
            vec![0, 0, 1, 1],
            2,
            vec!["f".into()],
            (0..4).map(|i| format!("e{i}")).collect(),
        )
    }

    #[test]
    fn constant_always_answers_its_class() {
        let mut c = Constant::new(3);
        c.fit(&toy());
        assert_eq!(c.predict(&[123.0]), 3);
        assert_eq!(c.name(), "constant");
    }

    #[test]
    fn fresh_copies_are_unfitted_with_same_hyperparameters() {
        let mut nn = NearNeighbors::new(0.7);
        nn.fit(&toy());
        let copy = Classifier::fresh(&nn);
        // Unfitted: falls back to class 0 everywhere.
        assert_eq!(copy.predict(&[5.1]), 0);
        let mut svm = MulticlassSvm::new(SvmParams::default());
        svm.fit(&toy());
        assert_eq!(Classifier::fresh(&svm).predict(&[5.1]), 0);
        assert_eq!(Classifier::fresh(&Constant::new(2)).predict(&[0.0]), 2);
        // The whole zoo: fit, mint a fresh copy, and the copy is unfitted.
        for mut m in zoo() {
            if m.name() == "constant" {
                continue;
            }
            m.fit(&toy());
            assert_eq!(m.fresh().predict(&[5.1]), 0, "{} fresh not blank", m.name());
        }
    }

    #[test]
    fn trait_objects_are_interchangeable() {
        let mut models = zoo();
        let data = toy();
        for m in &mut models {
            m.fit(&data);
            assert!(m.predict(&data.x[0]) < data.classes.max(2));
            assert!(!m.name().is_empty());
        }
        // Every real model learns the separable toy problem (Constant,
        // last in the zoo, is exempt by design).
        for m in &models[..models.len() - 1] {
            assert_eq!(m.predict(&[0.1]), 0, "{} missed class 0", m.name());
            assert_eq!(m.predict(&[5.1]), 1, "{} missed class 1", m.name());
        }
    }

    #[test]
    fn unfitted_models_predict_zero_not_panic() {
        for m in zoo() {
            if m.name() == "constant" {
                continue;
            }
            assert_eq!(m.predict(&[1.0, 2.0]), 0, "{} not unfitted", m.name());
        }
    }

    #[test]
    fn save_load_round_trips_every_model() {
        let data = toy();
        let mut models = zoo();
        models.push(Box::new(NearNeighbors::new(0.45)));
        models.push(Box::new(MulticlassSvm::new(SvmParams {
            gamma: 2.0,
            ..SvmParams::default()
        })));
        for mut m in models {
            m.fit(&data);
            let state = m.save();
            // Round trip through the serialized text, as an artifact
            // file would.
            let reparsed = loopml_rt::Json::parse(&state.to_string()).expect("valid JSON");
            let mut copy = m.fresh();
            copy.load(&reparsed).expect("load");
            for x in &data.x {
                assert_eq!(copy.predict(x), m.predict(x), "{} diverged", m.name());
            }
        }
    }

    #[test]
    fn load_rejects_wrong_kind_and_garbage() {
        let mut nn = NearNeighbors::new(DEFAULT_RADIUS);
        nn.fit(&toy());
        let before = nn.predict(&[5.1]);
        let svm_state = MulticlassSvm::new(SvmParams::default()).save();
        assert!(Classifier::load(&mut nn, &svm_state).is_err());
        assert!(Classifier::load(&mut nn, &Json::Null).is_err());
        assert!(Classifier::load(&mut nn, &Json::obj([])).is_err());
        // A failed load leaves the previous fit intact.
        assert_eq!(nn.predict(&[5.1]), before);
        // Cross-load every pair of distinct zoo kinds: all must refuse.
        let data = toy();
        let mut fitted = zoo();
        for m in &mut fitted {
            m.fit(&data);
        }
        for donor in &fitted {
            for receiver in &mut zoo() {
                if donor.name() == receiver.name() {
                    continue;
                }
                assert!(
                    receiver.load(&donor.save()).is_err(),
                    "{} accepted a {} state",
                    receiver.name(),
                    donor.name()
                );
            }
        }
    }

    #[test]
    fn predict_batch_matches_predict() {
        let data = toy();
        let mut models = zoo();
        let queries: Vec<Vec<f64>> = vec![vec![0.1], vec![2.6], vec![5.1], vec![123.0]];
        for m in &mut models {
            m.fit(&data);
            let batch = m.predict_batch(&queries);
            let serial: Vec<usize> = queries.iter().map(|q| m.predict(q)).collect();
            assert_eq!(batch, serial, "{} batch diverged", m.name());
        }
    }

    #[test]
    fn refitting_replaces_previous_fit() {
        let mut nn = NearNeighbors::new(DEFAULT_RADIUS);
        nn.fit(&toy());
        assert_eq!(Classifier::predict(&nn, &[5.1]), 1);
        // Swap the labels and refit: predictions must flip.
        let flipped = Dataset::new(
            vec![vec![0.0], vec![0.2], vec![5.0], vec![5.2]],
            vec![1, 1, 0, 0],
            2,
            vec!["f".into()],
            (0..4).map(|i| format!("e{i}")).collect(),
        );
        nn.fit(&flipped);
        assert_eq!(Classifier::predict(&nn, &[5.1]), 0);
    }
}
