//! The object-safe classifier interface.
//!
//! Every model the pipeline can train — near neighbors, the multi-class
//! SVM, and heuristic baselines adapted from feature vectors — implements
//! [`Classifier`], so training loops, LOOCV, leave-one-benchmark-out
//! evaluation, and the learned heuristic all work with `&mut dyn
//! Classifier` / `Box<dyn Classifier>` instead of closure-returning
//! `train_*` functions.
//!
//! The protocol: construct an *unfitted* classifier carrying its
//! hyperparameters (e.g. `NearNeighbors::new(radius)`), then call
//! [`Classifier::fit`] with a training set — possibly many times, as
//! cross-validation refits the same object per fold. Predictions before
//! the first `fit` are a defined fallback (class 0), never a panic.
//!
//! Classifiers are `Send + Sync` so cross-validation can hand one
//! prototype to several worker threads; [`Classifier::fresh`] mints the
//! per-worker unfitted copies.

use crate::dataset::Dataset;

/// A trainable multi-class classifier over raw feature vectors.
///
/// The `Send + Sync` supertraits let cross-validation share a prototype
/// classifier across [`loopml_rt::par_map`] workers; every model in this
/// workspace is plain data, so the bounds are free.
pub trait Classifier: Send + Sync {
    /// Fits (or refits) the model to `data`, replacing any previous fit.
    fn fit(&mut self, data: &Dataset);

    /// Predicts a class label in `0..classes` for a raw feature vector.
    /// Unfitted classifiers predict 0.
    fn predict(&self, x: &[f64]) -> usize;

    /// Short human-readable model name for reports ("NN", "SVM", …).
    fn name(&self) -> &str;

    /// A fresh *unfitted* classifier carrying the same hyperparameters —
    /// the per-worker constructor behind parallel cross-validation, where
    /// each fold trains its own copy instead of refitting one shared
    /// `&mut` object.
    fn fresh(&self) -> Box<dyn Classifier>;
}

/// A classifier that always predicts the same class — the "never unroll" /
/// fixed-factor baseline, and a handy stub in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Constant {
    class: usize,
}

impl Constant {
    /// A classifier that always answers `class`.
    pub fn new(class: usize) -> Self {
        Constant { class }
    }
}

impl Classifier for Constant {
    fn fit(&mut self, _data: &Dataset) {}

    fn predict(&self, _x: &[f64]) -> usize {
        self.class
    }

    fn name(&self) -> &str {
        "constant"
    }

    fn fresh(&self) -> Box<dyn Classifier> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::{NearNeighbors, DEFAULT_RADIUS};
    use crate::svm::{MulticlassSvm, SvmParams};

    fn toy() -> Dataset {
        Dataset::new(
            vec![vec![0.0], vec![0.2], vec![5.0], vec![5.2]],
            vec![0, 0, 1, 1],
            2,
            vec!["f".into()],
            (0..4).map(|i| format!("e{i}")).collect(),
        )
    }

    #[test]
    fn constant_always_answers_its_class() {
        let mut c = Constant::new(3);
        c.fit(&toy());
        assert_eq!(c.predict(&[123.0]), 3);
        assert_eq!(c.name(), "constant");
    }

    #[test]
    fn fresh_copies_are_unfitted_with_same_hyperparameters() {
        let mut nn = NearNeighbors::new(0.7);
        nn.fit(&toy());
        let copy = Classifier::fresh(&nn);
        // Unfitted: falls back to class 0 everywhere.
        assert_eq!(copy.predict(&[5.1]), 0);
        let mut svm = MulticlassSvm::new(SvmParams::default());
        svm.fit(&toy());
        assert_eq!(Classifier::fresh(&svm).predict(&[5.1]), 0);
        assert_eq!(Classifier::fresh(&Constant::new(2)).predict(&[0.0]), 2);
    }

    #[test]
    fn trait_objects_are_interchangeable() {
        let mut models: Vec<Box<dyn Classifier>> = vec![
            Box::new(NearNeighbors::new(DEFAULT_RADIUS)),
            Box::new(MulticlassSvm::new(SvmParams::default())),
            Box::new(Constant::new(1)),
        ];
        let data = toy();
        for m in &mut models {
            m.fit(&data);
            assert!(m.predict(&data.x[0]) < data.classes);
            assert!(!m.name().is_empty());
        }
        // The real models learn the separable toy problem.
        assert_eq!(models[0].predict(&[0.1]), 0);
        assert_eq!(models[0].predict(&[5.1]), 1);
        assert_eq!(models[1].predict(&[0.1]), 0);
        assert_eq!(models[1].predict(&[5.1]), 1);
    }

    #[test]
    fn unfitted_models_predict_zero_not_panic() {
        let nn = NearNeighbors::new(DEFAULT_RADIUS);
        let svm = MulticlassSvm::new(SvmParams::default());
        assert_eq!(Classifier::predict(&nn, &[1.0, 2.0]), 0);
        assert_eq!(Classifier::predict(&svm, &[1.0, 2.0]), 0);
    }

    #[test]
    fn refitting_replaces_previous_fit() {
        let mut nn = NearNeighbors::new(DEFAULT_RADIUS);
        nn.fit(&toy());
        assert_eq!(Classifier::predict(&nn, &[5.1]), 1);
        // Swap the labels and refit: predictions must flip.
        let flipped = Dataset::new(
            vec![vec![0.0], vec![0.2], vec![5.0], vec![5.2]],
            vec![1, 1, 0, 0],
            2,
            vec!["f".into()],
            (0..4).map(|i| format!("e{i}")).collect(),
        );
        nn.fit(&flipped);
        assert_eq!(Classifier::predict(&nn, &[5.1]), 0);
    }
}
