//! Radius-based near neighbor classification (paper §5.1).
//!
//! The classifier "trains" by memorizing the (normalized) training set.
//! A query is answered by majority vote among the examples within a fixed
//! radius (0.3 in the paper); when there is no clear winner — or no
//! neighbor at all — it falls back to the label of the single nearest
//! example. The vote fraction doubles as a confidence score, which the
//! paper suggests using for outlier triage.

use crate::classify::{expect_kind, Classifier};
use crate::dataset::{dist2, Dataset, MinMaxNormalizer};
use loopml_rt::Json;

/// Default neighborhood radius (determined experimentally in the paper).
pub const DEFAULT_RADIUS: f64 = 0.3;

/// A trained near-neighbors classifier.
#[derive(Debug, Clone)]
pub struct NearNeighbors {
    radius: f64,
    normalizer: Option<MinMaxNormalizer>,
    xs: Vec<Vec<f64>>,
    ys: Vec<usize>,
    classes: usize,
}

/// A prediction with its vote confidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NnPrediction {
    /// Predicted class.
    pub label: usize,
    /// Fraction of in-radius neighbors agreeing with the prediction, or
    /// 0.0 when the 1-NN fallback was used.
    pub confidence: f64,
    /// Number of neighbors inside the radius.
    pub neighbors: usize,
}

impl NearNeighbors {
    /// An *unfitted* classifier carrying only its radius; call
    /// [`Classifier::fit`] before use. Until then it predicts class 0.
    ///
    /// # Panics
    ///
    /// Panics if the radius is not positive.
    pub fn new(radius: f64) -> Self {
        assert!(radius > 0.0, "radius must be positive");
        NearNeighbors {
            radius,
            normalizer: None,
            xs: Vec::new(),
            ys: Vec::new(),
            classes: 0,
        }
    }

    /// Trains (memorizes) the normalized dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or the radius is not positive.
    pub fn fit(data: &Dataset, radius: f64) -> Self {
        assert!(radius > 0.0, "radius must be positive");
        assert!(!data.is_empty(), "cannot fit to an empty dataset");
        let normalizer = MinMaxNormalizer::fit(&data.x);
        NearNeighbors {
            radius,
            xs: normalizer.transform(&data.x),
            ys: data.y.clone(),
            classes: data.classes,
            normalizer: Some(normalizer),
        }
    }

    /// Trains on *raw* feature values, skipping normalization — the
    /// regime the paper warns about, where large-valued features such as
    /// trip counts dominate the Euclidean distance. Exposed for the
    /// normalization ablation.
    pub fn fit_unnormalized(data: &Dataset, radius: f64) -> Self {
        assert!(radius > 0.0, "radius must be positive");
        assert!(!data.is_empty(), "cannot fit to an empty dataset");
        NearNeighbors {
            radius,
            xs: data.x.clone(),
            ys: data.y.clone(),
            classes: data.classes,
            normalizer: None,
        }
    }

    /// Predicts the label of a raw (unnormalized) feature vector.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.predict_with_confidence(x).label
    }

    /// Predicts with the vote confidence, excluding no training example.
    pub fn predict_with_confidence(&self, x: &[f64]) -> NnPrediction {
        self.predict_excluding(x, usize::MAX)
    }

    /// Predicts while pretending training example `exclude` does not
    /// exist — the primitive that makes leave-one-out evaluation of NN
    /// exact without retraining.
    ///
    /// # Panics
    ///
    /// Panics if the classifier is fitted and `x`'s length differs from
    /// the training dimension — covers both the normalized path (where
    /// the normalizer would reject it) and `fit_unnormalized` (where the
    /// old `dist2` would have silently truncated).
    pub fn predict_excluding(&self, x: &[f64], exclude: usize) -> NnPrediction {
        if let Some(xi) = self.xs.first() {
            assert_eq!(
                x.len(),
                xi.len(),
                "NN fitted on {} features cannot score a {}-feature query",
                xi.len(),
                x.len()
            );
        }
        let mut q = x.to_vec();
        if let Some(n) = &self.normalizer {
            n.apply(&mut q);
        }
        let r2 = self.radius * self.radius;

        let mut votes = vec![0usize; self.classes];
        let mut in_radius = 0usize;
        let mut nearest: Option<(f64, usize)> = None;
        for (i, xi) in self.xs.iter().enumerate() {
            if i == exclude {
                continue;
            }
            let d2 = dist2(&q, xi);
            if d2 <= r2 {
                votes[self.ys[i]] += 1;
                in_radius += 1;
            }
            if nearest.is_none_or(|(best, _)| d2 < best) {
                nearest = Some((d2, self.ys[i]));
            }
        }

        let best_class = (0..self.classes).max_by_key(|&c| votes[c]).unwrap_or(0);
        let best_votes = votes.get(best_class).copied().unwrap_or(0);
        let runner_up = (0..self.classes)
            .filter(|&c| c != best_class)
            .map(|c| votes[c])
            .max()
            .unwrap_or(0);

        // Clear winner inside the radius?
        if in_radius > 0 && best_votes > runner_up {
            return NnPrediction {
                label: best_class,
                confidence: best_votes as f64 / in_radius as f64,
                neighbors: in_radius,
            };
        }
        // Low confidence (tie or empty ball): single nearest neighbor.
        let label = nearest.map(|(_, y)| y).unwrap_or(0);
        NnPrediction {
            label,
            confidence: 0.0,
            neighbors: in_radius,
        }
    }

    /// The neighborhood radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of memorized examples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` if the database is empty (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

impl Classifier for NearNeighbors {
    fn fit(&mut self, data: &Dataset) {
        *self = NearNeighbors::fit(data, self.radius);
    }

    fn predict(&self, x: &[f64]) -> usize {
        self.predict_with_confidence(x).label
    }

    fn name(&self) -> &str {
        "NN"
    }

    fn fresh(&self) -> Box<dyn Classifier> {
        Box::new(NearNeighbors::new(self.radius))
    }

    fn save(&self) -> Json {
        Json::obj([
            ("kind", Json::Str("NN".into())),
            ("radius", Json::Num(self.radius)),
            ("classes", Json::Num(self.classes as f64)),
            (
                "normalizer",
                match &self.normalizer {
                    Some(n) => n.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "xs",
                Json::Arr(self.xs.iter().map(|r| Json::from_f64s(r)).collect()),
            ),
            ("ys", Json::from_usizes(&self.ys)),
        ])
    }

    fn load(&mut self, state: &Json) -> Result<(), String> {
        expect_kind(state, "NN")?;
        let radius = state
            .get("radius")
            .and_then(Json::as_num)
            .filter(|r| *r > 0.0)
            .ok_or("NN state has no positive radius")?;
        let classes = state
            .get("classes")
            .and_then(Json::as_num)
            .filter(|c| *c >= 0.0 && c.fract() == 0.0)
            .ok_or("NN state has no class count")? as usize;
        let normalizer = match state.get("normalizer") {
            Some(Json::Null) => None,
            Some(doc) => Some(MinMaxNormalizer::from_json(doc)?),
            None => return Err("NN state has no normalizer".into()),
        };
        let xs: Vec<Vec<f64>> = state
            .get("xs")
            .and_then(Json::as_arr)
            .ok_or("NN state has no xs")?
            .iter()
            .map(Json::as_f64s)
            .collect::<Option<_>>()
            .ok_or("NN state has a non-numeric example row")?;
        let ys = state
            .get("ys")
            .and_then(Json::as_usizes)
            .ok_or("NN state has no ys")?;
        if xs.len() != ys.len() {
            return Err(format!(
                "NN state: {} rows vs {} labels",
                xs.len(),
                ys.len()
            ));
        }
        if let Some(first) = xs.first() {
            if xs.iter().any(|r| r.len() != first.len()) {
                return Err("NN state has ragged example rows".into());
            }
        }
        if ys.iter().any(|&y| y >= classes) {
            return Err("NN state has a label out of class range".into());
        }
        *self = NearNeighbors {
            radius,
            normalizer,
            xs,
            ys,
            classes,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(x: Vec<Vec<f64>>, y: Vec<usize>) -> Dataset {
        let n = x.len();
        let d = x[0].len();
        Dataset::new(
            x,
            y,
            8,
            (0..d).map(|j| format!("f{j}")).collect(),
            (0..n).map(|i| format!("e{i}")).collect(),
        )
    }

    #[test]
    fn majority_vote_wins() {
        // Two tight clusters; query lands in the label-2 cluster.
        let d = dataset(
            vec![
                vec![0.0, 0.0],
                vec![0.1, 0.0],
                vec![0.0, 0.1],
                vec![10.0, 10.0],
            ],
            vec![2, 2, 2, 5],
        );
        let nn = NearNeighbors::fit(&d, DEFAULT_RADIUS);
        let p = nn.predict_with_confidence(&[0.05, 0.05]);
        assert_eq!(p.label, 2);
        assert!(p.confidence >= 0.99);
        assert!(p.neighbors >= 3);
    }

    #[test]
    fn fallback_to_single_nearest() {
        let d = dataset(vec![vec![0.0, 0.0], vec![10.0, 10.0]], vec![1, 7]);
        let nn = NearNeighbors::fit(&d, 0.05);
        // Query far from both balls: falls back to nearest (label 7).
        let p = nn.predict_with_confidence(&[8.0, 8.0]);
        assert_eq!(p.label, 7);
        assert_eq!(p.confidence, 0.0);
    }

    #[test]
    fn tie_uses_nearest() {
        let d = dataset(
            vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.45, 0.45]],
            vec![1, 3, 1],
        );
        // Normalized space: query equidistant-ish with one vote each for
        // labels 1 and 3 at a huge radius -> tie -> nearest decides.
        let nn = NearNeighbors::fit(&d, 10.0);
        let p = nn.predict_with_confidence(&[0.9, 0.9]);
        // votes: label1 x2, label3 x1 -> no tie here; make a real tie:
        let d2 = dataset(vec![vec![0.0, 0.0], vec![1.0, 1.0]], vec![1, 3]);
        let nn2 = NearNeighbors::fit(&d2, 10.0);
        let p2 = nn2.predict_with_confidence(&[0.9, 0.9]);
        assert_eq!(p2.label, 3, "nearest breaks the tie");
        assert_eq!(p2.confidence, 0.0);
        assert_eq!(p.label, 1);
    }

    #[test]
    fn exclusion_hides_an_example() {
        let d = dataset(vec![vec![0.0], vec![5.0]], vec![0, 1]);
        let nn = NearNeighbors::fit(&d, 0.1);
        // Querying example 0's own position but excluding it: the only
        // remaining example has label 1.
        let p = nn.predict_excluding(&[0.0], 0);
        assert_eq!(p.label, 1);
    }

    #[test]
    fn normalization_balances_feature_scales() {
        // Feature 1 has a huge range; without normalization it would
        // dominate. The query is near cluster A in normalized space.
        let d = dataset(
            vec![vec![0.0, 0.0], vec![1.0, 100_000.0], vec![0.0, 90_000.0]],
            vec![0, 1, 1],
        );
        let nn = NearNeighbors::fit(&d, DEFAULT_RADIUS);
        assert_eq!(nn.predict(&[0.0, 95_000.0]), 1);
    }

    #[test]
    #[should_panic(expected = "NN fitted on 2 features")]
    fn query_dimension_mismatch_rejected() {
        let d = dataset(vec![vec![0.0, 0.0], vec![1.0, 1.0]], vec![0, 1]);
        // Unnormalized: the path where truncating dist2 used to produce a
        // silently wrong distance instead of an error.
        let nn = NearNeighbors::fit_unnormalized(&d, DEFAULT_RADIUS);
        let _ = nn.predict(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_rejected() {
        let d = dataset(vec![vec![0.0]], vec![0]);
        let _ = NearNeighbors::fit(&d, 0.0);
    }
}
