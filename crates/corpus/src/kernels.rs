//! Parameterized loop-kernel families.
//!
//! Each family captures one archetype of innermost loop found in the
//! paper's training suites (SPEC CPU, Mediabench, Perfect, kernels), and
//! each archetype stresses a different mechanism of the unrolling
//! trade-off: streaming bandwidth, recurrences, register pressure,
//! control flow, divides, indirect accesses, tiny trip counts, …
//!
//! Builders draw their shape parameters (trip counts, strides, widths)
//! from a caller-supplied RNG, so a corpus built from a seed is exactly
//! reproducible.

use loopml_ir::{ArrayId, Inst, Loop, LoopBuilder, MemRef, Opcode, Reg, TripCount};
use loopml_rt::Rng;

/// The kernel archetypes the corpus draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelFamily {
    /// `y[i] += a * x[i]` — the classic FP streaming kernel.
    Daxpy,
    /// `acc += x[i] * y[i]` — serial FP reduction.
    DotProduct,
    /// `z[i] = x[i] op y[i]` — element-wise FP arithmetic.
    VectorOp,
    /// `y[i] = Σ c_k * x[i+k]` — stencil with cross-iteration reuse.
    Stencil,
    /// `acc += x[i]` with several partial accumulators.
    MultiAccReduce,
    /// `y[i] = x[i] / z[i]` (or with sqrt) — long-latency FP.
    DivideKernel,
    /// `x = f(x)` Horner-style serial polynomial recurrence.
    Recurrence,
    /// Integer memcpy/memset-style data movement.
    IntCopy,
    /// Strided FP access (column walks, interleaved data).
    Strided,
    /// `y[i] = x[idx[i]]` — indirect gather.
    Gather,
    /// `y[idx[i]] = x[i]` — indirect scatter.
    Scatter,
    /// Search-style loop with a data-dependent early exit.
    SearchLoop,
    /// Integer ALU chains (hash/CRC/crypto-like).
    IntAlu,
    /// Integer multiply-heavy kernel.
    IntMul,
    /// Wide independent FP computations (register pressure).
    WideParallel,
    /// Compare + select (predicated min/max/clip) kernels.
    SelectKernel,
    /// Very short known trip count loops (boundary/edge handling).
    ShortTrip,
    /// Loop containing a call (not unrollable; corpus realism).
    CallLoop,
    /// In-place update with loop-carried memory dependence.
    MemRecurrence,
    /// Mixed int/FP address-computation-heavy loop.
    AddressHeavy,
    /// Innermost loop of a deep, imperfect nest: short-to-medium trips,
    /// a row-stride and a unit-stride access, and address arithmetic
    /// hoisted imperfectly into the body.
    NestedImperfect,
    /// Reduction with a drawn accumulator width (1..=12 partial sums or
    /// products) — the width axis the fixed-width families don't cover.
    WideReduce,
    /// FP walk with a log-uniform stride up to thousands of elements
    /// (column walks over huge leading dimensions, AoS with big records).
    LongStride,
}

impl KernelFamily {
    /// Every family, in a stable order.
    pub const ALL: [KernelFamily; 23] = [
        KernelFamily::Daxpy,
        KernelFamily::DotProduct,
        KernelFamily::VectorOp,
        KernelFamily::Stencil,
        KernelFamily::MultiAccReduce,
        KernelFamily::DivideKernel,
        KernelFamily::Recurrence,
        KernelFamily::IntCopy,
        KernelFamily::Strided,
        KernelFamily::Gather,
        KernelFamily::Scatter,
        KernelFamily::SearchLoop,
        KernelFamily::IntAlu,
        KernelFamily::IntMul,
        KernelFamily::WideParallel,
        KernelFamily::SelectKernel,
        KernelFamily::ShortTrip,
        KernelFamily::CallLoop,
        KernelFamily::MemRecurrence,
        KernelFamily::AddressHeavy,
        KernelFamily::NestedImperfect,
        KernelFamily::WideReduce,
        KernelFamily::LongStride,
    ];

    /// `true` for families whose work is predominantly floating point.
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            KernelFamily::Daxpy
                | KernelFamily::DotProduct
                | KernelFamily::VectorOp
                | KernelFamily::Stencil
                | KernelFamily::MultiAccReduce
                | KernelFamily::DivideKernel
                | KernelFamily::Recurrence
                | KernelFamily::Strided
                | KernelFamily::WideParallel
                | KernelFamily::SelectKernel
                | KernelFamily::MemRecurrence
                | KernelFamily::NestedImperfect
                | KernelFamily::WideReduce
                | KernelFamily::LongStride
        )
    }

    /// Builds a randomized instance of this family.
    pub fn build(self, name: &str, rng: &mut Rng) -> Loop {
        match self {
            KernelFamily::Daxpy => daxpy(name, rng),
            KernelFamily::DotProduct => dot(name, rng),
            KernelFamily::VectorOp => vector_op(name, rng),
            KernelFamily::Stencil => stencil(name, rng),
            KernelFamily::MultiAccReduce => multi_acc(name, rng),
            KernelFamily::DivideKernel => divide(name, rng),
            KernelFamily::Recurrence => recurrence(name, rng),
            KernelFamily::IntCopy => int_copy(name, rng),
            KernelFamily::Strided => strided(name, rng),
            KernelFamily::Gather => gather(name, rng),
            KernelFamily::Scatter => scatter(name, rng),
            KernelFamily::SearchLoop => search(name, rng),
            KernelFamily::IntAlu => int_alu(name, rng),
            KernelFamily::IntMul => int_mul(name, rng),
            KernelFamily::WideParallel => wide_parallel(name, rng),
            KernelFamily::SelectKernel => select_kernel(name, rng),
            KernelFamily::ShortTrip => short_trip(name, rng),
            KernelFamily::CallLoop => call_loop(name, rng),
            KernelFamily::MemRecurrence => mem_recurrence(name, rng),
            KernelFamily::AddressHeavy => address_heavy(name, rng),
            KernelFamily::NestedImperfect => nested_imperfect(name, rng),
            KernelFamily::WideReduce => wide_reduce(name, rng),
            KernelFamily::LongStride => long_stride(name, rng),
        }
    }
}

// ---------------------------------------------------------------------
// shared helpers
// ---------------------------------------------------------------------

/// Log-uniform trip count in [lo, hi], known with probability `p_known`.
fn trip(rng: &mut Rng, p_known: f64, lo: u64, hi: u64) -> TripCount {
    let ln = (lo as f64).ln();
    let hn = (hi as f64).ln();
    let t = (rng.gen_range(ln..hn)).exp() as u64;
    let t = t.clamp(lo, hi);
    if rng.gen_bool(p_known) {
        // Known trip counts are frequently "nice" (array dims): round to a
        // multiple of 4 half the time.
        if rng.gen_bool(0.5) {
            TripCount::Known((t / 4).max(1) * 4)
        } else {
            TripCount::Known(t)
        }
    } else {
        TripCount::Unknown { estimate: t }
    }
}

fn nest(rng: &mut Rng) -> u32 {
    *[1u32, 1, 2, 2, 2, 3, 3, 4]
        .get(rng.gen_range(0..8usize))
        .expect("index in range")
}

// ---------------------------------------------------------------------
// family builders
// ---------------------------------------------------------------------

fn daxpy(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.7, 256, 1 << 20));
    b.nest_level(nest(rng));
    let a = b.fp_reg(); // live-in scalar
    let x = b.fp_reg();
    let y = b.fp_reg();
    let r = b.fp_reg();
    b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
    b.load(y, MemRef::affine(ArrayId(1), 8, 0, 8));
    b.inst(Inst::new(Opcode::FMul, vec![r], vec![a, x]));
    let s = b.fp_reg();
    b.inst(Inst::new(Opcode::FAdd, vec![s], vec![r, y]));
    b.store(s, MemRef::affine(ArrayId(1), 8, 0, 8));
    b.build()
}

fn dot(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.7, 128, 1 << 18));
    b.nest_level(nest(rng));
    let x = b.fp_reg();
    let y = b.fp_reg();
    let p = b.fp_reg();
    let acc = b.fp_reg();
    b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
    b.load(y, MemRef::affine(ArrayId(1), 8, 0, 8));
    b.inst(Inst::new(Opcode::FMul, vec![p], vec![x, y]));
    b.inst(Inst::new(Opcode::FAdd, vec![acc], vec![acc, p]));
    b.build()
}

fn vector_op(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.6, 256, 1 << 19));
    b.nest_level(nest(rng));
    let n_in = rng.gen_range(2..4u32);
    let mut vals = Vec::new();
    for k in 0..n_in {
        let r = b.fp_reg();
        b.load(r, MemRef::affine(ArrayId(k), 8, 0, 8));
        vals.push(r);
    }
    let depth = rng.gen_range(1..4usize);
    let mut cur = vals[0];
    for d in 0..depth {
        let r = b.fp_reg();
        let op = [Opcode::FAdd, Opcode::FMul, Opcode::FSub][rng.gen_range(0..3usize)];
        b.inst(Inst::new(
            op,
            vec![r],
            vec![cur, vals[(d + 1) % vals.len()]],
        ));
        cur = r;
    }
    b.store(cur, MemRef::affine(ArrayId(n_in), 8, 0, 8));
    b.build()
}

fn stencil(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.8, 128, 1 << 16));
    b.nest_level(nest(rng).max(2));
    let taps = rng.gen_range(2..=5i64);
    let mut vals = Vec::new();
    for t in 0..taps {
        let r = b.fp_reg();
        b.load(r, MemRef::affine(ArrayId(0), 8, (t - taps / 2) * 8, 8));
        vals.push(r);
    }
    let mut acc = vals[0];
    for &v in &vals[1..] {
        let r = b.fp_reg();
        b.inst(Inst::new(Opcode::FAdd, vec![r], vec![acc, v]));
        acc = r;
    }
    b.store(acc, MemRef::affine(ArrayId(1), 8, 0, 8));
    b.build()
}

fn multi_acc(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.6, 512, 1 << 19));
    b.nest_level(nest(rng));
    let accs = rng.gen_range(2..=4usize);
    for k in 0..accs {
        let x = b.fp_reg();
        let acc = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(k as u32), 8, 0, 8));
        b.inst(Inst::new(Opcode::FAdd, vec![acc], vec![acc, x]));
    }
    b.build()
}

fn divide(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.6, 128, 1 << 16));
    b.nest_level(nest(rng));
    let x = b.fp_reg();
    let y = b.fp_reg();
    let r = b.fp_reg();
    b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
    b.load(y, MemRef::affine(ArrayId(1), 8, 0, 8));
    if rng.gen_bool(0.3) {
        let t = b.fp_reg();
        b.inst(Inst::new(Opcode::FMul, vec![t], vec![x, x]));
        b.inst(Inst::new(Opcode::FSqrt, vec![r], vec![t]));
    } else {
        b.inst(Inst::new(Opcode::FDiv, vec![r], vec![x, y]));
    }
    b.store(r, MemRef::affine(ArrayId(2), 8, 0, 8));
    b.build()
}

fn recurrence(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.5, 128, 1 << 15));
    b.nest_level(nest(rng));
    let c = b.fp_reg(); // live-in coefficient
    let x = b.fp_reg();
    let state = b.fp_reg();
    b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
    // state = state * c + x : a serial FMA chain (IIR filter / Horner).
    b.inst(Inst::new(Opcode::FMul, vec![state], vec![state, c]));
    let t = b.fp_reg();
    b.inst(Inst::new(Opcode::FAdd, vec![t], vec![state, x]));
    b.inst(Inst::new(Opcode::Mov, vec![state], vec![t]));
    if rng.gen_bool(0.5) {
        b.store(t, MemRef::affine(ArrayId(1), 8, 0, 8));
    }
    b.build()
}

fn int_copy(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.4, 64, 1 << 18));
    b.nest_level(nest(rng));
    let w = *[4u8, 8].get(rng.gen_range(0..2usize)).expect("width");
    let x = b.int_reg();
    b.load(x, MemRef::affine(ArrayId(0), i64::from(w), 0, w));
    if rng.gen_bool(0.4) {
        let y = b.int_reg();
        b.binop(Opcode::Add, y, x, x);
        b.store(y, MemRef::affine(ArrayId(1), i64::from(w), 0, w));
    } else {
        b.store(x, MemRef::affine(ArrayId(1), i64::from(w), 0, w));
    }
    b.build()
}

fn strided(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.7, 128, 1 << 15));
    b.nest_level(nest(rng).max(2));
    let stride = 8 * rng.gen_range(2..32i64);
    let x = b.fp_reg();
    let r = b.fp_reg();
    b.load(x, MemRef::affine(ArrayId(0), stride, 0, 8));
    b.binop(Opcode::FMul, r, x, x);
    b.store(r, MemRef::affine(ArrayId(1), 8, 0, 8));
    b.build()
}

fn gather(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.4, 128, 1 << 17));
    b.nest_level(nest(rng));
    let idx = b.int_reg();
    let x = b.fp_reg();
    b.load(idx, MemRef::affine(ArrayId(0), 4, 0, 4));
    b.load(
        x,
        MemRef::indirect(ArrayId(1), 8 * rng.gen_range(1..64i64), 8),
    );
    if rng.gen_bool(0.6) {
        let acc = b.fp_reg();
        b.inst(Inst::new(Opcode::FAdd, vec![acc], vec![acc, x]));
    } else {
        b.store(x, MemRef::affine(ArrayId(2), 8, 0, 8));
    }
    b.build()
}

fn scatter(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.4, 128, 1 << 16));
    b.nest_level(nest(rng));
    let idx = b.int_reg();
    let x = b.fp_reg();
    b.load(idx, MemRef::affine(ArrayId(0), 4, 0, 4));
    b.load(x, MemRef::affine(ArrayId(1), 8, 0, 8));
    b.inst(Inst::mem(
        Opcode::Store,
        vec![],
        vec![x],
        MemRef::indirect(ArrayId(2), 8 * rng.gen_range(1..32i64), 8),
    ));
    b.build()
}

fn search(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(
        name,
        TripCount::Unknown {
            estimate: rng.gen_range(64..1 << 14),
        },
    );
    b.nest_level(nest(rng));
    let key = b.int_reg(); // live-in search key
    let x = b.int_reg();
    b.load(x, MemRef::affine(ArrayId(0), 4, 0, 4));
    b.early_exit(x, key);
    if rng.gen_bool(0.5) {
        let c = b.int_reg();
        b.binop(Opcode::Add, c, c, x);
    }
    b.build()
}

fn int_alu(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.5, 256, 1 << 18));
    b.nest_level(nest(rng));
    let x = b.int_reg();
    b.load(x, MemRef::affine(ArrayId(0), 4, 0, 4));
    let depth = rng.gen_range(3..9usize);
    let mut cur = x;
    for _ in 0..depth {
        let r = b.int_reg();
        let op = [
            Opcode::Xor,
            Opcode::Shl,
            Opcode::Add,
            Opcode::And,
            Opcode::Or,
        ][rng.gen_range(0..5usize)];
        b.inst(Inst::new(op, vec![r], vec![cur, x]));
        cur = r;
    }
    b.store(cur, MemRef::affine(ArrayId(1), 4, 0, 4));
    b.build()
}

fn int_mul(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.5, 256, 1 << 17));
    b.nest_level(nest(rng));
    let x = b.int_reg();
    let y = b.int_reg();
    let r = b.int_reg();
    let s = b.int_reg();
    b.load(x, MemRef::affine(ArrayId(0), 4, 0, 4));
    b.load(y, MemRef::affine(ArrayId(1), 4, 0, 4));
    b.binop(Opcode::Mul, r, x, y);
    b.binop(Opcode::Add, s, r, x);
    b.store(s, MemRef::affine(ArrayId(2), 4, 0, 4));
    b.build()
}

fn wide_parallel(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.7, 256, 1 << 16));
    b.nest_level(nest(rng));
    let lanes = rng.gen_range(4..10u32);
    for k in 0..lanes {
        let x = b.fp_reg();
        let t = b.fp_reg();
        let r = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(k), 8, 0, 8));
        b.inst(Inst::new(Opcode::FMul, vec![t], vec![x, x]));
        b.inst(Inst::new(Opcode::FAdd, vec![r], vec![t, x]));
        b.store(r, MemRef::affine(ArrayId(100 + k), 8, 0, 8));
    }
    b.build()
}

fn select_kernel(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.6, 256, 1 << 17));
    b.nest_level(nest(rng));
    let x = b.fp_reg();
    let lim = b.fp_reg(); // live-in clip bound
    b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
    let p = b.pred_reg();
    b.inst(Inst::new(Opcode::FCmp, vec![p], vec![x, lim]));
    let r = b.fp_reg();
    b.inst(Inst::new(Opcode::Select, vec![r], vec![p, x, lim]));
    b.store(r, MemRef::affine(ArrayId(1), 8, 0, 8));
    b.build()
}

fn short_trip(name: &str, rng: &mut Rng) -> Loop {
    let t = *[3u64, 4, 5, 6, 7, 8, 12, 16]
        .get(rng.gen_range(0..8usize))
        .expect("trip");
    let mut b = LoopBuilder::new(name, TripCount::Known(t));
    b.nest_level(rng.gen_range(2..=4));
    let x = b.fp_reg();
    let acc = b.fp_reg();
    b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
    b.inst(Inst::new(Opcode::FMul, vec![acc], vec![acc, x]));
    b.build()
}

fn call_loop(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.3, 64, 1 << 14));
    b.nest_level(nest(rng));
    let x = b.fp_reg();
    b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
    b.call();
    b.store(x, MemRef::affine(ArrayId(1), 8, 0, 8));
    b.build()
}

fn mem_recurrence(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.6, 128, 1 << 15));
    b.nest_level(nest(rng));
    let dist = rng.gen_range(1..=4i64);
    let x = b.fp_reg();
    let y = b.fp_reg();
    let r = b.fp_reg();
    b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
    b.load(y, MemRef::affine(ArrayId(0), 8, -8 * dist, 8));
    b.inst(Inst::new(Opcode::FAdd, vec![r], vec![x, y]));
    b.store(r, MemRef::affine(ArrayId(0), 8, 0, 8));
    b.build()
}

fn address_heavy(name: &str, rng: &mut Rng) -> Loop {
    let mut b = LoopBuilder::new(name, trip(rng, 0.5, 128, 1 << 16));
    b.nest_level(nest(rng));
    // Row-pointer + offset arithmetic before the access.
    let base = b.int_reg();
    let off = b.int_reg();
    let addr = b.int_reg();
    b.load(off, MemRef::affine(ArrayId(0), 4, 0, 4));
    b.binop(Opcode::Shl, addr, off, off);
    b.binop(Opcode::Add, addr, addr, base);
    let x = b.fp_reg();
    b.load(
        x,
        MemRef::indirect(ArrayId(1), 8 * rng.gen_range(1..16i64), 8),
    );
    let r = b.fp_reg();
    b.binop(Opcode::FAdd, r, x, x);
    b.store(r, MemRef::affine(ArrayId(2), 8, 0, 8));
    b.build()
}

fn nested_imperfect(name: &str, rng: &mut Rng) -> Loop {
    // The innermost loop of a 3..=5-deep nest that is imperfect: besides
    // the unit-stride body work, it carries a row-stride access and the
    // address arithmetic an outer level failed to hoist.
    let mut b = LoopBuilder::new(name, trip(rng, 0.6, 8, 1 << 10));
    b.nest_level(rng.gen_range(3..=5));
    let row_stride = 8 * rng.gen_range(64..4096i64);
    let row = b.fp_reg();
    let x = b.fp_reg();
    b.load(row, MemRef::affine(ArrayId(0), row_stride, 0, 8));
    b.load(x, MemRef::affine(ArrayId(1), 8, 0, 8));
    // Imperfectly-hoisted index arithmetic feeding no memory op directly.
    let base = b.int_reg();
    let off = b.int_reg();
    let addr = b.int_reg();
    b.binop(Opcode::Shl, addr, off, off);
    b.binop(Opcode::Add, addr, addr, base);
    let t = b.fp_reg();
    let r = b.fp_reg();
    b.inst(Inst::new(Opcode::FMul, vec![t], vec![row, x]));
    b.inst(Inst::new(Opcode::FAdd, vec![r], vec![t, x]));
    b.store(r, MemRef::affine(ArrayId(2), 8, 0, 8));
    b.build()
}

fn wide_reduce(name: &str, rng: &mut Rng) -> Loop {
    // Reduction of drawn width: 1 (fully serial) up to 12 partial
    // accumulators (register-pressure-bound), summing or multiplying.
    let mut b = LoopBuilder::new(name, trip(rng, 0.6, 64, 1 << 22));
    b.nest_level(nest(rng));
    let accs = rng.gen_range(1..=12usize);
    let op = if rng.gen_bool(0.8) {
        Opcode::FAdd
    } else {
        Opcode::FMul
    };
    for k in 0..accs {
        let x = b.fp_reg();
        let acc = b.fp_reg();
        b.load(
            x,
            MemRef::affine(ArrayId((k % 4) as u32), 8, (k as i64) * 8, 8),
        );
        b.inst(Inst::new(op, vec![acc], vec![acc, x]));
    }
    b.build()
}

fn long_stride(name: &str, rng: &mut Rng) -> Loop {
    // Column walk with a log-uniform stride up to 4096 elements: each
    // iteration touches a new cache line (often a new page), so the
    // unrolling win is all in branch amortization, never in locality.
    let mut b = LoopBuilder::new(name, trip(rng, 0.5, 64, 1 << 18));
    b.nest_level(nest(rng).max(2));
    let ln = (2.0f64).ln();
    let hn = (4096.0f64).ln();
    let stride_elems = (rng.gen_range(ln..hn)).exp() as i64;
    let stride = 8 * stride_elems.clamp(2, 4096);
    let x = b.fp_reg();
    let y = b.fp_reg();
    let r = b.fp_reg();
    b.load(x, MemRef::affine(ArrayId(0), stride, 0, 8));
    b.load(y, MemRef::affine(ArrayId(1), 8, 0, 8));
    b.inst(Inst::new(Opcode::FAdd, vec![r], vec![x, y]));
    if rng.gen_bool(0.5) {
        b.store(r, MemRef::affine(ArrayId(2), stride, 0, 8));
    } else {
        b.store(r, MemRef::affine(ArrayId(2), 8, 0, 8));
    }
    b.build()
}

/// Convenience: a register pair `(Reg, Reg)` is not needed publicly; the
/// families above cover the corpus. Exposed for tests.
pub(crate) fn _unused(_r: Reg) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Rng {
        Rng::seed_from_u64(seed)
    }

    #[test]
    fn all_families_build_wellformed_loops() {
        for (k, fam) in KernelFamily::ALL.iter().enumerate() {
            let l = fam.build("k", &mut rng(k as u64));
            assert!(!l.is_empty(), "{fam:?} produced an empty loop");
            assert!(
                l.body.iter().any(|i| i.opcode == Opcode::Br),
                "{fam:?} lacks a backward branch"
            );
        }
    }

    #[test]
    fn builds_are_deterministic_under_seed() {
        for fam in KernelFamily::ALL {
            let a = fam.build("k", &mut rng(99));
            let b = fam.build("k", &mut rng(99));
            assert_eq!(a, b, "{fam:?} not deterministic");
        }
    }

    #[test]
    fn call_loop_is_not_unrollable_others_are() {
        for fam in KernelFamily::ALL {
            let l = fam.build("k", &mut rng(5));
            if fam == KernelFamily::CallLoop {
                assert!(!l.is_unrollable());
            } else {
                assert!(l.is_unrollable(), "{fam:?} should be unrollable");
            }
        }
    }

    #[test]
    fn fp_flag_matches_content() {
        for fam in KernelFamily::ALL {
            let l = fam.build("k", &mut rng(17));
            let fp_ops = l.count_ops(|i| i.opcode.is_fp());
            if fam.is_fp() {
                assert!(fp_ops > 0, "{fam:?} marked fp but has no fp ops");
            }
        }
    }

    #[test]
    fn search_has_early_exit_and_unknown_trip() {
        let l = KernelFamily::SearchLoop.build("s", &mut rng(3));
        assert!(l.early_exits() >= 1);
        assert!(!l.trip_count.is_known());
    }

    #[test]
    fn short_trip_counts_are_short() {
        for s in 0..20 {
            let l = KernelFamily::ShortTrip.build("st", &mut rng(s));
            match l.trip_count {
                TripCount::Known(n) => assert!(n <= 16),
                _ => panic!("short trips are known"),
            }
        }
    }

    #[test]
    fn scale_up_families_have_expected_shapes() {
        for s in 0..10 {
            let ni = KernelFamily::NestedImperfect.build("ni", &mut rng(s));
            assert!(ni.nest_level >= 3, "nested/imperfect must be deeply nested");
            assert!(ni.is_unrollable());

            let wr = KernelFamily::WideReduce.build("wr", &mut rng(s));
            assert!(wr.count_ops(|i| i.opcode.is_fp()) >= 1);
            assert!(wr.is_unrollable());

            let ls = KernelFamily::LongStride.build("ls", &mut rng(s));
            assert!(ls.nest_level >= 2);
            assert!(ls.is_unrollable());
        }
    }

    #[test]
    fn trip_helper_respects_bounds() {
        let mut r = rng(8);
        for _ in 0..200 {
            let t = trip(&mut r, 0.5, 100, 1000);
            assert!((100..=1000).contains(&t.dynamic()), "{t:?}");
        }
    }
}
