//! # loopml-corpus — a synthetic SPEC-shaped training corpus
//!
//! The paper extracts 2,500+ innermost loops from 72 benchmarks (SPEC
//! 2000/95/92, Mediabench, Perfect, kernels) across C, Fortran and
//! Fortran 90. Those sources are not redistributable, so this crate
//! synthesizes a corpus with the same *shape*: 72 named benchmarks — the
//! 24 SPEC CPU2000 programs of Figures 4/5 under their real names — each a
//! weighted mix of kernel archetypes chosen so every mechanism of the
//! unrolling trade-off (§3 of the paper) is represented:
//!
//! * streaming FP loops that want memory-level parallelism,
//! * reductions and recurrences that resist it,
//! * stencils that reward cross-copy scalar replacement,
//! * short known trip counts where remainder handling dominates,
//! * unknown trip counts where boundary exits tax unrolling,
//! * gathers/scatters, branchy searches, divide chains, register-hungry
//!   wide bodies, and loops with calls (which cannot be unrolled at all).
//!
//! Everything is deterministic given [`SuiteConfig::seed`].
//!
//! # Examples
//!
//! ```
//! use loopml_corpus::{full_suite, SuiteConfig};
//!
//! let suite = full_suite(&SuiteConfig::default());
//! assert_eq!(suite.len(), 72);
//! let loops: usize = suite.iter().map(|b| b.len()).sum();
//! assert!(loops > 2000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod kernels;
pub mod suite;

pub use kernels::KernelFamily;
pub use suite::{full_suite, spec2000, synthesize, Archetype, RosterEntry, SuiteConfig, ROSTER};
