//! Benchmark synthesis and the 72-benchmark suite roster.
//!
//! The paper trains on 72 benchmarks drawn from SPEC 2000/95/92,
//! Mediabench, the Perfect suite and a handful of kernels, spanning C,
//! Fortran and Fortran 90. This module reproduces that corpus *shape*: 72
//! named benchmarks with per-benchmark kernel mixes, languages, loop
//! counts and weights, all generated deterministically from a seed. The
//! 24 SPEC CPU2000 benchmarks of Figures 4 and 5 carry their real names.

use loopml_ir::{Benchmark, SourceLang, WeightedLoop};
use loopml_rt::Rng;

use crate::kernels::KernelFamily;

/// The workload archetype of a benchmark, which determines its kernel mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Archetype {
    /// Dense FP array code (swim, mgrid, tomcatv …).
    FpStreaming,
    /// FP with recurrences/divides (applu, sixtrack …).
    FpRecurrence,
    /// Sparse / irregular FP (art, equake, ammp …).
    FpSparse,
    /// Pointer/branch-heavy integer code (gcc, perlbmk, vortex …).
    IntBranchy,
    /// Regular integer compression/crypto kernels (gzip, bzip2 …).
    IntStreaming,
    /// Media/DSP kernels (Mediabench).
    Media,
}

impl Archetype {
    /// Kernel families this archetype draws from, with relative weights.
    fn mix(self) -> &'static [(KernelFamily, u32)] {
        use KernelFamily::*;
        match self {
            Archetype::FpStreaming => &[
                (Daxpy, 5),
                (VectorOp, 5),
                (Stencil, 4),
                (DotProduct, 3),
                (MultiAccReduce, 2),
                (Strided, 2),
                (WideParallel, 2),
                (ShortTrip, 1),
                (CallLoop, 1),
            ],
            Archetype::FpRecurrence => &[
                (Recurrence, 4),
                (DivideKernel, 4),
                (MemRecurrence, 3),
                (Daxpy, 2),
                (DotProduct, 2),
                (Stencil, 2),
                (WideParallel, 1),
                (ShortTrip, 1),
                (CallLoop, 1),
            ],
            Archetype::FpSparse => &[
                (Gather, 4),
                (Scatter, 3),
                (AddressHeavy, 3),
                (VectorOp, 2),
                (SelectKernel, 2),
                (DotProduct, 1),
                (SearchLoop, 1),
                (CallLoop, 1),
            ],
            Archetype::IntBranchy => &[
                (SearchLoop, 4),
                (IntAlu, 3),
                (AddressHeavy, 3),
                (IntCopy, 2),
                (Gather, 2),
                (ShortTrip, 1),
                (CallLoop, 2),
            ],
            Archetype::IntStreaming => &[
                (IntCopy, 4),
                (IntAlu, 4),
                (IntMul, 3),
                (SearchLoop, 2),
                (Gather, 1),
                (ShortTrip, 1),
                (CallLoop, 1),
            ],
            Archetype::Media => &[
                (IntMul, 4),
                (IntAlu, 3),
                (Stencil, 3),
                (VectorOp, 2),
                (IntCopy, 2),
                (SelectKernel, 2),
                (ShortTrip, 1),
            ],
        }
    }

    /// Kernel families for the *scaled* portion of a benchmark (loops
    /// beyond the historical count when `corpus_scale > 1`): the base mix
    /// plus the scale-up families — deep imperfect nests, variable-width
    /// reductions, and long-stride walks. Kept out of [`mix`](Self::mix)
    /// so the scale-1 corpus stays bit-identical to every dataset ever
    /// labeled from it.
    fn extended_mix(self) -> Vec<(KernelFamily, u32)> {
        use KernelFamily::*;
        let mut m = self.mix().to_vec();
        let extras: &[(KernelFamily, u32)] = if self.is_fp() {
            &[(NestedImperfect, 3), (WideReduce, 3), (LongStride, 2)]
        } else {
            // Integer codes still carry occasional FP nests/reductions
            // (statistics, scoring), just fewer of them.
            &[(NestedImperfect, 1), (WideReduce, 1), (LongStride, 1)]
        };
        m.extend_from_slice(extras);
        m
    }

    /// `true` if benchmarks of this archetype count as SPECfp-side.
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            Archetype::FpStreaming | Archetype::FpRecurrence | Archetype::FpSparse
        )
    }
}

/// A roster entry describing one benchmark to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RosterEntry {
    /// Benchmark name.
    pub name: &'static str,
    /// Source language.
    pub lang: SourceLang,
    /// Workload archetype.
    pub archetype: Archetype,
    /// `true` if the benchmark belongs to the SPEC 2000 set of Figures 4/5.
    pub spec2000: bool,
}

const fn e(
    name: &'static str,
    lang: SourceLang,
    archetype: Archetype,
    spec2000: bool,
) -> RosterEntry {
    RosterEntry {
        name,
        lang,
        archetype,
        spec2000,
    }
}

/// The 72-benchmark roster. The first 24 are the SPEC CPU2000 benchmarks
/// in the exact order of the paper's Figures 4 and 5.
pub const ROSTER: [RosterEntry; 72] = [
    // --- SPEC CPU2000 (figure order) ---
    e("164.gzip", SourceLang::C, Archetype::IntStreaming, true),
    e(
        "168.wupwise",
        SourceLang::Fortran,
        Archetype::FpStreaming,
        true,
    ),
    e(
        "171.swim",
        SourceLang::Fortran,
        Archetype::FpStreaming,
        true,
    ),
    e(
        "172.mgrid",
        SourceLang::Fortran,
        Archetype::FpStreaming,
        true,
    ),
    e(
        "173.applu",
        SourceLang::Fortran,
        Archetype::FpRecurrence,
        true,
    ),
    e("175.vpr", SourceLang::C, Archetype::IntBranchy, true),
    e("176.gcc", SourceLang::C, Archetype::IntBranchy, true),
    e("177.mesa", SourceLang::C, Archetype::FpSparse, true),
    e(
        "178.galgel",
        SourceLang::Fortran90,
        Archetype::FpStreaming,
        true,
    ),
    e("179.art", SourceLang::C, Archetype::FpSparse, true),
    e("181.mcf", SourceLang::C, Archetype::IntBranchy, true),
    e("183.equake", SourceLang::C, Archetype::FpSparse, true),
    e("186.crafty", SourceLang::C, Archetype::IntBranchy, true),
    e(
        "187.facerec",
        SourceLang::Fortran90,
        Archetype::FpStreaming,
        true,
    ),
    e("188.ammp", SourceLang::C, Archetype::FpSparse, true),
    e(
        "189.lucas",
        SourceLang::Fortran90,
        Archetype::FpRecurrence,
        true,
    ),
    e("197.parser", SourceLang::C, Archetype::IntBranchy, true),
    e(
        "200.sixtrack",
        SourceLang::Fortran,
        Archetype::FpRecurrence,
        true,
    ),
    e("253.perlbmk", SourceLang::C, Archetype::IntBranchy, true),
    e("254.gap", SourceLang::C, Archetype::IntBranchy, true),
    e("255.vortex", SourceLang::C, Archetype::IntBranchy, true),
    e("256.bzip2", SourceLang::C, Archetype::IntStreaming, true),
    e("300.twolf", SourceLang::C, Archetype::IntBranchy, true),
    e(
        "301.apsi",
        SourceLang::Fortran,
        Archetype::FpStreaming,
        true,
    ),
    // --- SPEC 95 (entries whose programs are not superseded above) ---
    e(
        "101.tomcatv",
        SourceLang::Fortran,
        Archetype::FpStreaming,
        false,
    ),
    e(
        "103.su2cor",
        SourceLang::Fortran,
        Archetype::FpRecurrence,
        false,
    ),
    e(
        "104.hydro2d",
        SourceLang::Fortran,
        Archetype::FpStreaming,
        false,
    ),
    e(
        "107.mgrid95",
        SourceLang::Fortran,
        Archetype::FpStreaming,
        false,
    ),
    e(
        "110.applu95",
        SourceLang::Fortran,
        Archetype::FpRecurrence,
        false,
    ),
    e(
        "125.turb3d",
        SourceLang::Fortran,
        Archetype::FpStreaming,
        false,
    ),
    e(
        "141.apsi95",
        SourceLang::Fortran,
        Archetype::FpStreaming,
        false,
    ),
    e(
        "145.fpppp",
        SourceLang::Fortran,
        Archetype::FpRecurrence,
        false,
    ),
    e(
        "146.wave5",
        SourceLang::Fortran,
        Archetype::FpStreaming,
        false,
    ),
    e("124.m88ksim", SourceLang::C, Archetype::IntBranchy, false),
    e(
        "129.compress",
        SourceLang::C,
        Archetype::IntStreaming,
        false,
    ),
    e("130.li", SourceLang::C, Archetype::IntBranchy, false),
    e("132.ijpeg", SourceLang::C, Archetype::Media, false),
    e("134.perl", SourceLang::C, Archetype::IntBranchy, false),
    e("147.vortex95", SourceLang::C, Archetype::IntBranchy, false),
    // --- SPEC 92 ---
    e(
        "013.spice2g6",
        SourceLang::Fortran,
        Archetype::FpSparse,
        false,
    ),
    e(
        "015.doduc",
        SourceLang::Fortran,
        Archetype::FpRecurrence,
        false,
    ),
    e(
        "034.mdljdp2",
        SourceLang::Fortran,
        Archetype::FpRecurrence,
        false,
    ),
    e(
        "039.wave5_92",
        SourceLang::Fortran,
        Archetype::FpStreaming,
        false,
    ),
    e(
        "047.tomcatv92",
        SourceLang::Fortran,
        Archetype::FpStreaming,
        false,
    ),
    e(
        "048.ora",
        SourceLang::Fortran,
        Archetype::FpRecurrence,
        false,
    ),
    e("052.alvinn", SourceLang::C, Archetype::FpStreaming, false),
    e("056.ear", SourceLang::C, Archetype::FpStreaming, false),
    e("023.eqntott", SourceLang::C, Archetype::IntBranchy, false),
    e("072.sc", SourceLang::C, Archetype::IntBranchy, false),
    e("085.gcc92", SourceLang::C, Archetype::IntBranchy, false),
    // --- Mediabench ---
    e("adpcm", SourceLang::C, Archetype::Media, false),
    e("epic", SourceLang::C, Archetype::Media, false),
    e("g721", SourceLang::C, Archetype::Media, false),
    e("gsm", SourceLang::C, Archetype::Media, false),
    e("jpeg", SourceLang::C, Archetype::Media, false),
    e("mpeg2", SourceLang::C, Archetype::Media, false),
    e("pegwit", SourceLang::C, Archetype::IntStreaming, false),
    e("rasta", SourceLang::C, Archetype::FpStreaming, false),
    e("ghostscript", SourceLang::C, Archetype::IntBranchy, false),
    // --- Perfect suite ---
    e("ADM", SourceLang::Fortran, Archetype::FpStreaming, false),
    e("ARC2D", SourceLang::Fortran, Archetype::FpStreaming, false),
    e("BDNA", SourceLang::Fortran, Archetype::FpRecurrence, false),
    e("DYFESM", SourceLang::Fortran, Archetype::FpSparse, false),
    e("FLO52", SourceLang::Fortran, Archetype::FpStreaming, false),
    e("MDG", SourceLang::Fortran, Archetype::FpRecurrence, false),
    e("OCEAN", SourceLang::Fortran, Archetype::FpStreaming, false),
    e("QCD", SourceLang::Fortran, Archetype::FpRecurrence, false),
    e("TRACK", SourceLang::Fortran, Archetype::FpSparse, false),
    e("TRFD", SourceLang::Fortran, Archetype::FpStreaming, false),
    // --- kernels ---
    e(
        "livermore",
        SourceLang::Fortran,
        Archetype::FpRecurrence,
        false,
    ),
    e(
        "linpackd",
        SourceLang::Fortran,
        Archetype::FpStreaming,
        false,
    ),
    e("fft_kernel", SourceLang::C, Archetype::FpStreaming, false),
];

/// Options controlling corpus synthesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteConfig {
    /// Global seed; every benchmark derives its own stream from this.
    pub seed: u64,
    /// Minimum loops per benchmark.
    pub min_loops: usize,
    /// Maximum loops per benchmark.
    pub max_loops: usize,
    /// Corpus-size multiplier. `1` (and `0`, treated as 1) reproduces
    /// the historical suite bit-for-bit; `s > 1` appends `(s − 1) · n`
    /// extra loops to every benchmark's `n` base loops, drawn from the
    /// archetype's [extended mix](Archetype::extended_mix) on an
    /// independent RNG stream — so the base loops are a bitwise prefix
    /// of every larger scale.
    pub corpus_scale: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            seed: 0xC602005, // "CGO 2005"
            min_loops: 65,
            max_loops: 85,
            corpus_scale: 1,
        }
    }
}

/// Stream-separation constant folded into the seed of the scaled-portion
/// RNG so extra loops never perturb (or reuse) the base stream.
const SCALE_STREAM: u64 = 0x0005_CA1E_0000_0001;

/// Draws one weighted loop: family pick by mix weight, kernel build,
/// alias ambiguity, profile weight, and the nest/trip/entries coupling.
/// Extracted verbatim from the original synthesis loop — the RNG call
/// order here is load-bearing for corpus reproducibility.
fn synth_loop(
    entry: &RosterEntry,
    k: usize,
    mix: &[(KernelFamily, u32)],
    mix_total: u32,
    rng: &mut Rng,
) -> WeightedLoop {
    // Pick a family by weight.
    let mut pick = rng.gen_range(0..mix_total);
    let fam = mix
        .iter()
        .find(|&&(_, w)| {
            if pick < w {
                true
            } else {
                pick -= w;
                false
            }
        })
        .map(|&(f, _)| f)
        .expect("mix weights cover range");
    let name = format!("{}/loop{:03}_{:?}", entry.name, k, fam);
    let mut body = fam.build(&name, rng);
    body.lang = entry.lang;
    // Alias ambiguity: C pointer code rarely carries the no-alias
    // guarantees Fortran arrays give the compiler. An ambiguous loop
    // cannot have its unrolled copies reordered around stores, which
    // is one of the big real-world reasons unrolling fails to pay off
    // on integer codes.
    let p_ambiguous = match entry.lang {
        SourceLang::C => 0.40,
        SourceLang::Fortran | SourceLang::Fortran90 => 0.05,
    };
    if rng.gen_bool(p_ambiguous) {
        for inst in &mut body.body {
            if let Some(m) = &mut inst.mem {
                *m = m.as_ambiguous();
            }
        }
    }
    // Heavier-tailed weights: a few loops dominate, like real profiles.
    let weight = rng.gen_range(0.05f64..1.0).powi(3);
    // Couple trip counts to nesting the way real programs do: inner
    // loops of nests run few iterations but are entered over and over
    // (so per-entry costs — remainder loops, i-cache refill, pipeline
    // fill/drain — genuinely matter), while flat loops run long.
    let entries = if body.nest_level > 1 {
        use loopml_ir::TripCount;
        let t = (rng.gen_range((16.0f64).ln()..(1024.0f64).ln())).exp() as u64;
        let t = if rng.gen_bool(0.5) {
            (t / 4).max(1) * 4
        } else {
            t
        };
        body.trip_count = match body.trip_count {
            TripCount::Known(old) if old <= 16 => TripCount::Known(old),
            TripCount::Known(_) => TripCount::Known(t.max(4)),
            TripCount::Unknown { .. } => TripCount::Unknown { estimate: t.max(4) },
        };
        1u64 << rng.gen_range(6..14)
    } else {
        1u64 << rng.gen_range(0..3)
    };
    WeightedLoop {
        body,
        weight,
        entries,
    }
}

/// Synthesizes one benchmark from a roster entry.
pub fn synthesize(entry: &RosterEntry, cfg: &SuiteConfig) -> Benchmark {
    let mut rng = Rng::seed_from_u64(cfg.seed ^ hash_name(entry.name));
    let mix = entry.archetype.mix();
    let mix_total: u32 = mix.iter().map(|&(_, w)| w).sum();
    let n_loops = rng.gen_range(cfg.min_loops..=cfg.max_loops);

    let scale = cfg.corpus_scale.max(1);
    let mut loops = Vec::with_capacity(n_loops * scale);
    for k in 0..n_loops {
        loops.push(synth_loop(entry, k, mix, mix_total, &mut rng));
    }

    // Scaled portion: extra loops on their own RNG stream, drawn from the
    // extended mix. The base stream above is untouched, so the first
    // `n_loops` loops (and the non-loop fraction below) are bitwise
    // identical at every scale.
    if scale > 1 {
        let mut xrng = Rng::seed_from_u64(cfg.seed ^ hash_name(entry.name) ^ SCALE_STREAM);
        let xmix = entry.archetype.extended_mix();
        let xmix_total: u32 = xmix.iter().map(|&(_, w)| w).sum();
        for k in n_loops..n_loops * scale {
            loops.push(synth_loop(entry, k, &xmix, xmix_total, &mut xrng));
        }
    }

    let non_loop = match entry.archetype {
        Archetype::FpStreaming => rng.gen_range(0.05..0.25),
        Archetype::FpRecurrence | Archetype::FpSparse => rng.gen_range(0.1..0.35),
        Archetype::Media => rng.gen_range(0.2..0.5),
        Archetype::IntStreaming => rng.gen_range(0.25..0.55),
        Archetype::IntBranchy => rng.gen_range(0.45..0.75),
    };

    Benchmark::new(
        entry.name,
        entry.lang,
        loops,
        non_loop,
        entry.archetype.is_fp(),
    )
}

/// Synthesizes the full 72-benchmark suite.
pub fn full_suite(cfg: &SuiteConfig) -> Vec<Benchmark> {
    ROSTER.iter().map(|e| synthesize(e, cfg)).collect()
}

/// Synthesizes only the 24 SPEC CPU2000 benchmarks (figure order).
pub fn spec2000(cfg: &SuiteConfig) -> Vec<Benchmark> {
    ROSTER
        .iter()
        .filter(|e| e.spec2000)
        .map(|e| synthesize(e, cfg))
        .collect()
}

/// FNV-1a, for deriving stable per-benchmark seeds from names.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_72_entries_24_spec() {
        assert_eq!(ROSTER.len(), 72);
        assert_eq!(ROSTER.iter().filter(|e| e.spec2000).count(), 24);
    }

    #[test]
    fn roster_names_unique() {
        let mut names: Vec<&str> = ROSTER.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 72);
    }

    #[test]
    fn spec_order_matches_figures() {
        let spec = spec2000(&SuiteConfig::default());
        assert_eq!(spec[0].name, "164.gzip");
        assert_eq!(spec[1].name, "168.wupwise");
        assert_eq!(spec[23].name, "301.apsi");
        assert_eq!(spec.iter().filter(|b| b.is_fp).count(), 13);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let cfg = SuiteConfig::default();
        let a = synthesize(&ROSTER[2], &cfg);
        let b = synthesize(&ROSTER[2], &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthesize(&ROSTER[2], &SuiteConfig::default());
        let b = synthesize(
            &ROSTER[2],
            &SuiteConfig {
                seed: 12345,
                ..SuiteConfig::default()
            },
        );
        assert_ne!(a, b);
    }

    #[test]
    fn suite_yields_thousands_of_loops() {
        let suite = full_suite(&SuiteConfig::default());
        let total: usize = suite.iter().map(|b| b.len()).sum();
        assert!(total >= 2000, "got {total} loops");
        let unrollable: usize = suite.iter().map(|b| b.unrollable().count()).sum();
        assert!(unrollable >= 1800, "got {unrollable} unrollable loops");
    }

    #[test]
    fn scaled_suite_keeps_base_as_bitwise_prefix() {
        let base_cfg = SuiteConfig {
            min_loops: 8,
            max_loops: 12,
            ..SuiteConfig::default()
        };
        let scaled_cfg = SuiteConfig {
            corpus_scale: 4,
            ..base_cfg
        };
        for entry in [&ROSTER[0], &ROSTER[2], &ROSTER[40]] {
            let base = synthesize(entry, &base_cfg);
            let scaled = synthesize(entry, &scaled_cfg);
            assert_eq!(scaled.len(), 4 * base.len(), "{}", entry.name);
            assert_eq!(scaled.non_loop_fraction, base.non_loop_fraction);
            for (b, s) in base.iter().zip(scaled.iter()) {
                // Bodies and entry counts are the prefix; weights are
                // re-normalized over the larger suite.
                assert_eq!(b.body, s.body, "{}", entry.name);
                assert_eq!(b.entries, s.entries, "{}", entry.name);
            }
        }
    }

    #[test]
    fn scale_zero_and_one_are_identical() {
        let one = synthesize(&ROSTER[5], &SuiteConfig::default());
        let zero = synthesize(
            &ROSTER[5],
            &SuiteConfig {
                corpus_scale: 0,
                ..SuiteConfig::default()
            },
        );
        assert_eq!(one, zero);
    }

    #[test]
    fn scaled_portion_uses_extended_families() {
        // At a healthy scale the new families must actually appear.
        let cfg = SuiteConfig {
            min_loops: 20,
            max_loops: 24,
            corpus_scale: 4,
            ..SuiteConfig::default()
        };
        let b = synthesize(&ROSTER[2], &cfg); // FpStreaming
        let names: Vec<&str> = b.iter().map(|w| w.body.name.as_str()).collect();
        assert!(
            names
                .iter()
                .any(|n| n.contains("NestedImperfect") || n.contains("WideReduce")),
            "no scale-up families in {names:?}"
        );
    }

    #[test]
    fn languages_span_three() {
        let suite = full_suite(&SuiteConfig::default());
        let mut langs: Vec<_> = suite.iter().map(|b| b.lang).collect();
        langs.sort_unstable();
        langs.dedup();
        assert_eq!(langs.len(), 3);
    }

    #[test]
    fn weights_normalized_per_benchmark() {
        for b in full_suite(&SuiteConfig::default()).iter().take(5) {
            let sum: f64 = b.iter().map(|w| w.weight).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", b.name);
        }
    }

    #[test]
    fn loops_carry_benchmark_language() {
        let b = synthesize(&ROSTER[2], &SuiteConfig::default()); // 171.swim, Fortran
        assert!(b.iter().all(|w| w.body.lang == SourceLang::Fortran));
    }
}
