//! # loopml-rt — zero-dependency deterministic runtime
//!
//! The rest of the workspace must build offline from a cold cargo cache,
//! so everything that used to come from `rand`, `proptest`, and
//! `criterion` lives here instead, implemented on `std` alone:
//!
//! * [`Rng`] — a seedable xoshiro256++ PRNG (SplitMix64 seeding) with the
//!   `gen_range`/`gen_bool` surface the corpus, noise model, and labeler
//!   draw from. A fixed seed produces the same stream on every platform,
//!   every run, and every thread count.
//! * [`par`] — a scoped `std::thread` worker pool. [`par_map`] distributes
//!   work over an atomic queue and returns results in input order, so any
//!   pipeline that seeds one RNG per item is bit-identical to its serial
//!   equivalent.
//! * [`fault`] — deterministic fault injection ([`FaultPlane`]), seeded
//!   from the `LOOPML_FAULTS` environment variable; paired with
//!   [`par::par_map_result`], which isolates per-item panics instead of
//!   killing the pool, it makes chaos runs bit-for-bit reproducible.
//! * [`check`] — a minimal property-test harness with seeded case
//!   generation and failure-seed reporting (replay a single failing case
//!   with `LOOPML_CHECK_SEED=<seed>`).
//! * [`bench`] — a tiny wall-clock benchmark harness for
//!   `harness = false` bench targets.
//! * [`json`] — a minimal JSON value parser/printer so machine-readable
//!   reports (`BENCH_ml.json`, lint output) can be validated and compared
//!   without serde.

pub mod bench;
pub mod check;
pub mod fault;
pub mod json;
pub mod par;
pub mod rng;

pub use check::check;
pub use fault::{fault_key, fault_key_str, FaultPlane, InjectedFault};
pub use json::Json;
pub use par::{
    num_threads, par_map, par_map_result, par_map_result_threads, par_map_threads, WorkerError,
};
pub use rng::{Rng, SampleRange};
