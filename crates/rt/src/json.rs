//! A minimal JSON reader/writer, zero dependencies.
//!
//! The repository emits machine-readable reports (`loopml-lint`'s
//! diagnostics, the `repro perf` bench trajectory) and — with this module
//! — can also read them back, e.g. to compare a fresh `BENCH_ml.json`
//! against a checked-in baseline in CI. The parser accepts standard JSON
//! (objects, arrays, strings with the common escapes, numbers, booleans,
//! null); it does not preserve key order duplicates or parse `\u` escapes
//! beyond the basic multilingual plane.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap); duplicate keys keep the
    /// last occurrence.
    Obj(BTreeMap<String, Json>),
}

/// Maximum nesting depth the parser accepts. Checkpoint/resume makes the
/// parser a crash-recovery path, so it must be total: without a bound, a
/// corrupted document of ten thousand `[`s would overflow the stack
/// (an abort, not a catchable error).
const MAX_DEPTH: usize = 128;

impl Json {
    /// Parses a JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// An object from `(key, value)` pairs — the builder the model
    /// artifact and serving layers assemble their documents with.
    pub fn obj<'a>(pairs: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A number array from a slice of `f64`. Finite values survive a
    /// serialize → parse round trip bit-exactly (see
    /// `finite_floats_round_trip_bit_exactly`), which is what makes JSON
    /// model artifacts bit-identical to the in-memory model.
    pub fn from_f64s(vals: &[f64]) -> Json {
        Json::Arr(vals.iter().map(|&v| Json::Num(v)).collect())
    }

    /// A number array from a slice of `usize` (exact below 2^53).
    pub fn from_usizes(vals: &[usize]) -> Json {
        Json::Arr(vals.iter().map(|&v| Json::Num(v as f64)).collect())
    }

    /// The elements as `f64`, if this is an array of numbers.
    pub fn as_f64s(&self) -> Option<Vec<f64>> {
        self.as_arr()?.iter().map(Json::as_num).collect()
    }

    /// The elements as `usize`, if this is an array of non-negative
    /// integral numbers.
    pub fn as_usizes(&self) -> Option<Vec<usize>> {
        self.as_arr()?
            .iter()
            .map(|v| {
                let n = v.as_num()?;
                (n >= 0.0 && n.fract() == 0.0).then_some(n as usize)
            })
            .collect()
    }
}

impl fmt::Display for Json {
    /// Serializes back to compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => write!(f, "{v}"),
            Json::Str(s) => write!(f, "{}", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Escapes a string into a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar (multibyte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse(r#""a\n\"b\" é""#).unwrap(),
            Json::Str("a\n\"b\" é".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"stages": [{"name": "label", "wall_ms": 12.5}], "threads": 4}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("threads").and_then(Json::as_num), Some(4.0));
        let stages = v.get("stages").and_then(Json::as_arr).unwrap();
        assert_eq!(stages[0].get("name").and_then(Json::as_str), Some("label"));
        assert_eq!(stages[0].get("wall_ms").and_then(Json::as_num), Some(12.5));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn display_round_trips() {
        let doc = r#"{"a":[1,true,null,"s"],"b":{"c":-2.5}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape("a\"b\\c\n"), r#""a\"b\\c\n""#);
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
        let mut doc = "[1]".to_string();
        for _ in 0..(super::MAX_DEPTH + 10) {
            doc = format!("[{doc}]");
        }
        let err = Json::parse(&doc).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
    }

    /// A small random JSON value for the mutation property below.
    fn random_json(rng: &mut crate::Rng, depth: usize) -> Json {
        let choices = if depth >= 3 { 4 } else { 6 };
        match rng.gen_range(0..choices) {
            0u32 => Json::Null,
            1 => Json::Bool(rng.gen_bool(0.5)),
            2 => Json::Num(rng.gen_range(-1.0e6..1.0e6)),
            3 => {
                let len = rng.gen_range(0..8usize);
                Json::Str(
                    (0..len)
                        .map(|_| char::from(rng.gen_range(b' '..=b'~')))
                        .collect(),
                )
            }
            4 => Json::Arr(
                (0..rng.gen_range(0..4usize))
                    .map(|_| random_json(rng, depth + 1))
                    .collect(),
            ),
            _ => Json::Obj(
                (0..rng.gen_range(0..4usize))
                    .map(|i| (format!("k{i}"), random_json(rng, depth + 1)))
                    .collect(),
            ),
        }
    }

    #[test]
    fn parse_never_panics_on_mutated_documents() {
        // Checkpoint/resume reads these documents back after crashes, so
        // the parser must be total: any byte-level corruption of a valid
        // document yields Ok or Err, never a panic.
        crate::check("json_parse_total_under_mutation", 400, |rng| {
            let mut bytes = random_json(rng, 0).to_string().into_bytes();
            for _ in 0..rng.gen_range(1..6usize) {
                if bytes.is_empty() {
                    break;
                }
                let i = rng.gen_range(0..bytes.len());
                match rng.gen_range(0..3u32) {
                    0 => bytes[i] = rng.gen_range(0..=255u8),
                    1 => {
                        bytes.insert(i, rng.gen_range(0..=255u8));
                    }
                    _ => {
                        bytes.remove(i);
                    }
                }
            }
            let text = String::from_utf8_lossy(&bytes);
            let _ = Json::parse(&text);
        });
    }

    #[test]
    fn typed_array_helpers_round_trip() {
        let f = Json::from_f64s(&[0.25, -3.0, 1e-9]);
        assert_eq!(f.as_f64s(), Some(vec![0.25, -3.0, 1e-9]));
        let u = Json::from_usizes(&[0, 7, 38]);
        assert_eq!(u.as_usizes(), Some(vec![0, 7, 38]));
        // Fractional or negative entries are not usizes.
        assert_eq!(Json::from_f64s(&[1.5]).as_usizes(), None);
        assert_eq!(Json::from_f64s(&[-1.0]).as_usizes(), None);
        assert_eq!(Json::Null.as_f64s(), None);
        let o = Json::obj([("b", Json::Num(1.0)), ("a", Json::Bool(true))]);
        assert_eq!(o.to_string(), r#"{"a":true,"b":1}"#);
    }

    #[test]
    fn finite_floats_round_trip_bit_exactly() {
        // Checkpointed runtimes must survive serialize → parse without
        // losing a bit, or resume would not be bit-identical.
        crate::check("json_f64_round_trip", 300, |rng| {
            let v = match rng.gen_range(0..3u32) {
                0 => rng.gen_range(-1.0e9..1.0e9),
                1 => rng.gen_range(0.0..1.0),
                _ => f64::from_bits(rng.next_u64() >> 12), // small positives
            };
            let parsed = Json::parse(&Json::Num(v).to_string()).expect("number parses");
            let got = parsed.as_num().expect("is a number");
            assert_eq!(got.to_bits(), v.to_bits(), "{v:?} -> {got:?}");
        });
    }
}
