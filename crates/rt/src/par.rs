//! Scoped worker pool: `par_map` over an atomic work queue.
//!
//! Results come back in input order, so a pipeline that derives one RNG
//! seed per item (as the labeler and evaluator do) produces bit-identical
//! output regardless of thread count — the pool changes *when* each item
//! runs, never *what* it computes or where the result lands.
//!
//! Thread count comes from `std::thread::available_parallelism`, or the
//! `LOOPML_THREADS` environment variable when set. Nested `par_map` calls
//! from inside a worker run serially on that worker — one level of
//! parallelism is enough for labeling (benchmarks × loops) and avoids
//! quadratic thread explosions.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once};

use crate::fault::InjectedFault;

thread_local! {
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Worker threads to use: `LOOPML_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism (1 if unknown). An
/// invalid `LOOPML_THREADS` value (zero, negative, non-numeric) warns
/// once to stderr and falls back to available parallelism.
pub fn num_threads() -> usize {
    if let Ok(s) = std::env::var("LOOPML_THREADS") {
        match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => {
                static WARNED: Once = Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "[loopml-rt] ignoring invalid LOOPML_THREADS={s:?} \
                         (want a positive integer); using available parallelism"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Renders a panic payload as a human-readable message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(f) = payload.downcast_ref::<InjectedFault>() {
        format!("injected fault at {} (key {:#x})", f.site, f.key)
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A panic captured from one work item by [`par_map_result`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerError {
    /// Index of the item whose closure panicked.
    pub index: usize,
    /// Rendered panic message.
    pub message: String,
    /// The injection site, when the panic was a synthetic
    /// [`InjectedFault`] from the fault plane (`None` for genuine
    /// panics).
    pub injected: Option<&'static str>,
}

impl WorkerError {
    fn from_panic(index: usize, payload: Box<dyn std::any::Any + Send>) -> Self {
        WorkerError {
            index,
            message: panic_message(payload.as_ref()),
            injected: payload.downcast_ref::<InjectedFault>().map(|f| f.site),
        }
    }
}

/// Maps `f` over `items` on [`num_threads`] workers, preserving input
/// order in the result. Equivalent to `items.iter().map(f).collect()` for
/// any pure `f`; see the module docs for the determinism argument.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(num_threads(), items, f)
}

/// [`par_map`] with an explicit worker count (used by the equivalence
/// tests to force serial vs. multi-threaded execution).
///
/// # Panics
///
/// Propagates the first panic raised by `f` once all workers finish.
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 || items.len() <= 1 || IN_POOL.with(|c| c.get()) {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                IN_POOL.with(|c| c.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    // Compute outside the lock; the lock guards only the
                    // store into the claimed slot.
                    let r = f(&items[i]);
                    slots.lock().expect("no poisoned slots")[i] = Some(r);
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("no poisoned slots")
        .into_iter()
        .map(|slot| slot.expect("every slot filled"))
        .collect()
}

/// Panic-isolating sibling of [`par_map`]: maps `f` over `items` on
/// [`num_threads`] workers and returns one `Result` per item, in input
/// order. A panic inside `f` (genuine or injected by the fault plane)
/// becomes an `Err(WorkerError)` for that item alone — the worker
/// catches it and moves on to the next item instead of killing the
/// pool.
pub fn par_map_result<T, R, F>(items: &[T], f: F) -> Vec<Result<R, WorkerError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_result_threads(num_threads(), items, f)
}

/// [`par_map_result`] with an explicit worker count.
pub fn par_map_result_threads<T, R, F>(
    threads: usize,
    items: &[T],
    f: F,
) -> Vec<Result<R, WorkerError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let isolated = |(i, item): &(usize, &T)| -> Result<R, WorkerError> {
        catch_unwind(AssertUnwindSafe(|| f(item)))
            .map_err(|payload| WorkerError::from_panic(*i, payload))
    };
    let indexed: Vec<(usize, &T)> = items.iter().enumerate().collect();
    par_map_threads(threads, &indexed, isolated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let par = par_map_threads(threads, &items, |&x| x * x + 1);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = vec![];
        assert_eq!(par_map_threads(4, &none, |&x| x), Vec::<u32>::new());
        assert_eq!(par_map_threads(4, &[9u32], |&x| x + 1), vec![10]);
    }

    #[test]
    fn nested_calls_run_serially() {
        let outer: Vec<usize> = (0..4).collect();
        let result = par_map_threads(2, &outer, |&i| {
            // A nested call must not deadlock or explode; it degrades to
            // a serial map inside the worker.
            let inner: Vec<usize> = (0..8).collect();
            par_map_threads(4, &inner, |&j| i * 100 + j)
                .iter()
                .sum::<usize>()
        });
        let expect: Vec<usize> = outer
            .iter()
            .map(|&i| (0..8).map(|j| i * 100 + j).sum())
            .collect();
        assert_eq!(result, expect);
    }

    #[test]
    fn seeded_rng_per_item_is_thread_count_invariant() {
        // The pattern the labeler relies on: one RNG seeded per item.
        let items: Vec<u64> = (0..64).collect();
        let draw = |&i: &u64| {
            let mut rng = crate::Rng::seed_from_u64(0xABCD ^ i);
            (0..10).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        let one = par_map_threads(1, &items, draw);
        let four = par_map_threads(4, &items, draw);
        assert_eq!(one, four);
    }

    #[test]
    fn par_map_result_isolates_panics() {
        let items: Vec<u32> = (0..32).collect();
        for threads in [1, 2, 4] {
            let out = par_map_result_threads(threads, &items, |&x| {
                if x % 7 == 3 {
                    panic!("boom on {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i % 7 == 3 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, i);
                    assert!(e.message.contains("boom"), "{e:?}");
                    assert_eq!(e.injected, None);
                } else {
                    assert_eq!(*r, Ok(i as u32 * 2), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn par_map_result_tags_injected_faults() {
        use crate::fault::{site, FaultPlane};
        let plane = FaultPlane::new(0, 1.0).only_keys(vec![5]);
        let items: Vec<u64> = (0..12).collect();
        let out = par_map_result_threads(3, &items, |&k| {
            plane.trip(site::LABEL_LOOP, k);
            k + 1
        });
        for (i, r) in out.iter().enumerate() {
            if i == 5 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.injected, Some(site::LABEL_LOOP));
                assert!(e.message.contains("label.loop"), "{e:?}");
            } else {
                assert_eq!(*r, Ok(i as u64 + 1));
            }
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map_threads(2, &items, |&x| {
                if x == 7 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(caught.is_err());
    }
}
