//! Scoped worker pool: `par_map` over an atomic work queue.
//!
//! Results come back in input order, so a pipeline that derives one RNG
//! seed per item (as the labeler and evaluator do) produces bit-identical
//! output regardless of thread count — the pool changes *when* each item
//! runs, never *what* it computes or where the result lands.
//!
//! Thread count comes from `std::thread::available_parallelism`, or the
//! `LOOPML_THREADS` environment variable when set. Nested `par_map` calls
//! from inside a worker run serially on that worker — one level of
//! parallelism is enough for labeling (benchmarks × loops) and avoids
//! quadratic thread explosions.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Worker threads to use: `LOOPML_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism (1 if unknown).
pub fn num_threads() -> usize {
    if let Ok(s) = std::env::var("LOOPML_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on [`num_threads`] workers, preserving input
/// order in the result. Equivalent to `items.iter().map(f).collect()` for
/// any pure `f`; see the module docs for the determinism argument.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(num_threads(), items, f)
}

/// [`par_map`] with an explicit worker count (used by the equivalence
/// tests to force serial vs. multi-threaded execution).
///
/// # Panics
///
/// Propagates the first panic raised by `f` once all workers finish.
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 || items.len() <= 1 || IN_POOL.with(|c| c.get()) {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                IN_POOL.with(|c| c.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    // Compute outside the lock; the lock guards only the
                    // store into the claimed slot.
                    let r = f(&items[i]);
                    slots.lock().expect("no poisoned slots")[i] = Some(r);
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("no poisoned slots")
        .into_iter()
        .map(|slot| slot.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let par = par_map_threads(threads, &items, |&x| x * x + 1);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = vec![];
        assert_eq!(par_map_threads(4, &none, |&x| x), Vec::<u32>::new());
        assert_eq!(par_map_threads(4, &[9u32], |&x| x + 1), vec![10]);
    }

    #[test]
    fn nested_calls_run_serially() {
        let outer: Vec<usize> = (0..4).collect();
        let result = par_map_threads(2, &outer, |&i| {
            // A nested call must not deadlock or explode; it degrades to
            // a serial map inside the worker.
            let inner: Vec<usize> = (0..8).collect();
            par_map_threads(4, &inner, |&j| i * 100 + j)
                .iter()
                .sum::<usize>()
        });
        let expect: Vec<usize> = outer
            .iter()
            .map(|&i| (0..8).map(|j| i * 100 + j).sum())
            .collect();
        assert_eq!(result, expect);
    }

    #[test]
    fn seeded_rng_per_item_is_thread_count_invariant() {
        // The pattern the labeler relies on: one RNG seeded per item.
        let items: Vec<u64> = (0..64).collect();
        let draw = |&i: &u64| {
            let mut rng = crate::Rng::seed_from_u64(0xABCD ^ i);
            (0..10).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        let one = par_map_threads(1, &items, draw);
        let four = par_map_threads(4, &items, draw);
        assert_eq!(one, four);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map_threads(2, &items, |&x| {
                if x == 7 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(caught.is_err());
    }
}
