//! Deterministic seedable PRNG: xoshiro256++ with SplitMix64 seeding.
//!
//! The generator is *not* cryptographic; it exists so that corpus
//! synthesis, labeling, and noise draws are reproducible from a single
//! `u64` seed with no external crates. The sampling surface mirrors the
//! subset of `rand 0.8` the workspace used (`seed_from_u64`, `gen_range`
//! over half-open and inclusive ranges, `gen_bool`), so call sites read
//! the same after the migration.
//!
//! Determinism contract: for a fixed seed, the stream of values is
//! identical across runs, platforms, and thread counts. Nothing in this
//! module consults global state, time, or addresses.

/// xoshiro256++ generator state. Construct with [`Rng::seed_from_u64`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// One step of SplitMix64, used to expand a single `u64` seed into the
/// 256-bit xoshiro state (the seeding scheme its authors recommend).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator whose state is expanded from `seed` via
    /// SplitMix64. Equal seeds yield equal streams, always.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output (xoshiro256++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from `range` (half-open `a..b` or inclusive
    /// `a..=b`), for every primitive integer type and `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]: {p}");
        self.next_f64() < p
    }

    /// Standard normal draw via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = loop {
            let v = self.next_f64();
            if v > 0.0 {
                break v;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Uniform integer in `[0, n)` by rejection sampling (no modulo bias).
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Largest multiple of n that fits in a u64; values at or above it
        // are rejected so every residue is equally likely.
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "gen_range: bad f64 range {:?}",
            self
        );
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Rounding can land exactly on `end`; keep the interval half-open.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(
            start <= end && start.is_finite() && end.is_finite(),
            "gen_range: bad f64 range"
        );
        (start + rng.next_f64() * (end - start)).clamp(start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_reproduces_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be unrelated, {same} collisions");
    }

    #[test]
    fn known_stream_is_stable() {
        // Pin the exact output so any accidental algorithm change (which
        // would silently alter every corpus and label) fails loudly.
        let mut r = Rng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut again = Rng::seed_from_u64(0);
        let expect: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(got, expect);
        // First output for seed 0 under SplitMix64-seeded xoshiro256++.
        assert_eq!(got[0], 5987356902031041503);
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..2000 {
            let v: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: u64 = r.gen_range(10..=12);
            assert!((10..=12).contains(&w));
            let x: usize = r.gen_range(0..3);
            assert!(x < 3);
            let y: i64 = r.gen_range(-1000..=1000);
            assert!((-1000..=1000).contains(&y));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut r = Rng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.gen_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn f64_range_half_open() {
        let mut r = Rng::seed_from_u64(13);
        for _ in 0..2000 {
            let v = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Rng::seed_from_u64(17);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut r = Rng::seed_from_u64(19);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut r = Rng::seed_from_u64(23);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Rng::seed_from_u64(0);
        let _: u32 = r.gen_range(5..5);
    }
}
