//! Minimal property-test harness with seeded case generation.
//!
//! A property is a closure over an [`Rng`]; the harness runs it for a
//! fixed number of cases, each with a seed derived deterministically from
//! the property name and case index. On failure it reports the seed so
//! the single offending case can be replayed:
//!
//! ```text
//! LOOPML_CHECK_SEED=0x3f9a... cargo test -p loopml-machine failing_property
//! ```
//!
//! There is no shrinking; generators in this workspace are already
//! small-biased (loop sizes, trip counts), which keeps counterexamples
//! readable without it.

use crate::rng::Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Environment variable that replays one specific case seed.
pub const SEED_ENV: &str = "LOOPML_CHECK_SEED";

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn case_seed(name: &str, case: u64) -> u64 {
    // Mix the per-property base with the case index through SplitMix64's
    // finalizer so consecutive cases get unrelated seeds.
    let mut z = fnv1a(name.as_bytes()) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    crate::par::panic_message(payload.as_ref())
}

/// Runs `prop` for `cases` seeded cases; panics with the failing seed on
/// the first assertion failure inside `prop`.
///
/// If [`SEED_ENV`] is set, runs exactly one case with that seed instead
/// (for replaying a reported failure).
pub fn check<F>(name: &str, cases: u64, mut prop: F)
where
    F: FnMut(&mut Rng),
{
    if let Ok(v) = std::env::var(SEED_ENV) {
        let seed = parse_seed(&v)
            .unwrap_or_else(|| panic!("{SEED_ENV}={v:?} is not a decimal or 0x-hex u64"));
        let mut rng = Rng::seed_from_u64(seed);
        prop(&mut rng);
        return;
    }
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut rng = Rng::seed_from_u64(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| prop(&mut rng))) {
            let msg = panic_message(payload);
            panic!(
                "property '{name}' failed at case {case}/{cases} (seed {seed:#x}): {msg}\n\
                 replay just this case with {SEED_ENV}={seed:#x}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u64;
        check("always_true", 25, |rng| {
            ran += 1;
            let v: u32 = rng.gen_range(0..10);
            assert!(v < 10);
        });
        assert_eq!(ran, 25);
    }

    #[test]
    fn failing_property_reports_seed() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            check("always_false", 5, |_rng| {
                panic!("intentional");
            });
        }));
        let msg = panic_message(caught.unwrap_err());
        assert!(msg.contains("always_false"), "{msg}");
        assert!(msg.contains("seed 0x"), "{msg}");
        assert!(msg.contains(SEED_ENV), "{msg}");
        assert!(msg.contains("intentional"), "{msg}");
    }

    #[test]
    fn case_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..10).map(|c| case_seed("p", c)).collect();
        let b: Vec<u64> = (0..10).map(|c| case_seed("p", c)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len());
        assert_ne!(case_seed("p", 0), case_seed("q", 0));
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("255"), Some(255));
        assert_eq!(parse_seed("0xff"), Some(255));
        assert_eq!(parse_seed("0XFF"), Some(255));
        assert_eq!(parse_seed("  0x10 "), Some(16));
        assert_eq!(parse_seed("nope"), None);
    }
}
