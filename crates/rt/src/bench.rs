//! Tiny wall-clock benchmark harness for `harness = false` bench targets.
//!
//! Each benchmark is a closure timed over repeated calls until a time
//! budget (default 300 ms, override with `LOOPML_BENCH_MS`) or an
//! iteration cap is reached; the harness prints min / median / mean. This
//! intentionally trades criterion's statistics for zero dependencies —
//! the repro benches compare orders of magnitude, not single percents.

use std::hint::black_box;
use std::time::{Duration, Instant};

fn time_budget() -> Duration {
    std::env::var("LOOPML_BENCH_MS")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(300))
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Measured samples for one benchmark.
#[derive(Debug, Clone)]
pub struct Report {
    /// Benchmark name as printed.
    pub name: String,
    /// One wall-clock duration per timed iteration, in run order.
    pub samples: Vec<Duration>,
}

impl Report {
    /// Minimum sample.
    pub fn min(&self) -> Duration {
        self.samples.iter().copied().min().unwrap_or_default()
    }

    /// Median sample.
    pub fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort_unstable();
        s.get(s.len() / 2).copied().unwrap_or_default()
    }

    /// Mean sample.
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::default();
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }

    /// Prints the one-line `name / iters / min / median / mean` summary.
    pub fn print(&self) {
        println!(
            "{:<44} {:>5} iters   min {:>10}   median {:>10}   mean {:>10}",
            self.name,
            self.samples.len(),
            format_duration(self.min()),
            format_duration(self.median()),
            format_duration(self.mean()),
        );
    }
}

/// Times `f` repeatedly (after a short warmup) and returns the samples;
/// call [`Report::print`] for the one-line summary.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Report {
    for _ in 0..2 {
        black_box(f());
    }
    let budget = time_budget();
    let started = Instant::now();
    let mut samples = Vec::new();
    while started.elapsed() < budget && samples.len() < 1000 {
        let t0 = Instant::now();
        black_box(f());
        samples.push(t0.elapsed());
    }
    Report {
        name: name.to_string(),
        samples,
    }
}

/// Times a single call of `f` — no warmup, no repetition. The right tool
/// for multi-second pipeline stages (labeling a corpus, a full LOOCV)
/// where [`bench`]'s repeat-until-budget loop would multiply minutes and
/// where run-to-run variance is dwarfed by the effects being measured.
pub fn bench_once<R>(name: &str, f: impl FnOnce() -> R) -> (Report, R) {
    let t0 = Instant::now();
    let result = black_box(f());
    let elapsed = t0.elapsed();
    (
        Report {
            name: name.to_string(),
            samples: vec![elapsed],
        },
        result,
    )
}

/// Like [`bench`] but with per-iteration setup excluded from the timing
/// (the replacement for criterion's `iter_batched`).
pub fn bench_batched<S, R>(
    name: &str,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S) -> R,
) -> Report {
    for _ in 0..2 {
        let input = setup();
        black_box(f(input));
    }
    let budget = time_budget();
    let started = Instant::now();
    let mut samples = Vec::new();
    while started.elapsed() < budget && samples.len() < 1000 {
        let input = setup();
        let t0 = Instant::now();
        black_box(f(input));
        samples.push(t0.elapsed());
    }
    Report {
        name: name.to_string(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_samples() {
        std::env::set_var("LOOPML_BENCH_MS", "5");
        let r = bench("noop", || 1 + 1);
        assert!(!r.samples.is_empty());
        assert!(r.min() <= r.median());
        std::env::remove_var("LOOPML_BENCH_MS");
    }

    #[test]
    fn bench_once_times_exactly_one_call() {
        let mut calls = 0;
        let (r, value) = bench_once("single", || {
            calls += 1;
            42
        });
        assert_eq!(calls, 1);
        assert_eq!(value, 42);
        assert_eq!(r.samples.len(), 1);
    }

    #[test]
    fn batched_setup_not_counted_in_samples() {
        std::env::set_var("LOOPML_BENCH_MS", "5");
        let r = bench_batched("batched", || vec![1u8; 16], |v| v.len());
        assert!(!r.samples.is_empty());
        std::env::remove_var("LOOPML_BENCH_MS");
    }

    #[test]
    fn durations_format_readably() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(format_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
