//! Deterministic fault injection: reproducible chaos for pipeline
//! hardening.
//!
//! Long labeling runs die in the real world — a measurement crashes, a
//! benchmark wedges, a worker panics. The fault-tolerance layer that
//! survives those deaths is only testable if the deaths themselves are
//! reproducible, so this module injects *synthetic* faults from a pure
//! function of `(seed, site, key)`: the same plane trips the same sites
//! on the same keys on every run, every platform, and every thread
//! count. A chaos run is as bit-replayable as a clean one.
//!
//! A [`FaultPlane`] is configured from the `LOOPML_FAULTS` environment
//! variable:
//!
//! ```text
//! LOOPML_FAULTS=<seed>:<rate>[:<site>]
//! LOOPML_FAULTS=0xC0FFEE:0.1              # 10% faults at every site
//! LOOPML_FAULTS=7:0.25:label.measure      # only measurement faults
//! ```
//!
//! Injection sites are named code locations (see [`site`]); each call
//! site passes a stable `key` identifying the work item (benchmark
//! index, loop index, factor, attempt — packed with [`fault_key`]), and
//! the plane decides deterministically whether that item faults.
//! Result-shaped call sites use [`FaultPlane::check`]; call sites with
//! no error path use [`FaultPlane::trip`], which panics with an
//! [`InjectedFault`] payload that [`crate::par::par_map_result`]
//! recognizes and isolates.

use std::panic::panic_any;
use std::sync::Once;

/// Environment variable configuring the fault plane
/// (`<seed>:<rate>[:<site>]`).
pub const FAULTS_ENV: &str = "LOOPML_FAULTS";

/// Named injection sites.
pub mod site {
    /// One measurement of one (loop, factor) pair during labeling.
    /// Transient: retries re-measure with a reseeded noise stream.
    pub const LABEL_MEASURE: &str = "label.measure";
    /// The labeling of one whole benchmark. Persistent: the benchmark
    /// crashes identically on every attempt and is quarantined.
    pub const LABEL_LOOP: &str = "label.loop";
    /// One whole-benchmark evaluation measurement (Figures 4/5).
    pub const EVAL_BENCH: &str = "eval.bench";
    /// Decoding one serving request (parse/admission). Transient: the
    /// daemon re-decodes on retry.
    pub const SERVE_DECODE: &str = "serve.decode";
    /// One batched prediction inside the serving daemon. Transient:
    /// predictions are pure, so a retry answers bit-identically.
    pub const SERVE_PREDICT: &str = "serve.predict";
    /// Writing one serving response. Transient: the response is not
    /// emitted until the write check passes, so a retry cannot
    /// duplicate output.
    pub const SERVE_WRITE: &str = "serve.write";
    /// Every known site, for validating `LOOPML_FAULTS` site filters.
    pub const ALL: &[&str] = &[
        LABEL_MEASURE,
        LABEL_LOOP,
        EVAL_BENCH,
        SERVE_DECODE,
        SERVE_PREDICT,
        SERVE_WRITE,
    ];
}

/// Panic payload raised by [`FaultPlane::trip`]. Isolation layers
/// downcast to this to distinguish injected chaos from genuine bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that tripped.
    pub site: &'static str,
    /// The work-item key that tripped it.
    pub key: u64,
}

/// A deterministic fault-injection plane.
///
/// Inactive by default ([`FaultPlane::disabled`] — every check passes,
/// costing one branch); activated with a seed and a fault rate, and
/// optionally narrowed to a single site or an explicit key set.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlane {
    seed: u64,
    rate: f64,
    site: Option<String>,
    only_keys: Option<Vec<u64>>,
}

impl Default for FaultPlane {
    fn default() -> Self {
        FaultPlane::disabled()
    }
}

impl FaultPlane {
    /// A plane that never faults.
    pub fn disabled() -> Self {
        FaultPlane {
            seed: 0,
            rate: 0.0,
            site: None,
            only_keys: None,
        }
    }

    /// A plane faulting each `(site, key)` independently with
    /// probability `rate` (deterministically — the coin flip is a hash
    /// of `(seed, site, key)`).
    pub fn new(seed: u64, rate: f64) -> Self {
        FaultPlane {
            seed,
            rate: rate.clamp(0.0, 1.0),
            site: None,
            only_keys: None,
        }
    }

    /// Restricts injection to one named site.
    pub fn at_site(mut self, site: &str) -> Self {
        self.site = Some(site.to_string());
        self
    }

    /// Restricts injection to an explicit key set (tests use this to
    /// fault exactly one benchmark or loop).
    pub fn only_keys(mut self, keys: Vec<u64>) -> Self {
        self.only_keys = Some(keys);
        self
    }

    /// Reads the plane from [`FAULTS_ENV`]. Returns `None` when unset;
    /// a malformed value warns once to stderr and is treated as unset
    /// (a chaos knob must never be able to break a production run).
    pub fn from_env() -> Option<Self> {
        let v = std::env::var(FAULTS_ENV).ok()?;
        match parse_spec(&v) {
            Some(p) => Some(p),
            None => {
                static WARNED: Once = Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "[loopml-rt] ignoring malformed {FAULTS_ENV}={v:?} \
                         (want <seed>:<rate in 0..=1>[:<site>], sites: {})",
                        site::ALL.join(", ")
                    );
                });
                None
            }
        }
    }

    /// [`FaultPlane::from_env`], defaulting to [`FaultPlane::disabled`].
    pub fn env_or_disabled() -> Self {
        FaultPlane::from_env().unwrap_or_else(FaultPlane::disabled)
    }

    /// `true` if this plane can ever fault.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0
    }

    /// The deterministic fault decision for `(site, key)`.
    pub fn should_fault(&self, site: &str, key: u64) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        if let Some(s) = &self.site {
            if s != site {
                return false;
            }
        }
        if let Some(keys) = &self.only_keys {
            if !keys.contains(&key) {
                return false;
            }
        }
        if self.rate >= 1.0 {
            return true;
        }
        let h = mix64(self.seed ^ fault_key_str(site) ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Top 53 bits → uniform in [0, 1).
        ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < self.rate
    }

    /// A stable fingerprint of the full fault configuration: seed, rate,
    /// site filter and key filter. Checkpointing layers fold this into
    /// their config fingerprints so state written under one chaos
    /// configuration is never reused under another — a disabled plane, a
    /// different seed and a different site filter all fingerprint
    /// differently.
    pub fn fingerprint(&self) -> u64 {
        let mut parts = vec![
            self.seed,
            self.rate.to_bits(),
            self.site.as_deref().map_or(0, fault_key_str),
        ];
        // Length-prefix the key filter so `Some(vec![])` and `None`
        // cannot collide.
        match &self.only_keys {
            None => parts.push(u64::MAX),
            Some(keys) => {
                parts.push(keys.len() as u64);
                parts.extend_from_slice(keys);
            }
        }
        fault_key(&parts)
    }

    /// Errs with an [`InjectedFault`] when `(site, key)` faults — for
    /// call sites with a `Result` path.
    pub fn check(&self, site: &'static str, key: u64) -> Result<(), InjectedFault> {
        if self.should_fault(site, key) {
            Err(InjectedFault { site, key })
        } else {
            Ok(())
        }
    }

    /// Panics with an [`InjectedFault`] payload when `(site, key)`
    /// faults — for call sites with no error path. The panic is meant to
    /// be caught by [`crate::par::par_map_result`] (or any
    /// `catch_unwind` isolation layer), which surfaces the site name.
    pub fn trip(&self, site: &'static str, key: u64) {
        if self.should_fault(site, key) {
            panic_any(InjectedFault { site, key });
        }
    }
}

/// Packs multiple identifying parts (benchmark index, loop index,
/// factor, attempt, …) into one stable fault key.
pub fn fault_key(parts: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &p in parts {
        h ^= p;
        h = mix64(h.wrapping_mul(0x1000_0000_01b3));
    }
    h
}

/// A stable fault key for a string identity (e.g. a benchmark name).
pub fn fault_key_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_spec(spec: &str) -> Option<FaultPlane> {
    let mut it = spec.splitn(3, ':');
    let seed = parse_u64(it.next()?)?;
    let rate: f64 = it.next()?.trim().parse().ok()?;
    if !(0.0..=1.0).contains(&rate) {
        return None;
    }
    let site = match it.next().map(str::trim) {
        None | Some("") => None,
        Some(s) if site::ALL.contains(&s) => Some(s.to_string()),
        Some(_) => return None,
    };
    Some(FaultPlane {
        seed,
        rate,
        site,
        only_keys: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_never_faults() {
        let p = FaultPlane::disabled();
        for k in 0..100 {
            assert!(!p.should_fault(site::LABEL_MEASURE, k));
        }
        assert!(!p.is_active());
        p.trip(site::LABEL_LOOP, 3); // must not panic
    }

    #[test]
    fn decisions_are_deterministic_and_rate_shaped() {
        let p = FaultPlane::new(0xC0FFEE, 0.25);
        let a: Vec<bool> = (0..4000)
            .map(|k| p.should_fault(site::LABEL_MEASURE, k))
            .collect();
        let b: Vec<bool> = (0..4000)
            .map(|k| p.should_fault(site::LABEL_MEASURE, k))
            .collect();
        assert_eq!(a, b);
        let hits = a.iter().filter(|&&x| x).count();
        assert!(
            (700..=1300).contains(&hits),
            "rate 0.25 over 4000 keys hit {hits} times"
        );
    }

    #[test]
    fn sites_fault_independently() {
        let p = FaultPlane::new(9, 0.5);
        let differs = (0..256)
            .any(|k| p.should_fault(site::LABEL_MEASURE, k) != p.should_fault(site::LABEL_LOOP, k));
        assert!(differs, "site name must enter the fault decision");
    }

    #[test]
    fn site_filter_and_key_filter_narrow_injection() {
        let p = FaultPlane::new(0, 1.0).at_site(site::LABEL_LOOP);
        assert!(p.should_fault(site::LABEL_LOOP, 7));
        assert!(!p.should_fault(site::LABEL_MEASURE, 7));

        let p = FaultPlane::new(0, 1.0).only_keys(vec![2, 5]);
        assert!(p.should_fault(site::LABEL_LOOP, 2));
        assert!(p.should_fault(site::EVAL_BENCH, 5));
        assert!(!p.should_fault(site::LABEL_LOOP, 3));
    }

    #[test]
    fn check_and_trip_raise_injected_faults() {
        let p = FaultPlane::new(0, 1.0);
        let err = p.check(site::LABEL_MEASURE, 42).unwrap_err();
        assert_eq!(err.site, site::LABEL_MEASURE);
        assert_eq!(err.key, 42);

        let caught = std::panic::catch_unwind(|| p.trip(site::EVAL_BENCH, 9)).unwrap_err();
        let fault = caught.downcast_ref::<InjectedFault>().expect("payload");
        assert_eq!(fault.site, site::EVAL_BENCH);
    }

    #[test]
    fn spec_parsing_accepts_valid_and_rejects_garbage() {
        assert_eq!(parse_spec("7:0.25"), Some(FaultPlane::new(7, 0.25)));
        assert_eq!(
            parse_spec("0xff:1.0:label.loop"),
            Some(FaultPlane::new(255, 1.0).at_site(site::LABEL_LOOP))
        );
        assert_eq!(parse_spec(" 12 : 0.5 "), Some(FaultPlane::new(12, 0.5)));
        for bad in [
            "",
            "7",
            "abc:0.1",
            "7:nope",
            "7:1.5",
            "7:-0.1",
            "7:0.1:no.such.site",
        ] {
            assert_eq!(parse_spec(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn fingerprint_separates_every_configuration_axis() {
        let base = FaultPlane::new(7, 0.25);
        assert_eq!(base.fingerprint(), FaultPlane::new(7, 0.25).fingerprint());
        let distinct = [
            FaultPlane::disabled(),
            base.clone(),
            FaultPlane::new(8, 0.25),
            FaultPlane::new(7, 0.5),
            base.clone().at_site(site::LABEL_MEASURE),
            base.clone().at_site(site::LABEL_LOOP),
            base.clone().only_keys(vec![]),
            base.clone().only_keys(vec![1, 2]),
            base.clone().only_keys(vec![2, 1]),
        ];
        for (i, a) in distinct.iter().enumerate() {
            for (j, b) in distinct.iter().enumerate() {
                if i != j {
                    assert_ne!(a.fingerprint(), b.fingerprint(), "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn fault_keys_are_stable_and_order_sensitive() {
        assert_eq!(fault_key(&[1, 2, 3]), fault_key(&[1, 2, 3]));
        assert_ne!(fault_key(&[1, 2]), fault_key(&[2, 1]));
        assert_ne!(fault_key_str("164.gzip"), fault_key_str("171.swim"));
    }
}
