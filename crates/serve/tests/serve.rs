//! End-to-end serving equivalence: a daemon loop over a trained
//! artifact must answer exactly what the in-process heuristic answers.

use loopml::{PipelineBuilder, UnrollHeuristic};
use loopml_corpus::SuiteConfig;
use loopml_ir::Loop;
use loopml_ml::{
    BaggedForest, DecisionTree, ForestParams, Mlp, MlpParams, MulticlassSvm, NearNeighbors,
    SvmParams, TreeParams, DEFAULT_RADIUS,
};
use loopml_rt::Json;
use loopml_serve::{serve_framed, serve_lines, Request, Response, ServeModel};

fn quick_pipeline() -> loopml::Pipeline {
    PipelineBuilder::paper()
        .suite_config(SuiteConfig {
            min_loops: 8,
            max_loops: 10,
            ..SuiteConfig::default()
        })
        .take_benchmarks(4)
        .exact()
        .build()
}

fn all_loops(p: &loopml::Pipeline) -> Vec<Loop> {
    p.suite
        .iter()
        .flat_map(|b| b.loops.iter().map(|w| w.body.clone()))
        .collect()
}

#[test]
fn served_predictions_match_the_in_process_heuristic() {
    let p = quick_pipeline();
    let loops = all_loops(&p);
    for (name, classifier) in [
        (
            "NN",
            Box::new(NearNeighbors::new(DEFAULT_RADIUS)) as Box<dyn loopml_ml::Classifier>,
        ),
        ("SVM", Box::new(MulticlassSvm::new(SvmParams::default()))),
        ("ORC", Box::new(loopml::OrcClassifier)),
        ("Tree", Box::new(DecisionTree::new(TreeParams::default()))),
        (
            "Forest",
            Box::new(BaggedForest::new(ForestParams::default())),
        ),
        ("MLP", Box::new(Mlp::new(MlpParams::default()))),
    ] {
        let artifact = p.train_artifact(name, classifier);
        let model = ServeModel::from_artifact(artifact).expect("reconstruct");
        let direct = model.heuristic();
        let batched = model.choose_loops(&loops);
        for (l, &factor) in loops.iter().zip(&batched) {
            assert_eq!(factor, direct.choose(l), "{name} diverged on {}", l.name);
        }
    }
}

#[test]
fn line_daemon_round_trips_loops_and_features() {
    let p = quick_pipeline();
    let loops = all_loops(&p);
    let artifact = p.train_artifact("NN", Box::new(NearNeighbors::new(DEFAULT_RADIUS)));
    let model = ServeModel::from_artifact(artifact).expect("reconstruct");

    // Two loop batches, one projected-feature batch, one garbage line.
    let mid = loops.len() / 2;
    let mut input = String::new();
    for (i, chunk) in [&loops[..mid], &loops[mid..]].iter().enumerate() {
        let req = Request::Loops {
            id: Json::Num(i as f64),
            loops: chunk.to_vec(),
        };
        input.push_str(&req.to_json().to_string());
        input.push('\n');
    }
    let rows: Vec<Vec<f64>> = loops.iter().map(loopml::extract).collect();
    input.push_str(
        &Request::Features {
            id: Json::Num(2.0),
            rows,
        }
        .to_json()
        .to_string(),
    );
    input.push_str("\nnot json at all\n\n");

    let mut output = Vec::new();
    let stats = serve_lines(&model, input.as_bytes(), &mut output).expect("serve");
    assert_eq!(stats.batches, 4);
    assert_eq!(stats.latencies_ms.len(), 4);

    let text = String::from_utf8(output).unwrap();
    let responses: Vec<Response> = text
        .lines()
        .map(|l| Response::from_json(&Json::parse(l).unwrap()).unwrap())
        .collect();
    assert_eq!(responses.len(), 4);

    // Loop batches: identical to LearnedHeuristic::choose.
    let want: Vec<u32> = loops.iter().map(|l| model.heuristic().choose(l)).collect();
    let (got0, got1) = match (&responses[0], &responses[1]) {
        (Response::Factors { factors: a, .. }, Response::Factors { factors: b, .. }) => {
            (a.clone(), b.clone())
        }
        other => panic!("expected factors, got {other:?}"),
    };
    let got: Vec<u32> = got0.into_iter().chain(got1).collect();
    assert_eq!(got, want);

    // Feature batch: full 38-dim rows, projected server-side. Raw rows
    // carry no unrollability bit, so only compare on unrollable loops.
    match &responses[2] {
        Response::Factors { id, factors } => {
            assert_eq!(id, &Json::Num(2.0));
            assert_eq!(factors.len(), loops.len());
            for ((l, &f), &w) in loops.iter().zip(factors).zip(&want) {
                if l.is_unrollable() {
                    assert_eq!(f, w, "feature path diverged on {}", l.name);
                }
            }
        }
        other => panic!("expected factors, got {other:?}"),
    }

    // The garbage line got an error answer, and the daemon kept going.
    assert!(matches!(&responses[3], Response::Error { .. }));
}

#[test]
fn framed_daemon_matches_the_line_daemon() {
    let p = quick_pipeline();
    let loops = all_loops(&p);
    let artifact = p.train_artifact("NN", Box::new(NearNeighbors::new(DEFAULT_RADIUS)));
    let model = ServeModel::from_artifact(artifact).expect("reconstruct");
    let req = Request::Loops {
        id: Json::Num(0.0),
        loops: loops.clone(),
    };

    let mut framed_in = Vec::new();
    loopml_serve::write_frame(&mut framed_in, &req.to_json()).unwrap();
    let mut framed_out = Vec::new();
    let stats = serve_framed(&model, &framed_in[..], &mut framed_out).expect("serve");
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.predictions, loops.len());

    let doc = loopml_serve::read_frame(&mut &framed_out[..])
        .unwrap()
        .expect("one response frame");
    let want: Vec<u32> = loops.iter().map(|l| model.heuristic().choose(l)).collect();
    assert_eq!(
        Response::from_json(&doc).unwrap(),
        Response::Factors {
            id: Json::Num(0.0),
            factors: want
        }
    );
}

#[test]
fn wrong_dimension_features_answer_an_error_not_a_crash() {
    let p = quick_pipeline();
    let artifact = p.train_artifact("NN", Box::new(NearNeighbors::new(DEFAULT_RADIUS)));
    let model = ServeModel::from_artifact(artifact).expect("reconstruct");
    let req = Request::Features {
        id: Json::Num(9.0),
        rows: vec![vec![1.0, 2.0, 3.0]],
    };
    let input = format!("{}\n", req.to_json());
    let mut output = Vec::new();
    serve_lines(&model, input.as_bytes(), &mut output).expect("serve");
    let text = String::from_utf8(output).unwrap();
    let resp = Response::from_json(&Json::parse(text.trim()).unwrap()).unwrap();
    match resp {
        Response::Error { id, code, message } => {
            assert_eq!(id, Json::Num(9.0));
            assert_eq!(code.as_deref(), Some(loopml_serve::code::PREDICT));
            assert!(message.contains("feature row"), "{message}");
        }
        other => panic!("expected an error answer, got {other:?}"),
    }
}
