//! Production-hardening guarantees of the serving loop: admission
//! limits answer structured errors and resync the transport, panics in
//! prediction are isolated per request, injected chaos is retried to
//! byte-identical answers, and the graceful drain flushes a validated
//! serve-stats document.

use loopml::{dataset_fingerprint, model_fingerprint, ModelArtifact};
use loopml_ml::{Classifier, Dataset, NearNeighbors};
use loopml_rt::fault::site;
use loopml_rt::{FaultPlane, Json};
use loopml_serve::{
    code, read_frame, serve_framed_with, serve_lines_with, validate_serve_stats, Request, Response,
    ServeLimits, ServeModel, ServeOptions,
};

/// A tiny NN model trained on 4 hand-written 2-feature examples —
/// enough to serve real predictions without building a corpus. With
/// `subset = Some([0, 1])` it accepts 2-value (projected) rows; with
/// `subset = None` the admission layer expects 38-feature rows the
/// 2-feature classifier cannot score, which is the genuine-panic vector
/// the isolation test exploits.
fn toy_model(subset: Option<Vec<usize>>) -> ServeModel {
    let data = Dataset::new(
        vec![
            vec![0.0, 1.0],
            vec![0.2, 0.9],
            vec![5.0, -2.0],
            vec![5.2, -2.2],
        ],
        vec![0, 0, 1, 1],
        2,
        vec!["a".into(), "b".into()],
        (0..4).map(|i| format!("e{i}")).collect(),
    );
    let mut nn = NearNeighbors::new(0.45);
    Classifier::fit(&mut nn, &data);
    let state = Classifier::save(&nn);
    let fp = model_fingerprint(dataset_fingerprint(&data), subset.as_deref(), &state);
    ServeModel::from_artifact(ModelArtifact::new("NN", subset, fp, state)).expect("reconstruct")
}

fn feature_request(id: f64, rows: Vec<Vec<f64>>) -> String {
    Request::Features {
        id: Json::Num(id),
        rows,
    }
    .to_json()
    .to_string()
}

fn parse_response(line: &str) -> Response {
    Response::from_json(&Json::parse(line).expect("valid JSON")).expect("a response document")
}

fn error_code(line: &str) -> String {
    match parse_response(line) {
        Response::Error { code, .. } => code.expect("structured error code"),
        other => panic!("expected an error answer, got {other:?}"),
    }
}

#[test]
fn oversized_and_torn_frames_answer_errors_and_resync() {
    let model = toy_model(Some(vec![0, 1]));
    let opts = ServeOptions {
        limits: ServeLimits {
            max_frame: 256,
            ..ServeLimits::default()
        },
        ..ServeOptions::quiet()
    };

    let mut input = Vec::new();
    let good = |id| {
        Request::Features {
            id: Json::Num(id),
            rows: vec![vec![0.0, 1.0], vec![5.0, -2.0]],
        }
        .to_json()
    };
    loopml_serve::write_frame(&mut input, &good(0.0)).unwrap();
    // An oversized frame: a valid header whose payload is over the cap.
    input.extend_from_slice(&300u32.to_be_bytes());
    input.extend_from_slice(&vec![b'x'; 300]);
    // The transport must resync onto this well-formed frame...
    loopml_serve::write_frame(&mut input, &good(1.0)).unwrap();
    // ...and a torn final frame (header promises 50 bytes, EOF after 5)
    // is a decode defect, not a transport death.
    input.extend_from_slice(&50u32.to_be_bytes());
    input.extend_from_slice(b"{\"id\"");

    let mut out = Vec::new();
    let stats = serve_framed_with(&model, &opts, &input[..], &mut out).expect("serve");
    assert_eq!(stats.batches, 4);
    assert_eq!(stats.errors, 2);
    assert_eq!(stats.predictions, 4);

    let mut r = &out[..];
    let mut responses = Vec::new();
    while let Some(doc) = read_frame(&mut r).expect("response frame") {
        responses.push(Response::from_json(&doc).expect("response"));
    }
    let want = Response::Factors {
        id: Json::Num(0.0),
        factors: vec![1, 2],
    };
    assert_eq!(responses.len(), 4);
    assert_eq!(responses[0], want);
    match &responses[1] {
        Response::Error { code, message, .. } => {
            assert_eq!(code.as_deref(), Some(code::LIMIT_FRAME));
            assert!(message.contains("256"), "{message}");
        }
        other => panic!("expected the frame-limit error, got {other:?}"),
    }
    assert_eq!(
        responses[2],
        Response::Factors {
            id: Json::Num(1.0),
            factors: vec![1, 2],
        }
    );
    match &responses[3] {
        Response::Error { code, .. } => assert_eq!(code.as_deref(), Some(code::DECODE)),
        other => panic!("expected the torn-frame error, got {other:?}"),
    }
}

#[test]
fn overlong_lines_answer_errors_and_the_drain_flushes_valid_stats() {
    let model = toy_model(Some(vec![0, 1]));
    let opts = ServeOptions {
        limits: ServeLimits {
            max_line: 64,
            ..ServeLimits::default()
        },
        ..ServeOptions::quiet()
    };
    let input = format!(
        "{}\n{}\n{}\n{}\nnever reached\n",
        "x".repeat(500),
        feature_request(7.0, vec![vec![5.0, -2.0]]),
        "{\"control\": \"ping\"}",
        "{\"control\": \"shutdown\"}",
    );
    let mut out = Vec::new();
    let stats = serve_lines_with(&model, &opts, input.as_bytes(), &mut out).expect("serve");
    assert!(stats.drained, "shutdown sentinel must drain the daemon");
    assert_eq!(stats.batches, 2);
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.controls, 2);

    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "nothing is served past the drain");
    assert_eq!(error_code(lines[0]), code::LIMIT_LINE);
    assert_eq!(
        parse_response(lines[1]),
        Response::Factors {
            id: Json::Num(7.0),
            factors: vec![2],
        }
    );
    let pong = Json::parse(lines[2]).unwrap();
    assert_eq!(pong.get("control").and_then(Json::as_str), Some("pong"));
    assert_eq!(pong.get("model").and_then(Json::as_str), Some("NN"));
    assert_eq!(
        pong.get("fingerprint").and_then(Json::as_str),
        Some(model.fingerprint_hex().as_str())
    );

    // The drain reply is the serve-stats document, schema-validated.
    let doc = Json::parse(lines[3]).unwrap();
    validate_serve_stats(&doc).expect("drain stats validate");
    assert_eq!(doc.get("drained"), Some(&Json::Bool(true)));
    assert_eq!(doc.get("served").and_then(Json::as_num), Some(2.0));
    assert_eq!(doc.get("errors").and_then(Json::as_num), Some(1.0));
    assert_eq!(
        doc.get("fingerprint").and_then(Json::as_str),
        Some(model.fingerprint_hex().as_str())
    );
}

#[test]
fn over_cap_batches_and_stats_requests_are_answered_in_place() {
    let model = toy_model(Some(vec![0, 1]));
    let opts = ServeOptions {
        limits: ServeLimits {
            max_batch: 2,
            ..ServeLimits::default()
        },
        ..ServeOptions::quiet()
    };
    let input = format!(
        "{}\n{}\n{}\n",
        feature_request(0.0, vec![vec![0.0, 1.0]; 3]),
        feature_request(1.0, vec![vec![0.0, 1.0]; 2]),
        "{\"control\": \"stats\"}",
    );
    let mut out = Vec::new();
    let stats = serve_lines_with(&model, &opts, input.as_bytes(), &mut out).expect("serve");
    assert!(!stats.drained, "EOF is not a drain");

    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(error_code(lines[0]), code::LIMIT_BATCH);
    assert_eq!(
        parse_response(lines[1]),
        Response::Factors {
            id: Json::Num(1.0),
            factors: vec![1, 1],
        }
    );
    // The in-flight stats control answers the same validated document.
    let doc = Json::parse(lines[2]).unwrap();
    validate_serve_stats(&doc).expect("stats validate");
    assert_eq!(doc.get("drained"), Some(&Json::Bool(false)));
}

#[test]
fn a_genuine_panic_in_predict_is_answered_not_fatal() {
    // No feature subset: admission expects 38-feature rows, but the
    // classifier was fitted on 2 — scoring asserts, i.e. a real panic
    // (not an injected fault) inside the prediction path.
    let model = toy_model(None);
    let input = format!(
        "{}\n{}\n",
        feature_request(3.0, vec![vec![0.0; 38]]),
        "{\"control\": \"ping\"}",
    );
    let mut out = Vec::new();
    let stats = serve_lines_with(&model, &ServeOptions::quiet(), input.as_bytes(), &mut out)
        .expect("serve");
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.controls, 1, "the daemon must keep serving");

    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    match parse_response(lines[0]) {
        Response::Error { id, code, message } => {
            assert_eq!(id, Json::Num(3.0));
            assert_eq!(code.as_deref(), Some(loopml_serve::code::PANIC));
            assert!(message.contains("prediction panicked"), "{message}");
        }
        other => panic!("expected the panic answer, got {other:?}"),
    }
    let pong = Json::parse(lines[1]).unwrap();
    assert_eq!(pong.get("control").and_then(Json::as_str), Some("pong"));
}

/// The chaos contract, at 1 and 4 worker threads: under a fault plane
/// firing at all three serve sites, every well-formed request is
/// answered byte-identically to a clean run (predictions are pure, so
/// in-daemon retries reconstruct the exact answer), and the injected
/// faults are visible in the drain counters.
#[test]
fn chaos_serving_is_byte_identical_to_a_clean_run_at_any_thread_count() {
    let model = toy_model(Some(vec![0, 1]));
    let mut input = String::new();
    for i in 0..6 {
        let v = f64::from(i);
        input.push_str(&feature_request(
            v,
            vec![vec![v / 2.0, 1.0 - v], vec![5.0, -2.0]],
        ));
        input.push('\n');
    }
    input.push_str("{\"control\": \"shutdown\"}\n");

    let mut clean = Vec::new();
    serve_lines_with(&model, &ServeOptions::quiet(), input.as_bytes(), &mut clean)
        .expect("clean serve");
    let clean_text = String::from_utf8(clean).unwrap();
    let clean_answers: Vec<&str> = clean_text.lines().collect();

    for threads in ["1", "4"] {
        std::env::set_var("LOOPML_THREADS", threads);
        let opts = ServeOptions {
            // No site filter: serve.decode, serve.predict and
            // serve.write all fire. The generous budget makes attempt
            // exhaustion (rate 0.3, three sites) vanishingly unlikely,
            // and everything is seed-deterministic either way.
            faults: FaultPlane::new(0x51EE9, 0.3),
            retry_budget: 30,
            ..ServeOptions::quiet()
        };
        let mut out = Vec::new();
        let stats =
            serve_lines_with(&model, &opts, input.as_bytes(), &mut out).expect("chaos serve");
        let chaos_text = String::from_utf8(out).unwrap();
        let chaos_answers: Vec<&str> = chaos_text.lines().collect();

        assert_eq!(chaos_answers.len(), clean_answers.len());
        // Every request answer is byte-identical; only the final drain
        // document differs (it reports the fault/retry counters).
        for (chaos, clean) in chaos_answers
            .iter()
            .zip(&clean_answers)
            .take(clean_answers.len() - 1)
        {
            assert_eq!(chaos, clean, "chaos diverged at {threads} thread(s)");
        }
        let total_faults: usize = stats.faults.values().sum();
        assert!(total_faults > 0, "the plane must actually fire");
        assert!(stats.retries > 0, "faults are survived by retrying");
        assert_eq!(stats.errors, 0, "no request may exhaust the budget");
        for s in [site::SERVE_DECODE, site::SERVE_PREDICT, site::SERVE_WRITE] {
            assert!(
                stats.faults.contains_key(s),
                "site {s} never fired at rate 0.3 over 7 requests x 31 attempts"
            );
        }
        let drain = Json::parse(chaos_answers.last().unwrap()).unwrap();
        validate_serve_stats(&drain).expect("chaos drain stats validate");
    }
    std::env::remove_var("LOOPML_THREADS");
}
