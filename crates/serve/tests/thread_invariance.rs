//! The serving determinism contract: batched answers are bit-identical
//! at any `LOOPML_THREADS`. Lives in its own test binary because it
//! mutates the process-global thread-count environment variable.

use loopml::PipelineBuilder;
use loopml_corpus::SuiteConfig;
use loopml_ml::{MulticlassSvm, SvmParams};
use loopml_serve::ServeModel;

#[test]
fn served_batches_are_bit_identical_at_any_thread_count() {
    let p = PipelineBuilder::paper()
        .suite_config(SuiteConfig {
            min_loops: 8,
            max_loops: 10,
            ..SuiteConfig::default()
        })
        .take_benchmarks(4)
        .exact()
        .build();
    let loops: Vec<loopml_ir::Loop> = p
        .suite
        .iter()
        .flat_map(|b| b.loops.iter().map(|w| w.body.clone()))
        .collect();
    let artifact = p.train_artifact("SVM", Box::new(MulticlassSvm::new(SvmParams::default())));
    let model = ServeModel::from_artifact(artifact).expect("reconstruct");

    let mut answers = Vec::new();
    for threads in ["1", "2", "4"] {
        std::env::set_var("LOOPML_THREADS", threads);
        answers.push(model.choose_loops(&loops));
    }
    std::env::remove_var("LOOPML_THREADS");
    assert_eq!(answers[0], answers[1], "1 vs 2 threads diverged");
    assert_eq!(answers[0], answers[2], "1 vs 4 threads diverged");
}
