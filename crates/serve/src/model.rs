//! The served model: one loaded artifact answering batched queries.

use std::path::Path;

use loopml::{
    extract, extract_with_prover, LearnedHeuristic, ModelArtifact, MAX_UNROLL, NUM_FEATURES,
};
use loopml_ir::Loop;

/// A model artifact reconstructed for serving.
///
/// Predictions are bit-identical to the [`LearnedHeuristic`] the
/// artifact was trained from, at any `LOOPML_THREADS`: the batch path
/// goes through [`loopml_ml::Classifier::predict_batch`], whose
/// contract is exact agreement with per-query `predict`.
#[derive(Debug)]
pub struct ServeModel {
    artifact: ModelArtifact,
    heuristic: LearnedHeuristic,
}

impl ServeModel {
    /// Wraps an already-parsed artifact.
    pub fn from_artifact(artifact: ModelArtifact) -> Result<Self, String> {
        let heuristic = artifact.to_heuristic()?;
        Ok(ServeModel {
            artifact,
            heuristic,
        })
    }

    /// Loads an artifact file. Every defect — missing file, truncation,
    /// schema or kind mismatch — is a loud error: a serving daemon has
    /// no corpus to fall back to.
    pub fn load(path: &Path) -> Result<Self, String> {
        Self::from_artifact(ModelArtifact::read(path)?)
    }

    /// The artifact this model was loaded from.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// The in-process heuristic equivalent of this served model.
    pub fn heuristic(&self) -> &LearnedHeuristic {
        &self.heuristic
    }

    /// Display name of the model ("NN", "SVM", …).
    pub fn name(&self) -> &str {
        &self.artifact.name
    }

    /// The artifact fingerprint in the `0x`-prefixed 16-digit hex form
    /// used by `repro train` output and the serve-stats document.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:#018x}", self.artifact.fingerprint)
    }

    /// Number of features a projected query row must have.
    fn subset_dims(&self) -> usize {
        match &self.artifact.feature_subset {
            Some(cols) => cols.len(),
            None => NUM_FEATURES,
        }
    }

    /// Width of the full vector to extract: the paper's 38, or 38 + the
    /// prover block when the subset reaches past it — mirroring
    /// [`LearnedHeuristic`]'s input-dims inference so served and
    /// in-process answers stay bit-identical.
    fn full_dims(&self) -> usize {
        match &self.artifact.feature_subset {
            Some(cols) => cols
                .iter()
                .map(|&c| c + 1)
                .max()
                .unwrap_or(0)
                .max(NUM_FEATURES),
            None => NUM_FEATURES,
        }
    }

    /// Extracts the model's full input vector for one loop.
    fn extract_full(&self, l: &Loop) -> Vec<f64> {
        if self.full_dims() > NUM_FEATURES {
            extract_with_prover(l)
        } else {
            extract(l)
        }
    }

    /// Predicts one unroll factor in `1..=8` per feature row.
    ///
    /// Rows may be full 38-feature vectors (projected onto the model's
    /// subset here, exactly as [`LearnedHeuristic::choose`] projects)
    /// or already projected to the subset's dimensionality. Raw feature
    /// rows carry no unrollability information, so the class → factor
    /// mapping is applied unconditionally; send whole loops (see
    /// [`choose_loops`](Self::choose_loops)) to get the `1` answer for
    /// non-unrollable bodies.
    pub fn predict_rows(&self, rows: &[Vec<f64>]) -> Result<Vec<u32>, String> {
        let subset = self.artifact.feature_subset.as_deref();
        let dims = self.subset_dims();
        let full = self.full_dims();
        let projected: Vec<Vec<f64>> = rows
            .iter()
            .map(|row| {
                if row.len() == dims {
                    Ok(row.clone())
                } else if row.len() == full {
                    // Full vector: project like the in-process heuristic.
                    let cols = subset.expect("dims != full_dims implies a subset");
                    Ok(cols.iter().map(|&c| row[c]).collect())
                } else {
                    Err(format!(
                        "feature row has {} values; expected {dims} (projected) or {full} (full)",
                        row.len()
                    ))
                }
            })
            .collect::<Result<_, String>>()?;
        Ok(self
            .heuristic
            .classifier()
            .predict_batch(&projected)
            .into_iter()
            .map(|class| (class as u32 + 1).min(MAX_UNROLL))
            .collect())
    }

    /// Chooses one unroll factor in `1..=8` per loop, bit-identical to
    /// calling [`LearnedHeuristic::choose`] on each — non-unrollable
    /// loops answer 1 without consulting the classifier — but with
    /// feature extraction batched and per-batch model setup (SVM
    /// normalization, support-vector lists) amortized.
    pub fn choose_loops(&self, loops: &[Loop]) -> Vec<u32> {
        let subset = self.artifact.feature_subset.as_deref();
        let mut rows = Vec::new();
        let mut unrollable = Vec::new();
        for (i, l) in loops.iter().enumerate() {
            if l.is_unrollable() {
                let full = self.extract_full(l);
                rows.push(match subset {
                    Some(cols) => cols.iter().map(|&c| full[c]).collect(),
                    None => full,
                });
                unrollable.push(i);
            }
        }
        let mut factors = vec![1u32; loops.len()];
        let classes = self.heuristic.classifier().predict_batch(&rows);
        for (&i, class) in unrollable.iter().zip(classes) {
            factors[i] = (class as u32 + 1).min(MAX_UNROLL);
        }
        factors
    }
}
