//! `loopml-serve` — a long-lived unroll-factor prediction daemon.
//!
//! Loads one versioned model artifact (written by `repro train`) and
//! answers batched prediction requests over stdin/stdout until EOF or
//! a `{"control": "shutdown"}` drain sentinel. Hardened for hostile
//! input: admission limits, panic isolation, and deterministic fault
//! injection are configured from the environment (see DESIGN §14).
//! See `crates/serve` and DESIGN §11 for the protocol.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use loopml_serve::{
    serve_framed_with, serve_lines_with, serve_stats_to_json, ServeModel, ServeOptions,
};

const USAGE: &str = "\
loopml-serve — unroll-factor prediction daemon (loopml/model/v1)

USAGE:
    loopml-serve --artifact <path> [--framed] [--stats-out <path>]

OPTIONS:
    --artifact <path>   Model artifact JSON written by `repro train`
    --framed            Length-prefixed frames instead of JSON lines
    --stats-out <path>  Write the loopml/serve-stats/v1 document here on exit
    --help              Print this message

PROTOCOL (one request per line, or per frame with --framed):
    {\"id\": 1, \"features\": [[...], ...]}   -> {\"id\": 1, \"factors\": [...]}
    {\"id\": 2, \"loops\": [{...}, ...]}      -> {\"id\": 2, \"factors\": [...]}
    {\"control\": \"ping\"|\"stats\"|\"shutdown\"}  control plane / graceful drain

ENVIRONMENT:
    LOOPML_SERVE_MAX_FRAME   frame payload cap in bytes (default 16 MiB)
    LOOPML_SERVE_MAX_LINE    request line cap in bytes (default 1 MiB)
    LOOPML_SERVE_MAX_BATCH   rows per batch cap (default 4096)
    LOOPML_SERVE_RETRIES     in-daemon retries for injected faults (default 3)
    LOOPML_FAULTS            deterministic chaos: <seed>:<rate>[:<site>]

Exit codes: 0 clean EOF or drain, 1 runtime failure, 2 usage error.";

struct Args {
    artifact: PathBuf,
    framed: bool,
    stats_out: Option<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut artifact = None;
    let mut framed = false;
    let mut stats_out = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--framed" => framed = true,
            "--artifact" => {
                artifact = Some(PathBuf::from(
                    it.next().ok_or("--artifact requires a path")?,
                ));
            }
            "--stats-out" => {
                stats_out = Some(PathBuf::from(
                    it.next().ok_or("--stats-out requires a path")?,
                ));
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    match artifact {
        Some(artifact) => Ok(Some(Args {
            artifact,
            framed,
            stats_out,
        })),
        None => Err("--artifact <path> is required".into()),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("loopml-serve: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let model = match ServeModel::load(&args.artifact) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("loopml-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let opts = ServeOptions::from_env();
    eprintln!(
        "loopml-serve: serving {} ({}) from {}",
        model.name(),
        model.artifact().kind(),
        args.artifact.display()
    );
    if opts.faults.is_active() {
        eprintln!("loopml-serve: fault plane active: {:?}", opts.faults);
    }
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout().lock();
    let served = if args.framed {
        serve_framed_with(&model, &opts, stdin, stdout)
    } else {
        serve_lines_with(&model, &opts, stdin, stdout)
    };
    match served {
        Ok(stats) => {
            if let Some(path) = &args.stats_out {
                let doc = serve_stats_to_json(&model, &stats);
                if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                    eprintln!("loopml-serve: write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            eprintln!(
                "loopml-serve: answered {} predictions in {} batches \
                 ({} errors, {} retries, {} control requests{})",
                stats.predictions,
                stats.batches,
                stats.errors,
                stats.retries,
                stats.controls,
                if stats.drained { ", drained" } else { "" }
            );
            let _ = std::io::stderr().flush();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("loopml-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
