//! `loopml-serve` — a long-lived unroll-factor prediction daemon.
//!
//! Loads one versioned model artifact (written by `repro train`) and
//! answers batched prediction requests over stdin/stdout until EOF.
//! See `crates/serve` and DESIGN §11 for the protocol.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use loopml_serve::{serve_framed, serve_lines, ServeModel};

const USAGE: &str = "\
loopml-serve — unroll-factor prediction daemon (loopml/model/v1)

USAGE:
    loopml-serve --artifact <path> [--framed]

OPTIONS:
    --artifact <path>  Model artifact JSON written by `repro train`
    --framed           Length-prefixed frames instead of JSON lines
    --help             Print this message

PROTOCOL (one request per line, or per frame with --framed):
    {\"id\": 1, \"features\": [[...], ...]}   -> {\"id\": 1, \"factors\": [...]}
    {\"id\": 2, \"loops\": [{...}, ...]}      -> {\"id\": 2, \"factors\": [...]}

Exit codes: 0 clean EOF, 1 runtime failure, 2 usage error.";

struct Args {
    artifact: PathBuf,
    framed: bool,
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut artifact = None;
    let mut framed = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--framed" => framed = true,
            "--artifact" => {
                artifact = Some(PathBuf::from(
                    it.next().ok_or("--artifact requires a path")?,
                ));
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    match artifact {
        Some(artifact) => Ok(Some(Args { artifact, framed })),
        None => Err("--artifact <path> is required".into()),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("loopml-serve: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let model = match ServeModel::load(&args.artifact) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("loopml-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loopml-serve: serving {} ({}) from {}",
        model.name(),
        model.artifact().kind(),
        args.artifact.display()
    );
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout().lock();
    let served = if args.framed {
        serve_framed(&model, stdin, stdout)
    } else {
        serve_lines(&model, stdin, stdout)
    };
    match served {
        Ok(stats) => {
            eprintln!(
                "loopml-serve: answered {} predictions in {} batches",
                stats.predictions, stats.batches
            );
            let _ = std::io::stderr().flush();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("loopml-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
