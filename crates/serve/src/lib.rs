//! Prediction-as-a-service for the loopml reproduction.
//!
//! The paper's classifier is meant to be consulted *by a compiler at
//! optimization time* — which means a trained model someone ships, not
//! a retrain-from-corpus on every run. This crate is the serving half
//! of that story:
//!
//! * [`ServeModel`] loads a versioned `loopml/model/v1` artifact
//!   (written by `repro train` via [`loopml::ModelArtifact`]) and
//!   answers batched unroll-factor queries, bit-identical to the
//!   in-process [`loopml::LearnedHeuristic`] at any `LOOPML_THREADS`.
//! * [`wire`] defines the request/response JSON protocol and a full
//!   codec for [`loopml_ir::Loop`] bodies, so clients can send either
//!   raw feature vectors or whole loops.
//! * [`server`] runs the long-lived daemon loop over any
//!   reader/writer pair, in newline-delimited or length-prefixed
//!   framing, amortizing normalization and SVM kernel-row setup across
//!   each batch via [`loopml_ml::Classifier::predict_batch`].
//!
//! The `loopml-serve` binary wires [`server`] to stdin/stdout.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod model;
pub mod server;
pub mod wire;

pub use model::ServeModel;
pub use server::{
    serve_framed, serve_framed_with, serve_lines, serve_lines_with, serve_stats_to_json,
    validate_serve_stats, ServeOptions, ServeSession, ServeStats, SessionReply,
    DEFAULT_SERVE_RETRIES, SERVE_STATS_SCHEMA,
};
pub use wire::{
    code, loop_from_json, loop_to_json, read_frame, read_frame_bounded, read_line_bounded,
    write_frame, Frame, Line, Request, Response, ServeLimits, MAX_BATCH, MAX_FRAME, MAX_LINE,
};
