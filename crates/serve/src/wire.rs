//! The serving wire protocol: request/response documents, a full JSON
//! codec for [`Loop`] bodies, and the length-prefixed framing used when
//! newline-delimited JSON is inconvenient for the client.
//!
//! A request is one JSON object carrying an `id` (echoed back verbatim)
//! and either a batch of raw feature vectors or a batch of whole loops:
//!
//! ```json
//! {"id": 7, "features": [[4.0, 1024.0, ...], ...]}
//! {"id": 8, "loops": [{"name": "...", "trip": {...}, "body": [...]}, ...]}
//! ```
//!
//! The response echoes the id and answers one unroll factor in `1..=8`
//! per input, in order: `{"id": 7, "factors": [4, 1, 8]}`. A request
//! the server cannot honor yields `{"id": ..., "error": "..."}` and the
//! daemon keeps serving — one bad batch never takes the service down.

use std::collections::BTreeMap;
use std::io::{BufRead, Read, Write};
use std::sync::Once;

use loopml_ir::{ArrayId, Inst, Loop, MemRef, Opcode, Reg, RegClass, SourceLang, TripCount};
use loopml_rt::Json;

/// Largest frame the length-prefixed transport accepts (16 MiB): a
/// corrupt or hostile length header must not look like an allocation
/// request.
pub const MAX_FRAME: u32 = 16 << 20;

/// Default cap on one newline-delimited request line (1 MiB).
pub const MAX_LINE: usize = 1 << 20;

/// Default cap on rows (feature vectors or loops) in one batch.
pub const MAX_BATCH: usize = 4096;

/// Structured error codes carried by [`Response::Error`], so clients
/// can tell a malformed request from an admission-limit rejection from
/// an internal failure without parsing prose.
pub mod code {
    /// The request could not be decoded (bad JSON, bad shape, torn
    /// frame). Not retryable as sent.
    pub const DECODE: &str = "decode";
    /// A frame's length prefix exceeded the configured cap; the payload
    /// was skipped and the transport resynced.
    pub const LIMIT_FRAME: &str = "limit.frame";
    /// A request line exceeded the configured cap; the rest of the line
    /// was discarded.
    pub const LIMIT_LINE: &str = "limit.line";
    /// The batch carried more rows than the configured cap.
    pub const LIMIT_BATCH: &str = "limit.batch";
    /// The model rejected the batch (e.g. wrong feature dimensions).
    pub const PREDICT: &str = "predict";
    /// A genuine panic escaped the prediction path and was isolated.
    pub const PANIC: &str = "panic";
    /// The request exhausted its retry budget under injected faults.
    /// Retryable: resending the request draws fresh fault coins.
    pub const FAULT: &str = "fault";
}

/// Admission limits for the serving daemon, configurable per deployment
/// through `LOOPML_SERVE_MAX_FRAME`, `LOOPML_SERVE_MAX_LINE` and
/// `LOOPML_SERVE_MAX_BATCH`. Every limit violation is answered with a
/// structured error response; none of them kills the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeLimits {
    /// Largest accepted frame payload in bytes.
    pub max_frame: u32,
    /// Largest accepted request line in bytes (excluding the newline).
    pub max_line: usize,
    /// Largest accepted batch (rows or loops per request).
    pub max_batch: usize,
}

impl Default for ServeLimits {
    fn default() -> Self {
        ServeLimits {
            max_frame: MAX_FRAME,
            max_line: MAX_LINE,
            max_batch: MAX_BATCH,
        }
    }
}

impl ServeLimits {
    /// Reads overrides from the environment. A malformed or zero value
    /// warns once to stderr and keeps the default — a tuning knob must
    /// never be able to take the daemon down.
    pub fn from_env() -> Self {
        fn env_limit(var: &str, default: u64) -> u64 {
            let Ok(v) = std::env::var(var) else {
                return default;
            };
            match v.trim().parse::<u64>() {
                Ok(n) if n > 0 => n,
                _ => {
                    static WARNED: Once = Once::new();
                    WARNED.call_once(|| {
                        eprintln!("[loopml-serve] ignoring malformed {var}={v:?} (want a positive integer)");
                    });
                    default
                }
            }
        }
        ServeLimits {
            max_frame: env_limit("LOOPML_SERVE_MAX_FRAME", u64::from(MAX_FRAME))
                .min(u64::from(u32::MAX)) as u32,
            max_line: env_limit("LOOPML_SERVE_MAX_LINE", MAX_LINE as u64) as usize,
            max_batch: env_limit("LOOPML_SERVE_MAX_BATCH", MAX_BATCH as u64) as usize,
        }
    }
}

/// Every opcode with its wire name (the lowercase [`Opcode`] display
/// form), in declaration order. The table is the parse side of the
/// codec; the emit side is `Display` itself, so the two cannot drift.
const OPCODES: [Opcode; 31] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Cmp,
    Opcode::Ext,
    Opcode::FAdd,
    Opcode::FSub,
    Opcode::FMul,
    Opcode::Fma,
    Opcode::FDiv,
    Opcode::FSqrt,
    Opcode::FCmp,
    Opcode::CvtIf,
    Opcode::CvtFi,
    Opcode::Load,
    Opcode::LoadPair,
    Opcode::Store,
    Opcode::StorePair,
    Opcode::Prefetch,
    Opcode::Br,
    Opcode::BrExit,
    Opcode::Call,
    Opcode::Mov,
    Opcode::MovI,
    Opcode::Select,
    Opcode::Nop,
];

fn opcode_from_str(s: &str) -> Result<Opcode, String> {
    OPCODES
        .iter()
        .copied()
        .find(|op| op.to_string() == s)
        .ok_or_else(|| format!("unknown opcode {s:?}"))
}

fn reg_to_json(r: Reg) -> Json {
    Json::Str(r.to_string())
}

fn reg_from_str(s: &str) -> Result<Reg, String> {
    let class = match s.chars().next() {
        Some('r') => RegClass::Int,
        Some('f') => RegClass::Fp,
        Some('p') => RegClass::Pred,
        _ => return Err(format!("register {s:?} has no class prefix")),
    };
    let index: u32 = s[1..]
        .parse()
        .map_err(|_| format!("register {s:?} has no numeric index"))?;
    Ok(Reg::new(class, index))
}

fn regs_from_json(v: &Json, what: &str) -> Result<Vec<Reg>, String> {
    v.as_arr()
        .ok_or_else(|| format!("instruction {what} is not an array"))?
        .iter()
        .map(|r| {
            r.as_str()
                .ok_or_else(|| format!("instruction {what} entry is not a string"))
                .and_then(reg_from_str)
        })
        .collect()
}

fn int_field(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_num)
        .filter(|v| v.fract() == 0.0)
        .ok_or_else(|| format!("field {key:?} is not a whole number"))
}

fn mem_to_json(m: &MemRef) -> Json {
    Json::obj([
        ("base", Json::Num(f64::from(m.base.0))),
        ("stride", Json::Num(m.stride as f64)),
        ("offset", Json::Num(m.offset as f64)),
        ("width", Json::Num(f64::from(m.width))),
        ("indirect", Json::Bool(m.indirect)),
        ("ambiguous", Json::Bool(m.ambiguous)),
    ])
}

fn mem_from_json(doc: &Json) -> Result<MemRef, String> {
    let flag = |key: &str| match doc.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("memref field {key:?} is not a bool")),
    };
    Ok(MemRef {
        base: ArrayId(int_field(doc, "base")? as u32),
        stride: int_field(doc, "stride")? as i64,
        offset: int_field(doc, "offset")? as i64,
        width: int_field(doc, "width")? as u8,
        indirect: flag("indirect")?,
        ambiguous: flag("ambiguous")?,
    })
}

fn inst_to_json(i: &Inst) -> Json {
    let mut m = BTreeMap::new();
    m.insert("op".into(), Json::Str(i.opcode.to_string()));
    m.insert(
        "defs".into(),
        Json::Arr(i.defs.iter().map(|&r| reg_to_json(r)).collect()),
    );
    m.insert(
        "uses".into(),
        Json::Arr(i.uses.iter().map(|&r| reg_to_json(r)).collect()),
    );
    if let Some(mem) = &i.mem {
        m.insert("mem".into(), mem_to_json(mem));
    }
    if let Some(p) = i.predicate {
        m.insert("pred".into(), reg_to_json(p));
    }
    if i.induction {
        m.insert("induction".into(), Json::Bool(true));
    }
    Json::Obj(m)
}

fn inst_from_json(doc: &Json) -> Result<Inst, String> {
    let opcode = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "instruction has no \"op\"".to_string())
        .and_then(opcode_from_str)?;
    let mem = match doc.get("mem") {
        Some(m) => Some(mem_from_json(m)?),
        None => None,
    };
    // The IR invariant: a descriptor iff the opcode accesses memory.
    if opcode.is_mem() != mem.is_some() {
        return Err(format!(
            "opcode {opcode} {} a \"mem\" descriptor",
            if opcode.is_mem() {
                "requires"
            } else {
                "forbids"
            }
        ));
    }
    let mut inst = Inst {
        opcode,
        defs: regs_from_json(doc.get("defs").unwrap_or(&Json::Arr(Vec::new())), "defs")?,
        uses: regs_from_json(doc.get("uses").unwrap_or(&Json::Arr(Vec::new())), "uses")?,
        mem,
        predicate: None,
        induction: false,
    };
    if let Some(p) = doc.get("pred") {
        inst.predicate = Some(
            p.as_str()
                .ok_or_else(|| "instruction \"pred\" is not a string".to_string())
                .and_then(reg_from_str)?,
        );
    }
    if let Some(Json::Bool(true)) = doc.get("induction") {
        inst.induction = true;
    }
    Ok(inst)
}

/// Serializes a whole loop — body, trip count, nesting, language — into
/// the wire form [`loop_from_json`] parses back exactly.
pub fn loop_to_json(l: &Loop) -> Json {
    let trip = match l.trip_count {
        TripCount::Known(n) => Json::obj([("known", Json::Num(n as f64))]),
        TripCount::Unknown { estimate } => Json::obj([("estimate", Json::Num(estimate as f64))]),
    };
    Json::obj([
        ("name", Json::Str(l.name.clone())),
        ("trip", trip),
        ("nest", Json::Num(f64::from(l.nest_level))),
        ("lang", Json::Str(l.lang.to_string())),
        ("body", Json::Arr(l.body.iter().map(inst_to_json).collect())),
    ])
}

/// Parses a loop document written by [`loop_to_json`].
pub fn loop_from_json(doc: &Json) -> Result<Loop, String> {
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or("loop has no name")?
        .to_string();
    let trip_doc = doc.get("trip").ok_or("loop has no trip count")?;
    let trip_count = if let Some(n) = trip_doc.get("known").and_then(Json::as_num) {
        TripCount::Known(n as u64)
    } else if let Some(n) = trip_doc.get("estimate").and_then(Json::as_num) {
        TripCount::Unknown { estimate: n as u64 }
    } else {
        return Err("loop trip count has neither \"known\" nor \"estimate\"".into());
    };
    let lang = match doc.get("lang").and_then(Json::as_str) {
        Some("C") => SourceLang::C,
        Some("Fortran") => SourceLang::Fortran,
        Some("Fortran90") => SourceLang::Fortran90,
        Some(other) => return Err(format!("unknown source language {other:?}")),
        None => return Err("loop has no language".into()),
    };
    let body = doc
        .get("body")
        .and_then(Json::as_arr)
        .ok_or("loop has no body array")?
        .iter()
        .map(inst_from_json)
        .collect::<Result<Vec<Inst>, String>>()?;
    Ok(Loop {
        name,
        body,
        trip_count,
        nest_level: int_field(doc, "nest")? as u32,
        lang,
    })
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A batch of raw feature vectors; each may be the full 38-feature
    /// vector or already projected to the model's subset.
    Features {
        /// Echoed back in the response.
        id: Json,
        /// The feature rows, one prediction each.
        rows: Vec<Vec<f64>>,
    },
    /// A batch of whole loops (the server extracts features itself).
    Loops {
        /// Echoed back in the response.
        id: Json,
        /// The loops, one unroll factor each.
        loops: Vec<Loop>,
    },
}

impl Request {
    /// Serializes the request document.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Features { id, rows } => Json::obj([
                ("id", id.clone()),
                (
                    "features",
                    Json::Arr(rows.iter().map(|r| Json::from_f64s(r)).collect()),
                ),
            ]),
            Request::Loops { id, loops } => Json::obj([
                ("id", id.clone()),
                ("loops", Json::Arr(loops.iter().map(loop_to_json).collect())),
            ]),
        }
    }

    /// Parses a request document: exactly one of `"features"` or
    /// `"loops"` must be present.
    pub fn from_json(doc: &Json) -> Result<Request, String> {
        let id = doc.get("id").cloned().unwrap_or(Json::Null);
        match (doc.get("features"), doc.get("loops")) {
            (Some(f), None) => {
                let rows = f
                    .as_arr()
                    .ok_or("\"features\" is not an array of rows")?
                    .iter()
                    .map(Json::as_f64s)
                    .collect::<Option<Vec<Vec<f64>>>>()
                    .ok_or("\"features\" contains a non-numeric row")?;
                Ok(Request::Features { id, rows })
            }
            (None, Some(l)) => {
                let loops = l
                    .as_arr()
                    .ok_or("\"loops\" is not an array")?
                    .iter()
                    .map(loop_from_json)
                    .collect::<Result<Vec<Loop>, String>>()?;
                Ok(Request::Loops { id, loops })
            }
            (Some(_), Some(_)) => Err("request has both \"features\" and \"loops\"".into()),
            (None, None) => Err("request has neither \"features\" nor \"loops\"".into()),
        }
    }

    /// The request id (echoed in responses).
    pub fn id(&self) -> &Json {
        match self {
            Request::Features { id, .. } | Request::Loops { id, .. } => id,
        }
    }
}

/// One server response: predicted factors, or an error.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Per-input unroll factors in `1..=8`, in request order.
    Factors {
        /// The request's id, echoed.
        id: Json,
        /// One factor per input row/loop.
        factors: Vec<u32>,
    },
    /// The request could not be honored; the daemon keeps serving.
    Error {
        /// The request's id, echoed (`null` if unparseable).
        id: Json,
        /// Structured error code (see [`code`]); `None` only for
        /// responses written by pre-v1.1 servers.
        code: Option<String>,
        /// What went wrong.
        message: String,
    },
}

impl Response {
    /// Builds an error response with a structured [`code`].
    pub fn error(id: Json, code: &str, message: impl Into<String>) -> Response {
        Response::Error {
            id,
            code: Some(code.to_string()),
            message: message.into(),
        }
    }

    /// The structured error code, if this is an error response.
    pub fn error_code(&self) -> Option<&str> {
        match self {
            Response::Error { code, .. } => code.as_deref(),
            Response::Factors { .. } => None,
        }
    }

    /// Serializes the response document.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Factors { id, factors } => Json::obj([
                ("id", id.clone()),
                (
                    "factors",
                    Json::Arr(factors.iter().map(|&f| Json::Num(f64::from(f))).collect()),
                ),
            ]),
            Response::Error { id, code, message } => {
                let mut m = BTreeMap::new();
                m.insert("id".into(), id.clone());
                if let Some(c) = code {
                    m.insert("code".into(), Json::Str(c.clone()));
                }
                m.insert("error".into(), Json::Str(message.clone()));
                Json::Obj(m)
            }
        }
    }

    /// Parses a response document.
    pub fn from_json(doc: &Json) -> Result<Response, String> {
        let id = doc.get("id").cloned().unwrap_or(Json::Null);
        if let Some(msg) = doc.get("error").and_then(Json::as_str) {
            return Ok(Response::Error {
                id,
                code: doc.get("code").and_then(Json::as_str).map(str::to_string),
                message: msg.to_string(),
            });
        }
        let factors = doc
            .get("factors")
            .and_then(Json::as_usizes)
            .ok_or("response has neither \"factors\" nor \"error\"")?
            .into_iter()
            .map(|f| f as u32)
            .collect();
        Ok(Response::Factors { id, factors })
    }
}

/// Writes one length-prefixed frame: a 4-byte big-endian byte count,
/// then that many bytes of UTF-8 JSON.
pub fn write_frame<W: Write>(w: &mut W, doc: &Json) -> std::io::Result<()> {
    let text = doc.to_string();
    let bytes = text.as_bytes();
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// One bounded read from the framed transport: a decoded document, or
/// a defect the daemon answers with an error response before resyncing
/// to the next frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A well-formed frame carrying one JSON document.
    Doc(Json),
    /// A defective frame. The payload was consumed (or skipped), so the
    /// reader is positioned at the next frame boundary.
    Defect {
        /// Structured error code (see [`code`]).
        code: &'static str,
        /// What was wrong with the frame.
        message: String,
    },
}

/// Reads one length-prefixed frame under `limits`, never allocating
/// more than the configured cap: an oversized length prefix skips the
/// payload and reports a [`Frame::Defect`] so the stream resyncs at the
/// next frame boundary; torn or undecodable frames are defects too.
/// `Ok(None)` is a clean EOF at a frame boundary; `Err` is reserved for
/// genuine transport failures (an unreadable pipe).
pub fn read_frame_bounded<R: Read>(
    r: &mut R,
    limits: &ServeLimits,
) -> Result<Option<Frame>, String> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Ok(Some(Frame::Defect {
                    code: code::DECODE,
                    message: format!("torn frame header ({got} of 4 bytes)"),
                }))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("frame header read failed: {e}")),
        }
    }
    let len = u32::from_be_bytes(header);
    if len > limits.max_frame {
        // Skip the claimed payload without allocating it; a truncated
        // oversize frame just drains to EOF.
        let skipped = std::io::copy(&mut r.take(u64::from(len)), &mut std::io::sink())
            .map_err(|e| format!("oversized frame skip failed: {e}"))?;
        return Ok(Some(Frame::Defect {
            code: code::LIMIT_FRAME,
            message: format!(
                "frame length {len} exceeds the {}-byte cap ({skipped} bytes skipped)",
                limits.max_frame
            ),
        }));
    }
    let mut buf = vec![0u8; len as usize];
    if let Err(e) = r.read_exact(&mut buf) {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            return Ok(Some(Frame::Defect {
                code: code::DECODE,
                message: format!("torn frame (wanted {len} bytes): {e}"),
            }));
        }
        return Err(format!("frame payload read failed: {e}"));
    }
    let text = match String::from_utf8(buf) {
        Ok(t) => t,
        Err(e) => {
            return Ok(Some(Frame::Defect {
                code: code::DECODE,
                message: format!("frame is not UTF-8: {e}"),
            }))
        }
    };
    match Json::parse(&text) {
        Ok(doc) => Ok(Some(Frame::Doc(doc))),
        Err(e) => Ok(Some(Frame::Defect {
            code: code::DECODE,
            message: format!("frame is not valid JSON: {e}"),
        })),
    }
}

/// Reads one length-prefixed frame; `Ok(None)` is a clean end of
/// stream (EOF exactly at a frame boundary). This is the strict
/// pre-hardening surface — any defect is an `Err` — kept for clients
/// that want torn input to be loud; the daemon itself uses
/// [`read_frame_bounded`] and keeps serving.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Json>, String> {
    match read_frame_bounded(r, &ServeLimits::default())? {
        None => Ok(None),
        Some(Frame::Doc(doc)) => Ok(Some(doc)),
        Some(Frame::Defect { message, .. }) => Err(message),
    }
}

/// One bounded read from the line transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Line {
    /// One complete request line (without its newline).
    Text(String),
    /// A line that exceeded the cap; the rest of it (through the next
    /// newline or EOF) was discarded, so the reader is positioned at
    /// the next line.
    Overlong {
        /// Total bytes the line carried, cap included.
        length: usize,
    },
}

/// Reads one newline-delimited line, holding at most `limits.max_line`
/// bytes in memory: a hostile unbounded line is discarded to its
/// newline and reported as [`Line::Overlong`] instead of growing the
/// buffer without bound. `Ok(None)` is EOF.
pub fn read_line_bounded<R: BufRead>(
    r: &mut R,
    limits: &ServeLimits,
) -> Result<Option<Line>, String> {
    let mut buf: Vec<u8> = Vec::new();
    let mut dropped = 0usize;
    loop {
        let chunk = match r.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("request read failed: {e}")),
        };
        if chunk.is_empty() {
            // EOF: flush what we have (a final unterminated line).
            return Ok(match (buf.is_empty(), dropped) {
                (true, 0) => None,
                (_, 0) => Some(Line::Text(String::from_utf8_lossy(&buf).into_owned())),
                (_, _) => Some(Line::Overlong {
                    length: buf.len() + dropped,
                }),
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i);
        if dropped > 0 {
            dropped += take;
        } else if buf.len() + take > limits.max_line {
            dropped = buf.len() + take - limits.max_line;
            buf.truncate(0); // the content no longer matters
            dropped += limits.max_line;
        } else {
            buf.extend_from_slice(&chunk[..take]);
        }
        let consumed = newline.map_or(take, |i| i + 1);
        let complete = newline.is_some();
        r.consume(consumed);
        if complete {
            return Ok(Some(if dropped > 0 {
                Line::Overlong { length: dropped }
            } else {
                Line::Text(String::from_utf8_lossy(&buf).into_owned())
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_loop() -> Loop {
        let i0 = Inst::mem(
            Opcode::Load,
            vec![Reg::fp(1)],
            vec![Reg::int(2)],
            MemRef::affine(ArrayId(3), 8, 16, 8).as_ambiguous(),
        );
        let i1 = Inst::new(Opcode::Fma, vec![Reg::fp(2)], vec![Reg::fp(1), Reg::fp(3)])
            .predicated(Reg::pred(0));
        let i2 = Inst::new(Opcode::Add, vec![Reg::int(2)], vec![Reg::int(2)]).as_induction();
        let i3 = Inst::mem(
            Opcode::Store,
            vec![],
            vec![Reg::fp(2), Reg::int(2)],
            MemRef::indirect(ArrayId(4), 8, 8),
        );
        let i4 = Inst::new(Opcode::Br, vec![], vec![Reg::pred(1)]);
        Loop {
            name: "wire/sample".into(),
            body: vec![i0, i1, i2, i3, i4],
            trip_count: TripCount::Unknown { estimate: 100 },
            nest_level: 2,
            lang: SourceLang::Fortran90,
        }
    }

    #[test]
    fn every_opcode_round_trips() {
        for op in OPCODES {
            assert_eq!(opcode_from_str(&op.to_string()), Ok(op));
        }
        assert!(opcode_from_str("teleport").is_err());
    }

    #[test]
    fn registers_round_trip() {
        for r in [Reg::int(0), Reg::fp(31), Reg::pred(7)] {
            assert_eq!(reg_from_str(&r.to_string()), Ok(r));
        }
        assert!(reg_from_str("x3").is_err());
        assert!(reg_from_str("r").is_err());
    }

    #[test]
    fn loops_round_trip_through_text() {
        for l in [
            sample_loop(),
            Loop {
                trip_count: TripCount::Known(1024),
                ..sample_loop()
            },
        ] {
            let text = loop_to_json(&l).to_string();
            let back = loop_from_json(&Json::parse(&text).unwrap()).expect("parse");
            assert_eq!(back, l);
        }
    }

    #[test]
    fn requests_and_responses_round_trip() {
        let reqs = [
            Request::Features {
                id: Json::Num(7.0),
                rows: vec![vec![1.0, -2.5], vec![0.0, 3.25]],
            },
            Request::Loops {
                id: Json::Str("batch-1".into()),
                loops: vec![sample_loop()],
            },
        ];
        for r in reqs {
            let text = r.to_json().to_string();
            assert_eq!(Request::from_json(&Json::parse(&text).unwrap()), Ok(r));
        }
        let resps = [
            Response::Factors {
                id: Json::Num(7.0),
                factors: vec![4, 1, 8],
            },
            Response::Error {
                id: Json::Null,
                code: None,
                message: "no".into(),
            },
            Response::error(Json::Num(3.0), code::LIMIT_BATCH, "too many rows"),
        ];
        for r in resps {
            let text = r.to_json().to_string();
            assert_eq!(Response::from_json(&Json::parse(&text).unwrap()), Ok(r));
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(Request::from_json(&Json::obj([("id", Json::Num(1.0))])).is_err());
        let both = Json::obj([
            ("features", Json::Arr(vec![])),
            ("loops", Json::Arr(vec![])),
        ]);
        assert!(Request::from_json(&both).is_err());
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let doc = Request::Features {
            id: Json::Num(1.0),
            rows: vec![vec![2.0]],
        }
        .to_json();
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc).unwrap();
        write_frame(&mut buf, &doc).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(doc.clone()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(doc));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
        // A huge length header is an error, not an allocation.
        let bogus = (MAX_FRAME + 1).to_be_bytes();
        assert!(read_frame(&mut &bogus[..]).is_err());
        // A truncated body is an error too.
        let mut torn = Vec::new();
        write_frame(&mut torn, &Json::Num(1.0)).unwrap();
        torn.pop();
        assert!(read_frame(&mut &torn[..]).is_err());
    }

    #[test]
    fn bounded_frames_skip_oversize_and_resync() {
        let limits = ServeLimits {
            max_frame: 16,
            ..ServeLimits::default()
        };
        let doc = Json::obj([("id", Json::Num(1.0))]);
        let mut buf = Vec::new();
        // An oversized frame, then a well-formed one: the reader must
        // answer a defect and then still decode the good frame.
        write_frame(&mut buf, &Json::Str("x".repeat(64))).unwrap();
        write_frame(&mut buf, &doc).unwrap();
        let mut r = &buf[..];
        match read_frame_bounded(&mut r, &limits).unwrap() {
            Some(Frame::Defect { code: c, .. }) => assert_eq!(c, code::LIMIT_FRAME),
            other => panic!("expected an oversize defect, got {other:?}"),
        }
        assert_eq!(
            read_frame_bounded(&mut r, &limits).unwrap(),
            Some(Frame::Doc(doc))
        );
        assert_eq!(read_frame_bounded(&mut r, &limits).unwrap(), None);

        // A torn payload is a defect followed by clean EOF, not a hang
        // or a transport error.
        let mut torn = Vec::new();
        write_frame(&mut torn, &Json::Num(1.0)).unwrap();
        torn.pop();
        let mut r = &torn[..];
        match read_frame_bounded(&mut r, &limits).unwrap() {
            Some(Frame::Defect { code: c, .. }) => assert_eq!(c, code::DECODE),
            other => panic!("expected a torn-frame defect, got {other:?}"),
        }
        assert_eq!(read_frame_bounded(&mut r, &limits).unwrap(), None);

        // Unparseable payloads are defects too.
        let mut bad = Vec::new();
        bad.extend_from_slice(&4u32.to_be_bytes());
        bad.extend_from_slice(b"!!!!");
        match read_frame_bounded(&mut &bad[..], &limits).unwrap() {
            Some(Frame::Defect { code: c, .. }) => assert_eq!(c, code::DECODE),
            other => panic!("expected a decode defect, got {other:?}"),
        }
    }

    #[test]
    fn bounded_lines_discard_overlong_input_and_resync() {
        let limits = ServeLimits {
            max_line: 8,
            ..ServeLimits::default()
        };
        let input = format!("{}\nshort\n{}", "y".repeat(40), "z".repeat(20));
        let mut r = input.as_bytes();
        assert_eq!(
            read_line_bounded(&mut r, &limits).unwrap(),
            Some(Line::Overlong { length: 40 })
        );
        assert_eq!(
            read_line_bounded(&mut r, &limits).unwrap(),
            Some(Line::Text("short".into()))
        );
        // A final unterminated overlong line still reports and EOFs.
        assert_eq!(
            read_line_bounded(&mut r, &limits).unwrap(),
            Some(Line::Overlong { length: 20 })
        );
        assert_eq!(read_line_bounded(&mut r, &limits).unwrap(), None);

        // At or under the cap, lines pass through byte-exactly.
        let mut r = "12345678\n".as_bytes();
        assert_eq!(
            read_line_bounded(&mut r, &limits).unwrap(),
            Some(Line::Text("12345678".into()))
        );
    }
}
