//! The serving wire protocol: request/response documents, a full JSON
//! codec for [`Loop`] bodies, and the length-prefixed framing used when
//! newline-delimited JSON is inconvenient for the client.
//!
//! A request is one JSON object carrying an `id` (echoed back verbatim)
//! and either a batch of raw feature vectors or a batch of whole loops:
//!
//! ```json
//! {"id": 7, "features": [[4.0, 1024.0, ...], ...]}
//! {"id": 8, "loops": [{"name": "...", "trip": {...}, "body": [...]}, ...]}
//! ```
//!
//! The response echoes the id and answers one unroll factor in `1..=8`
//! per input, in order: `{"id": 7, "factors": [4, 1, 8]}`. A request
//! the server cannot honor yields `{"id": ..., "error": "..."}` and the
//! daemon keeps serving — one bad batch never takes the service down.

use std::collections::BTreeMap;
use std::io::{Read, Write};

use loopml_ir::{ArrayId, Inst, Loop, MemRef, Opcode, Reg, RegClass, SourceLang, TripCount};
use loopml_rt::Json;

/// Largest frame the length-prefixed transport accepts (16 MiB): a
/// corrupt or hostile length header must not look like an allocation
/// request.
pub const MAX_FRAME: u32 = 16 << 20;

/// Every opcode with its wire name (the lowercase [`Opcode`] display
/// form), in declaration order. The table is the parse side of the
/// codec; the emit side is `Display` itself, so the two cannot drift.
const OPCODES: [Opcode; 31] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Cmp,
    Opcode::Ext,
    Opcode::FAdd,
    Opcode::FSub,
    Opcode::FMul,
    Opcode::Fma,
    Opcode::FDiv,
    Opcode::FSqrt,
    Opcode::FCmp,
    Opcode::CvtIf,
    Opcode::CvtFi,
    Opcode::Load,
    Opcode::LoadPair,
    Opcode::Store,
    Opcode::StorePair,
    Opcode::Prefetch,
    Opcode::Br,
    Opcode::BrExit,
    Opcode::Call,
    Opcode::Mov,
    Opcode::MovI,
    Opcode::Select,
    Opcode::Nop,
];

fn opcode_from_str(s: &str) -> Result<Opcode, String> {
    OPCODES
        .iter()
        .copied()
        .find(|op| op.to_string() == s)
        .ok_or_else(|| format!("unknown opcode {s:?}"))
}

fn reg_to_json(r: Reg) -> Json {
    Json::Str(r.to_string())
}

fn reg_from_str(s: &str) -> Result<Reg, String> {
    let class = match s.chars().next() {
        Some('r') => RegClass::Int,
        Some('f') => RegClass::Fp,
        Some('p') => RegClass::Pred,
        _ => return Err(format!("register {s:?} has no class prefix")),
    };
    let index: u32 = s[1..]
        .parse()
        .map_err(|_| format!("register {s:?} has no numeric index"))?;
    Ok(Reg::new(class, index))
}

fn regs_from_json(v: &Json, what: &str) -> Result<Vec<Reg>, String> {
    v.as_arr()
        .ok_or_else(|| format!("instruction {what} is not an array"))?
        .iter()
        .map(|r| {
            r.as_str()
                .ok_or_else(|| format!("instruction {what} entry is not a string"))
                .and_then(reg_from_str)
        })
        .collect()
}

fn int_field(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_num)
        .filter(|v| v.fract() == 0.0)
        .ok_or_else(|| format!("field {key:?} is not a whole number"))
}

fn mem_to_json(m: &MemRef) -> Json {
    Json::obj([
        ("base", Json::Num(f64::from(m.base.0))),
        ("stride", Json::Num(m.stride as f64)),
        ("offset", Json::Num(m.offset as f64)),
        ("width", Json::Num(f64::from(m.width))),
        ("indirect", Json::Bool(m.indirect)),
        ("ambiguous", Json::Bool(m.ambiguous)),
    ])
}

fn mem_from_json(doc: &Json) -> Result<MemRef, String> {
    let flag = |key: &str| match doc.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("memref field {key:?} is not a bool")),
    };
    Ok(MemRef {
        base: ArrayId(int_field(doc, "base")? as u32),
        stride: int_field(doc, "stride")? as i64,
        offset: int_field(doc, "offset")? as i64,
        width: int_field(doc, "width")? as u8,
        indirect: flag("indirect")?,
        ambiguous: flag("ambiguous")?,
    })
}

fn inst_to_json(i: &Inst) -> Json {
    let mut m = BTreeMap::new();
    m.insert("op".into(), Json::Str(i.opcode.to_string()));
    m.insert(
        "defs".into(),
        Json::Arr(i.defs.iter().map(|&r| reg_to_json(r)).collect()),
    );
    m.insert(
        "uses".into(),
        Json::Arr(i.uses.iter().map(|&r| reg_to_json(r)).collect()),
    );
    if let Some(mem) = &i.mem {
        m.insert("mem".into(), mem_to_json(mem));
    }
    if let Some(p) = i.predicate {
        m.insert("pred".into(), reg_to_json(p));
    }
    if i.induction {
        m.insert("induction".into(), Json::Bool(true));
    }
    Json::Obj(m)
}

fn inst_from_json(doc: &Json) -> Result<Inst, String> {
    let opcode = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "instruction has no \"op\"".to_string())
        .and_then(opcode_from_str)?;
    let mem = match doc.get("mem") {
        Some(m) => Some(mem_from_json(m)?),
        None => None,
    };
    // The IR invariant: a descriptor iff the opcode accesses memory.
    if opcode.is_mem() != mem.is_some() {
        return Err(format!(
            "opcode {opcode} {} a \"mem\" descriptor",
            if opcode.is_mem() {
                "requires"
            } else {
                "forbids"
            }
        ));
    }
    let mut inst = Inst {
        opcode,
        defs: regs_from_json(doc.get("defs").unwrap_or(&Json::Arr(Vec::new())), "defs")?,
        uses: regs_from_json(doc.get("uses").unwrap_or(&Json::Arr(Vec::new())), "uses")?,
        mem,
        predicate: None,
        induction: false,
    };
    if let Some(p) = doc.get("pred") {
        inst.predicate = Some(
            p.as_str()
                .ok_or_else(|| "instruction \"pred\" is not a string".to_string())
                .and_then(reg_from_str)?,
        );
    }
    if let Some(Json::Bool(true)) = doc.get("induction") {
        inst.induction = true;
    }
    Ok(inst)
}

/// Serializes a whole loop — body, trip count, nesting, language — into
/// the wire form [`loop_from_json`] parses back exactly.
pub fn loop_to_json(l: &Loop) -> Json {
    let trip = match l.trip_count {
        TripCount::Known(n) => Json::obj([("known", Json::Num(n as f64))]),
        TripCount::Unknown { estimate } => Json::obj([("estimate", Json::Num(estimate as f64))]),
    };
    Json::obj([
        ("name", Json::Str(l.name.clone())),
        ("trip", trip),
        ("nest", Json::Num(f64::from(l.nest_level))),
        ("lang", Json::Str(l.lang.to_string())),
        ("body", Json::Arr(l.body.iter().map(inst_to_json).collect())),
    ])
}

/// Parses a loop document written by [`loop_to_json`].
pub fn loop_from_json(doc: &Json) -> Result<Loop, String> {
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or("loop has no name")?
        .to_string();
    let trip_doc = doc.get("trip").ok_or("loop has no trip count")?;
    let trip_count = if let Some(n) = trip_doc.get("known").and_then(Json::as_num) {
        TripCount::Known(n as u64)
    } else if let Some(n) = trip_doc.get("estimate").and_then(Json::as_num) {
        TripCount::Unknown { estimate: n as u64 }
    } else {
        return Err("loop trip count has neither \"known\" nor \"estimate\"".into());
    };
    let lang = match doc.get("lang").and_then(Json::as_str) {
        Some("C") => SourceLang::C,
        Some("Fortran") => SourceLang::Fortran,
        Some("Fortran90") => SourceLang::Fortran90,
        Some(other) => return Err(format!("unknown source language {other:?}")),
        None => return Err("loop has no language".into()),
    };
    let body = doc
        .get("body")
        .and_then(Json::as_arr)
        .ok_or("loop has no body array")?
        .iter()
        .map(inst_from_json)
        .collect::<Result<Vec<Inst>, String>>()?;
    Ok(Loop {
        name,
        body,
        trip_count,
        nest_level: int_field(doc, "nest")? as u32,
        lang,
    })
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A batch of raw feature vectors; each may be the full 38-feature
    /// vector or already projected to the model's subset.
    Features {
        /// Echoed back in the response.
        id: Json,
        /// The feature rows, one prediction each.
        rows: Vec<Vec<f64>>,
    },
    /// A batch of whole loops (the server extracts features itself).
    Loops {
        /// Echoed back in the response.
        id: Json,
        /// The loops, one unroll factor each.
        loops: Vec<Loop>,
    },
}

impl Request {
    /// Serializes the request document.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Features { id, rows } => Json::obj([
                ("id", id.clone()),
                (
                    "features",
                    Json::Arr(rows.iter().map(|r| Json::from_f64s(r)).collect()),
                ),
            ]),
            Request::Loops { id, loops } => Json::obj([
                ("id", id.clone()),
                ("loops", Json::Arr(loops.iter().map(loop_to_json).collect())),
            ]),
        }
    }

    /// Parses a request document: exactly one of `"features"` or
    /// `"loops"` must be present.
    pub fn from_json(doc: &Json) -> Result<Request, String> {
        let id = doc.get("id").cloned().unwrap_or(Json::Null);
        match (doc.get("features"), doc.get("loops")) {
            (Some(f), None) => {
                let rows = f
                    .as_arr()
                    .ok_or("\"features\" is not an array of rows")?
                    .iter()
                    .map(Json::as_f64s)
                    .collect::<Option<Vec<Vec<f64>>>>()
                    .ok_or("\"features\" contains a non-numeric row")?;
                Ok(Request::Features { id, rows })
            }
            (None, Some(l)) => {
                let loops = l
                    .as_arr()
                    .ok_or("\"loops\" is not an array")?
                    .iter()
                    .map(loop_from_json)
                    .collect::<Result<Vec<Loop>, String>>()?;
                Ok(Request::Loops { id, loops })
            }
            (Some(_), Some(_)) => Err("request has both \"features\" and \"loops\"".into()),
            (None, None) => Err("request has neither \"features\" nor \"loops\"".into()),
        }
    }

    /// The request id (echoed in responses).
    pub fn id(&self) -> &Json {
        match self {
            Request::Features { id, .. } | Request::Loops { id, .. } => id,
        }
    }
}

/// One server response: predicted factors, or an error.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Per-input unroll factors in `1..=8`, in request order.
    Factors {
        /// The request's id, echoed.
        id: Json,
        /// One factor per input row/loop.
        factors: Vec<u32>,
    },
    /// The request could not be honored; the daemon keeps serving.
    Error {
        /// The request's id, echoed (`null` if unparseable).
        id: Json,
        /// What went wrong.
        message: String,
    },
}

impl Response {
    /// Serializes the response document.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Factors { id, factors } => Json::obj([
                ("id", id.clone()),
                (
                    "factors",
                    Json::Arr(factors.iter().map(|&f| Json::Num(f64::from(f))).collect()),
                ),
            ]),
            Response::Error { id, message } => {
                Json::obj([("id", id.clone()), ("error", Json::Str(message.clone()))])
            }
        }
    }

    /// Parses a response document.
    pub fn from_json(doc: &Json) -> Result<Response, String> {
        let id = doc.get("id").cloned().unwrap_or(Json::Null);
        if let Some(msg) = doc.get("error").and_then(Json::as_str) {
            return Ok(Response::Error {
                id,
                message: msg.to_string(),
            });
        }
        let factors = doc
            .get("factors")
            .and_then(Json::as_usizes)
            .ok_or("response has neither \"factors\" nor \"error\"")?
            .into_iter()
            .map(|f| f as u32)
            .collect();
        Ok(Response::Factors { id, factors })
    }
}

/// Writes one length-prefixed frame: a 4-byte big-endian byte count,
/// then that many bytes of UTF-8 JSON.
pub fn write_frame<W: Write>(w: &mut W, doc: &Json) -> std::io::Result<()> {
    let text = doc.to_string();
    let bytes = text.as_bytes();
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` is a clean end of
/// stream (EOF exactly at a frame boundary).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Json>, String> {
    let mut header = [0u8; 4];
    match r.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(format!("frame header read failed: {e}")),
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME {
        return Err(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte cap"
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)
        .map_err(|e| format!("truncated frame (wanted {len} bytes): {e}"))?;
    let text = String::from_utf8(buf).map_err(|e| format!("frame is not UTF-8: {e}"))?;
    Json::parse(&text).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_loop() -> Loop {
        let i0 = Inst::mem(
            Opcode::Load,
            vec![Reg::fp(1)],
            vec![Reg::int(2)],
            MemRef::affine(ArrayId(3), 8, 16, 8).as_ambiguous(),
        );
        let i1 = Inst::new(Opcode::Fma, vec![Reg::fp(2)], vec![Reg::fp(1), Reg::fp(3)])
            .predicated(Reg::pred(0));
        let i2 = Inst::new(Opcode::Add, vec![Reg::int(2)], vec![Reg::int(2)]).as_induction();
        let i3 = Inst::mem(
            Opcode::Store,
            vec![],
            vec![Reg::fp(2), Reg::int(2)],
            MemRef::indirect(ArrayId(4), 8, 8),
        );
        let i4 = Inst::new(Opcode::Br, vec![], vec![Reg::pred(1)]);
        Loop {
            name: "wire/sample".into(),
            body: vec![i0, i1, i2, i3, i4],
            trip_count: TripCount::Unknown { estimate: 100 },
            nest_level: 2,
            lang: SourceLang::Fortran90,
        }
    }

    #[test]
    fn every_opcode_round_trips() {
        for op in OPCODES {
            assert_eq!(opcode_from_str(&op.to_string()), Ok(op));
        }
        assert!(opcode_from_str("teleport").is_err());
    }

    #[test]
    fn registers_round_trip() {
        for r in [Reg::int(0), Reg::fp(31), Reg::pred(7)] {
            assert_eq!(reg_from_str(&r.to_string()), Ok(r));
        }
        assert!(reg_from_str("x3").is_err());
        assert!(reg_from_str("r").is_err());
    }

    #[test]
    fn loops_round_trip_through_text() {
        for l in [
            sample_loop(),
            Loop {
                trip_count: TripCount::Known(1024),
                ..sample_loop()
            },
        ] {
            let text = loop_to_json(&l).to_string();
            let back = loop_from_json(&Json::parse(&text).unwrap()).expect("parse");
            assert_eq!(back, l);
        }
    }

    #[test]
    fn requests_and_responses_round_trip() {
        let reqs = [
            Request::Features {
                id: Json::Num(7.0),
                rows: vec![vec![1.0, -2.5], vec![0.0, 3.25]],
            },
            Request::Loops {
                id: Json::Str("batch-1".into()),
                loops: vec![sample_loop()],
            },
        ];
        for r in reqs {
            let text = r.to_json().to_string();
            assert_eq!(Request::from_json(&Json::parse(&text).unwrap()), Ok(r));
        }
        let resps = [
            Response::Factors {
                id: Json::Num(7.0),
                factors: vec![4, 1, 8],
            },
            Response::Error {
                id: Json::Null,
                message: "no".into(),
            },
        ];
        for r in resps {
            let text = r.to_json().to_string();
            assert_eq!(Response::from_json(&Json::parse(&text).unwrap()), Ok(r));
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(Request::from_json(&Json::obj([("id", Json::Num(1.0))])).is_err());
        let both = Json::obj([
            ("features", Json::Arr(vec![])),
            ("loops", Json::Arr(vec![])),
        ]);
        assert!(Request::from_json(&both).is_err());
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let doc = Request::Features {
            id: Json::Num(1.0),
            rows: vec![vec![2.0]],
        }
        .to_json();
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc).unwrap();
        write_frame(&mut buf, &doc).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(doc.clone()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(doc));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
        // A huge length header is an error, not an allocation.
        let bogus = (MAX_FRAME + 1).to_be_bytes();
        assert!(read_frame(&mut &bogus[..]).is_err());
        // A truncated body is an error too.
        let mut torn = Vec::new();
        write_frame(&mut torn, &Json::Num(1.0)).unwrap();
        torn.pop();
        assert!(read_frame(&mut &torn[..]).is_err());
    }
}
