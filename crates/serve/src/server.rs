//! The daemon loop: read a request, answer a batch, repeat until EOF
//! or a shutdown sentinel.
//!
//! Two transports share one dispatch path: newline-delimited JSON
//! (trivially driven from a shell) and 4-byte big-endian
//! length-prefixed frames (for clients embedding the daemon where
//! newline framing is fragile). The loop is hardened for production:
//!
//! * **Admission limits** ([`ServeLimits`]) — an oversized frame, an
//!   unbounded request line, or a too-large batch is answered with a
//!   structured error code ([`crate::wire::code`]) and the transport
//!   resyncs; hostile input can cost one bounded buffer, never the
//!   daemon.
//! * **Panic isolation** — every prediction runs under `catch_unwind`;
//!   a genuine panic is answered as a [`code::PANIC`] error and the
//!   loop keeps serving.
//! * **Deterministic chaos** — the [`FaultPlane`] sites `serve.decode`,
//!   `serve.predict` and `serve.write` inject reproducible faults keyed
//!   by `(request sequence, attempt)`. Injected faults are retried
//!   in-daemon with a bounded budget; predictions are pure, so a chaos
//!   run answers every well-formed request byte-identically to a clean
//!   run unless the budget is exhausted (then: a retryable
//!   [`code::FAULT`] error).
//! * **Control plane** — `{"control": "ping" | "stats" | "shutdown"}`
//!   answer liveness, counters and a graceful drain; the drain flushes
//!   a validated [`SERVE_STATS_SCHEMA`] document.

use std::collections::BTreeMap;
use std::io::{BufRead, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use loopml_rt::fault::site;
use loopml_rt::{fault_key, FaultPlane, InjectedFault, Json};

use crate::model::ServeModel;
use crate::wire::{code, read_frame_bounded, read_line_bounded, write_frame};
use crate::wire::{Frame, Line, Request, Response, ServeLimits};

/// Schema tag of the drain/stats document the daemon emits.
pub const SERVE_STATS_SCHEMA: &str = "loopml/serve-stats/v1";

/// Default in-daemon retry budget for injected transient faults,
/// mirroring the labeling retry contract.
pub const DEFAULT_SERVE_RETRIES: u32 = 3;

/// Environment variable overriding the in-daemon retry budget.
pub const SERVE_RETRIES_ENV: &str = "LOOPML_SERVE_RETRIES";

/// Runtime configuration of one serving session: admission limits, the
/// fault plane, and the transient-fault retry budget.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Admission limits (frame/line/batch caps).
    pub limits: ServeLimits,
    /// Deterministic fault plane (disabled outside chaos runs).
    pub faults: FaultPlane,
    /// Retries per request before answering a [`code::FAULT`] error.
    pub retry_budget: u32,
}

impl ServeOptions {
    /// Reads the full serving configuration from the environment:
    /// limits from `LOOPML_SERVE_MAX_*`, the fault plane from
    /// `LOOPML_FAULTS`, the retry budget from [`SERVE_RETRIES_ENV`].
    pub fn from_env() -> Self {
        let retry_budget = std::env::var(SERVE_RETRIES_ENV)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_SERVE_RETRIES);
        ServeOptions {
            limits: ServeLimits::from_env(),
            faults: FaultPlane::env_or_disabled(),
            retry_budget,
        }
    }

    /// Options with a disabled fault plane and default limits, plus the
    /// default retry budget.
    pub fn quiet() -> Self {
        ServeOptions {
            retry_budget: DEFAULT_SERVE_RETRIES,
            ..ServeOptions::default()
        }
    }
}

/// What a daemon run served: volumes, latencies, and the robustness
/// counters the `stats` control request and the drain document report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests answered (including error answers, excluding control
    /// requests).
    pub batches: usize,
    /// Total predictions returned across all batches.
    pub predictions: usize,
    /// Wall-clock milliseconds per answered batch, in arrival order.
    pub latencies_ms: Vec<f64>,
    /// Requests answered with an error document.
    pub errors: usize,
    /// In-daemon retry attempts consumed by injected faults.
    pub retries: usize,
    /// Control requests answered (`ping`/`stats`/`shutdown`).
    pub controls: usize,
    /// Injected faults observed, per site.
    pub faults: BTreeMap<String, usize>,
    /// Whether the run ended on a shutdown sentinel (graceful drain)
    /// rather than transport EOF.
    pub drained: bool,
}

impl ServeStats {
    fn record(&mut self, response: &Response, started: Instant) {
        self.batches += 1;
        match response {
            Response::Factors { factors, .. } => self.predictions += factors.len(),
            Response::Error { .. } => self.errors += 1,
        }
        self.latencies_ms
            .push(started.elapsed().as_secs_f64() * 1e3);
    }

    fn record_fault(&mut self, at: &str) {
        *self.faults.entry(at.to_string()).or_insert(0) += 1;
    }
}

/// One reply from [`ServeSession::answer_line`] /
/// [`ServeSession::answer_doc`].
#[derive(Debug, Clone, PartialEq)]
pub enum SessionReply {
    /// A prediction or error response to write back.
    Answer(Response),
    /// A control-plane reply document to write back.
    Control(Json),
    /// The drain reply: write it back, then stop reading. Carries the
    /// final [`SERVE_STATS_SCHEMA`] document.
    Shutdown(Json),
}

impl SessionReply {
    /// The reply as a wire document.
    pub fn to_json(&self) -> Json {
        match self {
            SessionReply::Answer(r) => r.to_json(),
            SessionReply::Control(doc) | SessionReply::Shutdown(doc) => doc.clone(),
        }
    }
}

/// One serving session: the model, the options, and the counters. Both
/// transports and the serve-bench replay drive this state machine, so
/// retry/fault/limit behavior cannot drift between them.
#[derive(Debug)]
pub struct ServeSession<'m> {
    model: &'m ServeModel,
    opts: ServeOptions,
    stats: ServeStats,
    seq: u64,
}

impl<'m> ServeSession<'m> {
    /// Starts a session over `model` with `opts`.
    pub fn new(model: &'m ServeModel, opts: ServeOptions) -> Self {
        ServeSession {
            model,
            opts,
            stats: ServeStats::default(),
            seq: 0,
        }
    }

    /// The session's options.
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// Counters so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Consumes the session, returning its counters.
    pub fn into_stats(self) -> ServeStats {
        self.stats
    }

    /// The current [`SERVE_STATS_SCHEMA`] document.
    pub fn stats_doc(&self) -> Json {
        serve_stats_to_json(self.model, &self.stats)
    }

    /// Answers one request line. Blank lines are skipped (`None`); an
    /// unparseable line is answered with a [`code::DECODE`] error.
    pub fn answer_line(&mut self, line: &str) -> Option<SessionReply> {
        if line.trim().is_empty() {
            return None;
        }
        match Json::parse(line) {
            Ok(doc) => Some(self.answer_doc(&doc)),
            Err(e) => {
                let started = Instant::now();
                let r = Response::error(
                    Json::Null,
                    code::DECODE,
                    format!("request is not valid JSON: {e}"),
                );
                self.seq += 1;
                self.stats.record(&r, started);
                Some(SessionReply::Answer(r))
            }
        }
    }

    /// Answers one parsed request document (control or prediction).
    pub fn answer_doc(&mut self, doc: &Json) -> SessionReply {
        if let Some(what) = doc.get("control").and_then(Json::as_str) {
            return self.answer_control(what);
        }
        let started = Instant::now();
        let response = self.answer_request(doc);
        self.seq += 1;
        self.stats.record(&response, started);
        SessionReply::Answer(response)
    }

    /// Answers a defective transport read (oversized frame, overlong
    /// line, torn frame) as a structured error response.
    pub fn answer_defect(&mut self, defect_code: &'static str, message: String) -> SessionReply {
        let started = Instant::now();
        let r = Response::error(Json::Null, defect_code, message);
        self.seq += 1;
        self.stats.record(&r, started);
        SessionReply::Answer(r)
    }

    fn answer_control(&mut self, what: &str) -> SessionReply {
        self.stats.controls += 1;
        match what {
            "ping" => SessionReply::Control(Json::obj([
                ("control", Json::Str("pong".into())),
                ("model", Json::Str(self.model.name().into())),
                ("kind", Json::Str(self.model.artifact().kind().into())),
                ("fingerprint", Json::Str(self.model.fingerprint_hex())),
            ])),
            "stats" => SessionReply::Control(self.stats_doc()),
            "shutdown" => {
                self.stats.drained = true;
                SessionReply::Shutdown(self.stats_doc())
            }
            other => SessionReply::Answer(Response::error(
                Json::Null,
                code::DECODE,
                format!("unknown control request {other:?}"),
            )),
        }
    }

    /// The hardened per-request path: bounded retries over the three
    /// serve fault sites, `catch_unwind` around the prediction, and the
    /// batch admission limit. Predictions are pure, so a retried
    /// request answers bit-identically to an unfaulted one.
    fn answer_request(&mut self, doc: &Json) -> Response {
        let id = || doc.get("id").cloned().unwrap_or(Json::Null);
        let seq = self.seq;
        for attempt in 0..=self.opts.retry_budget {
            if attempt > 0 {
                self.stats.retries += 1;
            }
            let key = fault_key(&[seq, u64::from(attempt)]);
            if let Err(f) = self.opts.faults.check(site::SERVE_DECODE, key) {
                self.stats.record_fault(f.site);
                continue;
            }
            let request = match Request::from_json(doc) {
                Ok(r) => r,
                Err(message) => return Response::error(id(), code::DECODE, message),
            };
            let rows = match &request {
                Request::Features { rows, .. } => rows.len(),
                Request::Loops { loops, .. } => loops.len(),
            };
            if rows > self.opts.limits.max_batch {
                return Response::error(
                    id(),
                    code::LIMIT_BATCH,
                    format!(
                        "batch carries {rows} rows, over the {}-row cap",
                        self.opts.limits.max_batch
                    ),
                );
            }
            let model = self.model;
            let faults = self.opts.faults.clone();
            let predicted = catch_unwind(AssertUnwindSafe(move || {
                faults.trip(site::SERVE_PREDICT, key);
                match request {
                    Request::Features { id, rows } => {
                        model.predict_rows(&rows).map(|factors| (id, factors))
                    }
                    Request::Loops { id, loops } => Ok((id, model.choose_loops(&loops))),
                }
            }));
            match predicted {
                Ok(Ok((id, factors))) => {
                    if let Err(f) = self.opts.faults.check(site::SERVE_WRITE, key) {
                        self.stats.record_fault(f.site);
                        continue;
                    }
                    return Response::Factors { id, factors };
                }
                Ok(Err(message)) => return Response::error(id(), code::PREDICT, message),
                Err(payload) => {
                    if let Some(f) = payload.downcast_ref::<InjectedFault>() {
                        self.stats.record_fault(f.site);
                        continue;
                    }
                    return Response::error(
                        id(),
                        code::PANIC,
                        format!("prediction panicked: {}", panic_text(&payload)),
                    );
                }
            }
        }
        Response::error(
            id(),
            code::FAULT,
            format!(
                "request {seq} exhausted {} attempt(s) under injected faults; retryable",
                self.opts.retry_budget + 1
            ),
        )
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Renders the [`SERVE_STATS_SCHEMA`] document: model identity (name,
/// kind, artifact fingerprint) plus every robustness counter.
pub fn serve_stats_to_json(model: &ServeModel, stats: &ServeStats) -> Json {
    Json::obj([
        ("schema", Json::Str(SERVE_STATS_SCHEMA.into())),
        ("model", Json::Str(model.name().into())),
        ("kind", Json::Str(model.artifact().kind().into())),
        ("fingerprint", Json::Str(model.fingerprint_hex())),
        ("served", Json::Num(stats.batches as f64)),
        ("predictions", Json::Num(stats.predictions as f64)),
        ("errors", Json::Num(stats.errors as f64)),
        ("retries", Json::Num(stats.retries as f64)),
        ("controls", Json::Num(stats.controls as f64)),
        (
            "faults",
            Json::Obj(
                stats
                    .faults
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
                    .collect(),
            ),
        ),
        ("drained", Json::Bool(stats.drained)),
    ])
}

/// Validates a [`SERVE_STATS_SCHEMA`] document: schema tag, model
/// identity fields, and every counter a whole non-negative number.
pub fn validate_serve_stats(doc: &Json) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(SERVE_STATS_SCHEMA) {
        return Err(format!("not a {SERVE_STATS_SCHEMA} document"));
    }
    for key in ["model", "kind"] {
        if doc.get(key).and_then(Json::as_str).is_none() {
            return Err(format!("missing string field {key:?}"));
        }
    }
    match doc.get("fingerprint").and_then(Json::as_str) {
        Some(f) if f.starts_with("0x") && f.len() == 18 => {}
        other => return Err(format!("bad fingerprint field {other:?}")),
    }
    for key in ["served", "predictions", "errors", "retries", "controls"] {
        match doc.get(key).and_then(Json::as_num) {
            Some(v) if v >= 0.0 && v.fract() == 0.0 => {}
            _ => return Err(format!("counter {key:?} is not a whole number")),
        }
    }
    let Some(Json::Obj(faults)) = doc.get("faults") else {
        return Err("faults is not an object".into());
    };
    for (site, v) in faults {
        match v.as_num() {
            Some(n) if n >= 0.0 && n.fract() == 0.0 => {}
            _ => return Err(format!("fault counter {site:?} is not a whole number")),
        }
    }
    match doc.get("drained") {
        Some(Json::Bool(_)) => Ok(()),
        _ => Err("missing bool field \"drained\"".into()),
    }
}

/// Serves newline-delimited JSON requests under `opts` until EOF or a
/// shutdown sentinel. Blank lines are skipped; unparseable or overlong
/// lines are answered with structured error documents and the loop
/// keeps serving. Only a genuinely unreadable/unwritable pipe is a
/// transport error.
pub fn serve_lines_with<R: BufRead, W: Write>(
    model: &ServeModel,
    opts: &ServeOptions,
    mut reader: R,
    mut writer: W,
) -> Result<ServeStats, String> {
    let mut session = ServeSession::new(model, opts.clone());
    let write_reply = |reply: &SessionReply, w: &mut W| -> Result<(), String> {
        writeln!(w, "{}", reply.to_json()).map_err(|e| format!("response write failed: {e}"))?;
        w.flush().map_err(|e| format!("response flush failed: {e}"))
    };
    while let Some(line) = read_line_bounded(&mut reader, &opts.limits)? {
        let reply = match line {
            Line::Text(text) => match session.answer_line(&text) {
                Some(r) => r,
                None => continue,
            },
            Line::Overlong { length } => session.answer_defect(
                code::LIMIT_LINE,
                format!(
                    "request line of {length} bytes exceeds the {}-byte cap",
                    opts.limits.max_line
                ),
            ),
        };
        write_reply(&reply, &mut writer)?;
        if matches!(reply, SessionReply::Shutdown(_)) {
            break;
        }
    }
    Ok(session.into_stats())
}

/// Serves length-prefixed frames under `opts` until EOF or a shutdown
/// sentinel. Oversized, torn or undecodable frames are answered with
/// structured error frames and the transport resyncs.
pub fn serve_framed_with<R: Read, W: Write>(
    model: &ServeModel,
    opts: &ServeOptions,
    mut reader: R,
    mut writer: W,
) -> Result<ServeStats, String> {
    let mut session = ServeSession::new(model, opts.clone());
    while let Some(frame) = read_frame_bounded(&mut reader, &opts.limits)? {
        let reply = match frame {
            Frame::Doc(doc) => session.answer_doc(&doc),
            Frame::Defect { code, message } => session.answer_defect(code, message),
        };
        write_frame(&mut writer, &reply.to_json())
            .map_err(|e| format!("response write failed: {e}"))?;
        if matches!(reply, SessionReply::Shutdown(_)) {
            break;
        }
    }
    Ok(session.into_stats())
}

/// [`serve_lines_with`] under the environment's configuration
/// (`LOOPML_SERVE_MAX_*`, `LOOPML_FAULTS`, `LOOPML_SERVE_RETRIES`).
pub fn serve_lines<R: BufRead, W: Write>(
    model: &ServeModel,
    reader: R,
    writer: W,
) -> Result<ServeStats, String> {
    serve_lines_with(model, &ServeOptions::from_env(), reader, writer)
}

/// [`serve_framed_with`] under the environment's configuration.
pub fn serve_framed<R: Read, W: Write>(
    model: &ServeModel,
    reader: R,
    writer: W,
) -> Result<ServeStats, String> {
    serve_framed_with(model, &ServeOptions::from_env(), reader, writer)
}
