//! The daemon loop: read a request, answer a batch, repeat until EOF.
//!
//! Two transports share one dispatch path: newline-delimited JSON
//! (trivially driven from a shell) and 4-byte big-endian
//! length-prefixed frames (for clients embedding the daemon where
//! newline framing is fragile). Per-request failures are answered with
//! an error document and the loop keeps serving; only transport-level
//! failures (a torn frame, an unwritable pipe) stop the daemon.

use std::io::{BufRead, Read, Write};
use std::time::Instant;

use loopml_rt::Json;

use crate::model::ServeModel;
use crate::wire::{read_frame, write_frame, Request, Response};

/// What a daemon run served, for the bench harness: batch count,
/// prediction count, and per-batch wall-clock latencies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests answered (including error answers).
    pub batches: usize,
    /// Total predictions returned across all batches.
    pub predictions: usize,
    /// Wall-clock milliseconds per answered batch, in arrival order.
    pub latencies_ms: Vec<f64>,
}

impl ServeStats {
    fn record(&mut self, predictions: usize, started: Instant) {
        self.batches += 1;
        self.predictions += predictions;
        self.latencies_ms
            .push(started.elapsed().as_secs_f64() * 1e3);
    }
}

/// Answers one parsed request document.
fn answer(model: &ServeModel, doc: &Json) -> Response {
    match Request::from_json(doc) {
        Ok(Request::Features { id, rows }) => match model.predict_rows(&rows) {
            Ok(factors) => Response::Factors { id, factors },
            Err(message) => Response::Error { id, message },
        },
        Ok(Request::Loops { id, loops }) => Response::Factors {
            factors: model.choose_loops(&loops),
            id,
        },
        Err(message) => Response::Error {
            id: doc.get("id").cloned().unwrap_or(Json::Null),
            message,
        },
    }
}

fn response_len(r: &Response) -> usize {
    match r {
        Response::Factors { factors, .. } => factors.len(),
        Response::Error { .. } => 0,
    }
}

/// Serves newline-delimited JSON requests until EOF. Blank lines are
/// skipped; an unparseable line is answered with an error document.
pub fn serve_lines<R: BufRead, W: Write>(
    model: &ServeModel,
    reader: R,
    mut writer: W,
) -> Result<ServeStats, String> {
    let mut stats = ServeStats::default();
    for line in reader.lines() {
        let line = line.map_err(|e| format!("request read failed: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let response = match Json::parse(&line) {
            Ok(doc) => answer(model, &doc),
            Err(e) => Response::Error {
                id: Json::Null,
                message: format!("request is not valid JSON: {e}"),
            },
        };
        writeln!(writer, "{}", response.to_json())
            .map_err(|e| format!("response write failed: {e}"))?;
        writer
            .flush()
            .map_err(|e| format!("response flush failed: {e}"))?;
        stats.record(response_len(&response), started);
    }
    Ok(stats)
}

/// Serves length-prefixed frames until a clean EOF at a frame
/// boundary. A torn frame is a transport error and stops the daemon.
pub fn serve_framed<R: Read, W: Write>(
    model: &ServeModel,
    mut reader: R,
    mut writer: W,
) -> Result<ServeStats, String> {
    let mut stats = ServeStats::default();
    while let Some(doc) = read_frame(&mut reader)? {
        let started = Instant::now();
        let response = answer(model, &doc);
        write_frame(&mut writer, &response.to_json())
            .map_err(|e| format!("response write failed: {e}"))?;
        stats.record(response_len(&response), started);
    }
    Ok(stats)
}
