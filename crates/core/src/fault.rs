//! Fault taxonomy and degradation accounting for the labeling pipeline.
//!
//! The paper's dataset exists because its measurement pipeline survived
//! a hostile world: noisy timers, crashing benchmarks, an operating
//! system with opinions. This module is the bookkeeping half of our
//! survival machinery — a structured [`LabelError`] taxonomy instead of
//! hot-path panics, [`QuarantineEntry`] records for work that exhausted
//! its retry budget, and a machine-readable [`DegradationReport`] so a
//! degraded run can never pass for a clean one.

use std::collections::BTreeMap;
use std::fmt;

use loopml_rt::Json;

/// Why a labeling attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelError {
    /// A synthetic fault from the fault plane (`LOOPML_FAULTS`).
    Injected {
        /// Injection site that tripped.
        site: &'static str,
        /// Attempt number the fault landed on (0 = first try).
        attempt: u32,
    },
    /// A measurement came back NaN or infinite — the structured
    /// replacement for the old `expect("finite")` hot-path panic.
    NonFinite {
        /// Unroll factor whose measurement was non-finite.
        factor: u32,
    },
    /// A panic captured by the isolation layer.
    Panic {
        /// Rendered panic message.
        message: String,
    },
}

impl LabelError {
    /// The injection site, when this error is synthetic.
    pub fn site(&self) -> Option<&'static str> {
        match self {
            LabelError::Injected { site, .. } => Some(site),
            _ => None,
        }
    }

    /// The key this error counts under in a fault-site histogram.
    pub fn site_key(&self) -> &'static str {
        match self {
            LabelError::Injected { site, .. } => site,
            LabelError::NonFinite { .. } => "non-finite",
            LabelError::Panic { .. } => "panic",
        }
    }
}

impl fmt::Display for LabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelError::Injected { site, attempt } => {
                write!(f, "injected fault at {site} (attempt {attempt})")
            }
            LabelError::NonFinite { factor } => {
                write!(f, "non-finite measurement at factor {factor}")
            }
            LabelError::Panic { message } => write!(f, "panic: {message}"),
        }
    }
}

/// Granularity of a quarantined work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineScope {
    /// One loop was dropped; the rest of its benchmark survived.
    Loop,
    /// A whole benchmark was dropped (its labeling crashed).
    Benchmark,
}

impl QuarantineScope {
    fn as_str(self) -> &'static str {
        match self {
            QuarantineScope::Loop => "loop",
            QuarantineScope::Benchmark => "benchmark",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "loop" => Some(QuarantineScope::Loop),
            "benchmark" => Some(QuarantineScope::Benchmark),
            _ => None,
        }
    }
}

/// One work item excluded from the corpus, with the recorded reason.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineEntry {
    /// Whether a loop or a whole benchmark was dropped.
    pub scope: QuarantineScope,
    /// Index of the benchmark the item belongs to.
    pub benchmark: usize,
    /// Loop name (`Loop` scope) or benchmark name (`Benchmark` scope).
    pub name: String,
    /// Human-readable reason (the final [`LabelError`] or panic).
    pub reason: String,
    /// Injection site, when the failure was synthetic.
    pub site: Option<String>,
    /// Attempts consumed before giving up.
    pub attempts: u32,
}

impl QuarantineEntry {
    /// Serializes to a JSON value.
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("scope".into(), Json::Str(self.scope.as_str().into()));
        m.insert("benchmark".into(), Json::Num(self.benchmark as f64));
        m.insert("name".into(), Json::Str(self.name.clone()));
        m.insert("reason".into(), Json::Str(self.reason.clone()));
        m.insert(
            "site".into(),
            match &self.site {
                Some(s) => Json::Str(s.clone()),
                None => Json::Null,
            },
        );
        m.insert("attempts".into(), Json::Num(f64::from(self.attempts)));
        Json::Obj(m)
    }

    /// Parses a value written by [`QuarantineEntry::to_json`].
    pub fn from_json(v: &Json) -> Option<QuarantineEntry> {
        Some(QuarantineEntry {
            scope: QuarantineScope::parse(v.get("scope")?.as_str()?)?,
            benchmark: v.get("benchmark")?.as_num()? as usize,
            name: v.get("name")?.as_str()?.to_string(),
            reason: v.get("reason")?.as_str()?.to_string(),
            site: match v.get("site")? {
                Json::Null => None,
                Json::Str(s) => Some(s.clone()),
                _ => return None,
            },
            attempts: v.get("attempts")?.as_num()? as u32,
        })
    }
}

/// The outcome of fault-tolerantly labeling one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkOutcome {
    /// Index of the benchmark within the suite.
    pub benchmark: usize,
    /// Benchmark name (checked on checkpoint resume).
    pub name: String,
    /// Loops that survived the paper's filters.
    pub labeled: Vec<crate::label::LabeledLoop>,
    /// Attempts consumed per labeled loop, aligned with `labeled`
    /// (0 = succeeded on the first try, untouched by any fault).
    pub attempts: Vec<u32>,
    /// Loops dropped after exhausting the retry budget.
    pub quarantined: Vec<QuarantineEntry>,
    /// Faults observed while labeling, by site (every faulted attempt
    /// counts once).
    pub fault_sites: BTreeMap<String, usize>,
}

/// Machine-readable summary of how degraded a labeling run was.
///
/// Written next to `BENCH_ml.json` as `LABEL_degradation.json` by
/// `repro label`. Everything serialized here is a pure function of the
/// run's inputs (seed, corpus, fault plane), so a resumed run emits a
/// byte-identical report; the operational [`resumed`](Self::resumed)
/// counter is deliberately left out of the JSON for that reason.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// Benchmarks in the suite.
    pub benchmarks: usize,
    /// Benchmarks that completed labeling (possibly with loop-level
    /// quarantines).
    pub completed: usize,
    /// Loops labeled successfully.
    pub labeled: usize,
    /// Every quarantined work item, in suite order.
    pub quarantined: Vec<QuarantineEntry>,
    /// Histogram of attempts consumed by *successful* loops
    /// (`0 → n` means `n` loops needed no retry).
    pub retry_histogram: BTreeMap<u32, usize>,
    /// Faults observed, by injection site (plus `"panic"` and
    /// `"non-finite"` for genuine failures).
    pub fault_sites: BTreeMap<String, usize>,
    /// Benchmarks restored from checkpoints instead of relabeled
    /// (operational; not serialized).
    pub resumed: usize,
}

/// Schema tag stamped into every degradation report.
pub const DEGRADATION_SCHEMA: &str = "loopml/label-degradation/v1";

impl DegradationReport {
    /// Quarantined share of all finished work items (labeled +
    /// quarantined). A whole-benchmark quarantine counts once.
    pub fn quarantine_rate(&self) -> f64 {
        let total = self.labeled + self.quarantined.len();
        if total == 0 {
            return 0.0;
        }
        self.quarantined.len() as f64 / total as f64
    }

    /// Serializes the report (see the type docs for what is included).
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("schema".into(), Json::Str(DEGRADATION_SCHEMA.into()));
        m.insert("benchmarks".into(), Json::Num(self.benchmarks as f64));
        m.insert("completed".into(), Json::Num(self.completed as f64));
        m.insert("labeled".into(), Json::Num(self.labeled as f64));
        m.insert(
            "quarantined".into(),
            Json::Num(self.quarantined.len() as f64),
        );
        m.insert("quarantine_rate".into(), Json::Num(self.quarantine_rate()));
        m.insert(
            "quarantine".into(),
            Json::Arr(
                self.quarantined
                    .iter()
                    .map(QuarantineEntry::to_json)
                    .collect(),
            ),
        );
        m.insert(
            "retry_histogram".into(),
            Json::Obj(
                self.retry_histogram
                    .iter()
                    .map(|(k, v)| (k.to_string(), Json::Num(*v as f64)))
                    .collect(),
            ),
        );
        m.insert(
            "fault_sites".into(),
            Json::Obj(
                self.fault_sites
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        );
        Json::Obj(m)
    }

    /// Parses a value written by [`DegradationReport::to_json`].
    /// `resumed` is operational state that is never serialized, so it
    /// comes back as 0.
    pub fn from_json(v: &Json) -> Option<DegradationReport> {
        if v.get("schema")?.as_str()? != DEGRADATION_SCHEMA {
            return None;
        }
        let quarantined: Vec<QuarantineEntry> = v
            .get("quarantine")?
            .as_arr()?
            .iter()
            .map(QuarantineEntry::from_json)
            .collect::<Option<_>>()?;
        let map_counts = |key: &str| -> Option<Vec<(String, usize)>> {
            match v.get(key)? {
                Json::Obj(m) => m
                    .iter()
                    .map(|(k, c)| Some((k.clone(), c.as_num()? as usize)))
                    .collect(),
                _ => None,
            }
        };
        let retry_histogram: BTreeMap<u32, usize> = map_counts("retry_histogram")?
            .into_iter()
            .map(|(k, c)| Some((k.parse().ok()?, c)))
            .collect::<Option<_>>()?;
        let fault_sites: BTreeMap<String, usize> = map_counts("fault_sites")?.into_iter().collect();
        Some(DegradationReport {
            benchmarks: v.get("benchmarks")?.as_num()? as usize,
            completed: v.get("completed")?.as_num()? as usize,
            labeled: v.get("labeled")?.as_num()? as usize,
            quarantined,
            retry_histogram,
            fault_sites,
            resumed: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> QuarantineEntry {
        QuarantineEntry {
            scope: QuarantineScope::Loop,
            benchmark: 3,
            name: "171.swim/loop004_stencil".into(),
            reason: "injected fault at label.measure (attempt 3)".into(),
            site: Some("label.measure".into()),
            attempts: 4,
        }
    }

    #[test]
    fn quarantine_entry_round_trips() {
        let e = entry();
        assert_eq!(QuarantineEntry::from_json(&e.to_json()), Some(e.clone()));
        let mut b = e;
        b.scope = QuarantineScope::Benchmark;
        b.site = None;
        assert_eq!(QuarantineEntry::from_json(&b.to_json()), Some(b));
    }

    #[test]
    fn degradation_report_serializes_and_rates() {
        let r = DegradationReport {
            benchmarks: 10,
            completed: 9,
            labeled: 95,
            quarantined: vec![entry()],
            retry_histogram: [(0u32, 90usize), (1, 5)].into_iter().collect(),
            fault_sites: [("label.measure".to_string(), 7usize)]
                .into_iter()
                .collect(),
            resumed: 4,
        };
        assert!((r.quarantine_rate() - 1.0 / 96.0).abs() < 1e-12);
        let doc = r.to_json();
        let parsed = Json::parse(&doc.to_string()).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(DEGRADATION_SCHEMA)
        );
        assert_eq!(parsed.get("labeled").and_then(Json::as_num), Some(95.0));
        // `resumed` is operational state, not data provenance: a resumed
        // run must emit a byte-identical report.
        assert!(parsed.get("resumed").is_none());
    }

    #[test]
    fn label_error_display_and_sites() {
        let e = LabelError::Injected {
            site: "label.measure",
            attempt: 2,
        };
        assert_eq!(e.site(), Some("label.measure"));
        assert!(e.to_string().contains("attempt 2"));
        assert_eq!(LabelError::NonFinite { factor: 3 }.site_key(), "non-finite");
        assert_eq!(
            LabelError::Panic {
                message: "x".into()
            }
            .site_key(),
            "panic"
        );
    }
}
