//! One-call pipeline assembly: corpus → label → feature-select → train
//! → evaluate, with the paper's defaults baked in.
//!
//! [`PipelineBuilder`] replaces the hand-wired sequence of
//! `full_suite` / `label_suite` / `to_dataset` / `informative_features`
//! / classifier training that every example and experiment used to
//! repeat. The finished [`Pipeline`] owns the suite, the labeled loops
//! and both datasets, and turns any [`Classifier`] into a deployable
//! [`LearnedHeuristic`] with one call.
//!
//! ```
//! use loopml::PipelineBuilder;
//! use loopml_corpus::SuiteConfig;
//! use loopml_ml::{NearNeighbors, DEFAULT_RADIUS};
//!
//! let pipeline = PipelineBuilder::paper()
//!     .suite_config(SuiteConfig { min_loops: 8, max_loops: 10, ..SuiteConfig::default() })
//!     .take_benchmarks(6)
//!     .build();
//! let nn = pipeline.heuristic("NN", Box::new(NearNeighbors::new(DEFAULT_RADIUS)));
//! assert_eq!(loopml::UnrollHeuristic::name(&nn), "NN");
//! ```

use loopml_corpus::{full_suite, SuiteConfig};
use loopml_ir::Benchmark;
use loopml_machine::SwpMode;
use loopml_ml::{
    Classifier, CvResult, Dataset, ForestGrid, ForestParams, MlpGrid, MlpParams, SvmGrid,
    SvmParams, SweepConfig, SweepReport, TreeGrid, TreeParams, DEFAULT_RADIUS,
};

use crate::artifact::{model_fingerprint, ModelArtifact};
use crate::evaluate::EvalConfig;
use crate::fault::DegradationReport;
use crate::heuristics::LearnedHeuristic;
use crate::label::{
    label_suite, label_suite_resilient, LabelConfig, LabeledLoop, ResilienceConfig,
};
use crate::pipeline::{benchmark_groups, informative_features, to_dataset};

/// Typed run configuration for [`PipelineBuilder`], consumed once at
/// [`build`](PipelineBuilder::build).
///
/// This replaces the builder's older accumulated toggles — `.resilient()`
/// arming the fault-tolerant path, `.tune_svm()` / `.tune_nn()` arming
/// sweeps, lint levels riding in via the environment — with one struct
/// that states the whole run policy in a single place. The default is
/// the paper's plain run: no resilience wrapper (unless `LOOPML_FAULTS`
/// forces it), no tuning, lint as the label config armed it.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Label through the fault-tolerant path with this policy. `None`
    /// still auto-switches to resilient labeling when `LOOPML_FAULTS`
    /// is active, so chaos runs never crash the builder.
    pub resilience: Option<ResilienceConfig>,
    /// Sweep the SVM gamma × C grid during `build`;
    /// [`Pipeline::svm_params`] then returns the winner.
    pub tune_svm: Option<SvmGrid>,
    /// Sweep the NN neighborhood radius during `build`;
    /// [`Pipeline::nn_radius`] then returns the winner.
    pub tune_nn: Option<Vec<f64>>,
    /// Sweep the decision-tree depth × min-leaf grid during `build`;
    /// [`Pipeline::tree_params`] then returns the winner.
    pub tune_tree: Option<TreeGrid>,
    /// Sweep the bagged-forest ensemble sizes during `build`;
    /// [`Pipeline::forest_params`] then returns the winner.
    pub tune_forest: Option<ForestGrid>,
    /// Sweep the MLP width × learning-rate grid during `build`;
    /// [`Pipeline::mlp_params`] then returns the winner.
    pub tune_mlp: Option<MlpGrid>,
    /// Override the lint enforcement level (normally armed by the label
    /// config, which reads `LOOPML_LINT`).
    pub lint: Option<loopml_lint::LintLevel>,
    /// Append the legality prover's feature block (alias-class counts,
    /// min proven dependence distance, proof status) to every example,
    /// widening the dataset from 38 to 38 + [`NUM_PROVER_FEATURES`]
    /// columns. Off by default: the paper's experiments use its 38.
    ///
    /// [`NUM_PROVER_FEATURES`]: crate::features::NUM_PROVER_FEATURES
    pub prover_features: bool,
}

/// Builds a [`Pipeline`] from the paper's defaults, with every stage
/// overridable.
#[derive(Debug, Clone)]
pub struct PipelineBuilder {
    suite_config: SuiteConfig,
    swp: SwpMode,
    label_config: Option<LabelConfig>,
    eval_config: Option<EvalConfig>,
    feature_count: Option<usize>,
    suite: Option<Vec<Benchmark>>,
    take: Option<usize>,
    config: PipelineConfig,
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        PipelineBuilder::paper()
    }
}

impl PipelineBuilder {
    /// The paper's configuration: the full 72-benchmark corpus, labeling
    /// with measurement noise, software pipelining disabled (Figure 4's
    /// regime), and the §7 informative feature subset (top 5 by mutual
    /// information ∪ top 5 by greedy selection).
    pub fn paper() -> Self {
        PipelineBuilder {
            suite_config: SuiteConfig::default(),
            swp: SwpMode::Disabled,
            label_config: None,
            eval_config: None,
            feature_count: Some(5),
            suite: None,
            take: None,
            config: PipelineConfig::default(),
        }
    }

    /// Sets the whole run policy in one place (resilience, tuning,
    /// lint). Replaces any previously accumulated configuration,
    /// including from the deprecated per-toggle methods.
    pub fn configure(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the software pipelining regime (Figure 4: disabled; Figure
    /// 5: enabled). Applies to the default label and eval configs; an
    /// explicit [`label_config`](Self::label_config) wins.
    pub fn swp(mut self, swp: SwpMode) -> Self {
        self.swp = swp;
        self
    }

    /// Overrides the corpus synthesis configuration.
    pub fn suite_config(mut self, cfg: SuiteConfig) -> Self {
        self.suite_config = cfg;
        self
    }

    /// Uses a pre-built suite instead of synthesizing one.
    pub fn suite(mut self, suite: Vec<Benchmark>) -> Self {
        self.suite = Some(suite);
        self
    }

    /// Keeps only the first `n` benchmarks of the suite (small smoke
    /// runs).
    pub fn take_benchmarks(mut self, n: usize) -> Self {
        self.take = Some(n);
        self
    }

    /// Overrides the labeling configuration entirely.
    pub fn label_config(mut self, cfg: LabelConfig) -> Self {
        self.label_config = Some(cfg);
        self
    }

    /// Overrides the evaluation configuration entirely.
    pub fn eval_config(mut self, cfg: EvalConfig) -> Self {
        self.eval_config = Some(cfg);
        self
    }

    /// Disables measurement noise in labeling and evaluation
    /// (deterministic-by-construction runs and tests).
    pub fn exact(mut self) -> Self {
        let mut lc = self
            .label_config
            .unwrap_or_else(|| LabelConfig::paper(self.swp));
        lc.noise = loopml_machine::NoiseModel::exact();
        self.label_config = Some(lc);
        self.eval_config = Some(EvalConfig::exact(self.swp));
        self
    }

    /// Selects the union of the top `k` features by mutual information
    /// and greedy forward selection (the default, with `k = 5`).
    pub fn informative_features(mut self, k: usize) -> Self {
        self.feature_count = Some(k);
        self
    }

    /// Trains on all 38 features, skipping feature selection.
    pub fn all_features(mut self) -> Self {
        self.feature_count = None;
        self
    }

    /// Labels through the fault-tolerant path
    /// ([`label_suite_resilient`]): retries, quarantine and (when
    /// configured) checkpointing, with the degradation accounting kept
    /// on the pipeline. Without this call, `build` still switches to the
    /// resilient path automatically when `LOOPML_FAULTS` is active, so
    /// chaos runs never crash the builder.
    #[deprecated(note = "set `PipelineConfig::resilience` via `configure`")]
    pub fn resilient(mut self, cfg: ResilienceConfig) -> Self {
        self.config.resilience = Some(cfg);
        self
    }

    /// Sweeps the SVM gamma × C grid by leave-one-benchmark-out accuracy
    /// during `build` (one shared distance matrix, see
    /// [`loopml_ml::sweep`]); [`Pipeline::svm_params`] then returns the
    /// winner instead of the paper defaults.
    #[deprecated(note = "set `PipelineConfig::tune_svm` via `configure`")]
    pub fn tune_svm(mut self, grid: SvmGrid) -> Self {
        self.config.tune_svm = Some(grid);
        self
    }

    /// Sweeps the NN neighborhood radius over `radii` by
    /// leave-one-benchmark-out accuracy during `build`;
    /// [`Pipeline::nn_radius`] then returns the winner instead of the
    /// paper's 0.3.
    #[deprecated(note = "set `PipelineConfig::tune_nn` via `configure`")]
    pub fn tune_nn(mut self, radii: Vec<f64>) -> Self {
        self.config.tune_nn = Some(radii);
        self
    }

    /// Synthesizes, labels, featurizes and selects.
    ///
    /// # Panics
    ///
    /// Panics if labeling produces no training examples (a corpus or
    /// filter misconfiguration).
    pub fn build(self) -> Pipeline {
        let mut suite = self.suite.unwrap_or_else(|| full_suite(&self.suite_config));
        if let Some(n) = self.take {
            suite.truncate(n);
        }
        let mut label_config = self
            .label_config
            .unwrap_or_else(|| LabelConfig::paper(self.swp));
        if let Some(level) = self.config.lint {
            label_config.lint = level;
        }
        let eval_config = self
            .eval_config
            .unwrap_or_else(|| EvalConfig::paper(self.swp));
        let resilience = self.config.resilience.or_else(|| {
            loopml_rt::FaultPlane::env_or_disabled()
                .is_active()
                .then(ResilienceConfig::default)
        });
        let (mut labeled, degradation) = match resilience {
            Some(res) => {
                let run = label_suite_resilient(&suite, &label_config, &res);
                if label_config.lint.is_enabled() {
                    let mut lint = loopml_lint::Report::with_env_suppressions();
                    lint.merge(loopml_lint::lint_quarantine(
                        run.report.labeled,
                        run.report.quarantined.len(),
                    ));
                    lint.enforce(label_config.lint, "labeling run");
                }
                (run.labeled, Some(run.report))
            }
            None => (label_suite(&suite, &label_config), None),
        };
        assert!(
            !labeled.is_empty(),
            "labeling produced no training examples"
        );
        if self.config.prover_features {
            // Loop names are unique across the corpus, so a name map
            // recovers each example's IR for the prover block.
            let by_name: std::collections::HashMap<&str, &loopml_ir::Loop> = suite
                .iter()
                .flat_map(|b| b.loops.iter())
                .map(|w| (w.body.name.as_str(), &w.body))
                .collect();
            for ex in &mut labeled {
                let l = by_name
                    .get(ex.name.as_str())
                    .expect("labeled loop missing from suite");
                ex.features.extend(crate::features::extract_prover(l));
            }
        }
        let full_dataset = to_dataset(&labeled);
        let feature_subset = self
            .feature_count
            .map(|k| informative_features(&full_dataset, k));
        let dataset = match &feature_subset {
            Some(cols) => full_dataset.select_features(cols),
            None => full_dataset.clone(),
        };
        let groups = benchmark_groups(&labeled);
        if label_config.lint.is_enabled() {
            let mut lint = loopml_lint::Report::with_env_suppressions();
            lint.merge(loopml_lint::lint_dataset(&full_dataset, Some(&groups)));
            lint.enforce(label_config.lint, "training dataset");
        }
        let tune_any = self.config.tune_svm.is_some()
            || self.config.tune_nn.is_some()
            || self.config.tune_tree.is_some()
            || self.config.tune_forest.is_some()
            || self.config.tune_mlp.is_some();
        let sweep = if tune_any {
            // A missing axis sweeps nothing on that family and keeps its
            // paper default (empty grids select the fallback).
            let cfg = SweepConfig {
                svm: self.config.tune_svm.unwrap_or(SvmGrid {
                    gammas: Vec::new(),
                    cs: Vec::new(),
                    ..SvmGrid::default()
                }),
                radii: self.config.tune_nn.unwrap_or_default(),
                tree: self.config.tune_tree.unwrap_or(TreeGrid {
                    max_depths: Vec::new(),
                    min_leafs: Vec::new(),
                }),
                forest: self.config.tune_forest.unwrap_or(ForestGrid {
                    sizes: Vec::new(),
                    ..ForestGrid::default()
                }),
                mlp: self.config.tune_mlp.unwrap_or(MlpGrid {
                    hiddens: Vec::new(),
                    lrs: Vec::new(),
                    ..MlpGrid::default()
                }),
            };
            Some(loopml_ml::sweep(&dataset, &groups, &cfg))
        } else {
            None
        };
        Pipeline {
            suite,
            labeled,
            full_dataset,
            dataset,
            feature_subset,
            groups,
            label_config,
            eval_config,
            degradation,
            sweep,
        }
    }
}

/// The assembled pipeline: everything downstream experiments need,
/// computed once.
#[derive(Debug)]
pub struct Pipeline {
    /// The synthesized (or supplied) benchmark suite.
    pub suite: Vec<Benchmark>,
    /// Labeled loops that survived the paper's filters.
    pub labeled: Vec<LabeledLoop>,
    /// Dataset over all 38 features.
    pub full_dataset: Dataset,
    /// Training dataset (projected onto the informative subset, or the
    /// full 38 features).
    pub dataset: Dataset,
    /// Columns of the informative subset, `None` when training on all
    /// features.
    pub feature_subset: Option<Vec<usize>>,
    /// Benchmark index of each example (leave-one-benchmark-out groups).
    pub groups: Vec<usize>,
    /// The labeling configuration used.
    pub label_config: LabelConfig,
    /// The evaluation configuration for whole-benchmark measurements.
    pub eval_config: EvalConfig,
    /// Degradation accounting when labeling ran through the
    /// fault-tolerant path (`None` for the plain path).
    pub degradation: Option<DegradationReport>,
    /// The hyperparameter sweep report when the builder was asked to
    /// tune ([`PipelineBuilder::tune_svm`] / [`tune_nn`]); `None` means
    /// paper defaults throughout.
    ///
    /// [`tune_nn`]: PipelineBuilder::tune_nn
    pub sweep: Option<SweepReport>,
}

impl Pipeline {
    /// Number of labeled examples.
    pub fn len(&self) -> usize {
        self.labeled.len()
    }

    /// `true` if no loops survived labeling (never after `build`).
    pub fn is_empty(&self) -> bool {
        self.labeled.is_empty()
    }

    /// Fits `classifier` on the training dataset and deploys it as a
    /// compile-time heuristic over the matching feature projection.
    pub fn heuristic(
        &self,
        name: impl Into<String>,
        classifier: Box<dyn Classifier>,
    ) -> LearnedHeuristic {
        LearnedHeuristic::fit(name, self.feature_subset.clone(), classifier, &self.dataset)
    }

    /// Like [`heuristic`](Self::heuristic), but excludes benchmark
    /// `held_out` from training — the Figure 4/5 protocol: when
    /// compiling a benchmark, none of its loops may appear in the
    /// training set.
    pub fn heuristic_excluding(
        &self,
        name: impl Into<String>,
        classifier: Box<dyn Classifier>,
        held_out: usize,
    ) -> LearnedHeuristic {
        let drop: Vec<bool> = self.groups.iter().map(|&g| g == held_out).collect();
        let train = self.dataset.without_examples(&drop);
        LearnedHeuristic::fit(name, self.feature_subset.clone(), classifier, &train)
    }

    /// Leave-one-out cross validation of `classifier` (an unfitted
    /// prototype; each fold trains a fresh copy, in parallel) on the
    /// training dataset.
    pub fn loocv(&self, classifier: &dyn Classifier) -> CvResult {
        loopml_ml::loocv(&self.dataset, classifier)
    }

    /// SVM hyperparameters downstream training should use: the sweep
    /// winner when the builder tuned (and actually swept a non-empty
    /// grid), the paper defaults otherwise.
    pub fn svm_params(&self) -> SvmParams {
        match &self.sweep {
            Some(s) if !s.svm_cells.is_empty() => s.selected_svm,
            _ => SvmParams::default(),
        }
    }

    /// NN neighborhood radius downstream training should use: the sweep
    /// winner when the builder tuned (and swept at least one radius),
    /// the paper's [`DEFAULT_RADIUS`] otherwise.
    pub fn nn_radius(&self) -> f64 {
        match &self.sweep {
            Some(s) if !s.nn_cells.is_empty() => s.selected_radius,
            _ => DEFAULT_RADIUS,
        }
    }

    /// Decision-tree hyperparameters downstream training should use:
    /// the sweep winner when the builder tuned the tree grid, the
    /// defaults otherwise.
    pub fn tree_params(&self) -> TreeParams {
        match &self.sweep {
            Some(s) if !s.tree_cells.is_empty() => s.selected_tree,
            _ => TreeParams::default(),
        }
    }

    /// Bagged-forest hyperparameters downstream training should use:
    /// the sweep winner when the builder tuned the ensemble sizes, the
    /// defaults otherwise.
    pub fn forest_params(&self) -> ForestParams {
        match &self.sweep {
            Some(s) if !s.forest_cells.is_empty() => s.selected_forest,
            _ => ForestParams::default(),
        }
    }

    /// MLP hyperparameters downstream training should use: the sweep
    /// winner when the builder tuned the width × learning-rate grid,
    /// the defaults otherwise.
    pub fn mlp_params(&self) -> MlpParams {
        match &self.sweep {
            Some(s) if !s.mlp_cells.is_empty() => s.selected_mlp,
            _ => MlpParams::default(),
        }
    }

    /// Fingerprint of the training corpus this pipeline was built from
    /// (every feature bit and label of the full 38-feature dataset).
    pub fn dataset_fingerprint(&self) -> u64 {
        crate::artifact::dataset_fingerprint(&self.full_dataset)
    }

    /// Subset a model of `kind` serves behind: the ORC baseline is a
    /// stateless function of the *full* 38-feature vector (its column
    /// indices are part of the heuristic's definition), so it carries
    /// no projection; trained models see the pipeline's subset.
    fn artifact_subset(&self, kind: Option<&str>) -> Option<Vec<usize>> {
        if kind == Some("ORC") {
            None
        } else {
            self.feature_subset.clone()
        }
    }

    /// Trains `classifier` exactly as [`heuristic`](Self::heuristic)
    /// would and packages it as a versioned, fingerprinted
    /// [`ModelArtifact`] ready to [`write`](ModelArtifact::write) to
    /// disk and serve.
    pub fn train_artifact(
        &self,
        name: impl Into<String>,
        classifier: Box<dyn Classifier>,
    ) -> ModelArtifact {
        let name = name.into();
        let kind = classifier.save();
        let subset = self.artifact_subset(kind.get("kind").and_then(loopml_rt::Json::as_str));
        let h = match &subset {
            Some(_) => self.heuristic(name.clone(), classifier),
            // No projection: train (a no-op for ORC) on all 38 features.
            None => LearnedHeuristic::fit(name.clone(), None, classifier, &self.full_dataset),
        };
        let state = h.classifier().save();
        let fingerprint = model_fingerprint(self.dataset_fingerprint(), subset.as_deref(), &state);
        ModelArtifact::new(name, subset, fingerprint, state)
    }

    /// Reconstructs the deployable heuristic from an artifact, first
    /// verifying that the artifact's fingerprint matches what *this*
    /// pipeline would stamp — i.e. the artifact was trained under this
    /// corpus, feature subset, and the recorded hyperparameters. A
    /// stale artifact is a loud error, never a silently wrong model.
    pub fn load_artifact(&self, artifact: &ModelArtifact) -> Result<LearnedHeuristic, String> {
        let subset = self.artifact_subset(Some(artifact.kind()));
        let expect = model_fingerprint(
            self.dataset_fingerprint(),
            subset.as_deref(),
            artifact.state(),
        );
        if expect != artifact.fingerprint {
            return Err(format!(
                "artifact fingerprint {:#018x} does not match this pipeline's {expect:#018x}: \
                 it was trained under a different corpus, feature subset, or hyperparameters",
                artifact.fingerprint
            ));
        }
        artifact.to_heuristic()
    }
}

#[cfg(test)]
#[allow(deprecated)] // the forwarder tests below exercise the old toggle API
mod tests {
    use super::*;
    use crate::heuristics::UnrollHeuristic;
    use loopml_ml::{Constant, NearNeighbors, DEFAULT_RADIUS};

    fn quick() -> PipelineBuilder {
        PipelineBuilder::paper()
            .suite_config(SuiteConfig {
                min_loops: 8,
                max_loops: 10,
                ..SuiteConfig::default()
            })
            .take_benchmarks(4)
    }

    #[test]
    fn paper_defaults_build_a_training_set() {
        let p = quick().build();
        assert_eq!(p.suite.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.full_dataset.dims(), crate::features::NUM_FEATURES);
        assert!(p.dataset.dims() <= p.full_dataset.dims());
        assert_eq!(p.groups.len(), p.len());
        let subset = p.feature_subset.as_ref().expect("default selects features");
        assert_eq!(p.dataset.dims(), subset.len());
    }

    #[test]
    fn all_features_skips_selection() {
        let p = quick().all_features().build();
        assert!(p.feature_subset.is_none());
        assert_eq!(p.dataset.dims(), crate::features::NUM_FEATURES);
    }

    #[test]
    fn heuristic_trains_and_chooses() {
        let p = quick().exact().build();
        let nn = p.heuristic("NN", Box::new(NearNeighbors::new(DEFAULT_RADIUS)));
        for w in &p.suite[0].loops {
            assert!((1..=8).contains(&nn.choose(&w.body)));
        }
    }

    #[test]
    fn heuristic_excluding_never_sees_the_held_out_benchmark() {
        let p = quick().exact().build();
        // Training on everything-but-0 must use exactly the non-0 rows.
        let n_excluded = p.groups.iter().filter(|&&g| g == 0).count();
        assert!(n_excluded > 0, "benchmark 0 contributed no examples");
        let h = p.heuristic_excluding("NN", Box::new(NearNeighbors::new(DEFAULT_RADIUS)), 0);
        assert_eq!(UnrollHeuristic::name(&h), "NN");
    }

    #[test]
    fn loocv_runs_any_classifier() {
        let p = quick().exact().build();
        let cv = p.loocv(&Constant::new(0));
        assert_eq!(cv.predictions.len(), p.len());
        assert!((0.0..=1.0).contains(&cv.accuracy));
    }

    #[test]
    fn exact_builds_are_reproducible() {
        let a = quick().exact().build();
        let b = quick().exact().build();
        assert_eq!(a.labeled, b.labeled);
        assert_eq!(a.feature_subset, b.feature_subset);
    }

    #[test]
    fn untuned_pipeline_uses_paper_defaults() {
        let p = quick().exact().build();
        assert!(p.sweep.is_none());
        assert_eq!(p.svm_params(), SvmParams::default());
        assert_eq!(p.nn_radius(), DEFAULT_RADIUS);
    }

    #[test]
    fn tuned_pipeline_consumes_the_sweep_winner() {
        let grid = SvmGrid {
            gammas: vec![0.5, 2.0],
            cs: vec![1.0, 10.0],
            ..SvmGrid::default()
        };
        let radii = vec![0.2, 0.3, 0.5, 0.8];
        let p = quick()
            .exact()
            .tune_svm(grid.clone())
            .tune_nn(radii.clone())
            .build();
        let sweep = p.sweep.as_ref().expect("tuning ran");
        assert_eq!(sweep.svm_cells.len(), 4);
        assert_eq!(sweep.nn_cells.len(), 4);
        assert_eq!(sweep.distance_builds, 1);
        assert!(grid.gammas.contains(&p.svm_params().gamma));
        assert!(grid.cs.contains(&p.svm_params().c));
        assert!(radii.contains(&p.nn_radius()));
    }

    #[test]
    fn tuning_the_zoo_families_consumes_their_winners() {
        let p = quick()
            .exact()
            .configure(PipelineConfig {
                tune_tree: Some(TreeGrid {
                    max_depths: vec![2, 4],
                    min_leafs: vec![1],
                }),
                tune_forest: Some(ForestGrid {
                    sizes: vec![4],
                    ..ForestGrid::default()
                }),
                tune_mlp: Some(MlpGrid {
                    hiddens: vec![4],
                    lrs: vec![0.1],
                    ..MlpGrid::default()
                }),
                ..PipelineConfig::default()
            })
            .build();
        let s = p.sweep.as_ref().expect("tuning ran");
        assert_eq!(s.tree_cells.len(), 2);
        assert_eq!(s.forest_cells.len(), 1);
        assert_eq!(s.mlp_cells.len(), 1);
        assert!(s.svm_cells.is_empty() && s.nn_cells.is_empty());
        assert!([2, 4].contains(&p.tree_params().max_depth));
        assert_eq!(p.forest_params().trees, 4);
        assert_eq!(p.mlp_params().hidden, 4);
        assert!(["tree", "forest", "mlp"].contains(&s.winner_family.as_str()));
        // The untuned families keep their paper defaults.
        assert_eq!(p.svm_params(), SvmParams::default());
        assert_eq!(p.nn_radius(), DEFAULT_RADIUS);
    }

    #[test]
    fn tuning_one_axis_keeps_the_other_at_defaults() {
        let p = quick().exact().tune_nn(vec![0.2, 0.4]).build();
        let sweep = p.sweep.as_ref().expect("tuning ran");
        assert!(sweep.svm_cells.is_empty());
        assert_eq!(p.svm_params(), SvmParams::default());
        assert!([0.2, 0.4].contains(&p.nn_radius()));
    }

    #[test]
    fn configure_matches_the_deprecated_toggles() {
        let radii = vec![0.2, 0.4];
        let via_config = quick()
            .exact()
            .configure(PipelineConfig {
                tune_nn: Some(radii.clone()),
                ..PipelineConfig::default()
            })
            .build();
        let via_toggle = quick().exact().tune_nn(radii).build();
        assert_eq!(via_config.labeled, via_toggle.labeled);
        assert_eq!(via_config.nn_radius(), via_toggle.nn_radius());
        let s = via_config.sweep.as_ref().expect("tuning ran");
        assert!(s.svm_cells.is_empty());
    }

    #[test]
    fn prover_features_widen_the_dataset_consistently() {
        let p = quick()
            .exact()
            .configure(PipelineConfig {
                prover_features: true,
                ..PipelineConfig::default()
            })
            .build();
        let width = crate::features::NUM_FEATURES + crate::features::NUM_PROVER_FEATURES;
        assert_eq!(p.full_dataset.dims(), width);
        assert_eq!(p.full_dataset.feature_names.len(), width);
        // Every example's prover block matches a fresh extraction of
        // its loop — the name join did not scramble rows.
        let by_name: std::collections::HashMap<&str, &loopml_ir::Loop> = p
            .suite
            .iter()
            .flat_map(|b| b.loops.iter())
            .map(|w| (w.body.name.as_str(), &w.body))
            .collect();
        for ex in &p.labeled {
            let l = by_name[ex.name.as_str()];
            assert_eq!(
                ex.features[crate::features::NUM_FEATURES..],
                crate::features::extract_prover(l)
            );
        }
        // A heuristic trained on a subset reaching into the prover
        // block extracts the extended vector at choose time.
        let cols: Vec<usize> = vec![1, 19, crate::features::NUM_FEATURES + 7];
        let projected = p.full_dataset.select_features(&cols);
        let h = LearnedHeuristic::fit(
            "NN+prover",
            Some(cols),
            Box::new(NearNeighbors::new(DEFAULT_RADIUS)),
            &projected,
        );
        for b in &p.suite {
            for w in &b.loops {
                assert!((1..=8).contains(&h.choose(&w.body)));
            }
        }
    }

    #[test]
    fn configure_overrides_lint_level() {
        let p = quick()
            .exact()
            .configure(PipelineConfig {
                lint: Some(loopml_lint::LintLevel::Warn),
                ..PipelineConfig::default()
            })
            .build();
        assert_eq!(p.label_config.lint, loopml_lint::LintLevel::Warn);
    }

    #[test]
    fn artifacts_round_trip_through_the_pipeline() {
        let p = quick().exact().build();
        let artifact = p.train_artifact("NN", Box::new(NearNeighbors::new(DEFAULT_RADIUS)));
        assert_eq!(artifact.kind(), "NN");
        assert_eq!(artifact.feature_subset, p.feature_subset);
        // Through the serialized text, as a file would carry it.
        let text = artifact.to_json().to_string();
        let back = ModelArtifact::from_json(&loopml_rt::Json::parse(&text).unwrap()).unwrap();
        let loaded = p.load_artifact(&back).expect("fingerprint matches");
        let direct = p.heuristic("NN", Box::new(NearNeighbors::new(DEFAULT_RADIUS)));
        for b in &p.suite {
            for w in &b.loops {
                assert_eq!(loaded.choose(&w.body), direct.choose(&w.body));
            }
        }
    }

    #[test]
    fn stale_artifact_is_rejected_loudly() {
        let p = quick().exact().build();
        let other = quick().take_benchmarks(3).exact().build();
        let stale = other.train_artifact("NN", Box::new(NearNeighbors::new(DEFAULT_RADIUS)));
        let err = p.load_artifact(&stale).unwrap_err();
        assert!(err.contains("does not match"), "{err}");
        // Same pipeline, tampered hyperparameters: also rejected.
        let mut artifact = p.train_artifact("NN", Box::new(NearNeighbors::new(0.3)));
        let tampered =
            loopml_rt::Json::parse(&artifact.state().to_string().replace("0.3", "0.7")).unwrap();
        artifact = ModelArtifact::new(
            "NN",
            artifact.feature_subset.clone(),
            artifact.fingerprint,
            tampered,
        );
        assert!(p.load_artifact(&artifact).is_err());
    }

    #[test]
    fn resilient_build_matches_plain_build_without_faults() {
        let plain = quick().build();
        assert!(plain.degradation.is_none());
        let resilient = quick().resilient(ResilienceConfig::default()).build();
        let report = resilient.degradation.as_ref().expect("resilient path");
        assert_eq!(resilient.labeled, plain.labeled);
        assert!(report.quarantined.is_empty());
        assert_eq!(report.completed, plain.suite.len());
    }
}
