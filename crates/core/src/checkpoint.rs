//! Per-benchmark checkpoint files for killable labeling runs.
//!
//! A production-scale labeling run is hours of work; dying at 95% must
//! not mean starting over. The resilient labeler writes one JSON file
//! per completed benchmark (atomically: temp file + rename), and
//! `repro label --resume` reloads every valid checkpoint instead of
//! relabeling. Because measurements are bit-exact functions of the seed
//! and the zero-dependency [`Json`] writer round-trips every finite
//! `f64` exactly, a resumed run is bit-identical to an uninterrupted
//! one.
//!
//! A checkpoint is only reused when its schema, config fingerprint,
//! benchmark index and benchmark name all match; anything else —
//! missing file, truncation, corruption, a config change — silently
//! falls back to relabeling that benchmark. Corruption can cost time,
//! never correctness.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use loopml_rt::{fault_key, FaultPlane, Json};

use crate::fault::{BenchmarkOutcome, QuarantineEntry};
use crate::label::{LabelConfig, LabeledLoop, MAX_UNROLL};

/// Schema tag stamped into every checkpoint file.
pub const CKPT_SCHEMA: &str = "loopml/label-ckpt/v1";

/// Fingerprint of everything a checkpoint's measurements depend on:
/// the measurement seed, pipelining regime, noise model, the paper's
/// filter thresholds, the retry budget, and the active fault plane
/// (`LOOPML_FAULTS`). Resuming under a different configuration must
/// relabel, not reuse — in particular, a checkpoint written under
/// injected chaos (whose retries shifted attempt seeds and whose
/// quarantine list reflects the injected deaths) must never satisfy a
/// clean resume, nor vice versa.
pub fn config_fingerprint(cfg: &LabelConfig, retry_budget: u32, faults: &FaultPlane) -> u64 {
    fault_key(&[
        cfg.seed,
        cfg.swp as u64,
        cfg.noise.sigma.to_bits(),
        cfg.noise.runs as u64,
        cfg.min_cycles.to_bits(),
        cfg.min_benefit.to_bits(),
        u64::from(MAX_UNROLL),
        u64::from(retry_budget),
        faults.fingerprint(),
    ])
}

/// Path of the checkpoint for benchmark `index` named `name` (the name
/// is sanitized into a filesystem-safe slug).
pub fn checkpoint_path(dir: &Path, index: usize, name: &str) -> PathBuf {
    let slug: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    dir.join(format!("ckpt_{index:03}_{slug}.json"))
}

/// Serializes one labeled loop (plus the attempt it succeeded on) into
/// the JSON shape shared by checkpoints and `repro label` output.
pub fn labeled_to_json(l: &LabeledLoop, attempts: u32) -> Json {
    let mut m = BTreeMap::new();
    m.insert("name".into(), Json::Str(l.name.clone()));
    m.insert("benchmark".into(), Json::Num(l.benchmark as f64));
    m.insert("label".into(), Json::Num(l.label as f64));
    m.insert(
        "features".into(),
        Json::Arr(l.features.iter().map(|&v| Json::Num(v)).collect()),
    );
    m.insert(
        "runtimes".into(),
        Json::Arr(l.runtimes.iter().map(|&v| Json::Num(v)).collect()),
    );
    m.insert("attempts".into(), Json::Num(f64::from(attempts)));
    Json::Obj(m)
}

/// Parses a value written by [`labeled_to_json`].
pub fn labeled_from_json(v: &Json) -> Option<(LabeledLoop, u32)> {
    let features: Vec<f64> = v
        .get("features")?
        .as_arr()?
        .iter()
        .map(Json::as_num)
        .collect::<Option<_>>()?;
    let rts: Vec<f64> = v
        .get("runtimes")?
        .as_arr()?
        .iter()
        .map(Json::as_num)
        .collect::<Option<_>>()?;
    let runtimes: [f64; MAX_UNROLL as usize] = rts.try_into().ok()?;
    let label = v.get("label")?.as_num()? as usize;
    if label >= MAX_UNROLL as usize {
        return None;
    }
    Some((
        LabeledLoop {
            name: v.get("name")?.as_str()?.to_string(),
            benchmark: v.get("benchmark")?.as_num()? as usize,
            features,
            label,
            runtimes,
        },
        v.get("attempts")?.as_num()? as u32,
    ))
}

/// Serializes a benchmark outcome into a checkpoint document.
pub fn outcome_to_json(outcome: &BenchmarkOutcome, fingerprint: u64) -> Json {
    let mut m = BTreeMap::new();
    m.insert("schema".into(), Json::Str(CKPT_SCHEMA.into()));
    m.insert(
        "fingerprint".into(),
        Json::Str(format!("{fingerprint:#018x}")),
    );
    m.insert("benchmark".into(), Json::Num(outcome.benchmark as f64));
    m.insert("name".into(), Json::Str(outcome.name.clone()));
    m.insert(
        "loops".into(),
        Json::Arr(
            outcome
                .labeled
                .iter()
                .zip(&outcome.attempts)
                .map(|(l, &a)| labeled_to_json(l, a))
                .collect(),
        ),
    );
    m.insert(
        "quarantined".into(),
        Json::Arr(
            outcome
                .quarantined
                .iter()
                .map(QuarantineEntry::to_json)
                .collect(),
        ),
    );
    m.insert(
        "fault_sites".into(),
        Json::Obj(
            outcome
                .fault_sites
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect(),
        ),
    );
    Json::Obj(m)
}

/// Parses a checkpoint document, validating schema, fingerprint and
/// benchmark identity. Returns `None` on any mismatch.
pub fn outcome_from_json(
    doc: &Json,
    expect_index: usize,
    expect_name: &str,
    fingerprint: u64,
) -> Option<BenchmarkOutcome> {
    if doc.get("schema")?.as_str()? != CKPT_SCHEMA {
        return None;
    }
    if doc.get("fingerprint")?.as_str()? != format!("{fingerprint:#018x}") {
        return None;
    }
    if doc.get("benchmark")?.as_num()? as usize != expect_index {
        return None;
    }
    if doc.get("name")?.as_str()? != expect_name {
        return None;
    }
    let mut labeled = Vec::new();
    let mut attempts = Vec::new();
    for l in doc.get("loops")?.as_arr()? {
        let (loop_, a) = labeled_from_json(l)?;
        if loop_.benchmark != expect_index {
            return None;
        }
        labeled.push(loop_);
        attempts.push(a);
    }
    let quarantined: Vec<QuarantineEntry> = doc
        .get("quarantined")?
        .as_arr()?
        .iter()
        .map(QuarantineEntry::from_json)
        .collect::<Option<_>>()?;
    let fault_sites: BTreeMap<String, usize> = match doc.get("fault_sites")? {
        Json::Obj(m) => m
            .iter()
            .map(|(k, v)| Some((k.clone(), v.as_num()? as usize)))
            .collect::<Option<_>>()?,
        _ => return None,
    };
    Some(BenchmarkOutcome {
        benchmark: expect_index,
        name: expect_name.to_string(),
        labeled,
        attempts,
        quarantined,
        fault_sites,
    })
}

/// Writes `outcome`'s checkpoint atomically (temp file + rename), so a
/// kill mid-write leaves either the old file or none — never a torn
/// document.
pub fn write_checkpoint(
    dir: &Path,
    outcome: &BenchmarkOutcome,
    fingerprint: u64,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = checkpoint_path(dir, outcome.benchmark, &outcome.name);
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, format!("{}\n", outcome_to_json(outcome, fingerprint)))?;
    std::fs::rename(&tmp, &path)
}

/// Loads the checkpoint for benchmark `index`/`name` if present and
/// valid under `fingerprint`; `None` means "relabel this benchmark".
pub fn read_checkpoint(
    dir: &Path,
    index: usize,
    name: &str,
    fingerprint: u64,
) -> Option<BenchmarkOutcome> {
    let text = std::fs::read_to_string(checkpoint_path(dir, index, name)).ok()?;
    let doc = Json::parse(&text).ok()?;
    outcome_from_json(&doc, index, name, fingerprint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::QuarantineScope;
    use loopml_machine::SwpMode;

    fn outcome() -> BenchmarkOutcome {
        BenchmarkOutcome {
            benchmark: 7,
            name: "179.art".into(),
            labeled: vec![LabeledLoop {
                name: "179.art/loop001_dot".into(),
                benchmark: 7,
                features: vec![1.0, 0.25, 1e9, -3.5],
                label: 3,
                runtimes: [7.5e4, 6.1e4, 5.9e4, 5.0e4, 5.2e4, 5.3e4, 5.4e4, 5.5e4],
            }],
            attempts: vec![2],
            quarantined: vec![QuarantineEntry {
                scope: QuarantineScope::Loop,
                benchmark: 7,
                name: "179.art/loop002_saxpy".into(),
                reason: "injected fault at label.measure (attempt 3)".into(),
                site: Some("label.measure".into()),
                attempts: 4,
            }],
            fault_sites: [("label.measure".to_string(), 5usize)]
                .into_iter()
                .collect(),
        }
    }

    #[test]
    fn outcome_round_trips_bit_exactly() {
        let o = outcome();
        let doc = outcome_to_json(&o, 0xABCD);
        let reparsed = Json::parse(&doc.to_string()).expect("valid JSON");
        let back = outcome_from_json(&reparsed, 7, "179.art", 0xABCD).expect("validates");
        assert_eq!(back, o);
    }

    #[test]
    fn mismatches_reject_the_checkpoint() {
        let o = outcome();
        let doc = outcome_to_json(&o, 1);
        assert!(
            outcome_from_json(&doc, 7, "179.art", 2).is_none(),
            "fingerprint"
        );
        assert!(outcome_from_json(&doc, 8, "179.art", 1).is_none(), "index");
        assert!(outcome_from_json(&doc, 7, "164.gzip", 1).is_none(), "name");
        let tampered = doc.to_string().replace(CKPT_SCHEMA, "other/schema");
        let tampered = Json::parse(&tampered).unwrap();
        assert!(
            outcome_from_json(&tampered, 7, "179.art", 1).is_none(),
            "schema"
        );
    }

    #[test]
    fn write_read_round_trip_and_corruption_fallback() {
        let dir = std::env::temp_dir().join("loopml_ckpt_unit");
        let _ = std::fs::remove_dir_all(&dir);
        let o = outcome();
        write_checkpoint(&dir, &o, 42).expect("write");
        assert_eq!(read_checkpoint(&dir, 7, "179.art", 42), Some(o.clone()));
        assert_eq!(read_checkpoint(&dir, 7, "179.art", 43), None);
        // Truncate the file: the reader must treat it as absent.
        let path = checkpoint_path(&dir, 7, "179.art");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert_eq!(read_checkpoint(&dir, 7, "179.art", 42), None);
    }

    #[test]
    fn fingerprint_tracks_config_changes() {
        let off = FaultPlane::disabled();
        let a = LabelConfig::paper(SwpMode::Disabled);
        let mut b = a.clone();
        assert_eq!(
            config_fingerprint(&a, 3, &off),
            config_fingerprint(&b, 3, &off)
        );
        assert_ne!(
            config_fingerprint(&a, 3, &off),
            config_fingerprint(&a, 4, &off)
        );
        b.seed ^= 1;
        assert_ne!(
            config_fingerprint(&a, 3, &off),
            config_fingerprint(&b, 3, &off)
        );
        let c = LabelConfig::paper(SwpMode::Enabled);
        assert_ne!(
            config_fingerprint(&a, 3, &off),
            config_fingerprint(&c, 3, &off)
        );
    }

    #[test]
    fn changed_fault_spec_invalidates_the_checkpoint() {
        let cfg = LabelConfig::paper(SwpMode::Disabled);
        let clean = config_fingerprint(&cfg, 3, &FaultPlane::disabled());
        let chaos = config_fingerprint(&cfg, 3, &FaultPlane::new(0xC0FFEE, 0.1));
        let other_seed = config_fingerprint(&cfg, 3, &FaultPlane::new(0xC0FFEF, 0.1));
        let other_rate = config_fingerprint(&cfg, 3, &FaultPlane::new(0xC0FFEE, 0.2));
        assert_ne!(clean, chaos, "chaos checkpoints must not serve clean runs");
        assert_ne!(chaos, other_seed, "fault seed is part of the identity");
        assert_ne!(chaos, other_rate, "fault rate is part of the identity");

        // End to end: a checkpoint written under one plane is invisible
        // to a resume under another.
        let dir = std::env::temp_dir().join("loopml_ckpt_faultspec");
        let _ = std::fs::remove_dir_all(&dir);
        let o = outcome();
        write_checkpoint(&dir, &o, chaos).expect("write");
        assert_eq!(read_checkpoint(&dir, 7, "179.art", chaos), Some(o));
        assert_eq!(
            read_checkpoint(&dir, 7, "179.art", clean),
            None,
            "clean resume must relabel, not reuse chaos-era checkpoints"
        );
    }
}
