//! Whole-benchmark evaluation: turning per-loop unroll decisions into the
//! program-level speedups of Figures 4 and 5.
//!
//! A benchmark's runtime is the weighted sum of its loops' simulated
//! cycles plus a fixed non-loop share; loop weights are calibrated at the
//! rolled (factor 1) configuration, exactly like deriving per-loop
//! execution counts from a baseline profile. The instruction-cache entry
//! cost couples loops globally: unrolling one loop inflates the hot-code
//! footprint every loop contends with.

use loopml_ir::Benchmark;
use loopml_machine::{icache_entry_cost, loop_cost, MachineConfig, NoiseModel, SwpMode};
use loopml_opt::{unroll_and_optimize, OptConfig};
use loopml_rt::fault::site;
use loopml_rt::{fault_key_str, FaultPlane, Rng};

use crate::heuristics::UnrollHeuristic;
use crate::label::MAX_UNROLL;

/// Evaluation configuration (machine + measurement regime).
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Machine model.
    pub machine: MachineConfig,
    /// Post-unroll optimization pipeline.
    pub opt: OptConfig,
    /// Software pipelining regime.
    pub swp: SwpMode,
    /// Noise applied to whole-benchmark measurements (the paper uses the
    /// median of three `time` runs).
    pub noise: NoiseModel,
    /// Seed for the measurement stream.
    pub seed: u64,
    /// Fault-injection plane; [`measure_benchmark`] trips
    /// [`site::EVAL_BENCH`] (keyed by benchmark name), modelling a
    /// benchmark run that crashes under measurement. Callers isolate it
    /// with [`loopml_rt::par_map_result`].
    pub faults: FaultPlane,
}

impl EvalConfig {
    /// The paper's whole-program measurement regime.
    pub fn paper(swp: SwpMode) -> Self {
        EvalConfig {
            machine: MachineConfig::itanium2(),
            opt: OptConfig::default(),
            swp,
            noise: NoiseModel {
                sigma: 0.01,
                runs: 3,
            },
            seed: 0xE7A1,
            faults: FaultPlane::env_or_disabled(),
        }
    }

    /// Noise-free variant (for deterministic tests).
    pub fn exact(swp: SwpMode) -> Self {
        EvalConfig {
            noise: NoiseModel::exact(),
            ..EvalConfig::paper(swp)
        }
    }
}

/// Runs a benchmark with per-loop unroll `choices` and returns total
/// cycles (noise-free).
///
/// # Panics
///
/// Panics if `choices.len() != benchmark.len()` or a choice is outside
/// `1..=8`.
pub fn run_benchmark(b: &Benchmark, choices: &[u32], ec: &EvalConfig) -> f64 {
    assert_eq!(choices.len(), b.len(), "one choice per loop");
    assert!(
        choices.iter().all(|&c| (1..=MAX_UNROLL).contains(&c)),
        "factors must be 1..=8"
    );

    // Pass 1: per-loop costs at the chosen factor and at factor 1, and
    // the footprint induced by the choices.
    let mut rolled_cycles = Vec::with_capacity(b.len());
    let mut chosen_cycles = Vec::with_capacity(b.len());
    let mut code_bytes = Vec::with_capacity(b.len());
    for (w, &choice) in b.loops.iter().zip(choices) {
        let factor = if w.body.is_unrollable() { choice } else { 1 };
        let rolled = unroll_and_optimize(&w.body, 1, &ec.opt);
        let rc = loop_cost(&rolled, 0.0, &ec.machine, ec.swp);
        let r_total = rc.total(rolled.body.trip_count.dynamic(), w.entries);
        let (c_total, bytes) = if factor == 1 {
            (r_total, rc.code_bytes)
        } else {
            let u = unroll_and_optimize(&w.body, factor, &ec.opt);
            let c = loop_cost(&u, rc.per_iter, &ec.machine, ec.swp);
            (
                c.total(u.body.trip_count.dynamic(), w.entries),
                c.code_bytes,
            )
        };
        rolled_cycles.push(r_total);
        chosen_cycles.push(c_total);
        code_bytes.push(bytes);
    }
    let rolled_loop_bytes: u64 = b.iter().map(|w| w.body.code_bytes()).sum();
    let footprint: u64 =
        code_bytes.iter().sum::<u64>() + crate::label::hot_footprint(b) - rolled_loop_bytes;

    // Pass 2: weight calibration at the rolled baseline. `scale[i]`
    // converts one simulated run of loop i into its share of the
    // program's loop time.
    let mut total = 0.0;
    let mut rolled_total = 0.0;
    for (i, w) in b.loops.iter().enumerate() {
        let scale = w.weight / rolled_cycles[i].max(1.0);
        let icache = icache_entry_cost(code_bytes[i], footprint, &ec.machine) * w.entries as f64;
        total += scale * (chosen_cycles[i] + icache);
        rolled_total += scale * rolled_cycles[i];
    }
    // Non-loop share, constant relative to the rolled loop time.
    let non_loop = rolled_total * b.non_loop_fraction / (1.0 - b.non_loop_fraction);
    total + non_loop
}

/// Measures a benchmark under a heuristic, through the observation-noise
/// model (median of N runs).
pub fn measure_benchmark(b: &Benchmark, h: &dyn UnrollHeuristic, ec: &EvalConfig) -> f64 {
    ec.faults.trip(site::EVAL_BENCH, fault_key_str(&b.name));
    let choices: Vec<u32> = b.loops.iter().map(|w| h.choose(&w.body)).collect();
    let truth = run_benchmark(b, &choices, ec);
    let mut rng = Rng::seed_from_u64(ec.seed ^ fnv(&b.name) ^ fnv(h.name()));
    ec.noise.measure(truth, &mut rng)
}

/// Oracle choices: per-loop exhaustive search under the same metric the
/// labels use — loop cycles plus the instruction-cache entry cost in the
/// benchmark's rolled footprint context (the paper's per-loop-independence
/// assumption: each loop is optimized as if the others stayed put).
pub fn oracle_choices(b: &Benchmark, ec: &EvalConfig) -> Vec<u32> {
    let footprint = crate::label::hot_footprint(b);
    b.loops
        .iter()
        .map(|w| {
            if !w.body.is_unrollable() {
                return 1;
            }
            let entries = w.entries as f64;
            let rolled = unroll_and_optimize(&w.body, 1, &ec.opt);
            let rc = loop_cost(&rolled, 0.0, &ec.machine, ec.swp);
            let total = |c: &loopml_machine::LoopCost, trips: u64| {
                c.total(trips, w.entries)
                    + icache_entry_cost(c.code_bytes, footprint, &ec.machine) * entries
            };
            let mut best = (1u32, total(&rc, rolled.body.trip_count.dynamic()));
            for f in 2..=MAX_UNROLL {
                let u = unroll_and_optimize(&w.body, f, &ec.opt);
                let c = loop_cost(&u, rc.per_iter, &ec.machine, ec.swp);
                let t = total(&c, u.body.trip_count.dynamic());
                if t < best.1 {
                    best = (f, t);
                }
            }
            best.0
        })
        .collect()
}

/// Measures a benchmark under the oracle's choices (noisy observation).
pub fn measure_oracle(b: &Benchmark, ec: &EvalConfig) -> f64 {
    let choices = oracle_choices(b, ec);
    let truth = run_benchmark(b, &choices, ec);
    let mut rng = Rng::seed_from_u64(ec.seed ^ fnv(&b.name) ^ fnv("oracle"));
    ec.noise.measure(truth, &mut rng)
}

/// Relative improvement of `new` over `base`: `base/new − 1` (so +0.05 is
/// a 5% speedup).
pub fn improvement(base: f64, new: f64) -> f64 {
    base / new - 1.0
}

fn fnv(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::{LearnedHeuristic, OrcHeuristic};
    use loopml_corpus::{synthesize, SuiteConfig, ROSTER};

    fn bench() -> Benchmark {
        synthesize(
            &ROSTER[2],
            &SuiteConfig {
                min_loops: 8,
                max_loops: 10,
                ..SuiteConfig::default()
            },
        )
    }

    #[test]
    fn oracle_beats_or_ties_everything_noise_free() {
        let b = bench();
        let ec = EvalConfig::exact(SwpMode::Disabled);
        let oracle = run_benchmark(&b, &oracle_choices(&b, &ec), &ec);
        let orc: Vec<u32> = b
            .loops
            .iter()
            .map(|w| OrcHeuristic.choose(&w.body))
            .collect();
        let orc_t = run_benchmark(&b, &orc, &ec);
        let rolled = run_benchmark(&b, &vec![1; b.len()], &ec);
        assert!(oracle <= orc_t * 1.0001, "oracle {oracle} vs orc {orc_t}");
        assert!(
            oracle <= rolled * 1.0001,
            "oracle {oracle} vs rolled {rolled}"
        );
    }

    #[test]
    fn always_eight_can_lose_to_oracle() {
        let b = bench();
        let ec = EvalConfig::exact(SwpMode::Disabled);
        let eights = run_benchmark(&b, &vec![8; b.len()], &ec);
        let oracle = run_benchmark(&b, &oracle_choices(&b, &ec), &ec);
        assert!(oracle <= eights);
    }

    #[test]
    fn improvement_signs() {
        assert!(improvement(110.0, 100.0) > 0.0);
        assert!(improvement(100.0, 110.0) < 0.0);
        assert!((improvement(100.0, 100.0)).abs() < 1e-12);
    }

    #[test]
    fn run_is_deterministic() {
        let b = bench();
        let ec = EvalConfig::exact(SwpMode::Disabled);
        let c = vec![2; b.len()];
        assert_eq!(run_benchmark(&b, &c, &ec), run_benchmark(&b, &c, &ec));
    }

    #[test]
    fn measurement_noise_is_seeded() {
        let b = bench();
        let ec = EvalConfig::paper(SwpMode::Disabled);
        let h = OrcHeuristic;
        assert_eq!(
            measure_benchmark(&b, &h, &ec),
            measure_benchmark(&b, &h, &ec)
        );
    }

    #[test]
    fn learned_constant_one_matches_rolled() {
        let b = bench();
        let ec = EvalConfig::exact(SwpMode::Disabled);
        let h = LearnedHeuristic::new("rolled", None, Box::new(loopml_ml::Constant::new(0)));
        let choices: Vec<u32> = b.loops.iter().map(|w| h.choose(&w.body)).collect();
        let t = run_benchmark(&b, &choices, &ec);
        let rolled = run_benchmark(&b, &vec![1; b.len()], &ec);
        assert!((t - rolled).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one choice per loop")]
    fn wrong_choice_count_rejected() {
        let b = bench();
        let ec = EvalConfig::exact(SwpMode::Disabled);
        let _ = run_benchmark(&b, &[1, 2], &ec);
    }
}
