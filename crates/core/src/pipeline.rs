//! End-to-end pipeline glue: labeled loops → ML datasets → trained
//! classifiers → compile-time heuristics.

use loopml_ml::{
    greedy_forward_nn, mutual_information, Classifier, Dataset, MulticlassSvm, SvmParams,
};

use crate::features::{FEATURE_NAMES, NUM_FEATURES, NUM_PROVER_FEATURES, PROVER_FEATURE_NAMES};
use crate::label::LabeledLoop;

/// Column names for a `dims`-wide feature matrix: the 38 paper features,
/// optionally followed by the prover block.
///
/// # Panics
///
/// Panics on a width that is neither `NUM_FEATURES` nor
/// `NUM_FEATURES + NUM_PROVER_FEATURES`.
pub fn feature_names(dims: usize) -> Vec<String> {
    let mut names: Vec<String> = FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
    if dims == NUM_FEATURES + NUM_PROVER_FEATURES {
        names.extend(PROVER_FEATURE_NAMES.iter().map(|s| s.to_string()));
    } else {
        assert_eq!(dims, NUM_FEATURES, "unsupported feature width {dims}");
    }
    names
}

/// Converts labeled loops into an ML dataset over all 38 features (or
/// 38 + the prover block when the loops carry extended vectors).
///
/// # Panics
///
/// Panics if `labeled` is empty.
pub fn to_dataset(labeled: &[LabeledLoop]) -> Dataset {
    assert!(!labeled.is_empty(), "no labeled loops");
    let names = feature_names(labeled[0].features.len());
    Dataset::new(
        labeled.iter().map(|l| l.features.clone()).collect(),
        labeled.iter().map(|l| l.label).collect(),
        8,
        names,
        labeled.iter().map(|l| l.name.clone()).collect(),
    )
}

/// The benchmark index of each example (for leave-one-benchmark-out).
pub fn benchmark_groups(labeled: &[LabeledLoop]) -> Vec<usize> {
    labeled.iter().map(|l| l.benchmark).collect()
}

/// Selects the informative feature subset the paper uses for its
/// classification experiments (§6–§7): the union of the top `k` features
/// by mutual information and the top `k` chosen by greedy forward
/// selection with a leave-self-out 1-NN criterion.
pub fn informative_features(data: &Dataset, k: usize) -> Vec<usize> {
    let mis = mutual_information(data);
    let mut cols: Vec<usize> = mis.iter().take(k).map(|s| s.index).collect();
    // The incremental cached greedy: O(n²) per candidate instead of
    // rebuilding the subset's pairwise distances from scratch.
    for step in greedy_forward_nn(data, k) {
        if !cols.contains(&step.index) {
            cols.push(step.index);
        }
    }
    cols.sort_unstable();
    cols
}

/// Training error of an SVM on `data` (used by greedy feature selection
/// for the SVM column of Table 4).
pub fn svm_training_error(data: &Dataset, params: SvmParams) -> f64 {
    let svm = MulticlassSvm::fit(data, params);
    let errors = data
        .x
        .iter()
        .zip(&data.y)
        .filter(|(x, &y)| svm.predict(x) != y)
        .count();
    errors as f64 / data.len() as f64
}

/// Convenience: LOOCV accuracy of an arbitrary [`Classifier`] (used for
/// ablations on small datasets). `clf` is the unfitted prototype; each
/// fold trains a [`Classifier::fresh`] copy, in parallel.
pub fn loocv_accuracy(data: &Dataset, clf: &dyn Classifier) -> f64 {
    loopml_ml::loocv(data, clf).accuracy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{label_benchmark, LabelConfig};
    use loopml_corpus::{synthesize, SuiteConfig, ROSTER};
    use loopml_machine::{NoiseModel, SwpMode};

    fn labeled() -> Vec<LabeledLoop> {
        let b = synthesize(
            &ROSTER[2],
            &SuiteConfig {
                min_loops: 14,
                max_loops: 16,
                ..SuiteConfig::default()
            },
        );
        let cfg = LabelConfig {
            noise: NoiseModel::exact(),
            ..LabelConfig::paper(SwpMode::Disabled)
        };
        label_benchmark(&b, 3, &cfg)
    }

    #[test]
    fn dataset_round_trip() {
        let l = labeled();
        let d = to_dataset(&l);
        assert_eq!(d.len(), l.len());
        assert_eq!(d.dims(), crate::features::NUM_FEATURES);
        assert_eq!(d.classes, 8);
        assert!(benchmark_groups(&l).iter().all(|&g| g == 3));
    }

    #[test]
    fn informative_features_are_a_reasonable_subset() {
        let d = to_dataset(&labeled());
        let cols = informative_features(&d, 5);
        assert!(!cols.is_empty());
        assert!(cols.len() <= 10);
        assert!(cols.iter().all(|&c| c < d.dims()));
        // Sorted and unique.
        let mut sorted = cols.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, cols);
    }

    #[test]
    fn trained_classifiers_predict_valid_classes() {
        let d = to_dataset(&labeled());
        let mut models: Vec<Box<dyn Classifier>> = vec![
            Box::new(loopml_ml::NearNeighbors::new(loopml_ml::DEFAULT_RADIUS)),
            Box::new(loopml_ml::MulticlassSvm::new(SvmParams::default())),
        ];
        for m in &mut models {
            m.fit(&d);
            for x in &d.x {
                assert!(m.predict(x) < 8, "{} out of range", m.name());
            }
        }
    }

    #[test]
    fn loocv_accuracy_works_on_any_classifier() {
        let d = to_dataset(&labeled());
        let acc = loocv_accuracy(&d, &loopml_ml::Constant::new(0));
        assert!((0.0..=1.0).contains(&acc));
        let nn_acc = loocv_accuracy(&d, &loopml_ml::NearNeighbors::new(0.3));
        assert!((0.0..=1.0).contains(&nn_acc));
    }

    #[test]
    fn svm_training_error_is_fraction() {
        let d = to_dataset(&labeled());
        let e = svm_training_error(&d, SvmParams::default());
        assert!((0.0..=1.0).contains(&e));
    }
}
