//! # loopml — predicting unroll factors using supervised classification
//!
//! A production-quality Rust reproduction of *Stephenson & Amarasinghe,
//! "Predicting Unroll Factors Using Supervised Classification", CGO
//! 2005*. This crate is the top of the stack: it combines the compiler
//! substrate ([`loopml_ir`], [`loopml_opt`]), the Itanium-2-flavoured
//! machine model ([`loopml_machine`]), the synthetic training corpus
//! ([`loopml_corpus`]) and the learning algorithms ([`loopml_ml`]) into
//! the paper's methodology:
//!
//! 1. [`features::extract`] — 38 static loop features (Table 1);
//! 2. [`label::label_suite`] — measure every loop at unroll factors
//!    1..=8 through the noisy-measurement model, filter, and label;
//! 3. [`pipeline::to_dataset`] + [`loopml_ml`] — train NN / SVM
//!    classifiers and evaluate with leave-one-out cross validation;
//! 4. [`heuristics`] — deploy classifiers as compile-time heuristics
//!    next to the hand-written ORC-style baselines;
//! 5. [`evaluate`] — realize whole-benchmark speedups (Figures 4/5).
//!
//! # Examples
//!
//! Train on one benchmark and predict a factor for a novel loop:
//!
//! ```
//! use loopml::heuristics::{LearnedHeuristic, UnrollHeuristic};
//! use loopml::label::{label_benchmark, LabelConfig};
//! use loopml::pipeline::{to_dataset, train_nn};
//! use loopml_corpus::{synthesize, SuiteConfig, ROSTER};
//! use loopml_machine::{NoiseModel, SwpMode};
//!
//! let bench = synthesize(&ROSTER[2], &SuiteConfig {
//!     min_loops: 12, max_loops: 14, ..SuiteConfig::default()
//! });
//! let cfg = LabelConfig { noise: NoiseModel::exact(), ..LabelConfig::paper(SwpMode::Disabled) };
//! let labeled = label_benchmark(&bench, 0, &cfg);
//! let data = to_dataset(&labeled);
//! let nn = LearnedHeuristic::new("nn", None, train_nn(&data, loopml_ml::DEFAULT_RADIUS));
//! let factor = nn.choose(&bench.loops[0].body);
//! assert!((1..=8).contains(&factor));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod evaluate;
pub mod features;
pub mod heuristics;
pub mod label;
pub mod pipeline;

pub use evaluate::{
    improvement, measure_benchmark, measure_oracle, oracle_choices, run_benchmark, EvalConfig,
};
pub use features::{extract, FEATURE_NAMES, NUM_FEATURES};
pub use heuristics::{LearnedHeuristic, OrcHeuristic, OrcSwpHeuristic, UnrollHeuristic};
pub use label::{hot_footprint, label_benchmark, label_suite, LabelConfig, LabeledLoop, MAX_UNROLL};
pub use pipeline::{
    benchmark_groups, informative_features, svm_training_error, to_dataset, train_nn, train_svm,
};
