//! # loopml — predicting unroll factors using supervised classification
//!
//! A production-quality Rust reproduction of *Stephenson & Amarasinghe,
//! "Predicting Unroll Factors Using Supervised Classification", CGO
//! 2005*. This crate is the top of the stack: it combines the compiler
//! substrate ([`loopml_ir`], [`loopml_opt`]), the Itanium-2-flavoured
//! machine model ([`loopml_machine`]), the synthetic training corpus
//! ([`loopml_corpus`]) and the learning algorithms ([`loopml_ml`]) into
//! the paper's methodology:
//!
//! 1. [`features::extract`] — 38 static loop features (Table 1);
//! 2. [`label::label_suite`] — measure every loop at unroll factors
//!    1..=8 through the noisy-measurement model, filter, and label;
//! 3. [`pipeline::to_dataset`] + [`loopml_ml`] — train NN / SVM
//!    classifiers and evaluate with leave-one-out cross validation;
//! 4. [`heuristics`] — deploy classifiers as compile-time heuristics
//!    next to the hand-written ORC-style baselines;
//! 5. [`evaluate`] — realize whole-benchmark speedups (Figures 4/5).
//!
//! Labeling and evaluation are deterministic *and* parallel: every
//! measurement-noise stream is seeded per loop, so
//! [`label::label_suite`] produces bit-identical results at any worker
//! count (see `crates/rt`). Any model implementing the object-safe
//! [`loopml_ml::Classifier`] trait plugs into the pipeline unchanged.
//!
//! The pipeline is also fault-tolerant: [`label::label_suite_resilient`]
//! retries transient failures under fresh deterministic seeds,
//! quarantines work that exhausts its budget (reported via
//! [`fault::DegradationReport`]), checkpoints completed benchmarks for
//! `repro label --resume` ([`checkpoint`]), and withstands the
//! deterministic chaos of [`loopml_rt::FaultPlane`] (`LOOPML_FAULTS`).
//!
//! # Examples
//!
//! Assemble the pipeline with [`PipelineBuilder`] and deploy a trained
//! classifier as a compile-time heuristic:
//!
//! ```
//! use loopml::{PipelineBuilder, UnrollHeuristic};
//! use loopml_corpus::SuiteConfig;
//! use loopml_ml::{NearNeighbors, DEFAULT_RADIUS};
//!
//! let pipeline = PipelineBuilder::paper()
//!     .suite_config(SuiteConfig { min_loops: 12, max_loops: 14, ..SuiteConfig::default() })
//!     .take_benchmarks(4)
//!     .exact()
//!     .all_features()
//!     .build();
//! let nn = pipeline.heuristic("nn", Box::new(NearNeighbors::new(DEFAULT_RADIUS)));
//! let factor = nn.choose(&pipeline.suite[0].loops[0].body);
//! assert!((1..=8).contains(&factor));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod artifact;
pub mod builder;
pub mod checkpoint;
pub mod evaluate;
pub mod fault;
pub mod features;
pub mod heuristics;
pub mod label;
pub mod pipeline;

pub use artifact::{
    classifier_for_kind, dataset_fingerprint, model_fingerprint, ModelArtifact, MODEL_SCHEMA,
};
pub use builder::{Pipeline, PipelineBuilder, PipelineConfig};
pub use checkpoint::{
    checkpoint_path, config_fingerprint, labeled_from_json, labeled_to_json, read_checkpoint,
    write_checkpoint, CKPT_SCHEMA,
};
pub use evaluate::{
    improvement, measure_benchmark, measure_oracle, oracle_choices, run_benchmark, EvalConfig,
};
pub use fault::{
    BenchmarkOutcome, DegradationReport, LabelError, QuarantineEntry, QuarantineScope,
    DEGRADATION_SCHEMA,
};
pub use features::{
    extract, extract_prover, extract_with_prover, FEATURE_NAMES, NUM_FEATURES, NUM_PROVER_FEATURES,
    PROVER_FEATURE_NAMES,
};
pub use heuristics::{
    LearnedHeuristic, OrcClassifier, OrcHeuristic, OrcSwpHeuristic, UnrollHeuristic,
};
pub use label::{
    attempt_seed, hot_footprint, label_benchmark, label_benchmark_resilient,
    label_benchmark_threads, label_loop, label_loop_attempt, label_loop_resilient, label_suite,
    label_suite_resilient, label_suite_resilient_sharded, label_suite_threads, LabelConfig,
    LabelRun, LabeledLoop, LoopOutcome, ResilienceConfig, Shard, DEFAULT_RETRY_BUDGET, MAX_UNROLL,
};
pub use pipeline::{
    benchmark_groups, feature_names, informative_features, loocv_accuracy, svm_training_error,
    to_dataset,
};
