//! Unroll-factor heuristics: the hand-written ORC-style baselines the
//! learned classifiers are compared against, and the learned-classifier
//! adapter itself.

use loopml_ir::{Loop, TripCount};
use loopml_machine::MachineConfig;
use loopml_ml::{Classifier, Dataset};

use crate::features::{extract, NUM_FEATURES};
use crate::label::MAX_UNROLL;

/// Anything that can pick an unroll factor for a loop at compile time.
pub trait UnrollHeuristic {
    /// Chooses a factor in `1..=8` for the loop.
    fn choose(&self, l: &Loop) -> u32;

    /// Heuristic name for reporting.
    fn name(&self) -> &str;
}

/// A hand-tuned heuristic in the spirit of ORC's non-SWP unroller:
/// body-size buckets pick an aggressiveness level, small known trip
/// counts unroll fully, non-divisible factors are rounded to avoid
/// remainder loops, and unknown trip counts are handled cautiously
/// (every intermediate boundary needs an exit check).
#[derive(Debug, Clone, Default)]
pub struct OrcHeuristic;

impl UnrollHeuristic for OrcHeuristic {
    fn choose(&self, l: &Loop) -> u32 {
        if !l.is_unrollable() {
            return 1;
        }
        let n = l.len() as u32;
        // Code-size bucket: aim for an unrolled body of ~48 instructions.
        let mut u = match n {
            0..=11 => 8,
            12..=23 => 4,
            24..=47 => 2,
            _ => 1,
        };
        match l.trip_count {
            TripCount::Known(t) => {
                // Tiny known trips: unroll completely.
                if t <= u64::from(MAX_UNROLL) {
                    return (t as u32).max(1);
                }
                // Avoid remainder iterations: shrink to a divisor.
                while u > 1 && t % u64::from(u) != 0 {
                    u /= 2;
                }
            }
            TripCount::Unknown { .. } => {
                // Boundary exits are expensive; stay modest.
                u = u.min(4);
            }
        }
        u.max(1)
    }

    fn name(&self) -> &str {
        "ORC"
    }
}

/// A hand-tuned heuristic in the spirit of ORC's SWP-era unroller (the
/// "205 lines of C++", reworked in every ORC release): it consults the
/// same scheduler machinery the pipeliner uses — the resource- and
/// recurrence-constrained initiation-interval bounds of the *actually
/// unrolled and optimized* body — and picks the smallest factor
/// minimizing the projected cycles per original iteration, with a
/// register-pressure guard, a crude (half-strength) cache-stall estimate,
/// and per-entry overheads amortized over the static trip estimate. The
/// *residual* — everything the projection gets wrong about the real
/// machine — is what the learned classifiers pick up.
#[derive(Debug, Clone)]
pub struct OrcSwpHeuristic {
    machine: MachineConfig,
}

impl OrcSwpHeuristic {
    /// Creates the heuristic for a machine description.
    pub fn new(machine: MachineConfig) -> Self {
        OrcSwpHeuristic { machine }
    }
}

impl Default for OrcSwpHeuristic {
    fn default() -> Self {
        OrcSwpHeuristic::new(MachineConfig::itanium2())
    }
}

impl UnrollHeuristic for OrcSwpHeuristic {
    fn choose(&self, l: &Loop) -> u32 {
        use loopml_ir::{DepGraph, Opcode};
        use loopml_machine::{list_schedule, max_live, rec_mii, res_mii};
        use loopml_opt::{unroll_and_optimize, OptConfig};

        if !l.is_unrollable() {
            return 1;
        }
        let opt = OptConfig::default();
        // Static trip estimate: the compiler sees known counts; unknown
        // counts get the traditional "assume ~100 iterations" default.
        let trips = match l.trip_count {
            TripCount::Known(t) => t as f64,
            TripCount::Unknown { .. } => 100.0,
        };
        let mut rolled_per_iter = 0.0;
        let mut best = (1u32, f64::INFINITY);
        for u in 1..=MAX_UNROLL {
            if let TripCount::Known(t) = l.trip_count {
                if t < u64::from(u) {
                    break;
                }
            }
            let un = unroll_and_optimize(l, u, &opt);
            if un.body.len() > self.machine.swp_body_limit {
                break;
            }
            let g = DepGraph::analyze(&un.body);
            let eligible =
                !un.body.has_call() && !un.body.body.iter().any(|i| i.opcode == Opcode::BrExit);
            let s = list_schedule(&un.body, &g, &self.machine);
            let kernel = if eligible {
                // Projected pipelined kernel: the MII bounds (the real
                // scheduler usually achieves them on these bodies).
                res_mii(&un.body, &self.machine).max(rec_mii(&un.body, &g, &self.machine))
            } else {
                s.iter_interval
            };
            // Register-pressure guard: reject factors that would spill.
            let pressure = max_live(&un.body, &g, &s.starts, kernel.max(1));
            if pressure.spilled(&self.machine) > 0 {
                continue;
            }
            // Steady-state projection: kernel plus memory stalls (ORC's
            // heuristic was tuned empirically, which bakes in first-order
            // cache behaviour even though no one wrote a cache model).
            // The hand model's cache estimate is crude: it sees only
            // half of the memory-level-parallelism benefit the machine
            // actually delivers (the paper's point about how hard the
            // secondary effects are to model by hand).
            let stall = 0.5 * loopml_machine::dcache_stall_per_iter(&un.body, &self.machine);
            let steady = (f64::from(kernel) + stall) / f64::from(u);
            if u == 1 {
                rolled_per_iter = steady;
            }
            // Per-entry overheads, amortized over the static trip
            // estimate: pipeline fill/drain, cold instruction fetch, and
            // the remainder loop of non-divisible known trip counts.
            let stages = s.length.div_ceil(kernel.max(1));
            let fill_drain = if eligible {
                2.0 * f64::from(stages.saturating_sub(1)) * f64::from(kernel)
            } else {
                0.0
            };
            let lines = un.body.code_bytes().div_ceil(self.machine.icache_line) as f64;
            let ifetch = lines * self.machine.ifetch_penalty * 0.5;
            let remainder = match l.trip_count {
                TripCount::Known(t) => (t % u64::from(u)) as f64 * rolled_per_iter,
                TripCount::Unknown { .. } => 0.0,
            };
            let per_orig = steady + (fill_drain + ifetch + remainder) / trips;
            // Conservative selection, as hand heuristics are: only move to
            // a *larger* factor for a clear (>5%) projected win. Code
            // growth is never free, and the projection is known to be
            // approximate.
            if per_orig < best.1 * 0.95 {
                best = (u, per_orig);
            }
        }
        best.0
    }

    fn name(&self) -> &str {
        "ORC-SWP"
    }
}

/// The ORC-style baseline behind the [`Classifier`] interface: a
/// stateless adapter recomputing [`OrcHeuristic`]'s decision from the
/// 38-feature vector alone (`# ops in loop body`, the tripcount pair).
/// `fit` is a no-op — there is nothing to train — which makes the
/// baseline interchangeable with NN and SVM anywhere a
/// `&mut dyn Classifier` is expected (LOOCV tables, rank distributions).
#[derive(Debug, Clone, Default)]
pub struct OrcClassifier;

/// Column of `# ops in loop body` in the full feature vector.
const F_OPS: usize = 1;
/// Column of `tripcount (-1 unknown)`.
const F_TRIP: usize = 19;
/// Column of the `known tripcount` indicator.
const F_KNOWN: usize = 25;

impl Classifier for OrcClassifier {
    fn fit(&mut self, _data: &Dataset) {}

    fn predict(&self, x: &[f64]) -> usize {
        let n = x[F_OPS] as u32;
        let mut u: u64 = match n {
            0..=11 => 8,
            12..=23 => 4,
            24..=47 => 2,
            _ => 1,
        };
        if x[F_KNOWN] >= 0.5 {
            let t = x[F_TRIP].max(0.0) as u64;
            // Tiny known trips: unroll completely.
            if t <= u64::from(MAX_UNROLL) {
                return (t.max(1) - 1) as usize;
            }
            // Avoid remainder iterations: shrink to a divisor.
            while u > 1 && !t.is_multiple_of(u) {
                u /= 2;
            }
        } else {
            // Boundary exits are expensive; stay modest.
            u = u.min(4);
        }
        (u.max(1) - 1) as usize
    }

    fn name(&self) -> &str {
        "ORC"
    }

    fn fresh(&self) -> Box<dyn Classifier> {
        Box::new(OrcClassifier)
    }

    fn save(&self) -> loopml_rt::Json {
        // Stateless: the kind tag is the whole state.
        loopml_rt::Json::obj([("kind", loopml_rt::Json::Str("ORC".into()))])
    }

    fn load(&mut self, state: &loopml_rt::Json) -> Result<(), String> {
        match state.get("kind").and_then(loopml_rt::Json::as_str) {
            Some("ORC") => Ok(()),
            Some(k) => Err(format!("state is for model kind {k:?}, not \"ORC\"")),
            None => Err("state has no \"kind\" tag".into()),
        }
    }
}

/// A learned heuristic: a trained [`Classifier`] behind the compile-time
/// interface. The classifier receives the loop's 38 raw features (or the
/// subset it was trained on, selected by `feature_subset`).
pub struct LearnedHeuristic {
    classifier: Box<dyn Classifier>,
    feature_subset: Option<Vec<usize>>,
    /// Width of the full vector to extract at choose time: the paper's
    /// 38, or 38 + the prover block when the subset (or the training
    /// data, for subset-free classifiers) reaches past it.
    input_dims: usize,
    name: String,
}

impl std::fmt::Debug for LearnedHeuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LearnedHeuristic({})", self.name)
    }
}

impl LearnedHeuristic {
    /// Wraps an already-fitted classifier predicting classes `0..8`
    /// (factor − 1). If `feature_subset` is given, the classifier sees
    /// only those columns of the full feature vector, in order — it
    /// must have been trained on the matching projection. A subset
    /// indexing past the 38 paper features makes [`choose`] extract the
    /// prover-extended vector.
    ///
    /// [`choose`]: UnrollHeuristic::choose
    pub fn new(
        name: impl Into<String>,
        feature_subset: Option<Vec<usize>>,
        classifier: Box<dyn Classifier>,
    ) -> Self {
        let input_dims = feature_subset.as_ref().map_or(NUM_FEATURES, |cols| {
            cols.iter()
                .map(|&c| c + 1)
                .max()
                .unwrap_or(0)
                .max(NUM_FEATURES)
        });
        LearnedHeuristic {
            classifier,
            feature_subset,
            input_dims,
            name: name.into(),
        }
    }

    /// Fits `classifier` on `data` (already restricted to
    /// `feature_subset`, if any) and wraps it. For subset-free
    /// classifiers the training width of `data` fixes the extraction
    /// width at choose time.
    pub fn fit(
        name: impl Into<String>,
        feature_subset: Option<Vec<usize>>,
        mut classifier: Box<dyn Classifier>,
        data: &Dataset,
    ) -> Self {
        classifier.fit(data);
        let mut h = LearnedHeuristic::new(name, feature_subset, classifier);
        if h.feature_subset.is_none() {
            h.input_dims = h.input_dims.max(data.dims());
        }
        h
    }

    /// The wrapped classifier.
    pub fn classifier(&self) -> &dyn Classifier {
        self.classifier.as_ref()
    }
}

impl UnrollHeuristic for LearnedHeuristic {
    fn choose(&self, l: &Loop) -> u32 {
        if !l.is_unrollable() {
            return 1;
        }
        let full = if self.input_dims > NUM_FEATURES {
            crate::features::extract_with_prover(l)
        } else {
            extract(l)
        };
        let x: Vec<f64> = match &self.feature_subset {
            Some(cols) => cols.iter().map(|&c| full[c]).collect(),
            None => full,
        };
        (self.classifier.predict(&x) as u32 + 1).min(MAX_UNROLL)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopml_ir::{ArrayId, Inst, LoopBuilder, MemRef, Opcode};

    fn loop_of_size(n: usize, trip: TripCount) -> Loop {
        let mut b = LoopBuilder::new("l", trip);
        for k in 0..n {
            let r = b.fp_reg();
            b.load(r, MemRef::affine(ArrayId(k as u32), 8, 0, 8));
        }
        b.build()
    }

    #[test]
    fn orc_unrolls_small_bodies_more() {
        let h = OrcHeuristic;
        let small = loop_of_size(1, TripCount::Known(1024));
        let big = loop_of_size(60, TripCount::Known(1024));
        assert!(h.choose(&small) > h.choose(&big));
        assert_eq!(h.choose(&big), 1);
    }

    #[test]
    fn orc_fully_unrolls_tiny_trips() {
        let h = OrcHeuristic;
        let l = loop_of_size(2, TripCount::Known(5));
        assert_eq!(h.choose(&l), 5);
    }

    #[test]
    fn orc_avoids_remainders() {
        let h = OrcHeuristic;
        // 1030 = 2 * 5 * 103: 8 and 4 leave remainders, 2 divides.
        let l = loop_of_size(2, TripCount::Known(1030));
        assert_eq!(h.choose(&l), 2);
    }

    #[test]
    fn orc_caps_unknown_trips() {
        let h = OrcHeuristic;
        let l = loop_of_size(2, TripCount::Unknown { estimate: 1024 });
        assert!(h.choose(&l) <= 4);
    }

    #[test]
    fn orc_swp_considers_unknown_trips_via_the_scheduler() {
        // Unrolling an unknown-trip loop disables pipelining; the
        // heuristic compares the pipelined rolled kernel against the
        // list-scheduled unrolled one and picks whichever projects
        // faster. Either way the answer is a valid factor.
        let h = OrcSwpHeuristic::default();
        let l = loop_of_size(3, TripCount::Unknown { estimate: 1024 });
        assert!((1..=8).contains(&h.choose(&l)));
    }

    #[test]
    fn orc_swp_captures_fractional_ii() {
        let h = OrcSwpHeuristic::default();
        // 8 instructions on a 6-wide machine: ceil(8/6)=2 rolled (waste),
        // unroll 3 -> ceil(24/6)/3 = 4/3 per iteration: better.
        let l = loop_of_size(5, TripCount::Known(1200)); // 8 insts with control
        assert!(h.choose(&l) > 1, "chose {}", h.choose(&l));
    }

    #[test]
    fn heuristics_never_unroll_call_loops() {
        let mut b = LoopBuilder::new("c", TripCount::Known(64));
        b.call();
        let l = b.build();
        assert_eq!(OrcHeuristic.choose(&l), 1);
        assert_eq!(OrcSwpHeuristic::default().choose(&l), 1);
    }

    #[test]
    fn learned_heuristic_maps_class_to_factor() {
        let h = LearnedHeuristic::new("const-3", None, Box::new(loopml_ml::Constant::new(3)));
        let l = loop_of_size(2, TripCount::Known(100));
        assert_eq!(h.choose(&l), 4);
        assert_eq!(h.name(), "const-3");
    }

    #[test]
    fn learned_heuristic_selects_features() {
        /// Predicts the dimensionality it was queried with — a probe for
        /// the feature projection.
        #[derive(Debug)]
        struct DimProbe;
        impl Classifier for DimProbe {
            fn fit(&mut self, _data: &Dataset) {}
            fn predict(&self, x: &[f64]) -> usize {
                x.len() // 1 feature -> class 1 -> factor 2
            }
            fn name(&self) -> &str {
                "probe"
            }
            fn fresh(&self) -> Box<dyn Classifier> {
                Box::new(DimProbe)
            }
            fn save(&self) -> loopml_rt::Json {
                loopml_rt::Json::obj([("kind", loopml_rt::Json::Str("probe".into()))])
            }
            fn load(&mut self, _state: &loopml_rt::Json) -> Result<(), String> {
                Ok(())
            }
        }
        let h = LearnedHeuristic::new("first-feature", Some(vec![0]), Box::new(DimProbe));
        let mut b = LoopBuilder::new("l", TripCount::Known(10));
        let r = b.fp_reg();
        b.inst(Inst::new(Opcode::FAdd, vec![r], vec![r, r]));
        assert_eq!(h.choose(&b.build()), 2);
    }

    #[test]
    fn orc_classifier_matches_orc_heuristic() {
        // The feature-space adapter must agree with the loop-space
        // heuristic on every unrollable corpus loop.
        use loopml_corpus::{synthesize, SuiteConfig, ROSTER};
        let adapted = LearnedHeuristic::new("ORC", None, Box::new(OrcClassifier));
        let mut checked = 0;
        for entry in ROSTER.iter().take(6) {
            let b = synthesize(
                entry,
                &SuiteConfig {
                    min_loops: 12,
                    max_loops: 14,
                    ..SuiteConfig::default()
                },
            );
            for (_, w) in b.unrollable() {
                assert_eq!(
                    adapted.choose(&w.body),
                    OrcHeuristic.choose(&w.body),
                    "diverged on {}",
                    w.body.name
                );
                checked += 1;
            }
        }
        assert!(checked >= 20, "only {checked} loops compared");
    }

    #[test]
    fn orc_classifier_needs_no_fit() {
        let mut c = OrcClassifier;
        // Tiny body, known trip 1024 (divisible by 8): factor 8, class 7.
        let mut x = vec![0.0; crate::features::NUM_FEATURES];
        x[1] = 4.0;
        x[19] = 1024.0;
        x[25] = 1.0;
        assert_eq!(c.predict(&x), 7);
        // Unknown trip count caps at factor 4.
        x[19] = -1.0;
        x[25] = 0.0;
        assert_eq!(c.predict(&x), 3);
        // fit is a no-op and must not disturb predictions.
        let d = Dataset::new(
            vec![x.clone()],
            vec![0],
            8,
            (0..x.len()).map(|j| format!("f{j}")).collect(),
            vec!["e".into()],
        );
        c.fit(&d);
        assert_eq!(c.predict(&x), 3);
        assert_eq!(Classifier::name(&c), "ORC");
    }
}
