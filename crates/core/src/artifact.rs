//! Versioned model artifacts: train once, serve many.
//!
//! The paper's end goal is a classifier a compiler consults at
//! optimization time — which means a *shipped* trained model, not a
//! retrain-from-corpus on every run. A [`ModelArtifact`] packages a
//! trained [`Classifier`]'s saved state (weights, normalizer,
//! hyperparameters), the feature subset it was trained on, and a config
//! fingerprint under the `loopml/model/v1` schema, written atomically
//! (temp file + rename) like PR 4's labeling checkpoints.
//!
//! Unlike checkpoints — where corruption silently falls back to
//! recomputing — a stale or corrupt artifact must fail *loudly*: the
//! consumer (the `loopml-serve` daemon, a compiler) has no corpus to
//! fall back to, and serving predictions from the wrong model is a
//! correctness bug, not a performance one. Every mismatch here is an
//! `Err`, never a silent default.
//!
//! The fingerprint covers everything a trained model's *identity*
//! depends on that is knowable without the weights: the training
//! dataset (all feature bits and labels), the feature subset, the model
//! kind, and its hyperparameters. [`Pipeline::load_artifact`] recomputes
//! it from the current pipeline and rejects any artifact trained under
//! a different configuration — mirroring the checkpoint fingerprint
//! discipline, but erroring instead of silently relabeling.
//!
//! [`Pipeline::load_artifact`]: crate::builder::Pipeline::load_artifact

use std::collections::BTreeMap;
use std::path::Path;

use loopml_ml::{
    BaggedForest, Classifier, Constant, Dataset, DecisionTree, ForestParams, Mlp, MlpParams,
    MulticlassSvm, NearNeighbors, SvmParams, TreeParams, DEFAULT_RADIUS,
};
use loopml_rt::{fault_key, Json};

use crate::heuristics::{LearnedHeuristic, OrcClassifier};

/// Schema tag stamped into every model artifact file.
pub const MODEL_SCHEMA: &str = "loopml/model/v1";

/// Fingerprint of a training dataset: every feature bit, every label,
/// and the shape. Two corpora that differ in any example — or the same
/// corpus filtered or featurized differently — fingerprint differently.
pub fn dataset_fingerprint(data: &Dataset) -> u64 {
    let mut words = Vec::with_capacity(3 + data.len() * (data.dims() + 1));
    words.push(data.len() as u64);
    words.push(data.dims() as u64);
    words.push(data.classes as u64);
    for (row, &y) in data.x.iter().zip(&data.y) {
        words.push(y as u64);
        words.extend(row.iter().map(|v| v.to_bits()));
    }
    fault_key(&words)
}

/// Hashes a string through the same mixer as the numeric fingerprints.
fn hash_str(s: &str) -> u64 {
    fault_key(&s.bytes().map(u64::from).collect::<Vec<u64>>())
}

/// The hyperparameter portion of a saved classifier state — the part of
/// the model's identity that is knowable without training. Weights are
/// deliberately excluded: the loader must be able to recompute the
/// fingerprint from configuration alone.
fn hyperparams_of_state(state: &Json) -> Json {
    match state.get("kind").and_then(Json::as_str) {
        Some("SVM") | Some("Tree") | Some("Forest") | Some("MLP") => {
            state.get("params").cloned().unwrap_or(Json::Null)
        }
        Some("NN") => state.get("radius").cloned().unwrap_or(Json::Null),
        Some("constant") => state.get("class").cloned().unwrap_or(Json::Null),
        _ => Json::Null,
    }
}

/// Fingerprint of everything a trained model's identity depends on:
/// the training corpus (via [`dataset_fingerprint`] of the *full*
/// 38-feature dataset), the feature subset the model actually sees, the
/// model kind, and its hyperparameters (extracted from the saved
/// `state`, never the weights). An artifact whose stored fingerprint
/// disagrees with the loader's recomputation was trained under a
/// different configuration and is rejected.
pub fn model_fingerprint(dataset_fp: u64, feature_subset: Option<&[usize]>, state: &Json) -> u64 {
    let kind = state.get("kind").and_then(Json::as_str).unwrap_or("");
    let mut words = vec![
        dataset_fp,
        hash_str(kind),
        hash_str(&hyperparams_of_state(state).to_string()),
    ];
    match feature_subset {
        Some(cols) => {
            words.push(1 + cols.len() as u64);
            words.extend(cols.iter().map(|&c| c as u64));
        }
        None => words.push(0),
    }
    fault_key(&words)
}

/// An unfitted classifier of the named kind, ready for
/// [`Classifier::load`]. The constructor hyperparameters are
/// placeholders — `load` replaces them with the saved ones.
pub fn classifier_for_kind(kind: &str) -> Result<Box<dyn Classifier>, String> {
    match kind {
        "NN" => Ok(Box::new(NearNeighbors::new(DEFAULT_RADIUS))),
        "SVM" => Ok(Box::new(MulticlassSvm::new(SvmParams::default()))),
        "Tree" => Ok(Box::new(DecisionTree::new(TreeParams::default()))),
        "Forest" => Ok(Box::new(BaggedForest::new(ForestParams::default()))),
        "MLP" => Ok(Box::new(Mlp::new(MlpParams::default()))),
        "ORC" => Ok(Box::new(OrcClassifier)),
        "constant" => Ok(Box::new(Constant::new(0))),
        other => Err(format!("unknown model kind {other:?}")),
    }
}

/// A versioned, fingerprinted package of one trained model: the
/// classifier's saved state, the feature projection it expects, and a
/// display name, under the [`MODEL_SCHEMA`] schema.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// Heuristic display name ("NN", "SVM", …).
    pub name: String,
    /// Columns of the 38-feature vector the model sees (`None` = all).
    pub feature_subset: Option<Vec<usize>>,
    /// [`model_fingerprint`] computed at train time.
    pub fingerprint: u64,
    state: Json,
}

impl ModelArtifact {
    /// Packages a trained classifier. `fingerprint` should come from
    /// [`model_fingerprint`] (or [`Pipeline::train_artifact`], which
    /// computes it for you).
    ///
    /// [`Pipeline::train_artifact`]: crate::builder::Pipeline::train_artifact
    pub fn new(
        name: impl Into<String>,
        feature_subset: Option<Vec<usize>>,
        fingerprint: u64,
        state: Json,
    ) -> Self {
        ModelArtifact {
            name: name.into(),
            feature_subset,
            fingerprint,
            state,
        }
    }

    /// The saved classifier state (the document [`Classifier::save`]
    /// produced).
    pub fn state(&self) -> &Json {
        &self.state
    }

    /// The model kind tag recorded in the state ("NN", "SVM", "ORC", …).
    pub fn kind(&self) -> &str {
        self.state
            .get("kind")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
    }

    /// Serializes the artifact document.
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("schema".into(), Json::Str(MODEL_SCHEMA.into()));
        m.insert(
            "fingerprint".into(),
            Json::Str(format!("{:#018x}", self.fingerprint)),
        );
        m.insert("name".into(), Json::Str(self.name.clone()));
        m.insert(
            "feature_subset".into(),
            match &self.feature_subset {
                Some(cols) => Json::from_usizes(cols),
                None => Json::Null,
            },
        );
        m.insert("classifier".into(), self.state.clone());
        Json::Obj(m)
    }

    /// Parses an artifact document, validating the schema version.
    /// Every defect — wrong schema, malformed fingerprint, missing
    /// fields — is a loud error naming what is wrong.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        match doc.get("schema").and_then(Json::as_str) {
            Some(s) if s == MODEL_SCHEMA => {}
            Some(s) => {
                return Err(format!(
                    "artifact schema is {s:?}, expected {MODEL_SCHEMA:?}"
                ))
            }
            None => return Err("artifact has no schema tag".into()),
        }
        let fp_text = doc
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or("artifact has no fingerprint")?;
        let fingerprint = fp_text
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| format!("artifact fingerprint {fp_text:?} is not 0x-hex"))?;
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or("artifact has no name")?
            .to_string();
        let feature_subset = match doc.get("feature_subset") {
            Some(Json::Null) => None,
            Some(v) => Some(
                v.as_usizes()
                    .ok_or("artifact feature_subset is not an index array")?,
            ),
            None => return Err("artifact has no feature_subset field".into()),
        };
        let state = doc
            .get("classifier")
            .ok_or("artifact has no classifier state")?
            .clone();
        Ok(ModelArtifact {
            name,
            feature_subset,
            fingerprint,
            state,
        })
    }

    /// Reconstructs the deployable heuristic: an unfitted classifier of
    /// the recorded kind, loaded with the saved state, behind the saved
    /// feature projection. Predicts bit-identically to the heuristic the
    /// artifact was trained from.
    pub fn to_heuristic(&self) -> Result<LearnedHeuristic, String> {
        let mut classifier = classifier_for_kind(self.kind())?;
        classifier.load(&self.state)?;
        Ok(LearnedHeuristic::new(
            self.name.clone(),
            self.feature_subset.clone(),
            classifier,
        ))
    }

    /// Writes the artifact atomically (temp file + rename): a kill
    /// mid-write leaves the old file or none, never a torn document.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, format!("{}\n", self.to_json()))?;
        std::fs::rename(&tmp, path)
    }

    /// Reads and validates an artifact file. Missing files, truncation,
    /// invalid JSON and schema mismatches are all loud errors.
    pub fn read(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read artifact {}: {e}", path.display()))?;
        let doc = Json::parse(&text)
            .map_err(|e| format!("artifact {} is not valid JSON: {e}", path.display()))?;
        Self::from_json(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![
                vec![0.0, 1.0],
                vec![0.2, 0.9],
                vec![5.0, -2.0],
                vec![5.2, -2.2],
            ],
            vec![0, 0, 1, 1],
            2,
            vec!["a".into(), "b".into()],
            (0..4).map(|i| format!("e{i}")).collect(),
        )
    }

    #[test]
    fn dataset_fingerprint_tracks_every_bit() {
        let a = toy();
        let mut b = toy();
        assert_eq!(dataset_fingerprint(&a), dataset_fingerprint(&b));
        b.x[2][1] = -2.0000000001;
        assert_ne!(dataset_fingerprint(&a), dataset_fingerprint(&b));
        let mut c = toy();
        c.y[0] = 1;
        assert_ne!(dataset_fingerprint(&a), dataset_fingerprint(&c));
    }

    #[test]
    fn model_fingerprint_tracks_subset_kind_and_hyperparams() {
        let dfp = dataset_fingerprint(&toy());
        let nn = {
            let mut m = NearNeighbors::new(0.3);
            Classifier::fit(&mut m, &toy());
            Classifier::save(&m)
        };
        let base = model_fingerprint(dfp, None, &nn);
        assert_eq!(base, model_fingerprint(dfp, None, &nn), "deterministic");
        assert_ne!(base, model_fingerprint(dfp ^ 1, None, &nn), "corpus");
        assert_ne!(base, model_fingerprint(dfp, Some(&[0, 1]), &nn), "subset");
        let other_radius = {
            let mut m = NearNeighbors::new(0.7);
            Classifier::fit(&mut m, &toy());
            Classifier::save(&m)
        };
        assert_ne!(base, model_fingerprint(dfp, None, &other_radius), "hyper");
        let svm = Classifier::save(&MulticlassSvm::new(SvmParams::default()));
        assert_ne!(base, model_fingerprint(dfp, None, &svm), "kind");
    }

    #[test]
    fn artifact_round_trips_through_text() {
        let mut m = NearNeighbors::new(0.45);
        Classifier::fit(&mut m, &toy());
        let state = Classifier::save(&m);
        let fp = model_fingerprint(dataset_fingerprint(&toy()), Some(&[0, 1]), &state);
        let a = ModelArtifact::new("NN", Some(vec![0, 1]), fp, state);
        let text = a.to_json().to_string();
        let back = ModelArtifact::from_json(&Json::parse(&text).unwrap()).expect("parse");
        assert_eq!(back, a);
        assert_eq!(back.kind(), "NN");
        let h = back.to_heuristic().expect("reconstruct");
        for x in &toy().x {
            assert_eq!(h.classifier().predict(x), Classifier::predict(&m, x));
        }
    }

    #[test]
    fn wrong_schema_and_garbage_fail_loudly() {
        let a = ModelArtifact::new("ORC", None, 7, Classifier::save(&OrcClassifier));
        let tampered = a
            .to_json()
            .to_string()
            .replace(MODEL_SCHEMA, "loopml/model/v0");
        let err = ModelArtifact::from_json(&Json::parse(&tampered).unwrap()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        assert!(ModelArtifact::from_json(&Json::Null).is_err());
        assert!(classifier_for_kind("RandomForest").is_err());
    }

    #[test]
    fn file_round_trip_and_truncation() {
        let dir = std::env::temp_dir().join("loopml_artifact_unit");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("model.json");
        let a = ModelArtifact::new("ORC", None, 42, Classifier::save(&OrcClassifier));
        a.write(&path).expect("write");
        assert_eq!(ModelArtifact::read(&path), Ok(a));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let err = ModelArtifact::read(&path).unwrap_err();
        assert!(err.contains("not valid JSON"), "{err}");
        assert!(ModelArtifact::read(&dir.join("absent.json")).is_err());
    }
}
