//! The 38-feature loop characterization (paper Table 1 plus the
//! additional features referenced by Tables 3 and 4).
//!
//! Feature extraction is purely static: everything is derived from the IR
//! of a single loop via dependence analysis, DAG summarization and
//! liveness — exactly the quantities ORC had "readily available" (§8).

use loopml_ir::{analyze_liveness, summarize, DepGraph, Loop, MemRef, OpClass, Opcode, Reg};

/// Number of features extracted per loop.
pub const NUM_FEATURES: usize = 38;

/// Names of the 38 features, aligned with [`extract`]'s output order.
/// The first 22 are the paper's Table 1; the rest are the additional
/// features its feature-selection tables reference.
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "loop nest level",
    "# ops in loop body",
    "# floating point ops",
    "# branches",
    "# memory ops",
    "# operands",
    "# implicit instructions",
    "# unique predicates",
    "critical path latency",
    "est. cycle length of body",
    "language",
    "# parallel computations",
    "max dependence height",
    "max memory dependence height",
    "max control dependence height",
    "avg dependence height",
    "# indirect refs",
    "min mem-to-mem carried dep",
    "# mem-to-mem dependencies",
    "tripcount (-1 unknown)",
    "# uses",
    "# defs",
    "instruction fan-in in DAG",
    "avg instruction fan-in",
    "live range size",
    "known tripcount",
    "# integer ops",
    "# fp divides",
    "# integer multiplies",
    "# loads",
    "# stores",
    "memory op ratio",
    "fp op ratio",
    "# carried reg dependencies",
    "recurrence cycle latency",
    "# memory streams",
    "dominant stride",
    "# early exits",
];

/// Value reported for "min mem-to-mem carried dep" when the loop has no
/// carried memory dependence: one beyond the analysis horizon, so
/// dependence-free loops sit at a consistent extreme of the feature axis.
pub const NO_CARRIED_DEP: f64 = (loopml_ir::MAX_CARRIED_DISTANCE + 1) as f64;

/// Extracts the 38-dimensional feature vector of `l`.
pub fn extract(l: &Loop) -> Vec<f64> {
    let g = DepGraph::analyze(l);
    let dag = summarize(l, &g);
    let live = analyze_liveness(l);

    let count = |f: &dyn Fn(&loopml_ir::Inst) -> bool| l.body.iter().filter(|i| f(i)).count();
    let n_ops = l.len() as f64;
    let n_fp = count(&|i| i.opcode.is_fp()) as f64;
    let n_branches = count(&|i| i.opcode.is_branch()) as f64;
    let n_mem = count(&|i| i.opcode.is_mem()) as f64;
    let n_loads = count(&|i| i.is_load()) as f64;
    let n_stores = count(&|i| i.is_store()) as f64;
    let n_int = count(&|i| matches!(i.opcode.class(), OpClass::IntAlu | OpClass::IntMul)) as f64;
    let n_div = count(&|i| i.opcode.class() == OpClass::FpDiv) as f64;
    let n_mul = count(&|i| i.opcode == Opcode::Mul) as f64;
    let n_implicit = count(&|i| i.opcode.is_implicit()) as f64;
    let n_operands: usize = l.body.iter().map(|i| i.operand_count()).sum();
    let n_uses: usize = l.body.iter().map(|i| i.uses.len()).sum();
    let n_defs: usize = l.body.iter().map(|i| i.defs.len()).sum();

    let mut predicates: Vec<Reg> = l
        .body
        .iter()
        .filter_map(|i| i.predicate)
        .chain(l.body.iter().flat_map(|i| {
            i.defs
                .iter()
                .copied()
                .filter(|r| r.class() == loopml_ir::RegClass::Pred)
        }))
        .collect();
    predicates.sort_unstable();
    predicates.dedup();

    let n_indirect = l
        .body
        .iter()
        .filter(|i| matches!(i.mem, Some(MemRef { indirect: true, .. })))
        .count() as f64;

    let mut streams: Vec<u32> = l
        .body
        .iter()
        .filter(|i| i.is_load() || i.is_store())
        .filter_map(|i| i.mem.map(|m| m.base.0))
        .collect();
    streams.sort_unstable();
    streams.dedup();

    let dominant_stride = l
        .body
        .iter()
        .filter_map(|i| i.mem)
        .filter(|m| !m.indirect && m.stride != 0)
        .map(|m| m.stride.unsigned_abs())
        .min()
        .unwrap_or(0) as f64;

    vec![
        f64::from(l.nest_level),
        n_ops,
        n_fp,
        n_branches,
        n_mem,
        n_operands as f64,
        n_implicit,
        predicates.len() as f64,
        f64::from(dag.critical_path),
        f64::from(dag.resource_cycles),
        l.lang.feature_value(),
        dag.computations as f64,
        f64::from(dag.max_dependence_height),
        f64::from(dag.max_memory_height),
        f64::from(dag.max_control_height),
        dag.avg_dependence_height,
        n_indirect,
        g.min_carried_mem_distance()
            .map(f64::from)
            .unwrap_or(NO_CARRIED_DEP),
        g.mem_deps().count() as f64,
        l.trip_count.feature_value(),
        n_uses as f64,
        n_defs as f64,
        dag.max_fan_in as f64,
        dag.avg_fan_in,
        live.avg_live,
        f64::from(u8::from(l.trip_count.is_known())),
        n_int,
        n_div,
        n_mul,
        n_loads,
        n_stores,
        if n_ops > 0.0 { n_mem / n_ops } else { 0.0 },
        if n_ops > 0.0 { n_fp / n_ops } else { 0.0 },
        g.carried_reg_deps() as f64,
        f64::from(g.rec_mii(|d| d.latency)),
        streams.len() as f64,
        dominant_stride,
        l.early_exits() as f64,
    ]
}

/// Number of prover-derived features appended by [`extract_prover`].
pub const NUM_PROVER_FEATURES: usize = 8;

/// Names of the prover-derived features, aligned with
/// [`extract_prover`]'s output order.
pub const PROVER_FEATURE_NAMES: [&str; NUM_PROVER_FEATURES] = [
    "# alias pairs: distinct bases",
    "# alias pairs: exact affine",
    "# alias pairs: gcd disjoint",
    "# alias pairs: irregular overlap",
    "# alias pairs: indirect",
    "# alias pairs: ambiguous",
    "min proven carried distance",
    "# factors proven legal",
];

/// Extracts the legality prover's feature block: the alias-class
/// histogram over dependence-relevant reference pairs, the minimum
/// proven carried dependence distance ([`NO_CARRIED_DEP`] when none is
/// proven), and the number of factors in `1..=MAX_UNROLL` the prover
/// resolves `Proven`. Proofs are currently factor-uniform, so the last
/// column takes values 0 or `MAX_UNROLL`; it is still computed
/// per-factor to stay honest to the prover's per-(loop, factor) API.
///
/// [`NO_CARRIED_DEP`]: NO_CARRIED_DEP
pub fn extract_prover(l: &Loop) -> Vec<f64> {
    let a = loopml_lint::alias_counts(l);
    let proven = (1..=crate::label::MAX_UNROLL)
        .filter(|&f| loopml_lint::prove_factor(l, f).is_proven())
        .count();
    vec![
        a.distinct_bases as f64,
        a.exact_affine as f64,
        a.gcd_disjoint as f64,
        a.irregular_overlap as f64,
        a.indirect as f64,
        a.ambiguous as f64,
        loopml_lint::min_proven_carried(l).map_or(NO_CARRIED_DEP, |d| d as f64),
        proven as f64,
    ]
}

/// The 38 paper features followed by the prover block: the extended
/// `NUM_FEATURES + NUM_PROVER_FEATURES`-dimensional characterization
/// used when `PipelineConfig::prover_features` is on.
pub fn extract_with_prover(l: &Loop) -> Vec<f64> {
    let mut v = extract(l);
    v.extend(extract_prover(l));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopml_ir::{ArrayId, Inst, LoopBuilder, SourceLang, TripCount};

    fn daxpy() -> Loop {
        let mut b = LoopBuilder::new("daxpy", TripCount::Known(1000));
        b.lang(SourceLang::Fortran);
        b.nest_level(2);
        let x = b.fp_reg();
        let y = b.fp_reg();
        let r = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.load(y, MemRef::affine(ArrayId(1), 8, 0, 8));
        b.inst(Inst::new(Opcode::Fma, vec![r], vec![x, y]));
        b.store(r, MemRef::affine(ArrayId(1), 8, 0, 8));
        b.build()
    }

    #[test]
    fn dimensions_and_names_agree() {
        let f = extract(&daxpy());
        assert_eq!(f.len(), NUM_FEATURES);
        assert_eq!(FEATURE_NAMES.len(), NUM_FEATURES);
    }

    #[test]
    fn prover_block_dimensions_and_values() {
        let l = daxpy();
        let p = extract_prover(&l);
        assert_eq!(p.len(), NUM_PROVER_FEATURES);
        assert_eq!(PROVER_FEATURE_NAMES.len(), NUM_PROVER_FEATURES);
        let idx = |name: &str| {
            PROVER_FEATURE_NAMES
                .iter()
                .position(|&n| n == name)
                .expect("known prover feature")
        };
        // daxpy pairs with a store: (x, store) on distinct bases,
        // (y, store) same base, same stride, distance 0 — not carried.
        assert_eq!(p[idx("# alias pairs: distinct bases")], 1.0);
        assert_eq!(p[idx("# alias pairs: exact affine")], 1.0);
        assert_eq!(p[idx("# alias pairs: indirect")], 0.0);
        assert_eq!(p[idx("min proven carried distance")], NO_CARRIED_DEP);
        assert_eq!(p[idx("# factors proven legal")], 8.0);

        let full = extract_with_prover(&l);
        assert_eq!(full.len(), NUM_FEATURES + NUM_PROVER_FEATURES);
        assert_eq!(full[..NUM_FEATURES], extract(&l));
        assert_eq!(full[NUM_FEATURES..], p);
        assert!(full.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn prover_block_flags_unprovable_loops() {
        // A gather: indirect load feeding an affine store.
        let mut b = LoopBuilder::new("gather", TripCount::Known(256));
        let x = b.fp_reg();
        b.load(x, MemRef::indirect(ArrayId(0), 8, 8));
        b.store(x, MemRef::affine(ArrayId(1), 8, 0, 8));
        let p = extract_prover(&b.build());
        let idx = |name: &str| {
            PROVER_FEATURE_NAMES
                .iter()
                .position(|&n| n == name)
                .expect("known prover feature")
        };
        assert_eq!(p[idx("# alias pairs: distinct bases")], 1.0);
        assert_eq!(p[idx("# factors proven legal")], 0.0);
    }

    #[test]
    fn prover_block_reports_carried_distance() {
        // a[i+2] = f(a[i]): an exactly proven carried distance of 2.
        let mut b = LoopBuilder::new("carried", TripCount::Known(256));
        let x = b.fp_reg();
        let y = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.binop(Opcode::FAdd, y, x, x);
        b.store(y, MemRef::affine(ArrayId(0), 8, 16, 8));
        let p = extract_prover(&b.build());
        let idx = PROVER_FEATURE_NAMES
            .iter()
            .position(|&n| n == "min proven carried distance")
            .unwrap();
        assert_eq!(p[idx], 2.0);
    }

    #[test]
    fn basic_counts_correct() {
        let f = extract(&daxpy());
        let idx = |name: &str| {
            FEATURE_NAMES
                .iter()
                .position(|&n| n == name)
                .expect("known feature")
        };
        assert_eq!(f[idx("loop nest level")], 2.0);
        assert_eq!(f[idx("# ops in loop body")], 7.0); // 4 body + iv + cmp + br
        assert_eq!(f[idx("# floating point ops")], 1.0); // fma
        assert_eq!(f[idx("# memory ops")], 3.0);
        assert_eq!(f[idx("# loads")], 2.0);
        assert_eq!(f[idx("# stores")], 1.0);
        assert_eq!(f[idx("language")], SourceLang::Fortran.feature_value());
        assert_eq!(f[idx("tripcount (-1 unknown)")], 1000.0);
        assert_eq!(f[idx("known tripcount")], 1.0);
        assert_eq!(f[idx("# memory streams")], 2.0);
        assert_eq!(f[idx("dominant stride")], 8.0);
        assert_eq!(f[idx("# early exits")], 0.0);
    }

    #[test]
    fn unknown_trip_encodes_minus_one() {
        let mut b = LoopBuilder::new("u", TripCount::Unknown { estimate: 50 });
        let x = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        let f = extract(&b.build());
        let idx = |name: &str| FEATURE_NAMES.iter().position(|&n| n == name).unwrap();
        assert_eq!(f[idx("tripcount (-1 unknown)")], -1.0);
        assert_eq!(f[idx("known tripcount")], 0.0);
    }

    #[test]
    fn carried_dep_feature_reports_distance() {
        let mut b = LoopBuilder::new("c", TripCount::Known(100));
        let x = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.store(x, MemRef::affine(ArrayId(0), 8, 24, 8));
        let f = extract(&b.build());
        let idx = |name: &str| FEATURE_NAMES.iter().position(|&n| n == name).unwrap();
        assert_eq!(f[idx("min mem-to-mem carried dep")], 3.0);
        assert!(f[idx("# mem-to-mem dependencies")] >= 1.0);
    }

    #[test]
    fn no_carried_dep_uses_sentinel() {
        let f = extract(&daxpy());
        let idx = FEATURE_NAMES
            .iter()
            .position(|&n| n == "min mem-to-mem carried dep")
            .unwrap();
        // daxpy has a same-iteration load/store pair on A1 (distance 0)
        // but no carried dependence.
        assert_eq!(f[idx], NO_CARRIED_DEP);
    }

    #[test]
    fn all_features_finite() {
        let f = extract(&daxpy());
        assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
    }
}
