//! The labeling pipeline: measuring every unroll factor for every loop
//! and deriving the training label (paper §4.4–§4.6).
//!
//! For each unrollable loop, the eight variants (factors 1..=8) are
//! compiled (unroll + scalar replacement + coalescing), costed on the
//! machine model, observed through the measurement-noise model (median of
//! N runs, as the paper's instrumentation does), and the fastest factor
//! becomes the label. Loops are filtered like the paper's: they must run
//! at least 50,000 cycles, and the best factor must beat the mean of all
//! factors by at least 1.05x.

use loopml_ir::{Benchmark, WeightedLoop};
use loopml_lint::{validate_pipeline, LintLevel};
use loopml_machine::{icache_entry_cost, loop_cost, MachineConfig, NoiseModel, SwpMode};
use loopml_opt::{unroll_and_optimize, OptConfig};
use loopml_rt::{num_threads, par_map_threads, Rng};

use crate::features::extract;

/// Largest unroll factor measured (factors beyond eight did not compile
/// in the paper's infrastructure, and the classifier inherits the limit).
pub const MAX_UNROLL: u32 = 8;

/// Hot instruction footprint of a benchmark at its rolled configuration:
/// the loops themselves plus the surrounding non-loop code, estimated
/// from the benchmark's non-loop time share (branchy integer codes have
/// large instruction working sets; tight FP kernels small ones).
pub fn hot_footprint(b: &Benchmark) -> u64 {
    let loops: u64 = b.iter().map(|w| w.body.code_bytes()).sum();
    let base = 4096 + (b.non_loop_fraction * 48_000.0) as u64;
    loops + base
}

/// Configuration of the labeling run.
#[derive(Debug, Clone)]
pub struct LabelConfig {
    /// Machine model.
    pub machine: MachineConfig,
    /// Post-unroll optimizations.
    pub opt: OptConfig,
    /// Software pipelining regime.
    pub swp: SwpMode,
    /// Measurement noise applied to each observation.
    pub noise: NoiseModel,
    /// Minimum observed cycles for a loop to be used (paper: 50,000).
    pub min_cycles: f64,
    /// Required best-vs-mean advantage (paper: 1.05).
    pub min_benefit: f64,
    /// Seed for the measurement-noise stream.
    pub seed: u64,
    /// Transform-validation level: every unrolled variant that
    /// contributes a runtime is checked against the original loop
    /// (structural invariants plus the differential-execution oracle)
    /// before its measurement is trusted. `Off` (the default) skips
    /// validation entirely; see [`loopml_lint`].
    pub lint: LintLevel,
}

impl LabelConfig {
    /// The paper's configuration for a given pipelining regime.
    pub fn paper(swp: SwpMode) -> Self {
        LabelConfig {
            machine: MachineConfig::itanium2(),
            opt: OptConfig::default(),
            swp,
            noise: NoiseModel::paper(),
            min_cycles: 50_000.0,
            min_benefit: 1.05,
            seed: 0x51EED,
            lint: LintLevel::from_env(),
        }
    }
}

/// One labeled training example.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledLoop {
    /// Loop name (`benchmark/loopNNN_family`).
    pub name: String,
    /// Index of the source benchmark within the labeled suite.
    pub benchmark: usize,
    /// The 38 static features.
    pub features: Vec<f64>,
    /// Best factor minus one (class in `0..8`).
    pub label: usize,
    /// Measured cycles at factors 1..=8.
    pub runtimes: [f64; MAX_UNROLL as usize],
}

impl LabeledLoop {
    /// The best unroll factor (1..=8).
    pub fn best_factor(&self) -> u32 {
        self.label as u32 + 1
    }

    /// Runtimes sorted ascending, with their factors.
    pub fn ranked_factors(&self) -> Vec<(u32, f64)> {
        let mut v: Vec<(u32, f64)> = (0..MAX_UNROLL)
            .map(|k| (k + 1, self.runtimes[k as usize]))
            .collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite runtimes"));
        v
    }

    /// Rank (0 = optimal) of the given factor among the measured
    /// runtimes.
    pub fn rank_of(&self, factor: u32) -> usize {
        self.ranked_factors()
            .iter()
            .position(|&(f, _)| f == factor)
            .expect("factor in 1..=8")
    }
}

/// Measures the *true* (noise-free) total cycles of one weighted loop at
/// one unroll factor, including instruction-cache entry effects under the
/// given hot-code footprint.
pub fn true_cycles(w: &WeightedLoop, factor: u32, footprint: u64, cfg: &LabelConfig) -> f64 {
    if cfg.lint.is_enabled() {
        validate_pipeline(&w.body, factor, &cfg.opt).enforce(cfg.lint, &w.body.name);
    }
    let rolled = unroll_and_optimize(&w.body, 1, &cfg.opt);
    let rolled_cost = loop_cost(&rolled, 0.0, &cfg.machine, cfg.swp);
    let (cost, trips) = if factor == 1 {
        (rolled_cost, rolled.body.trip_count.dynamic())
    } else {
        let u = unroll_and_optimize(&w.body, factor, &cfg.opt);
        let c = loop_cost(&u, rolled_cost.per_iter, &cfg.machine, cfg.swp);
        (c, u.body.trip_count.dynamic())
    };
    let icache = icache_entry_cost(cost.code_bytes, footprint, &cfg.machine);
    cost.total(trips, w.entries) + icache * w.entries as f64
}

/// Labels one loop: measures all eight factors through the noise model
/// and applies the paper's filters. Returns `None` when the loop is
/// dropped.
///
/// The noise stream is seeded from `(cfg.seed, benchmark_index,
/// loop_index)` alone, so every loop's measurements are independent of
/// which other loops are labeled — and of the order or thread they are
/// labeled on. That per-loop independence is what makes the parallel
/// labeling engine bit-identical to a serial pass.
pub fn label_loop(
    w: &WeightedLoop,
    loop_index: usize,
    benchmark_index: usize,
    footprint: u64,
    cfg: &LabelConfig,
) -> Option<LabeledLoop> {
    let mut rng = Rng::seed_from_u64(cfg.seed ^ (benchmark_index as u64) << 32 ^ loop_index as u64);
    let mut runtimes = [0.0f64; MAX_UNROLL as usize];
    for f in 1..=MAX_UNROLL {
        let truth = true_cycles(w, f, footprint, cfg);
        runtimes[(f - 1) as usize] = cfg.noise.measure(truth, &mut rng);
    }
    let (best_idx, &best) = runtimes
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("eight runtimes");

    // Paper filters: enough cycles to measure, and a meaningful win.
    if best < cfg.min_cycles {
        return None;
    }
    let mean: f64 = runtimes.iter().sum::<f64>() / runtimes.len() as f64;
    if mean / best < cfg.min_benefit {
        return None;
    }

    Some(LabeledLoop {
        name: w.body.name.clone(),
        benchmark: benchmark_index,
        features: extract(&w.body),
        label: best_idx,
        runtimes,
    })
}

/// Labels every unrollable loop of a benchmark, applying the paper's
/// filters. `benchmark_index` is recorded in each example for the
/// leave-one-benchmark-out protocol.
///
/// Loops are measured in parallel across the machine's cores (see
/// [`loopml_rt::par_map`]; `LOOPML_THREADS` overrides the count). The
/// result is bit-identical to a serial pass at any thread count because
/// each loop's noise stream is seeded independently — see [`label_loop`].
pub fn label_benchmark(
    b: &Benchmark,
    benchmark_index: usize,
    cfg: &LabelConfig,
) -> Vec<LabeledLoop> {
    label_benchmark_threads(b, benchmark_index, cfg, num_threads())
}

/// [`label_benchmark`] with an explicit worker count. `threads <= 1` is
/// the serial reference implementation the equivalence tests compare
/// against.
pub fn label_benchmark_threads(
    b: &Benchmark,
    benchmark_index: usize,
    cfg: &LabelConfig,
    threads: usize,
) -> Vec<LabeledLoop> {
    // Hot-code footprint context: loops at rolled size + non-loop code.
    let footprint: u64 = hot_footprint(b);
    let pairs: Vec<(usize, &WeightedLoop)> = b.unrollable().collect();
    par_map_threads(threads, &pairs, |&(li, w)| {
        label_loop(w, li, benchmark_index, footprint, cfg)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Labels a whole suite, parallelizing across benchmarks (the
/// coarsest-grained work the labeling pipeline has). Nested inside each
/// worker, the per-benchmark loop labeling runs serially.
pub fn label_suite(suite: &[Benchmark], cfg: &LabelConfig) -> Vec<LabeledLoop> {
    label_suite_threads(suite, cfg, num_threads())
}

/// [`label_suite`] with an explicit worker count.
pub fn label_suite_threads(
    suite: &[Benchmark],
    cfg: &LabelConfig,
    threads: usize,
) -> Vec<LabeledLoop> {
    let indexed: Vec<(usize, &Benchmark)> = suite.iter().enumerate().collect();
    par_map_threads(threads, &indexed, |&(bi, b)| label_benchmark(b, bi, cfg))
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopml_corpus::{synthesize, SuiteConfig, ROSTER};

    fn quick_cfg() -> LabelConfig {
        LabelConfig {
            noise: NoiseModel::exact(),
            ..LabelConfig::paper(SwpMode::Disabled)
        }
    }

    fn small_benchmark() -> Benchmark {
        synthesize(
            &ROSTER[2], // 171.swim
            &SuiteConfig {
                min_loops: 10,
                max_loops: 12,
                ..SuiteConfig::default()
            },
        )
    }

    #[test]
    fn labels_are_valid_classes() {
        let b = small_benchmark();
        let labeled = label_benchmark(&b, 0, &quick_cfg());
        assert!(!labeled.is_empty(), "some loops must survive the filters");
        for l in &labeled {
            assert!(l.label < 8);
            assert_eq!(l.features.len(), crate::features::NUM_FEATURES);
            assert!(l.runtimes.iter().all(|r| *r > 0.0));
        }
    }

    #[test]
    fn label_is_argmin_of_runtimes() {
        let b = small_benchmark();
        for l in label_benchmark(&b, 0, &quick_cfg()) {
            let min = l.runtimes.iter().cloned().fold(f64::INFINITY, f64::min);
            assert_eq!(l.runtimes[l.label], min);
            assert_eq!(l.rank_of(l.best_factor()), 0);
        }
    }

    #[test]
    fn filters_drop_indifferent_loops() {
        let b = small_benchmark();
        let strict = LabelConfig {
            min_benefit: 1.5,
            ..quick_cfg()
        };
        let lax = LabelConfig {
            min_benefit: 1.0,
            min_cycles: 0.0,
            ..quick_cfg()
        };
        let ns = label_benchmark(&b, 0, &strict).len();
        let nl = label_benchmark(&b, 0, &lax).len();
        assert!(ns <= nl, "stricter filter keeps fewer loops: {ns} vs {nl}");
    }

    #[test]
    fn labeling_is_deterministic() {
        let b = small_benchmark();
        let a = label_benchmark(&b, 0, &quick_cfg());
        let c = label_benchmark(&b, 0, &quick_cfg());
        assert_eq!(a, c);
    }

    #[test]
    fn ranked_factors_are_sorted() {
        let b = small_benchmark();
        for l in label_benchmark(&b, 0, &quick_cfg()) {
            let ranked = l.ranked_factors();
            for w in ranked.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
        }
    }

    #[test]
    fn noise_changes_measurements_not_structure() {
        let b = small_benchmark();
        let noisy = LabelConfig {
            noise: NoiseModel::paper(),
            ..quick_cfg()
        };
        let l1 = label_benchmark(&b, 0, &noisy);
        let l2 = label_benchmark(&b, 0, &noisy);
        assert_eq!(l1, l2, "same seed, same labels");
    }

    #[test]
    fn parallel_labeling_is_bit_identical_to_serial() {
        // The determinism contract: under measurement noise, the parallel
        // engine must reproduce the serial reference exactly — labels,
        // names, order, and every runtime down to the last bit.
        let b = small_benchmark();
        let cfg = LabelConfig::paper(SwpMode::Disabled);
        let serial = label_benchmark_threads(&b, 0, &cfg, 1);
        assert!(!serial.is_empty());
        for threads in [2, 3, 4, 8] {
            let parallel = label_benchmark_threads(&b, 0, &cfg, threads);
            assert_eq!(serial, parallel, "diverged at {threads} threads");
        }
        // And through the default (env/core-count) entry point.
        assert_eq!(serial, label_benchmark(&b, 0, &cfg));
    }

    #[test]
    fn suite_labeling_is_identical_across_thread_counts() {
        let suite: Vec<Benchmark> = (0..3).map(|_| small_benchmark()).collect();
        let cfg = LabelConfig::paper(SwpMode::Disabled);
        let serial = label_suite_threads(&suite, &cfg, 1);
        for threads in [2, 5] {
            assert_eq!(serial, label_suite_threads(&suite, &cfg, threads));
        }
        assert_eq!(serial, label_suite(&suite, &cfg));
    }
}
