//! The labeling pipeline: measuring every unroll factor for every loop
//! and deriving the training label (paper §4.4–§4.6).
//!
//! For each unrollable loop, the eight variants (factors 1..=8) are
//! compiled (unroll + scalar replacement + coalescing), costed on the
//! machine model, observed through the measurement-noise model (median of
//! N runs, as the paper's instrumentation does), and the fastest factor
//! becomes the label. Loops are filtered like the paper's: they must run
//! at least 50,000 cycles, and the best factor must beat the mean of all
//! factors by at least 1.05x.

use std::collections::BTreeMap;
use std::path::PathBuf;

use loopml_ir::{Benchmark, WeightedLoop};
use loopml_lint::{validate_pipeline, LintLevel};
use loopml_machine::{icache_entry_cost, loop_cost, MachineConfig, NoiseModel, SwpMode};
use loopml_opt::{unroll_and_optimize, OptConfig};
use loopml_rt::fault::site;
use loopml_rt::{fault_key, num_threads, par_map_result_threads, par_map_threads, FaultPlane, Rng};

use crate::checkpoint::{config_fingerprint, read_checkpoint, write_checkpoint};
use crate::fault::{
    BenchmarkOutcome, DegradationReport, LabelError, QuarantineEntry, QuarantineScope,
};
use crate::features::extract;

/// Largest unroll factor measured (factors beyond eight did not compile
/// in the paper's infrastructure, and the classifier inherits the limit).
pub const MAX_UNROLL: u32 = 8;

/// Hot instruction footprint of a benchmark at its rolled configuration:
/// the loops themselves plus the surrounding non-loop code, estimated
/// from the benchmark's non-loop time share (branchy integer codes have
/// large instruction working sets; tight FP kernels small ones).
pub fn hot_footprint(b: &Benchmark) -> u64 {
    let loops: u64 = b.iter().map(|w| w.body.code_bytes()).sum();
    let base = 4096 + (b.non_loop_fraction * 48_000.0) as u64;
    loops + base
}

/// Configuration of the labeling run.
#[derive(Debug, Clone)]
pub struct LabelConfig {
    /// Machine model.
    pub machine: MachineConfig,
    /// Post-unroll optimizations.
    pub opt: OptConfig,
    /// Software pipelining regime.
    pub swp: SwpMode,
    /// Measurement noise applied to each observation.
    pub noise: NoiseModel,
    /// Minimum observed cycles for a loop to be used (paper: 50,000).
    pub min_cycles: f64,
    /// Required best-vs-mean advantage (paper: 1.05).
    pub min_benefit: f64,
    /// Seed for the measurement-noise stream.
    pub seed: u64,
    /// Transform-validation level: every unrolled variant that
    /// contributes a runtime is checked against the original loop
    /// (structural invariants plus the differential-execution oracle)
    /// before its measurement is trusted. `Off` (the default) skips
    /// validation entirely; see [`loopml_lint`].
    pub lint: LintLevel,
}

impl LabelConfig {
    /// The paper's configuration for a given pipelining regime.
    pub fn paper(swp: SwpMode) -> Self {
        LabelConfig {
            machine: MachineConfig::itanium2(),
            opt: OptConfig::default(),
            swp,
            noise: NoiseModel::paper(),
            min_cycles: 50_000.0,
            min_benefit: 1.05,
            seed: 0x51EED,
            lint: LintLevel::from_env(),
        }
    }
}

/// One labeled training example.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledLoop {
    /// Loop name (`benchmark/loopNNN_family`).
    pub name: String,
    /// Index of the source benchmark within the labeled suite.
    pub benchmark: usize,
    /// The 38 static features.
    pub features: Vec<f64>,
    /// Best factor minus one (class in `0..8`).
    pub label: usize,
    /// Measured cycles at factors 1..=8.
    pub runtimes: [f64; MAX_UNROLL as usize],
}

impl LabeledLoop {
    /// The best unroll factor (1..=8).
    pub fn best_factor(&self) -> u32 {
        self.label as u32 + 1
    }

    /// Runtimes sorted ascending, with their factors.
    pub fn ranked_factors(&self) -> Vec<(u32, f64)> {
        let mut v: Vec<(u32, f64)> = (0..MAX_UNROLL)
            .map(|k| (k + 1, self.runtimes[k as usize]))
            .collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite runtimes"));
        v
    }

    /// Rank (0 = optimal) of the given factor among the measured
    /// runtimes.
    pub fn rank_of(&self, factor: u32) -> usize {
        self.ranked_factors()
            .iter()
            .position(|&(f, _)| f == factor)
            .expect("factor in 1..=8")
    }
}

/// Measures the *true* (noise-free) total cycles of one weighted loop at
/// one unroll factor, including instruction-cache entry effects under the
/// given hot-code footprint.
pub fn true_cycles(w: &WeightedLoop, factor: u32, footprint: u64, cfg: &LabelConfig) -> f64 {
    if cfg.lint.is_enabled() {
        validate_pipeline(&w.body, factor, &cfg.opt).enforce(cfg.lint, &w.body.name);
    }
    let rolled = unroll_and_optimize(&w.body, 1, &cfg.opt);
    let rolled_cost = loop_cost(&rolled, 0.0, &cfg.machine, cfg.swp);
    let (cost, trips) = if factor == 1 {
        (rolled_cost, rolled.body.trip_count.dynamic())
    } else {
        let u = unroll_and_optimize(&w.body, factor, &cfg.opt);
        let c = loop_cost(&u, rolled_cost.per_iter, &cfg.machine, cfg.swp);
        (c, u.body.trip_count.dynamic())
    };
    let icache = icache_entry_cost(cost.code_bytes, footprint, &cfg.machine);
    cost.total(trips, w.entries) + icache * w.entries as f64
}

/// Labels one loop: measures all eight factors through the noise model
/// and applies the paper's filters. Returns `None` when the loop is
/// dropped.
///
/// The noise stream is seeded from `(cfg.seed, benchmark_index,
/// loop_index)` alone, so every loop's measurements are independent of
/// which other loops are labeled — and of the order or thread they are
/// labeled on. That per-loop independence is what makes the parallel
/// labeling engine bit-identical to a serial pass.
pub fn label_loop(
    w: &WeightedLoop,
    loop_index: usize,
    benchmark_index: usize,
    footprint: u64,
    cfg: &LabelConfig,
) -> Option<LabeledLoop> {
    label_loop_attempt(
        w,
        loop_index,
        benchmark_index,
        footprint,
        cfg,
        &FaultPlane::disabled(),
        0,
    )
    .unwrap_or_else(|e| panic!("labeling {} failed: {e}", w.body.name))
}

/// The noise-stream seed for one labeling attempt. Attempt 0 uses the
/// legacy `(seed, benchmark, loop)` formula — a fault-free resilient run
/// is bit-identical to [`label_loop`] — and each retry derives a fresh,
/// deterministic seed so a transiently-faulted measurement is genuinely
/// re-measured, never silently reused.
pub fn attempt_seed(cfg_seed: u64, benchmark_index: usize, loop_index: usize, attempt: u32) -> u64 {
    let base = cfg_seed ^ (benchmark_index as u64) << 32 ^ loop_index as u64;
    if attempt == 0 {
        base
    } else {
        fault_key(&[base, u64::from(attempt)])
    }
}

/// One labeling attempt of one loop: [`label_loop`] with a structured
/// error path instead of hot-path panics. `Ok(None)` means the loop was
/// dropped by the paper's filters (not a failure); `Err` reports an
/// injected fault from `faults` (site [`site::LABEL_MEASURE`], keyed by
/// `(benchmark, loop, factor, attempt)`) or a non-finite measurement.
pub fn label_loop_attempt(
    w: &WeightedLoop,
    loop_index: usize,
    benchmark_index: usize,
    footprint: u64,
    cfg: &LabelConfig,
    faults: &FaultPlane,
    attempt: u32,
) -> Result<Option<LabeledLoop>, LabelError> {
    let mut rng = Rng::seed_from_u64(attempt_seed(cfg.seed, benchmark_index, loop_index, attempt));
    let mut runtimes = [0.0f64; MAX_UNROLL as usize];
    for f in 1..=MAX_UNROLL {
        faults
            .check(
                site::LABEL_MEASURE,
                fault_key(&[
                    benchmark_index as u64,
                    loop_index as u64,
                    u64::from(f),
                    u64::from(attempt),
                ]),
            )
            .map_err(|fault| LabelError::Injected {
                site: fault.site,
                attempt,
            })?;
        let truth = true_cycles(w, f, footprint, cfg);
        let measured = cfg.noise.measure(truth, &mut rng);
        if !measured.is_finite() {
            return Err(LabelError::NonFinite { factor: f });
        }
        runtimes[(f - 1) as usize] = measured;
    }
    let (best_idx, &best) = runtimes
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("eight runtimes");

    // Paper filters: enough cycles to measure, and a meaningful win.
    if best < cfg.min_cycles {
        return Ok(None);
    }
    let mean: f64 = runtimes.iter().sum::<f64>() / runtimes.len() as f64;
    if mean / best < cfg.min_benefit {
        return Ok(None);
    }

    Ok(Some(LabeledLoop {
        name: w.body.name.clone(),
        benchmark: benchmark_index,
        features: extract(&w.body),
        label: best_idx,
        runtimes,
    }))
}

/// Labels every unrollable loop of a benchmark, applying the paper's
/// filters. `benchmark_index` is recorded in each example for the
/// leave-one-benchmark-out protocol.
///
/// Loops are measured in parallel across the machine's cores (see
/// [`loopml_rt::par_map`]; `LOOPML_THREADS` overrides the count). The
/// result is bit-identical to a serial pass at any thread count because
/// each loop's noise stream is seeded independently — see [`label_loop`].
pub fn label_benchmark(
    b: &Benchmark,
    benchmark_index: usize,
    cfg: &LabelConfig,
) -> Vec<LabeledLoop> {
    label_benchmark_threads(b, benchmark_index, cfg, num_threads())
}

/// [`label_benchmark`] with an explicit worker count. `threads <= 1` is
/// the serial reference implementation the equivalence tests compare
/// against.
pub fn label_benchmark_threads(
    b: &Benchmark,
    benchmark_index: usize,
    cfg: &LabelConfig,
    threads: usize,
) -> Vec<LabeledLoop> {
    // Hot-code footprint context: loops at rolled size + non-loop code.
    let footprint: u64 = hot_footprint(b);
    let pairs: Vec<(usize, &WeightedLoop)> = b.unrollable().collect();
    par_map_threads(threads, &pairs, |&(li, w)| {
        label_loop(w, li, benchmark_index, footprint, cfg)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Labels a whole suite, parallelizing across benchmarks (the
/// coarsest-grained work the labeling pipeline has). Nested inside each
/// worker, the per-benchmark loop labeling runs serially.
pub fn label_suite(suite: &[Benchmark], cfg: &LabelConfig) -> Vec<LabeledLoop> {
    label_suite_threads(suite, cfg, num_threads())
}

/// [`label_suite`] with an explicit worker count.
pub fn label_suite_threads(
    suite: &[Benchmark],
    cfg: &LabelConfig,
    threads: usize,
) -> Vec<LabeledLoop> {
    let indexed: Vec<(usize, &Benchmark)> = suite.iter().enumerate().collect();
    par_map_threads(threads, &indexed, |&(bi, b)| label_benchmark(b, bi, cfg))
        .into_iter()
        .flatten()
        .collect()
}

/// Default per-loop retry budget of the resilient labeler: how many
/// *additional* attempts a transiently-faulted loop gets before it is
/// quarantined.
pub const DEFAULT_RETRY_BUDGET: u32 = 3;

/// Knobs of the fault-tolerant labeling path, independent of the
/// measurement configuration so the same [`LabelConfig`] describes both
/// a clean and a chaos run.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Fault-injection plane (disabled outside chaos testing).
    pub faults: FaultPlane,
    /// Additional attempts per loop before quarantining it.
    pub retry_budget: u32,
    /// Directory for per-benchmark checkpoint files; `None` disables
    /// checkpointing.
    pub ckpt_dir: Option<PathBuf>,
    /// Reuse valid checkpoints from `ckpt_dir` instead of relabeling.
    pub resume: bool,
    /// Worker threads across benchmarks (0 → [`num_threads`]).
    pub threads: usize,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            faults: FaultPlane::env_or_disabled(),
            retry_budget: DEFAULT_RETRY_BUDGET,
            ckpt_dir: None,
            resume: false,
            threads: 0,
        }
    }
}

/// One shard of a multi-process labeling work queue: the process owns
/// exactly the benchmarks whose *global* suite index `bi` satisfies
/// `bi % count == index`. Because every measurement seed
/// ([`attempt_seed`]) and checkpoint filename is keyed by the global
/// index, a shard labels its benchmarks bit-identically to a
/// single-process run over the whole suite — merging disjoint shards
/// reproduces that run byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This process's shard index, in `0..count`.
    pub index: usize,
    /// Total number of shards the suite is split across.
    pub count: usize,
}

impl Shard {
    /// Parses the CLI form `i/N` (e.g. `"0/3"`). Rejects `N == 0`,
    /// `i >= N`, and anything non-numeric — these are usage errors.
    pub fn parse(s: &str) -> Result<Shard, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("bad shard spec {s:?}: expected i/N"))?;
        let index: usize = i
            .parse()
            .map_err(|_| format!("bad shard index {i:?}: expected an integer"))?;
        let count: usize = n
            .parse()
            .map_err(|_| format!("bad shard count {n:?}: expected an integer"))?;
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shard(s)"
            ));
        }
        Ok(Shard { index, count })
    }

    /// Whether this shard owns the benchmark at global suite index `bi`.
    pub fn owns(&self, benchmark_index: usize) -> bool {
        benchmark_index % self.count == self.index
    }
}

/// The result of a fault-tolerant labeling run: the surviving corpus
/// plus the degradation accounting that says what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelRun {
    /// Labeled loops, in suite order (same order as [`label_suite`]).
    pub labeled: Vec<LabeledLoop>,
    /// Attempt index each labeled loop succeeded on, aligned with
    /// `labeled` (0 = clean first try; anything else was re-measured
    /// under a retry seed and may legitimately differ from a fault-free
    /// run — see `DESIGN.md` §9).
    pub attempts: Vec<u32>,
    /// What was retried, quarantined, and resumed.
    pub report: DegradationReport,
}

/// Outcome of labeling one loop under a retry budget: `Ok(Some(..))` is
/// the labeled loop with the attempt index it succeeded on (0 = clean
/// first try), `Ok(None)` means the paper's filters rejected the loop,
/// and `Err` carries the quarantine entry for an exhausted budget.
pub type LoopOutcome = Result<Option<(LabeledLoop, u32)>, QuarantineEntry>;

/// Labels one loop with retries: transient faults at
/// [`site::LABEL_MEASURE`] consume the retry budget (each retry
/// re-measures under a fresh deterministic seed — see [`attempt_seed`]);
/// exhaustion yields a [`QuarantineEntry`] instead of a panic. Returns
/// the [`LoopOutcome`] and the per-site count of faults absorbed along
/// the way.
pub fn label_loop_resilient(
    w: &WeightedLoop,
    loop_index: usize,
    benchmark_index: usize,
    footprint: u64,
    cfg: &LabelConfig,
    res: &ResilienceConfig,
) -> (LoopOutcome, BTreeMap<String, usize>) {
    let mut faults_seen: BTreeMap<String, usize> = BTreeMap::new();
    let mut last: Option<LabelError> = None;
    for attempt in 0..=res.retry_budget {
        match label_loop_attempt(
            w,
            loop_index,
            benchmark_index,
            footprint,
            cfg,
            &res.faults,
            attempt,
        ) {
            Ok(l) => return (Ok(l.map(|l| (l, attempt))), faults_seen),
            Err(e) => {
                *faults_seen.entry(e.site_key().to_string()).or_insert(0) += 1;
                last = Some(e);
            }
        }
    }
    let last = last.expect("at least one attempt ran");
    let entry = QuarantineEntry {
        scope: QuarantineScope::Loop,
        benchmark: benchmark_index,
        name: w.body.name.clone(),
        reason: last.to_string(),
        site: last.site().map(str::to_string),
        attempts: res.retry_budget + 1,
    };
    (Err(entry), faults_seen)
}

/// Fault-tolerantly labels one benchmark. Loops that exhaust their retry
/// budget are quarantined, not fatal. The [`site::LABEL_LOOP`] injection
/// site (keyed by benchmark index) trips *here*, as a panic, modelling a
/// benchmark whose labeling process crashes outright — the suite-level
/// isolation in [`label_suite_resilient`] catches it and quarantines the
/// whole benchmark.
pub fn label_benchmark_resilient(
    b: &Benchmark,
    benchmark_index: usize,
    cfg: &LabelConfig,
    res: &ResilienceConfig,
) -> BenchmarkOutcome {
    res.faults.trip(site::LABEL_LOOP, benchmark_index as u64);
    let footprint = hot_footprint(b);
    let mut outcome = BenchmarkOutcome {
        benchmark: benchmark_index,
        name: b.name.clone(),
        labeled: Vec::new(),
        attempts: Vec::new(),
        quarantined: Vec::new(),
        fault_sites: BTreeMap::new(),
    };
    for (li, w) in b.unrollable() {
        let (result, seen) = label_loop_resilient(w, li, benchmark_index, footprint, cfg, res);
        for (k, v) in seen {
            *outcome.fault_sites.entry(k).or_insert(0) += v;
        }
        match result {
            Ok(Some((l, attempts))) => {
                outcome.labeled.push(l);
                outcome.attempts.push(attempts);
            }
            Ok(None) => {}
            Err(entry) => outcome.quarantined.push(entry),
        }
    }
    outcome
}

/// Fault-tolerantly labels a whole suite: benchmarks run in parallel
/// under panic isolation ([`loopml_rt::par_map_result`]), completed
/// benchmarks are checkpointed (when `res.ckpt_dir` is set), and
/// `res.resume` reuses valid checkpoints instead of relabeling. The
/// surviving labels come back in suite order, so a fault-free resilient
/// run is bit-identical to [`label_suite`] at any thread count.
pub fn label_suite_resilient(
    suite: &[Benchmark],
    cfg: &LabelConfig,
    res: &ResilienceConfig,
) -> LabelRun {
    label_suite_resilient_sharded(suite, cfg, res, None)
}

/// [`label_suite_resilient`] restricted to one [`Shard`] of the suite.
/// `suite` is always the **full** suite: the shard only selects which
/// benchmarks this process labels, while seeds, checkpoint filenames and
/// the `benchmark` index recorded in every label stay global — so the
/// shard's output is the exact sub-sequence a single-process run would
/// have produced for those benchmarks. `report.benchmarks` counts only
/// the owned benchmarks, making shard reports sum to the single-process
/// report. `shard == None` labels everything.
pub fn label_suite_resilient_sharded(
    suite: &[Benchmark],
    cfg: &LabelConfig,
    res: &ResilienceConfig,
    shard: Option<Shard>,
) -> LabelRun {
    let fingerprint = config_fingerprint(cfg, res.retry_budget, &res.faults);
    let threads = if res.threads == 0 {
        num_threads()
    } else {
        res.threads
    };
    let owned = |bi: usize| shard.is_none_or(|s| s.owns(bi));
    let owned_count = (0..suite.len()).filter(|&bi| owned(bi)).count();

    // Phase 1: reload checkpointed benchmarks.
    let mut outcomes: Vec<Option<BenchmarkOutcome>> = vec![None; suite.len()];
    let mut resumed = 0usize;
    if res.resume {
        if let Some(dir) = &res.ckpt_dir {
            for (bi, b) in suite.iter().enumerate().filter(|&(bi, _)| owned(bi)) {
                if let Some(o) = read_checkpoint(dir, bi, &b.name, fingerprint) {
                    outcomes[bi] = Some(o);
                    resumed += 1;
                }
            }
        }
    }

    // Phase 2: label the rest in parallel, isolating worker panics.
    let todo: Vec<(usize, &Benchmark)> = suite
        .iter()
        .enumerate()
        .filter(|&(bi, _)| owned(bi) && outcomes[bi].is_none())
        .collect();
    let results = par_map_result_threads(threads, &todo, |&(bi, b)| {
        let outcome = label_benchmark_resilient(b, bi, cfg, res);
        if let Some(dir) = &res.ckpt_dir {
            if let Err(e) = write_checkpoint(dir, &outcome, fingerprint) {
                eprintln!(
                    "loopml: warning: checkpoint for {} not written: {e}",
                    b.name
                );
            }
        }
        outcome
    });
    let mut crashed: Vec<QuarantineEntry> = Vec::new();
    let mut crash_sites: BTreeMap<String, usize> = BTreeMap::new();
    for (&(bi, b), result) in todo.iter().zip(results) {
        match result {
            Ok(o) => outcomes[bi] = Some(o),
            Err(err) => {
                *crash_sites
                    .entry(err.injected.unwrap_or("panic").to_string())
                    .or_insert(0) += 1;
                crashed.push(QuarantineEntry {
                    scope: QuarantineScope::Benchmark,
                    benchmark: bi,
                    name: b.name.clone(),
                    reason: err.message,
                    site: err.injected.map(str::to_string),
                    attempts: 1,
                });
            }
        }
    }

    // Phase 3: aggregate in suite order so output order never depends on
    // scheduling, resume state, or which benchmarks crashed.
    let mut labeled = Vec::new();
    let mut attempts = Vec::new();
    let mut quarantined = Vec::new();
    let mut retry_histogram: BTreeMap<u32, usize> = BTreeMap::new();
    let mut fault_sites = crash_sites;
    let mut completed = 0usize;
    for outcome in outcomes.into_iter().flatten() {
        completed += 1;
        for &a in &outcome.attempts {
            *retry_histogram.entry(a).or_insert(0) += 1;
        }
        for (k, v) in outcome.fault_sites {
            *fault_sites.entry(k).or_insert(0) += v;
        }
        labeled.extend(outcome.labeled);
        attempts.extend(outcome.attempts);
        quarantined.extend(outcome.quarantined);
    }
    crashed.sort_by_key(|e| e.benchmark);
    quarantined.extend(crashed);
    quarantined.sort_by_key(|e| e.benchmark);
    let report = DegradationReport {
        benchmarks: owned_count,
        completed,
        labeled: labeled.len(),
        quarantined,
        retry_histogram,
        fault_sites,
        resumed,
    };
    LabelRun {
        labeled,
        attempts,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopml_corpus::{synthesize, SuiteConfig, ROSTER};

    fn quick_cfg() -> LabelConfig {
        LabelConfig {
            noise: NoiseModel::exact(),
            ..LabelConfig::paper(SwpMode::Disabled)
        }
    }

    fn small_benchmark() -> Benchmark {
        synthesize(
            &ROSTER[2], // 171.swim
            &SuiteConfig {
                min_loops: 10,
                max_loops: 12,
                ..SuiteConfig::default()
            },
        )
    }

    #[test]
    fn labels_are_valid_classes() {
        let b = small_benchmark();
        let labeled = label_benchmark(&b, 0, &quick_cfg());
        assert!(!labeled.is_empty(), "some loops must survive the filters");
        for l in &labeled {
            assert!(l.label < 8);
            assert_eq!(l.features.len(), crate::features::NUM_FEATURES);
            assert!(l.runtimes.iter().all(|r| *r > 0.0));
        }
    }

    #[test]
    fn label_is_argmin_of_runtimes() {
        let b = small_benchmark();
        for l in label_benchmark(&b, 0, &quick_cfg()) {
            let min = l.runtimes.iter().cloned().fold(f64::INFINITY, f64::min);
            assert_eq!(l.runtimes[l.label], min);
            assert_eq!(l.rank_of(l.best_factor()), 0);
        }
    }

    #[test]
    fn filters_drop_indifferent_loops() {
        let b = small_benchmark();
        let strict = LabelConfig {
            min_benefit: 1.5,
            ..quick_cfg()
        };
        let lax = LabelConfig {
            min_benefit: 1.0,
            min_cycles: 0.0,
            ..quick_cfg()
        };
        let ns = label_benchmark(&b, 0, &strict).len();
        let nl = label_benchmark(&b, 0, &lax).len();
        assert!(ns <= nl, "stricter filter keeps fewer loops: {ns} vs {nl}");
    }

    #[test]
    fn labeling_is_deterministic() {
        let b = small_benchmark();
        let a = label_benchmark(&b, 0, &quick_cfg());
        let c = label_benchmark(&b, 0, &quick_cfg());
        assert_eq!(a, c);
    }

    #[test]
    fn ranked_factors_are_sorted() {
        let b = small_benchmark();
        for l in label_benchmark(&b, 0, &quick_cfg()) {
            let ranked = l.ranked_factors();
            for w in ranked.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
        }
    }

    #[test]
    fn noise_changes_measurements_not_structure() {
        let b = small_benchmark();
        let noisy = LabelConfig {
            noise: NoiseModel::paper(),
            ..quick_cfg()
        };
        let l1 = label_benchmark(&b, 0, &noisy);
        let l2 = label_benchmark(&b, 0, &noisy);
        assert_eq!(l1, l2, "same seed, same labels");
    }

    #[test]
    fn parallel_labeling_is_bit_identical_to_serial() {
        // The determinism contract: under measurement noise, the parallel
        // engine must reproduce the serial reference exactly — labels,
        // names, order, and every runtime down to the last bit.
        let b = small_benchmark();
        let cfg = LabelConfig::paper(SwpMode::Disabled);
        let serial = label_benchmark_threads(&b, 0, &cfg, 1);
        assert!(!serial.is_empty());
        for threads in [2, 3, 4, 8] {
            let parallel = label_benchmark_threads(&b, 0, &cfg, threads);
            assert_eq!(serial, parallel, "diverged at {threads} threads");
        }
        // And through the default (env/core-count) entry point.
        assert_eq!(serial, label_benchmark(&b, 0, &cfg));
    }

    #[test]
    fn suite_labeling_is_identical_across_thread_counts() {
        let suite: Vec<Benchmark> = (0..3).map(|_| small_benchmark()).collect();
        let cfg = LabelConfig::paper(SwpMode::Disabled);
        let serial = label_suite_threads(&suite, &cfg, 1);
        for threads in [2, 5] {
            assert_eq!(serial, label_suite_threads(&suite, &cfg, threads));
        }
        assert_eq!(serial, label_suite(&suite, &cfg));
    }

    fn suite() -> Vec<Benchmark> {
        ROSTER[..3]
            .iter()
            .map(|r| {
                synthesize(
                    r,
                    &SuiteConfig {
                        min_loops: 6,
                        max_loops: 8,
                        ..SuiteConfig::default()
                    },
                )
            })
            .collect()
    }

    fn resilient(faults: FaultPlane, threads: usize) -> ResilienceConfig {
        ResilienceConfig {
            faults,
            threads,
            ..ResilienceConfig::default()
        }
    }

    #[test]
    fn fault_free_resilient_run_matches_legacy_exactly() {
        let suite = suite();
        let cfg = LabelConfig::paper(SwpMode::Disabled);
        let legacy = label_suite_threads(&suite, &cfg, 1);
        for threads in [1, 4] {
            let run =
                label_suite_resilient(&suite, &cfg, &resilient(FaultPlane::disabled(), threads));
            assert_eq!(run.labeled, legacy, "diverged at {threads} threads");
            assert!(run.attempts.iter().all(|&a| a == 0));
            assert!(run.report.quarantined.is_empty());
            assert_eq!(run.report.completed, suite.len());
            assert_eq!(run.report.labeled, legacy.len());
            assert!(run.report.fault_sites.is_empty());
        }
    }

    #[test]
    fn retry_seeds_are_distinct_and_attempt_zero_is_legacy() {
        assert_eq!(attempt_seed(0x51EED, 3, 7, 0), 0x51EED ^ (3u64 << 32) ^ 7);
        let seeds: Vec<u64> = (0..5).map(|a| attempt_seed(0x51EED, 3, 7, a)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(
            uniq.len(),
            seeds.len(),
            "attempt seeds must differ: {seeds:?}"
        );
    }

    #[test]
    fn transient_measure_faults_are_retried() {
        // Rate 1.0 restricted to attempt-0 keys would be ideal, but the
        // key mixes the attempt index, so a full-rate plane faults every
        // attempt: everything unrollable must end up quarantined...
        let suite = suite();
        let cfg = LabelConfig::paper(SwpMode::Disabled);
        let all = FaultPlane::new(1, 1.0).at_site(site::LABEL_MEASURE);
        let run = label_suite_resilient(&suite, &cfg, &resilient(all, 1));
        assert!(run.labeled.is_empty());
        assert!(!run.report.quarantined.is_empty());
        assert!(run
            .report
            .quarantined
            .iter()
            .all(|q| q.scope == QuarantineScope::Loop
                && q.attempts == DEFAULT_RETRY_BUDGET + 1
                && q.site.as_deref() == Some(site::LABEL_MEASURE)));
        assert_eq!(
            run.report.completed,
            suite.len(),
            "benchmarks still complete"
        );

        // ...while a moderate rate lets retries succeed: some loops need
        // more than one attempt, and the run still labels loops. (A loop
        // makes eight faultable measurements per attempt, so even a 10%
        // rate faults most first attempts.)
        let some = FaultPlane::new(7, 0.1).at_site(site::LABEL_MEASURE);
        let run = label_suite_resilient(&suite, &cfg, &resilient(some, 1));
        assert!(!run.labeled.is_empty());
        assert!(run.attempts.iter().any(|&a| a > 0), "some retries expected");
        assert!(run.report.fault_sites.contains_key(site::LABEL_MEASURE));
    }

    #[test]
    fn chaos_runs_are_thread_invariant_and_reproducible() {
        let suite = suite();
        let cfg = LabelConfig::paper(SwpMode::Disabled);
        let plane = || FaultPlane::new(0xC4A05, 0.25);
        let reference = label_suite_resilient(&suite, &cfg, &resilient(plane(), 1));
        for threads in [2, 4] {
            let run = label_suite_resilient(&suite, &cfg, &resilient(plane(), threads));
            assert_eq!(run, reference, "chaos diverged at {threads} threads");
        }
    }

    #[test]
    fn crashed_benchmark_quarantines_whole_benchmark() {
        let suite = suite();
        let cfg = LabelConfig::paper(SwpMode::Disabled);
        let plane = FaultPlane::new(0, 1.0)
            .at_site(site::LABEL_LOOP)
            .only_keys(vec![1]);
        let run = label_suite_resilient(&suite, &cfg, &resilient(plane, 4));
        let bench_q: Vec<_> = run
            .report
            .quarantined
            .iter()
            .filter(|q| q.scope == QuarantineScope::Benchmark)
            .collect();
        assert_eq!(bench_q.len(), 1);
        assert_eq!(bench_q[0].benchmark, 1);
        assert_eq!(bench_q[0].name, suite[1].name);
        assert_eq!(bench_q[0].site.as_deref(), Some(site::LABEL_LOOP));
        assert_eq!(run.report.completed, suite.len() - 1);
        // Survivors are untouched: bit-identical to labeling them alone.
        assert!(run.labeled.iter().all(|l| l.benchmark != 1));
        let alone: Vec<LabeledLoop> = [0usize, 2]
            .into_iter()
            .flat_map(|bi| label_benchmark(&suite[bi], bi, &cfg))
            .collect();
        assert_eq!(run.labeled, alone);
    }

    #[test]
    fn shard_spec_parses_and_rejects_nonsense() {
        assert_eq!(Shard::parse("0/3"), Ok(Shard { index: 0, count: 3 }));
        assert_eq!(Shard::parse("2/3"), Ok(Shard { index: 2, count: 3 }));
        for bad in ["3/3", "5/2", "0/0", "1/0", "x/3", "0/y", "03", "", "1/2/3"] {
            assert!(Shard::parse(bad).is_err(), "{bad:?} should be rejected");
        }
        let s = Shard { index: 1, count: 3 };
        assert!(s.owns(1) && s.owns(4));
        assert!(!s.owns(0) && !s.owns(2) && !s.owns(3));
    }

    #[test]
    fn sharded_runs_partition_the_single_process_run() {
        let suite = suite();
        let cfg = LabelConfig::paper(SwpMode::Disabled);
        let res = resilient(FaultPlane::disabled(), 2);
        let full = label_suite_resilient(&suite, &cfg, &res);
        let count = 2;
        let shards: Vec<LabelRun> = (0..count)
            .map(|index| {
                label_suite_resilient_sharded(&suite, &cfg, &res, Some(Shard { index, count }))
            })
            .collect();

        // Each shard's labels are the exact sub-sequence the full run
        // produced for its benchmarks, bit for bit.
        for (i, run) in shards.iter().enumerate() {
            let s = Shard { index: i, count };
            assert!(run.labeled.iter().all(|l| s.owns(l.benchmark)));
            let expected: Vec<&LabeledLoop> = full
                .labeled
                .iter()
                .filter(|l| s.owns(l.benchmark))
                .collect();
            assert_eq!(run.labeled.iter().collect::<Vec<_>>(), expected);
        }

        // Interleaving shard labels by global benchmark index rebuilds
        // the single-process run exactly, and the accounting sums.
        let mut pairs: Vec<(LabeledLoop, u32)> = shards
            .iter()
            .flat_map(|r| r.labeled.iter().cloned().zip(r.attempts.iter().copied()))
            .collect();
        pairs.sort_by_key(|(l, _)| l.benchmark);
        let merged: Vec<LabeledLoop> = pairs.iter().map(|(l, _)| l.clone()).collect();
        assert_eq!(merged, full.labeled);
        let benchmarks: usize = shards.iter().map(|r| r.report.benchmarks).sum();
        assert_eq!(benchmarks, full.report.benchmarks);
        let completed: usize = shards.iter().map(|r| r.report.completed).sum();
        assert_eq!(completed, full.report.completed);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let suite = suite();
        let cfg = LabelConfig::paper(SwpMode::Disabled);
        let dir = std::env::temp_dir().join("loopml_label_resume_unit");
        let _ = std::fs::remove_dir_all(&dir);
        let plane = || FaultPlane::new(9, 0.2).at_site(site::LABEL_MEASURE);
        let full = ResilienceConfig {
            faults: plane(),
            ckpt_dir: Some(dir.clone()),
            threads: 2,
            ..ResilienceConfig::default()
        };
        let clean = label_suite_resilient(&suite, &cfg, &full);

        // Simulate dying partway: drop one checkpoint, resume.
        std::fs::remove_file(crate::checkpoint::checkpoint_path(&dir, 1, &suite[1].name))
            .expect("checkpoint existed");
        let resume = ResilienceConfig {
            resume: true,
            ..full
        };
        let resumed = label_suite_resilient(&suite, &cfg, &resume);
        assert_eq!(resumed.labeled, clean.labeled);
        assert_eq!(resumed.attempts, clean.attempts);
        assert_eq!(resumed.report.resumed, 2);
        // The report content (everything serialized) matches exactly.
        assert_eq!(
            resumed.report.to_json().to_string(),
            clean.report.to_json().to_string()
        );
    }
}
