//! Measurement-noise modelling.
//!
//! The paper's labels come from hardware cycle counters in a multi-tasking
//! environment: noisy. It mitigates noise by taking the median of 30 runs
//! and dropping loops that run under 50,000 cycles. This module models a
//! multiplicative Gaussian measurement error so the labeling pipeline (and
//! the oracle-beaten-by-ORC artifacts in Figures 4/5) can be reproduced.

use loopml_rt::Rng;

/// A multiplicative Gaussian noise source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Relative standard deviation of one measurement (e.g. 0.02 = 2%).
    pub sigma: f64,
    /// Measurements taken per data point; the median is reported.
    pub runs: usize,
}

impl NoiseModel {
    /// A noiseless model (measurements are exact).
    pub fn exact() -> Self {
        NoiseModel {
            sigma: 0.0,
            runs: 1,
        }
    }

    /// The paper's regime: 30 runs, a few percent of jitter.
    pub fn paper() -> Self {
        NoiseModel {
            sigma: 0.03,
            runs: 30,
        }
    }

    /// Observes `true_cycles` through the noise model: the median of
    /// `runs` noisy samples.
    pub fn measure(&self, true_cycles: f64, rng: &mut Rng) -> f64 {
        if self.sigma == 0.0 || self.runs == 0 {
            return true_cycles;
        }
        let mut samples: Vec<f64> = (0..self.runs)
            .map(|_| {
                let z = standard_normal(rng);
                // Timer noise can only make things look slower or jitter
                // slightly; clamp at -3 sigma to keep samples positive.
                true_cycles * (1.0 + self.sigma * z.max(-3.0))
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        median_of_sorted(&samples)
    }
}

/// Standard normal deviate via Box-Muller.
fn standard_normal(rng: &mut Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_model_is_identity() {
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(NoiseModel::exact().measure(12345.0, &mut rng), 12345.0);
    }

    #[test]
    fn median_tames_noise() {
        let mut rng = Rng::seed_from_u64(7);
        let one_run = NoiseModel {
            sigma: 0.05,
            runs: 1,
        };
        let thirty = NoiseModel {
            sigma: 0.05,
            runs: 30,
        };
        let n = 400;
        let err = |m: NoiseModel, rng: &mut Rng| -> f64 {
            (0..n)
                .map(|_| (m.measure(1000.0, rng) - 1000.0).abs())
                .sum::<f64>()
                / n as f64
        };
        let e1 = err(one_run, &mut rng);
        let e30 = err(thirty, &mut rng);
        assert!(e30 < e1, "median of 30 should be tighter: {e30} vs {e1}");
    }

    #[test]
    fn measurements_stay_positive() {
        let mut rng = Rng::seed_from_u64(3);
        let m = NoiseModel {
            sigma: 0.2,
            runs: 5,
        };
        for _ in 0..200 {
            assert!(m.measure(100.0, &mut rng) > 0.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let m = NoiseModel::paper();
        let a = m.measure(5000.0, &mut Rng::seed_from_u64(42));
        let b = m.measure(5000.0, &mut Rng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn median_of_even_sorted() {
        assert_eq!(median_of_sorted(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median_of_sorted(&[1.0, 2.0, 3.0]), 2.0);
    }
}
