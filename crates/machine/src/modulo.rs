//! Iterative modulo scheduling (software pipelining).
//!
//! Implements a Rau-style iterative modulo scheduler: compute the minimum
//! initiation interval (the larger of the resource bound and the
//! recurrence bound), then try to place operations into a modulo
//! reservation table at that II, evicting conflicting placements under a
//! budget, and increase the II on failure.
//!
//! The pipeliner refuses loops it cannot handle — bodies with early exits
//! or calls, or bodies beyond a size limit — exactly the situations in
//! which ORC falls back to plain unrolling + list scheduling. Unrolling an
//! unknown-trip-count loop inserts early exits and therefore *disables*
//! pipelining, one of the interactions that makes the SWP-enabled
//! unrolling decision (Figure 5) subtle.

use loopml_ir::{DepGraph, Loop, Opcode};

use crate::config::{FuKind, MachineConfig};
use crate::list_sched::{edge_latency, heights};

/// A modulo schedule: a kernel of `ii` cycles executing `stages`
/// overlapped iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuloSchedule {
    /// Achieved initiation interval in cycles.
    pub ii: u32,
    /// Flat start cycle of each instruction (within its own iteration).
    pub starts: Vec<u32>,
    /// Number of pipeline stages (`ceil(makespan / ii)`).
    pub stages: u32,
}

/// Why the software pipeliner declined a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwpReject {
    /// The body contains an early exit (multiple-exit loops are not
    /// pipelined).
    HasEarlyExit,
    /// The body contains a call.
    HasCall,
    /// The body exceeds the pipeliner's size limit.
    TooLarge,
    /// No schedule was found within the II search window.
    NoSchedule,
}

/// Resource-constrained minimum II.
pub fn res_mii(l: &Loop, cfg: &MachineConfig) -> u32 {
    let mut demand = [0u32; FuKind::COUNT];
    let mut total = 0u32;
    for inst in &l.body {
        let k = cfg.fu_kind(inst.opcode);
        demand[k.index()] += cfg.occupancy(inst.opcode);
        total += 1;
    }
    let mut mii = total.div_ceil(cfg.issue_width);
    for (k, &dem) in demand.iter().enumerate() {
        if k == FuKind::None.index() {
            continue;
        }
        if cfg.units[k] > 0 && dem > 0 {
            mii = mii.max(dem.div_ceil(cfg.units[k]));
        }
    }
    mii.max(1)
}

/// Recurrence-constrained minimum II under machine latencies.
pub fn rec_mii(l: &Loop, g: &DepGraph, cfg: &MachineConfig) -> u32 {
    g.rec_mii(|d| edge_latency(d, l, cfg))
}

/// Attempts to software-pipeline `l`.
///
/// # Errors
///
/// Returns a [`SwpReject`] describing why the loop was not pipelined.
pub fn modulo_schedule(
    l: &Loop,
    g: &DepGraph,
    cfg: &MachineConfig,
) -> Result<ModuloSchedule, SwpReject> {
    if l.body.iter().any(|i| i.opcode == Opcode::BrExit) {
        return Err(SwpReject::HasEarlyExit);
    }
    if l.has_call() {
        return Err(SwpReject::HasCall);
    }
    if l.body.len() > cfg.swp_body_limit {
        return Err(SwpReject::TooLarge);
    }

    let mii = res_mii(l, cfg).max(rec_mii(l, g, cfg));
    for ii in mii..=mii + cfg.swp_ii_slack {
        if let Some(s) = try_ii(l, g, cfg, ii) {
            return Ok(s);
        }
    }
    Err(SwpReject::NoSchedule)
}

/// One iterative-modulo-scheduling attempt at a fixed II.
fn try_ii(l: &Loop, g: &DepGraph, cfg: &MachineConfig, ii: u32) -> Option<ModuloSchedule> {
    let n = l.body.len();
    if n == 0 {
        return Some(ModuloSchedule {
            ii,
            starts: vec![],
            stages: 1,
        });
    }
    let prio = heights(l, g, cfg);
    // Edges with (src, dst, lat, dist), including carried ones.
    let edges: Vec<(usize, usize, i64, i64)> = g
        .deps()
        .iter()
        .map(|d| {
            (
                d.src,
                d.dst,
                i64::from(edge_latency(d, l, cfg)),
                i64::from(d.distance),
            )
        })
        .collect();
    let mut preds: Vec<Vec<(usize, i64, i64)>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<(usize, i64, i64)>> = vec![Vec::new(); n];
    for &(s, d, lat, dist) in &edges {
        preds[d].push((s, lat, dist));
        succs[s].push((d, lat, dist));
    }

    let mut starts: Vec<Option<i64>> = vec![None; n];
    let mut mrt = ModuloTable::new(cfg, ii);
    let mut budget = (n as i64) * 8;

    // Worklist: highest priority first among unscheduled.
    while let Some(op) = (0..n)
        .filter(|&j| starts[j].is_none())
        .max_by(|&a, &b| prio[a].cmp(&prio[b]).then(b.cmp(&a)))
    {
        budget -= 1;
        if budget < 0 {
            return None;
        }
        // Earliest start from scheduled predecessors.
        let estart = preds[op]
            .iter()
            .filter_map(|&(p, lat, dist)| starts[p].map(|sp| sp + lat - i64::from(ii) * dist))
            .max()
            .unwrap_or(0)
            .max(0);
        // Find a resource-feasible slot within one II of estart.
        let opcode = l.body[op].opcode;
        let slot = (estart..estart + i64::from(ii))
            .find(|&c| mrt.fits(c, opcode))
            .unwrap_or(estart);
        // Evict resource conflictors at the chosen slot if forced.
        if !mrt.fits(slot, opcode) {
            for (j, sj) in starts.iter_mut().enumerate() {
                if j != op
                    && sj.is_some_and(|s| conflicts(mrt.cfg, ii, s, l.body[j].opcode, slot, opcode))
                {
                    mrt.remove(sj.unwrap(), l.body[j].opcode);
                    *sj = None;
                }
            }
        }
        if !mrt.fits(slot, opcode) {
            // Still blocked (unit pool saturated by this op alone).
            return None;
        }
        mrt.place(slot, opcode);
        starts[op] = Some(slot);
        // Evict scheduled successors whose constraint broke.
        for &(s, lat, dist) in &succs[op] {
            if s == op {
                continue;
            }
            if let Some(ss) = starts[s] {
                if slot + lat - i64::from(ii) * dist > ss {
                    mrt.remove(ss, l.body[s].opcode);
                    starts[s] = None;
                }
            }
        }
    }

    let starts: Vec<i64> = starts.into_iter().map(|s| s.expect("scheduled")).collect();
    // Validate every dependence (cheap insurance against scheduler bugs).
    for &(s, d, lat, dist) in &edges {
        if starts[s] + lat - i64::from(ii) * dist > starts[d] {
            return None;
        }
    }
    let makespan = starts.iter().copied().max().unwrap_or(0) + 1;
    let stages = (makespan as u64).div_ceil(u64::from(ii)).max(1) as u32;
    Some(ModuloSchedule {
        ii,
        starts: starts.iter().map(|&s| s as u32).collect(),
        stages,
    })
}

/// `true` if scheduling `b_op` at `b_slot` would need a unit `a_op` at
/// `a_slot` holds in the modulo table.
fn conflicts(
    cfg: &MachineConfig,
    ii: u32,
    a_slot: i64,
    a_op: Opcode,
    b_slot: i64,
    b_op: Opcode,
) -> bool {
    if cfg.fu_kind(a_op) != cfg.fu_kind(b_op) {
        return false;
    }
    let ii = i64::from(ii);
    let a_occ = i64::from(cfg.occupancy(a_op));
    let b_occ = i64::from(cfg.occupancy(b_op));
    for ka in 0..a_occ {
        for kb in 0..b_occ {
            if (a_slot + ka).rem_euclid(ii) == (b_slot + kb).rem_euclid(ii) {
                return true;
            }
        }
    }
    false
}

/// Modulo reservation table: `ii` rows of unit counters.
#[derive(Debug)]
struct ModuloTable<'a> {
    cfg: &'a MachineConfig,
    ii: i64,
    issue: Vec<u32>,
    units: Vec<[u32; FuKind::COUNT]>,
}

impl<'a> ModuloTable<'a> {
    fn new(cfg: &'a MachineConfig, ii: u32) -> Self {
        ModuloTable {
            cfg,
            ii: i64::from(ii),
            issue: vec![0; ii as usize],
            units: vec![[0; FuKind::COUNT]; ii as usize],
        }
    }

    fn row(&self, cycle: i64) -> usize {
        cycle.rem_euclid(self.ii) as usize
    }

    fn fits(&self, cycle: i64, op: Opcode) -> bool {
        let kind = self.cfg.fu_kind(op);
        let r0 = self.row(cycle);
        if self.issue[r0] >= self.cfg.issue_width {
            return false;
        }
        let limit = self.cfg.units[kind.index()];
        for k in 0..i64::from(self.cfg.occupancy(op)) {
            if self.units[self.row(cycle + k)][kind.index()] >= limit {
                return false;
            }
        }
        true
    }

    fn place(&mut self, cycle: i64, op: Opcode) {
        let kind = self.cfg.fu_kind(op);
        let r0 = self.row(cycle);
        self.issue[r0] += 1;
        for k in 0..i64::from(self.cfg.occupancy(op)) {
            let r = self.row(cycle + k);
            self.units[r][kind.index()] += 1;
        }
    }

    fn remove(&mut self, cycle: i64, op: Opcode) {
        let kind = self.cfg.fu_kind(op);
        let r0 = self.row(cycle);
        self.issue[r0] -= 1;
        for k in 0..i64::from(self.cfg.occupancy(op)) {
            let r = self.row(cycle + k);
            self.units[r][kind.index()] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopml_ir::{ArrayId, Inst, LoopBuilder, MemRef, TripCount};

    fn cfg() -> MachineConfig {
        MachineConfig::itanium2()
    }

    fn daxpy() -> Loop {
        let mut b = LoopBuilder::new("daxpy", TripCount::Known(1000));
        let x = b.fp_reg();
        let y = b.fp_reg();
        let r = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.load(y, MemRef::affine(ArrayId(1), 8, 0, 8));
        b.inst(Inst::new(Opcode::Fma, vec![r], vec![x, y]));
        b.store(r, MemRef::affine(ArrayId(1), 8, 0, 8));
        b.build()
    }

    #[test]
    fn pipelines_daxpy_tightly() {
        let l = daxpy();
        let g = DepGraph::analyze(&l);
        let s = modulo_schedule(&l, &g, &cfg()).expect("pipelines");
        // 7 instructions / 6-issue and 2 loads+1 store / ports => II 2.
        assert!(s.ii <= 3, "ii = {}", s.ii);
        assert!(s.stages >= 2, "pipelining overlaps iterations");
    }

    #[test]
    fn ii_beats_list_schedule_iteration_time() {
        let l = daxpy();
        let g = DepGraph::analyze(&l);
        let swp = modulo_schedule(&l, &g, &cfg()).unwrap();
        let ls = crate::list_sched::list_schedule(&l, &g, &cfg());
        assert!(
            swp.ii < ls.iter_interval,
            "swp {} vs list {}",
            swp.ii,
            ls.iter_interval
        );
    }

    #[test]
    fn recurrence_bounds_ii() {
        let mut b = LoopBuilder::new("red", TripCount::Known(100));
        let x = b.fp_reg();
        let acc = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.inst(Inst::new(Opcode::FAdd, vec![acc], vec![acc, x]));
        let l = b.build();
        let g = DepGraph::analyze(&l);
        let s = modulo_schedule(&l, &g, &cfg()).unwrap();
        assert!(s.ii >= 4, "FAdd recurrence bounds II, got {}", s.ii);
    }

    #[test]
    fn rejects_early_exits() {
        let mut b = LoopBuilder::new("exit", TripCount::Unknown { estimate: 100 });
        let x = b.int_reg();
        let y = b.int_reg();
        b.early_exit(x, y);
        let l = b.build();
        let g = DepGraph::analyze(&l);
        assert_eq!(
            modulo_schedule(&l, &g, &cfg()),
            Err(SwpReject::HasEarlyExit)
        );
    }

    #[test]
    fn rejects_oversized_bodies() {
        let mut b = LoopBuilder::new("big", TripCount::Known(100));
        for k in 0..200u32 {
            let r = b.fp_reg();
            b.load(r, MemRef::affine(ArrayId(k % 4), 8, i64::from(k) * 8, 8));
        }
        let l = b.build();
        let g = DepGraph::analyze(&l);
        assert_eq!(modulo_schedule(&l, &g, &cfg()), Err(SwpReject::TooLarge));
    }

    #[test]
    fn schedule_respects_all_dependences() {
        let l = daxpy();
        let g = DepGraph::analyze(&l);
        let s = modulo_schedule(&l, &g, &cfg()).unwrap();
        for d in g.deps() {
            let lat = i64::from(edge_latency(d, &l, &cfg()));
            let lhs = i64::from(s.starts[d.src]) + lat - i64::from(s.ii) * i64::from(d.distance);
            assert!(
                lhs <= i64::from(s.starts[d.dst]),
                "edge {}→{} violated at ii {}",
                d.src,
                d.dst,
                s.ii
            );
        }
    }

    #[test]
    fn res_mii_counts_ports() {
        // 5 stores / 2 store ports => resource MII at least 3.
        let mut b = LoopBuilder::new("st", TripCount::Known(10));
        for k in 0..5u32 {
            let r = b.fp_reg();
            b.store(r, MemRef::affine(ArrayId(k), 8, 0, 8));
        }
        let l = b.build();
        assert!(res_mii(&l, &cfg()) >= 3);
    }

    #[test]
    fn fractional_ii_motivation() {
        // A body whose resource demand is 2.5 cycles: 5 loads / 2 ports.
        // Rolled II = 3; unrolled by 2, the 10 loads need II 5 over two
        // iterations = 2.5 per original iteration.
        let mut b = LoopBuilder::new("frac", TripCount::Known(1000));
        for k in 0..5u32 {
            let r = b.fp_reg();
            b.load(r, MemRef::affine(ArrayId(k), 8, 0, 8));
        }
        let l = b.build();
        let g = DepGraph::analyze(&l);
        let rolled = modulo_schedule(&l, &g, &cfg()).unwrap();
        let u = loopml_opt::unroll(&l, 2);
        let g2 = DepGraph::analyze(&u.body);
        let unrolled = modulo_schedule(&u.body, &g2, &cfg()).unwrap();
        let per_orig_rolled = f64::from(rolled.ii);
        let per_orig_unrolled = f64::from(unrolled.ii) / 2.0;
        assert!(
            per_orig_unrolled < per_orig_rolled,
            "unrolling should capture fractional II: {per_orig_unrolled} vs {per_orig_rolled}"
        );
    }
}
