//! First-order instruction- and data-cache models.
//!
//! These capture the two cache-mediated effects unrolling has (paper §3):
//! code expansion degrades the instruction cache, while the extra
//! independent memory operations exposed by unrolling increase memory-level
//! parallelism and hide data-miss latency.

use loopml_ir::{Loop, MemRef};

use crate::config::MachineConfig;

/// Steady-state data-cache stall cycles per loop iteration.
///
/// Affine access streams are grouped by base array; each stream touches
/// `|stride| / line` new lines per iteration (at most one per access).
/// Indirect accesses miss at [`MachineConfig::indirect_miss_rate`]. Miss
/// cycles are divided by the memory-level parallelism the body exposes —
/// the number of load instructions, capped by the machine's outstanding
/// miss limit — which is how deeper unrolling hides memory latency.
pub fn dcache_stall_per_iter(l: &Loop, cfg: &MachineConfig) -> f64 {
    use std::collections::HashMap;
    let line = cfg.dcache_line as f64;

    // (base) -> (stride, access count)
    let mut streams: HashMap<u32, (f64, u32)> = HashMap::new();
    let mut indirect_accesses = 0u32;
    let mut load_insts = 0u32;
    for inst in &l.body {
        let Some(m) = inst.mem else { continue };
        if !(inst.is_load() || inst.is_store()) {
            continue;
        }
        if inst.is_load() {
            // A paired load keeps two original accesses in flight.
            load_insts += if inst.opcode == loopml_ir::Opcode::LoadPair {
                2
            } else {
                1
            };
        }
        if m.indirect {
            indirect_accesses += 1;
            continue;
        }
        let e = streams
            .entry(m.base.0)
            .or_insert((m.stride.unsigned_abs() as f64, 0));
        e.1 += 1;
    }

    let mut misses = 0.0;
    for (stride, count) in streams.values() {
        let lines_per_iter = (stride / line).min(f64::from(*count));
        misses += lines_per_iter;
    }
    misses += f64::from(indirect_accesses) * cfg.indirect_miss_rate;

    if misses == 0.0 {
        return 0.0;
    }
    // Memory-level parallelism grows with the independent loads the body
    // exposes, but with diminishing returns: an in-order machine can only
    // hoist so many loads ahead of their first use.
    let mlp = (1.0 + f64::from(load_insts).ln_1p())
        .min(cfg.max_outstanding_misses)
        .max(1.0);
    misses * cfg.dmiss_penalty / mlp
}

/// Instruction-fetch cycles charged once per loop entry.
///
/// On entry the loop's lines must be fetched if they were evicted since
/// the previous entry; the eviction probability grows with the
/// benchmark's hot-code footprint relative to the cache capacity.
pub fn icache_entry_cost(code_bytes: u64, hot_footprint: u64, cfg: &MachineConfig) -> f64 {
    let lines = code_bytes.div_ceil(cfg.icache_line) as f64;
    let p_evict = (hot_footprint as f64 / cfg.icache_bytes as f64).min(1.0);
    lines * cfg.ifetch_penalty * p_evict
}

/// Instruction-fetch cycles per iteration for bodies that exceed the
/// instruction cache outright (they stream on every pass).
pub fn icache_stream_per_iter(code_bytes: u64, cfg: &MachineConfig) -> f64 {
    if code_bytes <= cfg.icache_bytes {
        return 0.0;
    }
    let excess_lines = (code_bytes - cfg.icache_bytes).div_ceil(cfg.icache_line) as f64;
    excess_lines * cfg.ifetch_penalty
}

/// Sum of distinct affine stream strides — a proxy for the loop's data
/// footprint per iteration, exposed for feature extraction.
pub fn bytes_touched_per_iter(l: &Loop) -> f64 {
    use std::collections::HashMap;
    let mut streams: HashMap<u32, f64> = HashMap::new();
    for inst in &l.body {
        if let Some(MemRef {
            base,
            stride,
            indirect: false,
            ..
        }) = inst.mem
        {
            streams.insert(base.0, stride.unsigned_abs() as f64);
        }
    }
    streams.values().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopml_ir::{ArrayId, LoopBuilder, MemRef, TripCount};
    use loopml_opt::{unroll_and_optimize, OptConfig};

    fn cfg() -> MachineConfig {
        MachineConfig::itanium2()
    }

    fn stream_loop() -> loopml_ir::Loop {
        let mut b = LoopBuilder::new("stream", TripCount::Known(100_000));
        let x = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.store(x, MemRef::affine(ArrayId(1), 8, 0, 8));
        b.build()
    }

    #[test]
    fn no_memory_no_stall() {
        let mut b = LoopBuilder::new("alu", TripCount::Known(10));
        let x = b.int_reg();
        let y = b.int_reg();
        b.binop(loopml_ir::Opcode::Add, y, x, x);
        assert_eq!(dcache_stall_per_iter(&b.build(), &cfg()), 0.0);
    }

    #[test]
    fn unrolling_reduces_per_original_iteration_stall() {
        let l = stream_loop();
        let rolled = dcache_stall_per_iter(&l, &cfg());
        let u = unroll_and_optimize(&l, 8, &OptConfig::default());
        let unrolled = dcache_stall_per_iter(&u.body, &cfg()) / 8.0;
        assert!(
            unrolled < rolled,
            "MLP should hide misses: {unrolled} vs {rolled}"
        );
    }

    #[test]
    fn indirect_accesses_cost_misses() {
        let mut b = LoopBuilder::new("gather", TripCount::Known(100));
        let i = b.int_reg();
        let x = b.fp_reg();
        b.load(i, MemRef::affine(ArrayId(0), 4, 0, 4));
        b.load(x, MemRef::indirect(ArrayId(1), 64, 8));
        b.store(x, MemRef::affine(ArrayId(2), 8, 0, 8));
        let gather = dcache_stall_per_iter(&b.build(), &cfg());
        let plain = dcache_stall_per_iter(&stream_loop(), &cfg());
        assert!(gather > plain, "{gather} vs {plain}");
    }

    #[test]
    fn entry_cost_scales_with_footprint_pressure() {
        let c = cfg();
        let small = icache_entry_cost(512, 1024, &c);
        let large = icache_entry_cost(512, 64 * 1024, &c);
        assert!(large > small);
        // Saturates at certain eviction.
        let sat = icache_entry_cost(512, 10 * 1024 * 1024, &c);
        assert!((sat - icache_entry_cost(512, 20 * 1024 * 1024, &c)).abs() < 1e-9);
    }

    #[test]
    fn streaming_only_beyond_capacity() {
        let c = cfg();
        assert_eq!(icache_stream_per_iter(c.icache_bytes, &c), 0.0);
        assert!(icache_stream_per_iter(c.icache_bytes * 2, &c) > 0.0);
    }

    #[test]
    fn bytes_touched_counts_streams_once() {
        let l = stream_loop();
        assert_eq!(bytes_touched_per_iter(&l), 16.0); // two 8-byte streams
    }
}
