//! Register-pressure estimation over schedules.
//!
//! Given a schedule (list or modulo) this module computes the maximum
//! number of simultaneously live values per register class in the
//! steady-state kernel, counting the overlapping lifetimes of values from
//! multiple in-flight iterations (the software-pipelining pressure effect
//! that makes over-unrolling dangerous).

use std::collections::HashMap;

use loopml_ir::{DepGraph, DepKind, Loop, Reg, RegClass};

use crate::config::MachineConfig;

/// Maximum simultaneous live values per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pressure {
    /// Integer registers.
    pub int: u32,
    /// Floating-point registers.
    pub fp: u32,
}

impl Pressure {
    /// Registers spilled under `cfg`: the excess over each file size.
    pub fn spilled(&self, cfg: &MachineConfig) -> u32 {
        self.int.saturating_sub(cfg.int_regs) + self.fp.saturating_sub(cfg.fp_regs)
    }
}

/// Computes steady-state register pressure.
///
/// `starts` gives each instruction's issue cycle; `period` is the
/// initiation interval between consecutive iterations (the kernel length
/// for list schedules, the II for modulo schedules). A value defined at
/// `d` and last used at `u` (plus `period` for loop-carried consumers) is
/// live for `u - d` cycles; at any kernel cycle the number of live copies
/// of a value is its lifetime divided by the period, rounded by phase.
/// Loop-invariant live-in registers occupy a register throughout.
pub fn max_live(l: &Loop, g: &DepGraph, starts: &[u32], period: u32) -> Pressure {
    let n = l.body.len();
    assert_eq!(starts.len(), n, "starts must cover the body");
    let period = i64::from(period.max(1));

    // Lifetime [def_start, last_use_start] per defined value.
    let mut lifetime: HashMap<(usize, Reg), (i64, i64)> = HashMap::new();
    for (i, inst) in l.body.iter().enumerate() {
        for &d in &inst.defs {
            let s = i64::from(starts[i]);
            lifetime.insert((i, d), (s, s + 1));
        }
    }
    for dep in g.deps() {
        if dep.kind != DepKind::Reg {
            continue;
        }
        // The value produced by dep.src is consumed by dep.dst, `distance`
        // iterations later.
        let use_cycle = i64::from(starts[dep.dst]) + period * i64::from(dep.distance);
        for &d in &l.body[dep.src].defs {
            if l.body[dep.dst].reads().any(|r| r == d) {
                let e = lifetime
                    .entry((dep.src, d))
                    .or_insert((i64::from(starts[dep.src]), i64::from(starts[dep.src]) + 1));
                e.1 = e.1.max(use_cycle);
            }
        }
    }

    // Steady-state occupancy: at kernel cycle c, value copies live =
    // #{k : s <= c + k*period < e}.
    let mut max_int = 0i64;
    let mut max_fp = 0i64;
    for c in 0..period {
        let mut int_live = 0i64;
        let mut fp_live = 0i64;
        for (&(_, r), &(s, e)) in &lifetime {
            let span = e - s;
            if span <= 0 {
                continue;
            }
            // Number of k with s <= c + k*period < e.
            let lo = div_ceil_i64(s - c, period);
            let hi = div_floor_i64(e - 1 - c, period);
            let copies = (hi - lo + 1).max(0);
            match r.class() {
                RegClass::Int => int_live += copies,
                RegClass::Fp => fp_live += copies,
                RegClass::Pred => {}
            }
        }
        max_int = max_int.max(int_live);
        max_fp = max_fp.max(fp_live);
    }

    // Loop-invariant inputs hold a register for the whole loop.
    let mut invariant_int = 0u32;
    let mut invariant_fp = 0u32;
    for r in l.live_in_regs() {
        let defined_in_loop = l.body.iter().any(|i| i.defs.contains(&r));
        if defined_in_loop {
            continue; // loop-carried, already counted via lifetimes
        }
        match r.class() {
            RegClass::Int => invariant_int += 1,
            RegClass::Fp => invariant_fp += 1,
            RegClass::Pred => {}
        }
    }

    Pressure {
        int: max_int as u32 + invariant_int,
        fp: max_fp as u32 + invariant_fp,
    }
}

fn div_floor_i64(a: i64, b: i64) -> i64 {
    let q = a / b;
    if a % b != 0 && (a < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

fn div_ceil_i64(a: i64, b: i64) -> i64 {
    -div_floor_i64(-a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list_sched::list_schedule;
    use crate::modulo::modulo_schedule;
    use loopml_ir::{ArrayId, Inst, LoopBuilder, MemRef, Opcode, TripCount};

    fn cfg() -> MachineConfig {
        MachineConfig::itanium2()
    }

    fn wide_body(temps: u32) -> Loop {
        let mut b = LoopBuilder::new("wide", TripCount::Known(1000));
        let mut regs = Vec::new();
        for k in 0..temps {
            let r = b.fp_reg();
            b.load(r, MemRef::affine(ArrayId(k), 8, 0, 8));
            regs.push(r);
        }
        let mut acc = regs[0];
        for &r in &regs[1..] {
            let t = b.fp_reg();
            b.inst(Inst::new(Opcode::FAdd, vec![t], vec![acc, r]));
            acc = t;
        }
        b.store(acc, MemRef::affine(ArrayId(100), 8, 0, 8));
        b.build()
    }

    #[test]
    fn pressure_grows_with_temporaries() {
        let small = wide_body(3);
        let big = wide_body(12);
        let gs = DepGraph::analyze(&small);
        let gb = DepGraph::analyze(&big);
        let ss = list_schedule(&small, &gs, &cfg());
        let sb = list_schedule(&big, &gb, &cfg());
        let ps = max_live(&small, &gs, &ss.starts, ss.iter_interval);
        let pb = max_live(&big, &gb, &sb.starts, sb.iter_interval);
        assert!(pb.fp > ps.fp, "{pb:?} vs {ps:?}");
    }

    #[test]
    fn pipelining_increases_pressure() {
        let l = wide_body(6);
        let g = DepGraph::analyze(&l);
        let ls = list_schedule(&l, &g, &cfg());
        let p_list = max_live(&l, &g, &ls.starts, ls.iter_interval);
        let swp = modulo_schedule(&l, &g, &cfg()).unwrap();
        let p_swp = max_live(&l, &g, &swp.starts, swp.ii);
        assert!(
            p_swp.fp >= p_list.fp,
            "overlapped iterations hold more values: {p_swp:?} vs {p_list:?}"
        );
    }

    #[test]
    fn no_spills_on_small_bodies() {
        let l = wide_body(4);
        let g = DepGraph::analyze(&l);
        let s = list_schedule(&l, &g, &cfg());
        let p = max_live(&l, &g, &s.starts, s.iter_interval);
        assert_eq!(p.spilled(&cfg()), 0);
    }

    #[test]
    fn spills_reported_beyond_file_size() {
        let mut tight = cfg();
        tight.fp_regs = 4;
        let l = wide_body(10);
        let g = DepGraph::analyze(&l);
        let s = list_schedule(&l, &g, &tight);
        let p = max_live(&l, &g, &s.starts, s.iter_interval);
        assert!(p.spilled(&tight) > 0);
    }

    #[test]
    fn invariants_count_once() {
        // Loop reading a live-in fp register every iteration.
        let mut b = LoopBuilder::new("inv", TripCount::Known(10));
        let k = b.fp_reg(); // never defined: live-in
        let x = b.fp_reg();
        let y = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.inst(Inst::new(Opcode::FMul, vec![y], vec![x, k]));
        b.store(y, MemRef::affine(ArrayId(1), 8, 0, 8));
        let l = b.build();
        let g = DepGraph::analyze(&l);
        let s = list_schedule(&l, &g, &cfg());
        let p = max_live(&l, &g, &s.starts, s.iter_interval);
        assert!(p.fp >= 2, "{p:?}"); // k plus at least one in-flight value
    }
}
