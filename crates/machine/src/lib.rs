//! # loopml-machine — an Itanium 2-flavoured EPIC machine model
//!
//! The hardware substrate of the `loopml` reproduction of *Stephenson &
//! Amarasinghe (CGO 2005)*. The paper labels loops by timing them on a
//! 1.3 GHz Itanium 2; this crate supplies the model that plays that role:
//!
//! * [`MachineConfig`] — issue width, functional units, latencies,
//!   register files, cache parameters ([`MachineConfig::itanium2`]);
//! * [`list_schedule`] — the non-pipelined schedule (paper Figure 4
//!   regime), including loop-carried iteration-interval effects;
//! * [`modulo_schedule`] — Rau-style iterative modulo scheduling with
//!   ResMII/RecMII bounds (paper Figure 5 regime), refusing loops with
//!   early exits or calls exactly as ORC's pipeliner does;
//! * [`max_live`] — steady-state register pressure with overlapped
//!   iteration lifetimes, and spill estimation;
//! * [`cache`] — first-order I-cache (code expansion) and D-cache
//!   (memory-level parallelism) models;
//! * [`loop_cost`] — the per-iteration / per-entry cost of an unrolled
//!   loop variant, the quantity the labeling pipeline minimizes;
//! * [`NoiseModel`] — multiplicative measurement noise with
//!   median-of-N observation, reproducing the paper's noisy-label regime.
//!
//! # Examples
//!
//! ```
//! use loopml_ir::{ArrayId, Inst, LoopBuilder, MemRef, Opcode, TripCount};
//! use loopml_machine::{loop_cost, MachineConfig, SwpMode};
//! use loopml_opt::{unroll_and_optimize, OptConfig};
//!
//! let mut b = LoopBuilder::new("scale", TripCount::Known(65536));
//! let x = b.fp_reg();
//! let y = b.fp_reg();
//! b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
//! b.binop(Opcode::FMul, y, x, x);
//! b.store(y, MemRef::affine(ArrayId(1), 8, 0, 8));
//! let l = b.build();
//!
//! let cfg = MachineConfig::itanium2();
//! let rolled = unroll_and_optimize(&l, 1, &OptConfig::default());
//! let c1 = loop_cost(&rolled, 0.0, &cfg, SwpMode::Disabled);
//! let u4 = unroll_and_optimize(&l, 4, &OptConfig::default());
//! let c4 = loop_cost(&u4, c1.per_iter, &cfg, SwpMode::Disabled);
//! // Four original iterations per unrolled trip: compare per original work.
//! assert!(c4.per_iter / 4.0 < c1.per_iter);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod config;
pub mod cost;
pub mod list_sched;
pub mod modulo;
pub mod noise;
pub mod pressure;

pub use cache::{
    bytes_touched_per_iter, dcache_stall_per_iter, icache_entry_cost, icache_stream_per_iter,
};
pub use config::{FuKind, MachineConfig};
pub use cost::{loop_cost, LoopCost, SwpMode};
pub use list_sched::{list_schedule, Schedule};
pub use modulo::{modulo_schedule, rec_mii, res_mii, ModuloSchedule, SwpReject};
pub use noise::NoiseModel;
pub use pressure::{max_live, Pressure};

#[cfg(test)]
mod proptests {
    use super::*;
    use loopml_ir::{ArrayId, DepGraph, Inst, Loop, LoopBuilder, MemRef, Opcode, TripCount};
    use loopml_rt::{check, Rng};

    /// Random small FP loop: 1..6 loads, 0..8 dependent ops, 1..3 stores.
    fn arb_loop(rng: &mut Rng) -> Loop {
        let n_loads = rng.gen_range(1..6usize);
        let n_ops = rng.gen_range(0..8usize);
        let n_stores = rng.gen_range(1u32..3);
        let mut b = LoopBuilder::new("arb", TripCount::Known(1 << 16));
        let mut vals = Vec::new();
        for _ in 0..n_loads {
            let arr: u32 = rng.gen_range(0..4u32);
            let off: i64 = rng.gen_range(0..4i64);
            let r = b.fp_reg();
            b.load(r, MemRef::affine(ArrayId(arr), 8, off * 8, 8));
            vals.push(r);
        }
        for k in 0..n_ops {
            let a = vals[k % vals.len()];
            let c = vals[(k + 1) % vals.len()];
            let r = b.fp_reg();
            let op = [
                Opcode::FAdd,
                Opcode::FMul,
                Opcode::Fma,
                Opcode::FDiv,
                Opcode::FSub,
            ][rng.gen_range(0..5usize)];
            b.inst(Inst::new(op, vec![r], vec![a, c]));
            vals.push(r);
        }
        for s in 0..n_stores {
            let v = vals[vals.len() - 1 - (s as usize) % vals.len()];
            b.store(v, MemRef::affine(ArrayId(20 + s), 8, 0, 8));
        }
        b.build()
    }

    #[test]
    fn list_schedule_respects_dependences() {
        check("list_schedule_respects_dependences", 40, |rng| {
            let l = arb_loop(rng);
            let cfg = MachineConfig::itanium2();
            let g = DepGraph::analyze(&l);
            let s = list_schedule(&l, &g, &cfg);
            for d in g.intra() {
                let lat = {
                    // reuse crate-internal latency via public behaviour:
                    // schedule must satisfy start(src) < start(dst) for
                    // true deps at minimum.
                    match d.kind {
                        loopml_ir::DepKind::Reg => cfg.latency(&l.body[d.src]),
                        _ => 0,
                    }
                };
                assert!(s.starts[d.src] + lat <= s.starts[d.dst] || lat == 0);
            }
            assert!(s.iter_interval >= s.length.min(s.iter_interval));
        });
    }

    #[test]
    fn modulo_ii_at_least_bounds() {
        check("modulo_ii_at_least_bounds", 40, |rng| {
            let l = arb_loop(rng);
            let cfg = MachineConfig::itanium2();
            let g = DepGraph::analyze(&l);
            if let Ok(m) = modulo_schedule(&l, &g, &cfg) {
                assert!(m.ii >= res_mii(&l, &cfg).min(m.ii));
                assert!(m.ii >= rec_mii(&l, &g, &cfg));
                let ls = list_schedule(&l, &g, &cfg);
                assert!(
                    m.ii <= ls.iter_interval,
                    "pipelining should never be slower than lockstep: {} vs {}",
                    m.ii,
                    ls.iter_interval
                );
            }
        });
    }

    #[test]
    fn cost_is_finite_and_positive() {
        check("cost_is_finite_and_positive", 40, |rng| {
            let l = arb_loop(rng);
            let factor: u32 = rng.gen_range(1..=8u32);
            let cfg = MachineConfig::itanium2();
            let u = loopml_opt::unroll_and_optimize(&l, factor, &loopml_opt::OptConfig::default());
            for swp in [SwpMode::Disabled, SwpMode::Enabled] {
                let c = loop_cost(&u, 10.0, &cfg, swp);
                assert!(c.per_iter.is_finite() && c.per_iter >= 1.0);
                assert!(c.per_entry.is_finite() && c.per_entry >= 0.0);
            }
        });
    }
}
