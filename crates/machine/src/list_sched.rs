//! Cycle-driven list scheduling for acyclic loop bodies.
//!
//! This models the schedule ORC emits when software pipelining is off: one
//! iteration's instructions are packed into bundles subject to dependences
//! and functional-unit limits, and the loop executes the resulting
//! schedule every iteration. Loop-carried dependences then determine how
//! much of the next iteration can overlap — the effective
//! cycles-per-iteration reported in [`Schedule::iter_interval`].

use loopml_ir::{Dep, DepGraph, DepKind, Loop, Opcode};

use crate::config::{FuKind, MachineConfig};

/// A scheduled loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Issue cycle of each body instruction.
    pub starts: Vec<u32>,
    /// Schedule length in cycles (last issue cycle + 1).
    pub length: u32,
    /// Effective steady-state cycles per iteration: the schedule length,
    /// extended if a loop-carried dependence forces a stall between
    /// consecutive iterations.
    pub iter_interval: u32,
}

/// Machine-latency of a dependence edge.
pub(crate) fn edge_latency(d: &Dep, l: &Loop, cfg: &MachineConfig) -> u32 {
    match d.kind {
        DepKind::Reg => cfg.latency(&l.body[d.src]),
        DepKind::RegAnti => 0,
        DepKind::RegOut => 1,
        DepKind::Ctrl => 0,
        DepKind::Mem => {
            let src_store = l.body[d.src].is_store();
            let dst_store = l.body[d.dst].is_store();
            match (src_store, dst_store) {
                (true, false) => 2, // store-to-load forwarding
                (false, true) => 0, // anti
                _ => 1,             // output ordering
            }
        }
    }
}

/// Latency-weighted height of each node: the longest path from the node
/// to any sink over intra-iteration edges.
pub(crate) fn heights(l: &Loop, g: &DepGraph, cfg: &MachineConfig) -> Vec<u32> {
    let n = l.body.len();
    let mut h: Vec<u32> = l.body.iter().map(|i| cfg.latency(i)).collect();
    // Intra edges always point forward in index order, so relaxing edges
    // in decreasing source order settles longest paths in one pass: by the
    // time an edge out of `src` is relaxed, every edge out of a larger
    // index (hence every successor of `dst`) is final.
    let mut intra: Vec<&Dep> = g.intra().collect();
    intra.sort_by_key(|d| std::cmp::Reverse(d.src));
    for d in intra.iter() {
        let via = edge_latency(d, l, cfg) + h[d.dst];
        if via > h[d.src] {
            h[d.src] = via;
        }
    }
    debug_assert_eq!(h.len(), n);
    h
}

/// List-schedules `l` on `cfg`.
///
/// The backward branch is pinned to the end of the schedule (it closes
/// the iteration). Resource constraints: total issue width per cycle, and
/// per-[`FuKind`] unit counts with multi-cycle occupancy for FP divides.
pub fn list_schedule(l: &Loop, g: &DepGraph, cfg: &MachineConfig) -> Schedule {
    let n = l.body.len();
    if n == 0 {
        return Schedule {
            starts: vec![],
            length: 0,
            iter_interval: 1,
        };
    }
    let h = heights(l, g, cfg);
    let intra: Vec<&Dep> = g.intra().collect();

    let mut pred_edges: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    for d in &intra {
        pred_edges[d.dst].push((d.src, edge_latency(d, l, cfg)));
    }

    let mut starts: Vec<Option<u32>> = vec![None; n];
    let mut scheduled = 0usize;
    let mut rt = ReservationTable::new(cfg.clone());
    let mut cycle: u32 = 0;

    // The backward branch is deferred until everything else is placed.
    let br_idx = l.body.iter().position(|i| i.opcode == Opcode::Br);

    while scheduled < n {
        // Candidates ready at `cycle`.
        let mut ready: Vec<usize> = (0..n)
            .filter(|&j| starts[j].is_none())
            .filter(|&j| Some(j) != br_idx || scheduled == n - 1)
            .filter(|&j| {
                pred_edges[j]
                    .iter()
                    .all(|&(p, lat)| starts[p].is_some_and(|s| s + lat <= cycle))
            })
            .collect();
        ready.sort_by(|&a, &b| h[b].cmp(&h[a]).then(a.cmp(&b)));

        for j in ready {
            let op = l.body[j].opcode;
            if rt.try_issue(cycle, op) {
                starts[j] = Some(cycle);
                scheduled += 1;
            }
        }
        cycle += 1;
        debug_assert!(
            cycle < 64 * n as u32 + 64,
            "list scheduler failed to converge on {}",
            l.name
        );
    }

    let starts: Vec<u32> = starts
        .into_iter()
        .map(|s| s.expect("all scheduled"))
        .collect();
    let length = starts.iter().copied().max().unwrap_or(0) + 1;

    // Steady-state iteration interval: carried edges may force the next
    // iteration to start late.
    let mut ii = length;
    for d in g.carried() {
        let lat = edge_latency(d, l, cfg);
        let need = i64::from(starts[d.src]) + i64::from(lat) - i64::from(starts[d.dst]);
        if need > 0 {
            let t = (need as u64).div_ceil(u64::from(d.distance)) as u32;
            ii = ii.max(t);
        }
    }

    Schedule {
        starts,
        length,
        iter_interval: ii,
    }
}

/// Per-cycle resource accounting with multi-cycle occupancy.
#[derive(Debug)]
struct ReservationTable {
    cfg: MachineConfig,
    issue: Vec<u32>,
    units: Vec<[u32; FuKind::COUNT]>,
}

impl ReservationTable {
    fn new(cfg: MachineConfig) -> Self {
        ReservationTable {
            cfg,
            issue: Vec::new(),
            units: Vec::new(),
        }
    }

    fn grow(&mut self, cycle: usize) {
        while self.units.len() <= cycle {
            self.units.push([0; FuKind::COUNT]);
            self.issue.push(0);
        }
    }

    /// Attempts to issue `op` at `cycle`; reserves resources on success.
    fn try_issue(&mut self, cycle: u32, op: Opcode) -> bool {
        let kind = self.cfg.fu_kind(op);
        let occ = self.cfg.occupancy(op);
        let c = cycle as usize;
        self.grow(c + occ as usize);
        if self.issue[c] >= self.cfg.issue_width {
            return false;
        }
        let limit = self.cfg.units[kind.index()];
        for k in 0..occ as usize {
            if self.units[c + k][kind.index()] >= limit {
                return false;
            }
        }
        self.issue[c] += 1;
        for k in 0..occ as usize {
            self.units[c + k][kind.index()] += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopml_ir::{ArrayId, Inst, LoopBuilder, MemRef, TripCount};

    fn cfg() -> MachineConfig {
        MachineConfig::itanium2()
    }

    fn schedule_of(l: &Loop) -> Schedule {
        let g = DepGraph::analyze(l);
        list_schedule(l, &g, &cfg())
    }

    fn daxpy() -> Loop {
        let mut b = LoopBuilder::new("daxpy", TripCount::Known(1000));
        let x = b.fp_reg();
        let y = b.fp_reg();
        let r = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.load(y, MemRef::affine(ArrayId(1), 8, 0, 8));
        b.inst(Inst::new(Opcode::Fma, vec![r], vec![x, y]));
        b.store(r, MemRef::affine(ArrayId(1), 8, 0, 8));
        b.build()
    }

    #[test]
    fn respects_dependences() {
        let l = daxpy();
        let g = DepGraph::analyze(&l);
        let s = list_schedule(&l, &g, &cfg());
        for d in g.intra() {
            let lat = edge_latency(d, &l, &cfg());
            assert!(
                s.starts[d.src] + lat <= s.starts[d.dst],
                "edge {}→{} violated: {} + {} > {}",
                d.src,
                d.dst,
                s.starts[d.src],
                lat,
                s.starts[d.dst]
            );
        }
    }

    #[test]
    fn branch_is_last() {
        let l = daxpy();
        let s = schedule_of(&l);
        let br = l.body.iter().position(|i| i.opcode == Opcode::Br).unwrap();
        let max = s.starts.iter().copied().max().unwrap();
        assert_eq!(s.starts[br], max);
    }

    #[test]
    fn length_covers_critical_path() {
        let l = daxpy();
        let s = schedule_of(&l);
        // fp load (6) -> fma (4) -> store: at least 10 cycles of latency
        // before the store issues.
        assert!(s.length >= 11, "length {}", s.length);
    }

    #[test]
    fn load_ports_limit_throughput() {
        // 8 independent fp loads: 2 load ports => at least 4 cycles.
        let mut b = LoopBuilder::new("loads", TripCount::Known(100));
        for k in 0..8u32 {
            let r = b.fp_reg();
            b.load(r, MemRef::affine(ArrayId(k), 8, 0, 8));
        }
        let s = schedule_of(&b.build());
        let mut per_cycle = std::collections::HashMap::new();
        for (j, &st) in s.starts.iter().enumerate().take(8) {
            let _ = j;
            *per_cycle.entry(st).or_insert(0u32) += 1;
        }
        assert!(per_cycle.values().all(|&c| c <= 2), "{per_cycle:?}");
        assert!(s.length >= 4);
    }

    #[test]
    fn reduction_carried_dep_throttles_iteration() {
        // acc = acc + x[i]: iterations are 4 cycles apart minimum even if
        // the schedule itself is short.
        let mut b = LoopBuilder::new("red", TripCount::Known(100));
        let x = b.fp_reg();
        let acc = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.inst(Inst::new(Opcode::FAdd, vec![acc], vec![acc, x]));
        let s = schedule_of(&b.build());
        assert!(s.iter_interval >= 4, "{}", s.iter_interval);
    }

    #[test]
    fn divide_occupancy_serializes() {
        // 4 independent fp divides on 2 FP units with occupancy 8:
        // the last divide cannot start before cycle 8.
        let mut b = LoopBuilder::new("div", TripCount::Known(10));
        for k in 0..4u32 {
            let x = b.fp_reg();
            let y = b.fp_reg();
            b.load(x, MemRef::affine(ArrayId(k), 8, 0, 8));
            b.binop(Opcode::FDiv, y, x, x);
        }
        let s = schedule_of(&b.build());
        assert!(s.length > 8, "divides must serialize: length {}", s.length);
    }

    #[test]
    fn issue_width_is_respected() {
        let mut b = LoopBuilder::new("wide", TripCount::Known(10));
        for _ in 0..24 {
            let r = b.int_reg();
            let a = b.int_reg();
            b.binop(Opcode::Add, r, a, a);
        }
        let l = b.build();
        let s = schedule_of(&l);
        let mut per_cycle = std::collections::HashMap::new();
        for &st in &s.starts {
            *per_cycle.entry(st).or_insert(0u32) += 1;
        }
        assert!(per_cycle.values().all(|&c| c <= 6), "{per_cycle:?}");
    }

    #[test]
    fn empty_loop_is_fine() {
        let l = Loop {
            name: "e".into(),
            body: vec![],
            trip_count: TripCount::Known(1),
            nest_level: 1,
            lang: loopml_ir::SourceLang::C,
        };
        let g = DepGraph::analyze(&l);
        let s = list_schedule(&l, &g, &cfg());
        assert_eq!(s.length, 0);
    }
}
