//! End-to-end loop cost estimation: the machine model's answer to "how
//! many cycles does this (possibly unrolled) loop take?".

use loopml_ir::DepGraph;
use loopml_opt::Unrolled;

use crate::cache::{dcache_stall_per_iter, icache_stream_per_iter};
use crate::config::MachineConfig;
use crate::list_sched::list_schedule;
use crate::modulo::modulo_schedule;
use crate::pressure::max_live;

/// Whether software pipelining is enabled (the paper's two experiment
/// regimes: Figure 4 has it disabled, Figure 5 enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwpMode {
    /// Modulo scheduling off: plain list scheduling.
    Disabled,
    /// Modulo scheduling on where the loop is eligible.
    Enabled,
}

/// Cost breakdown for one loop variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopCost {
    /// Steady-state cycles per (unrolled) iteration, including spill and
    /// data-cache stalls.
    pub per_iter: f64,
    /// Cycles per loop entry: pipeline fill/drain, remainder-loop work,
    /// and the final mispredicted exit.
    pub per_entry: f64,
    /// Static code size of the loop body in bytes.
    pub code_bytes: u64,
    /// Values spilled (excess over the register files).
    pub spilled: u32,
    /// `true` if the loop was software-pipelined.
    pub pipelined: bool,
    /// Achieved kernel initiation interval (cycles between iteration
    /// starts in steady state).
    pub kernel_cycles: u32,
}

impl LoopCost {
    /// Total cycles to execute the loop: `trips_per_entry` unrolled
    /// iterations plus the per-entry overhead, times `entries` loop
    /// entries (instruction-cache entry costs are accounted separately at
    /// the benchmark level).
    pub fn total(&self, trips_per_entry: u64, entries: u64) -> f64 {
        (self.per_iter * trips_per_entry as f64 + self.per_entry) * entries as f64
    }
}

/// Estimates the cost of the unrolled loop `u` on `cfg`.
///
/// `rolled_per_iter` is the per-iteration cost of the *rolled* (factor 1)
/// variant, used to price the remainder loop of known-but-non-divisible
/// trip counts; pass 0.0 when the factor is 1.
pub fn loop_cost(
    u: &Unrolled,
    rolled_per_iter: f64,
    cfg: &MachineConfig,
    swp: SwpMode,
) -> LoopCost {
    let l = &u.body;
    let g = DepGraph::analyze(l);

    let (kernel, starts, pipelined, stages) = match swp {
        SwpMode::Enabled => match modulo_schedule(l, &g, cfg) {
            Ok(m) => {
                let stages = m.stages;
                (m.ii, m.starts, true, stages)
            }
            Err(_) => {
                let s = list_schedule(l, &g, cfg);
                (s.iter_interval, s.starts, false, 1)
            }
        },
        SwpMode::Disabled => {
            let s = list_schedule(l, &g, cfg);
            (s.iter_interval, s.starts, false, 1)
        }
    };

    let pressure = max_live(l, &g, &starts, kernel);
    let spilled = pressure.spilled(cfg);
    let code_bytes = l.code_bytes();

    let per_iter = f64::from(kernel)
        + f64::from(spilled) * cfg.spill_cycles
        + dcache_stall_per_iter(l, cfg)
        + icache_stream_per_iter(code_bytes, cfg);

    // Entry cost: pipeline fill + drain for SWP; the remainder loop for
    // non-divisible known trip counts; one mispredicted exit either way.
    let fill_drain = if pipelined {
        2.0 * f64::from(stages.saturating_sub(1)) * f64::from(kernel)
    } else {
        0.0
    };
    let remainder = u.remainder_iters as f64 * rolled_per_iter;
    // A loop that leaves through a boundary exit abandons, on average,
    // half of the unrolled body's work on its final pass.
    let exit_waste = if u.inserted_exits > 0 {
        per_iter * 0.5
    } else {
        0.0
    };
    let per_entry = fill_drain + remainder + exit_waste + cfg.exit_mispredict;

    LoopCost {
        per_iter,
        per_entry,
        code_bytes,
        spilled,
        pipelined,
        kernel_cycles: kernel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopml_ir::{ArrayId, Inst, Loop, LoopBuilder, MemRef, Opcode, TripCount};
    use loopml_opt::{unroll_and_optimize, OptConfig};

    fn cfg() -> MachineConfig {
        MachineConfig::itanium2()
    }

    fn daxpy(trip: TripCount) -> Loop {
        let mut b = LoopBuilder::new("daxpy", trip);
        let x = b.fp_reg();
        let y = b.fp_reg();
        let r = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.load(y, MemRef::affine(ArrayId(1), 8, 0, 8));
        b.inst(Inst::new(Opcode::Fma, vec![r], vec![x, y]));
        b.store(r, MemRef::affine(ArrayId(1), 8, 0, 8));
        b.build()
    }

    fn cost_at(l: &Loop, factor: u32, swp: SwpMode) -> (LoopCost, f64) {
        let rolled = unroll_and_optimize(l, 1, &OptConfig::default());
        let rc = loop_cost(&rolled, 0.0, &cfg(), swp);
        let u = unroll_and_optimize(l, factor, &OptConfig::default());
        let c = loop_cost(&u, rc.per_iter, &cfg(), swp);
        let trips = u.body.trip_count.dynamic();
        (c, c.total(trips, 1))
    }

    #[test]
    fn unrolling_helps_daxpy_without_swp() {
        let l = daxpy(TripCount::Known(4096));
        let (_, t1) = cost_at(&l, 1, SwpMode::Disabled);
        let (_, t4) = cost_at(&l, 4, SwpMode::Disabled);
        assert!(
            t4 < t1 * 0.8,
            "unroll 4 should clearly beat rolled: {t4} vs {t1}"
        );
    }

    #[test]
    fn swp_shrinks_the_gap() {
        let l = daxpy(TripCount::Known(4096));
        let (_, off1) = cost_at(&l, 1, SwpMode::Disabled);
        let (_, on1) = cost_at(&l, 1, SwpMode::Enabled);
        assert!(on1 < off1, "pipelining helps the rolled loop");
        let (_, on4) = cost_at(&l, 4, SwpMode::Enabled);
        let gain_on = on1 / on4;
        let (_, off4) = cost_at(&l, 4, SwpMode::Disabled);
        let gain_off = off1 / off4;
        assert!(
            gain_off > gain_on,
            "unrolling matters less with SWP: off {gain_off:.2} vs on {gain_on:.2}"
        );
    }

    #[test]
    fn boundary_exits_disable_swp_after_unrolling() {
        let l = daxpy(TripCount::Unknown { estimate: 4096 });
        let rolled = unroll_and_optimize(&l, 1, &OptConfig::default());
        let rc = loop_cost(&rolled, 0.0, &cfg(), SwpMode::Enabled);
        assert!(rc.pipelined, "rolled unknown-trip loop still pipelines");
        let u = unroll_and_optimize(&l, 4, &OptConfig::default());
        let uc = loop_cost(&u, rc.per_iter, &cfg(), SwpMode::Enabled);
        assert!(!uc.pipelined, "boundary exits must reject SWP");
    }

    #[test]
    fn remainder_costs_show_up_per_entry() {
        let l = daxpy(TripCount::Known(1001));
        let rolled = unroll_and_optimize(&l, 1, &OptConfig::default());
        let rc = loop_cost(&rolled, 0.0, &cfg(), SwpMode::Disabled);
        let u = unroll_and_optimize(&l, 8, &OptConfig::default());
        let c = loop_cost(&u, rc.per_iter, &cfg(), SwpMode::Disabled);
        assert!(
            c.per_entry > rc.per_entry,
            "1001 % 8 = 1 remainder iteration"
        );
    }

    #[test]
    fn recurrence_gains_less_than_parallel_twin() {
        // x = x / a[i] (serial recurrence) vs y[i] = k / a[i] (parallel):
        // unrolling amortizes schedule overhead for both, but the serial
        // chain caps the recurrence loop's gain.
        let mk = |serial: bool| {
            let mut b = LoopBuilder::new("div", TripCount::Known(4096));
            let a = b.fp_reg();
            let x = b.fp_reg();
            b.load(a, MemRef::affine(ArrayId(0), 8, 0, 8));
            if serial {
                b.inst(Inst::new(Opcode::FDiv, vec![x], vec![x, a]));
            } else {
                let k = b.fp_reg(); // live-in constant numerator
                b.inst(Inst::new(Opcode::FDiv, vec![x], vec![k, a]));
            }
            b.store(x, MemRef::affine(ArrayId(1), 8, 0, 8));
            b.build()
        };
        let serial = mk(true);
        let parallel = mk(false);
        let (_, s1) = cost_at(&serial, 1, SwpMode::Disabled);
        let (_, s8) = cost_at(&serial, 8, SwpMode::Disabled);
        let (_, p1) = cost_at(&parallel, 1, SwpMode::Disabled);
        let (_, p8) = cost_at(&parallel, 8, SwpMode::Disabled);
        let serial_gain = s1 / s8;
        let parallel_gain = p1 / p8;
        assert!(
            parallel_gain > serial_gain,
            "parallel divides should gain more: {parallel_gain:.2} vs {serial_gain:.2}"
        );
    }

    #[test]
    fn total_accounts_entries() {
        let l = daxpy(TripCount::Known(16));
        let u = unroll_and_optimize(&l, 2, &OptConfig::default());
        let c = loop_cost(&u, 10.0, &cfg(), SwpMode::Disabled);
        let once = c.total(8, 1);
        let many = c.total(8, 100);
        assert!(many > once);
    }
}
