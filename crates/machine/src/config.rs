//! Machine description.
//!
//! [`MachineConfig::itanium2`] describes a 1.3 GHz Itanium 2-like in-order
//! EPIC machine at the fidelity the unroll-factor decision needs: issue
//! width, functional-unit counts, operation latencies, register-file
//! capacities, and first-order instruction/data cache parameters.
//! Everything is a plain field so experiments can perturb the machine and
//! re-learn heuristics (the paper's motivating use case).

use loopml_ir::{Inst, OpClass, Opcode, RegClass};

/// Functional-unit kind a scheduled operation occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuKind {
    /// Integer ALU (also executes moves and compares).
    Int,
    /// Integer multiply unit.
    IntMul,
    /// Floating-point unit (FP ALU/MUL/FMA; divides occupy it longer).
    Fp,
    /// Load port.
    Load,
    /// Store port.
    Store,
    /// Branch slot.
    Branch,
    /// No unit (nops only consume issue width).
    None,
}

impl FuKind {
    /// Stable index for reservation-table arrays.
    pub fn index(self) -> usize {
        match self {
            FuKind::Int => 0,
            FuKind::IntMul => 1,
            FuKind::Fp => 2,
            FuKind::Load => 3,
            FuKind::Store => 4,
            FuKind::Branch => 5,
            FuKind::None => 6,
        }
    }

    /// Number of distinct unit kinds (including `None`).
    pub const COUNT: usize = 7;
}

/// Machine description used by the schedulers and cost models.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Units per [`FuKind`], indexed by [`FuKind::index`].
    pub units: [u32; FuKind::COUNT],
    /// Cycles an FP divide/sqrt occupies its unit (partially pipelined).
    pub fpdiv_occupancy: u32,
    /// Usable integer registers (after ABI/compiler reservations).
    pub int_regs: u32,
    /// Usable floating-point registers.
    pub fp_regs: u32,
    /// Extra cycles per iteration charged per spilled value.
    pub spill_cycles: f64,
    /// Instruction-cache capacity in bytes.
    pub icache_bytes: u64,
    /// Instruction-cache line size in bytes.
    pub icache_line: u64,
    /// Cycles to fetch one instruction line on a miss.
    pub ifetch_penalty: f64,
    /// Data-cache line size in bytes.
    pub dcache_line: u64,
    /// Cycles to service a data miss from memory.
    pub dmiss_penalty: f64,
    /// Maximum overlapping outstanding data misses.
    pub max_outstanding_misses: f64,
    /// Expected miss rate of an indirect (gather) access.
    pub indirect_miss_rate: f64,
    /// Cycles lost to the mispredicted exit branch, once per loop entry.
    pub exit_mispredict: f64,
    /// Largest body (in instructions) the software pipeliner attempts.
    pub swp_body_limit: usize,
    /// Slack above the minimum II the pipeliner searches before giving up.
    pub swp_ii_slack: u32,
}

impl MachineConfig {
    /// An Itanium 2 ("McKinley") flavoured configuration: 6-issue, 2+2
    /// memory ports, 2 FP units, 3 branch slots. The 128-entry register
    /// files shrink to ~48 usable registers per class: without the
    /// pipeliner's rotating allocation, the compiler works from the
    /// static subset minus ABI and addressing reservations.
    pub fn itanium2() -> Self {
        let mut units = [0u32; FuKind::COUNT];
        units[FuKind::Int.index()] = 6;
        units[FuKind::IntMul.index()] = 2;
        units[FuKind::Fp.index()] = 2;
        units[FuKind::Load.index()] = 2;
        units[FuKind::Store.index()] = 2;
        units[FuKind::Branch.index()] = 3;
        units[FuKind::None.index()] = 6;
        MachineConfig {
            issue_width: 6,
            units,
            fpdiv_occupancy: 8,
            int_regs: 48,
            fp_regs: 48,
            spill_cycles: 1.5,
            icache_bytes: 16 * 1024,
            icache_line: 64,
            ifetch_penalty: 20.0,
            dcache_line: 128,
            dmiss_penalty: 36.0,
            max_outstanding_misses: 4.0,
            indirect_miss_rate: 0.25,
            exit_mispredict: 6.0,
            swp_body_limit: 160,
            swp_ii_slack: 16,
        }
    }

    /// Functional unit an instruction occupies.
    pub fn fu_kind(&self, op: Opcode) -> FuKind {
        match op.class() {
            OpClass::IntAlu | OpClass::Move => FuKind::Int,
            OpClass::IntMul => FuKind::IntMul,
            OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => FuKind::Fp,
            OpClass::Load => FuKind::Load,
            OpClass::Store => FuKind::Store,
            OpClass::Branch | OpClass::Call => FuKind::Branch,
            OpClass::Nop => FuKind::None,
        }
    }

    /// Cycles the instruction occupies its unit (1 except FP divides).
    pub fn occupancy(&self, op: Opcode) -> u32 {
        if op.class() == OpClass::FpDiv {
            self.fpdiv_occupancy
        } else {
            1
        }
    }

    /// Machine latency of an instruction. Loads of floating-point data
    /// bypass the (integer-only) L1D on Itanium 2 and see L2 latency.
    pub fn latency(&self, inst: &Inst) -> u32 {
        match inst.opcode {
            Opcode::Load | Opcode::LoadPair => {
                let fp_dest = inst.defs.first().is_some_and(|d| d.class() == RegClass::Fp);
                if fp_dest {
                    6
                } else {
                    2
                }
            }
            Opcode::Store | Opcode::StorePair | Opcode::Prefetch => 1,
            Opcode::Add
            | Opcode::Sub
            | Opcode::Shl
            | Opcode::Shr
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Ext
            | Opcode::Cmp => 1,
            Opcode::Mul => 3,
            Opcode::FAdd | Opcode::FSub | Opcode::FCmp | Opcode::CvtIf | Opcode::CvtFi => 4,
            Opcode::FMul | Opcode::Fma => 4,
            Opcode::FDiv => 24,
            Opcode::FSqrt => 28,
            Opcode::Br | Opcode::BrExit => 1,
            Opcode::Call => 8,
            Opcode::Mov | Opcode::MovI | Opcode::Select => 1,
            Opcode::Nop => 1,
        }
    }

    /// Available registers in a class (predicates are not a constraint we
    /// model).
    pub fn regs(&self, class: RegClass) -> u32 {
        match class {
            RegClass::Int => self.int_regs,
            RegClass::Fp => self.fp_regs,
            RegClass::Pred => u32::MAX,
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::itanium2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopml_ir::{ArrayId, MemRef, Reg};

    #[test]
    fn itanium2_shape() {
        let c = MachineConfig::itanium2();
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.units[FuKind::Fp.index()], 2);
        assert_eq!(c.units[FuKind::Load.index()], 2);
    }

    #[test]
    fn fp_loads_slower_than_int_loads() {
        let c = MachineConfig::itanium2();
        let m = MemRef::affine(ArrayId(0), 8, 0, 8);
        let fp_ld = Inst::mem(Opcode::Load, vec![Reg::fp(0)], vec![], m);
        let int_ld = Inst::mem(Opcode::Load, vec![Reg::int(5)], vec![], m);
        assert!(c.latency(&fp_ld) > c.latency(&int_ld));
    }

    #[test]
    fn divide_occupies_longer() {
        let c = MachineConfig::itanium2();
        assert!(c.occupancy(Opcode::FDiv) > 1);
        assert_eq!(c.occupancy(Opcode::FAdd), 1);
    }

    #[test]
    fn fu_mapping_covers_all_opcodes() {
        let c = MachineConfig::itanium2();
        for op in [
            Opcode::Add,
            Opcode::Mul,
            Opcode::FAdd,
            Opcode::FDiv,
            Opcode::Load,
            Opcode::Store,
            Opcode::Br,
            Opcode::Call,
            Opcode::Mov,
            Opcode::Nop,
        ] {
            let k = c.fu_kind(op);
            assert!(c.units[k.index()] > 0, "{op} maps to empty unit pool");
        }
    }

    #[test]
    fn predicate_regs_unbounded() {
        let c = MachineConfig::itanium2();
        assert_eq!(c.regs(RegClass::Pred), u32::MAX);
        assert!(c.regs(RegClass::Int) < 128);
    }
}
