//! The loop unroller.
//!
//! [`unroll`] replicates a loop body `factor` times with full register
//! renaming, folds the induction-variable update and loop-closing branch,
//! advances every affine memory reference, and — when the trip count is
//! unknown — inserts the intermediate early-exit checks that make the
//! transformation safe (the control-flow cost the paper's §3 warns about).

use std::collections::HashMap;

use loopml_ir::{Inst, Loop, Opcode, Reg, TripCount};

/// Result of unrolling: the transformed loop plus cost-relevant metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Unrolled {
    /// The unrolled loop. Its trip count is the original's divided by the
    /// factor; its memory strides are scaled by the factor.
    pub body: Loop,
    /// The unroll factor applied.
    pub factor: u32,
    /// Residual original iterations executed in a remainder loop per loop
    /// entry (non-zero only for known, non-divisible trip counts).
    pub remainder_iters: u64,
    /// Number of boundary early-exit branches inserted (non-zero only for
    /// unknown trip counts and factor > 1).
    pub inserted_exits: u32,
}

/// Unrolls `l` by `factor`.
///
/// A factor of 1 returns the loop unchanged (modulo a clone). Factors of 0
/// are rejected.
///
/// # Panics
///
/// Panics if `factor == 0` or if `l` is not unrollable (contains a call or
/// lacks a loop-closing branch).
pub fn unroll(l: &Loop, factor: u32) -> Unrolled {
    assert!(factor >= 1, "unroll factor must be at least 1");
    if factor == 1 {
        // Factor 1 is the identity and is accepted for any loop, so cost
        // models can treat "leave it rolled" uniformly.
        return Unrolled {
            body: l.clone(),
            factor: 1,
            remainder_iters: 0,
            inserted_exits: 0,
        };
    }
    assert!(l.is_unrollable(), "loop {} is not unrollable", l.name);

    let f = u64::from(factor);
    let (new_trip, remainder_iters, need_boundary_exits) = match l.trip_count {
        TripCount::Known(n) => (TripCount::Known(n / f), n % f, false),
        TripCount::Unknown { estimate } => (
            TripCount::Unknown {
                estimate: (estimate / f).max(1),
            },
            0,
            true,
        ),
    };

    // Fresh register names start past every index used in the body.
    let mut next_index: HashMap<loopml_ir::RegClass, u32> = HashMap::new();
    for inst in &l.body {
        for r in inst.defs.iter().copied().chain(inst.reads()) {
            let e = next_index.entry(r.class()).or_insert(0);
            *e = (*e).max(r.index() + 1);
        }
    }
    let mut fresh = move |class: loopml_ir::RegClass| -> Reg {
        let e = next_index.entry(class).or_insert(0);
        let r = Reg::new(class, *e);
        *e += 1;
        r
    };

    // `cur` maps an original register name to the register currently
    // holding its value for the copy being emitted.
    let mut cur: HashMap<Reg, Reg> = HashMap::new();
    let mut out: Vec<Inst> = Vec::with_capacity(l.body.len() * factor as usize);
    let mut inserted_exits = 0u32;

    for copy in 0..factor {
        let last_copy = copy + 1 == factor;
        for inst in &l.body {
            match inst.opcode {
                // The induction update and loop-closing compare/branch are
                // folded: only the last copy keeps them. At intermediate
                // boundaries of unknown-trip loops, the compare survives
                // and feeds an early exit instead of the back branch.
                Opcode::Br => {
                    if last_copy {
                        out.push(rename(inst, &mut cur, &mut fresh, true));
                    } else if need_boundary_exits {
                        let mut exit = rename(inst, &mut cur, &mut fresh, false);
                        exit.opcode = Opcode::BrExit;
                        out.push(exit);
                        inserted_exits += 1;
                    }
                }
                _ if inst.induction => {
                    if last_copy {
                        out.push(rename(inst, &mut cur, &mut fresh, true));
                    }
                }
                Opcode::Cmp if is_loop_close_cmp(l, inst) => {
                    if last_copy || need_boundary_exits {
                        out.push(rename(inst, &mut cur, &mut fresh, last_copy));
                    }
                }
                _ => {
                    let mut ni = rename(inst, &mut cur, &mut fresh, last_copy);
                    if let Some(m) = ni.mem {
                        ni.mem = Some(m.advanced(i64::from(copy)));
                    }
                    out.push(ni);
                }
            }
        }
    }

    // Scale strides: the unrolled loop advances `factor` original
    // iterations per trip.
    for inst in &mut out {
        if let Some(m) = &mut inst.mem {
            m.stride *= i64::from(factor);
        }
    }

    Unrolled {
        body: Loop {
            name: format!("{}#u{}", l.name, factor),
            body: out,
            trip_count: new_trip,
            nest_level: l.nest_level,
            lang: l.lang,
        },
        factor,
        remainder_iters,
        inserted_exits,
    }
}

/// `true` if `inst` is the loop-closing compare: the Cmp whose predicate
/// feeds the backward branch.
fn is_loop_close_cmp(l: &Loop, inst: &Inst) -> bool {
    if inst.opcode != Opcode::Cmp {
        return false;
    }
    let Some(br) = l.body.iter().find(|i| i.opcode == Opcode::Br) else {
        return false;
    };
    match (br.predicate, inst.defs.first()) {
        (Some(p), Some(&d)) => p == d,
        _ => false,
    }
}

/// Renames one instruction for the current copy. Uses go through the
/// current-value map; defs get fresh names except on the last copy, where
/// the original names are restored so the next unrolled iteration (and the
/// code after the loop) read the registers they expect.
fn rename(
    inst: &Inst,
    cur: &mut HashMap<Reg, Reg>,
    fresh: &mut impl FnMut(loopml_ir::RegClass) -> Reg,
    last_copy: bool,
) -> Inst {
    let map = |cur: &HashMap<Reg, Reg>, r: Reg| cur.get(&r).copied().unwrap_or(r);
    let uses = inst.uses.iter().map(|&u| map(cur, u)).collect();
    let predicate = inst.predicate.map(|p| map(cur, p));
    let defs = inst
        .defs
        .iter()
        .map(|&d| {
            if last_copy {
                cur.remove(&d);
                d
            } else {
                let nd = fresh(d.class());
                cur.insert(d, nd);
                nd
            }
        })
        .collect();
    Inst {
        opcode: inst.opcode,
        defs,
        uses,
        mem: inst.mem,
        predicate,
        induction: inst.induction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopml_ir::{ArrayId, LoopBuilder, MemRef};

    fn daxpy(trip: TripCount) -> Loop {
        let mut b = LoopBuilder::new("daxpy", trip);
        let x = b.fp_reg();
        let y = b.fp_reg();
        let r = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.load(y, MemRef::affine(ArrayId(1), 8, 0, 8));
        b.inst(Inst::new(Opcode::Fma, vec![r], vec![x, y]));
        b.store(r, MemRef::affine(ArrayId(1), 8, 0, 8));
        b.build()
    }

    #[test]
    fn factor_one_is_identity() {
        let l = daxpy(TripCount::Known(100));
        let u = unroll(&l, 1);
        assert_eq!(u.body, l);
        assert_eq!(u.remainder_iters, 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn factor_zero_rejected() {
        let _ = unroll(&daxpy(TripCount::Known(8)), 0);
    }

    #[test]
    fn replicates_real_work() {
        let l = daxpy(TripCount::Known(100));
        let u = unroll(&l, 4);
        let loads = u.body.count_ops(|i| i.is_load());
        let stores = u.body.count_ops(|i| i.is_store());
        let fmas = u.body.count_ops(|i| i.opcode == Opcode::Fma);
        assert_eq!((loads, stores, fmas), (8, 4, 4));
    }

    #[test]
    fn folds_loop_control_for_known_trips() {
        let l = daxpy(TripCount::Known(100));
        let u = unroll(&l, 4);
        assert_eq!(u.body.count_ops(|i| i.opcode == Opcode::Br), 1);
        assert_eq!(u.body.count_ops(|i| i.induction), 1);
        assert_eq!(u.body.count_ops(|i| i.opcode == Opcode::Cmp), 1);
        assert_eq!(u.inserted_exits, 0);
        assert_eq!(u.remainder_iters, 0);
        assert_eq!(u.body.trip_count, TripCount::Known(25));
    }

    #[test]
    fn remainder_for_non_divisible_trips() {
        let l = daxpy(TripCount::Known(103));
        let u = unroll(&l, 4);
        assert_eq!(u.remainder_iters, 3);
        assert_eq!(u.body.trip_count, TripCount::Known(25));
    }

    #[test]
    fn unknown_trips_get_boundary_exits() {
        let l = daxpy(TripCount::Unknown { estimate: 100 });
        let u = unroll(&l, 4);
        assert_eq!(u.inserted_exits, 3);
        assert_eq!(u.body.count_ops(|i| i.opcode == Opcode::BrExit), 3);
        // Each boundary keeps its compare.
        assert_eq!(u.body.count_ops(|i| i.opcode == Opcode::Cmp), 4);
    }

    #[test]
    fn memory_offsets_advance_and_strides_scale() {
        let l = daxpy(TripCount::Known(100));
        let u = unroll(&l, 2);
        let loads: Vec<MemRef> = u
            .body
            .body
            .iter()
            .filter(|i| i.is_load() && i.mem.unwrap().base == ArrayId(0))
            .map(|i| i.mem.unwrap())
            .collect();
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].stride, 16);
        assert_eq!(loads[0].offset, 0);
        assert_eq!(loads[1].stride, 16);
        assert_eq!(loads[1].offset, 8);
    }

    #[test]
    fn accumulator_chain_threads_through_copies() {
        // acc = acc + x[i]: copy k must read copy k-1's def.
        let mut b = LoopBuilder::new("red", TripCount::Known(64));
        let x = b.fp_reg();
        let acc = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.inst(Inst::new(Opcode::FAdd, vec![acc], vec![acc, x]));
        let l = b.build();
        let u = unroll(&l, 3);
        let adds: Vec<&Inst> = u
            .body
            .body
            .iter()
            .filter(|i| i.opcode == Opcode::FAdd)
            .collect();
        assert_eq!(adds.len(), 3);
        // First copy reads the original acc; the last defines it again.
        assert!(adds[0].uses.contains(&acc));
        assert_eq!(adds[1].uses[0], adds[0].defs[0]);
        assert_eq!(adds[2].uses[0], adds[1].defs[0]);
        assert_eq!(adds[2].defs[0], acc);
    }

    #[test]
    fn defs_are_unique_across_copies_except_live_outs() {
        let l = daxpy(TripCount::Known(100));
        let u = unroll(&l, 8);
        let mut defs: Vec<Reg> = u.body.body.iter().flat_map(|i| i.defs.clone()).collect();
        let before = defs.len();
        defs.sort_unstable();
        defs.dedup();
        assert_eq!(defs.len(), before, "every def must be distinct");
    }

    #[test]
    fn unrolled_name_mentions_factor() {
        let u = unroll(&daxpy(TripCount::Known(100)), 4);
        assert!(u.body.name.ends_with("#u4"));
    }
}
