//! Memory-access coalescing: merging adjacent scalar accesses into wide
//! paired operations.
//!
//! Unrolling is "key to exposing adjacent memory references" (paper §3,
//! citing Davidson & Jinturkar and Larsen & Amarasinghe): after unrolling
//! by 2, `a[i]` and `a[i+1]` sit in the same body and can be transferred
//! by one 16-byte operation. Pairing requires natural alignment of the
//! wide access — which is why *power-of-two* unroll factors coalesce
//! perfectly while odd factors leave stragglers, one of the mechanisms
//! behind the power-of-two-heavy label histogram in Figure 3.

use loopml_ir::{Inst, Loop, MemRef, Opcode};

/// Merges adjacent unpredicated loads (and stores) into `LoadPair` /
/// `StorePair` operations. Returns the number of pairs formed.
///
/// Two accesses pair when:
/// * they have the same opcode, width and base, equal strides, and offsets
///   exactly one width apart;
/// * the lower offset is aligned to the paired width (hardware alignment
///   requirement for `ldfpd`-style operations);
/// * no possibly-aliasing store intervenes between them;
/// * neither is predicated or indirect.
pub fn coalesce(l: &mut Loop) -> usize {
    let mut pairs = 0;
    // Greedy left-to-right pairing, separately for loads and stores.
    for target_load in [true, false] {
        while let Some((i, j)) = find_pair(l, target_load) {
            let lo = l.body[i].clone();
            let hi = l.body[j].clone();
            let m = lo.mem.expect("paired access has a memref");
            let wide = MemRef {
                width: m.width * 2,
                ..m
            };
            if target_load {
                // The merged load lives at the earlier position: the upper
                // load's definition moves up, which is legal because
                // find_pair checked it is neither read nor clobbered in
                // between.
                l.body[i] = Inst {
                    opcode: Opcode::LoadPair,
                    defs: vec![lo.defs[0], hi.defs[0]],
                    uses: vec![],
                    mem: Some(wide),
                    predicate: None,
                    induction: false,
                };
                l.body.remove(j);
            } else {
                // The merged store lives at the later position: both data
                // operands are available there, and find_pair checked the
                // lower value is not redefined in between.
                l.body[j] = Inst {
                    opcode: Opcode::StorePair,
                    defs: vec![],
                    uses: vec![lo.uses[0], hi.uses[0]],
                    mem: Some(wide),
                    predicate: None,
                    induction: false,
                };
                l.body.remove(i);
            }
            pairs += 1;
        }
    }
    pairs
}

/// Checks data-operand legality of moving the pair to its merge point:
/// for loads the upper definition moves up to `i`, so its register must
/// not be read or clobbered in `(i, j)`; for stores the lower access moves
/// down to `j`, so its data register must not be redefined in `(i, j)`.
fn operands_legal(l: &Loop, i: usize, j: usize, target_load: bool) -> bool {
    let between = &l.body[i + 1..j];
    if target_load {
        let dst = l.body[j].defs[0];
        between
            .iter()
            .all(|b| !b.reads().any(|r| r == dst) && !b.defs.contains(&dst))
    } else {
        let src = l.body[i].uses[0];
        between.iter().all(|b| !b.defs.contains(&src))
    }
}

/// Finds the first mergeable (lower, upper) pair of body indices.
fn find_pair(l: &Loop, target_load: bool) -> Option<(usize, usize)> {
    let want = if target_load {
        Opcode::Load
    } else {
        Opcode::Store
    };
    for (i, a) in l.body.iter().enumerate() {
        if a.opcode != want || a.predicate.is_some() {
            continue;
        }
        let ma = a.mem?;
        if ma.indirect || ma.offset.rem_euclid(i64::from(ma.width) * 2) != 0 {
            continue;
        }
        for (jo, b) in l.body[i + 1..].iter().enumerate() {
            let j = i + 1 + jo;
            let is_partner = b.opcode == want
                && b.predicate.is_none()
                && b.mem.is_some_and(|mb| ma.adjacent_to(mb));
            if is_partner && operands_legal(l, i, j, target_load) {
                return Some((i, j));
            }
            if is_partner {
                break;
            }
            // An intervening conflicting access to the same base blocks
            // moving the upper access up to the merge point: stores block
            // load pairing; both loads and stores block store pairing.
            let same_base = b.mem.map(|m| m.base) == Some(ma.base);
            let blocks = same_base
                && if target_load {
                    b.is_store()
                } else {
                    b.is_store() || b.is_load()
                };
            if blocks {
                break;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopml_ir::{ArrayId, LoopBuilder, TripCount};

    fn m(base: u32, stride: i64, offset: i64) -> MemRef {
        MemRef::affine(ArrayId(base), stride, offset, 8)
    }

    #[test]
    fn adjacent_loads_merge() {
        let mut b = LoopBuilder::new("t", TripCount::Known(10));
        let x = b.fp_reg();
        let y = b.fp_reg();
        b.load(x, m(0, 16, 0));
        b.load(y, m(0, 16, 8));
        let mut l = b.build();
        assert_eq!(coalesce(&mut l), 1);
        let wide = l
            .body
            .iter()
            .find(|i| i.opcode == Opcode::LoadPair)
            .unwrap();
        assert_eq!(wide.defs, vec![x, y]);
        assert_eq!(wide.mem.unwrap().width, 16);
        assert_eq!(l.count_ops(|i| i.opcode == Opcode::Load), 0);
    }

    #[test]
    fn adjacent_stores_merge() {
        let mut b = LoopBuilder::new("t", TripCount::Known(10));
        let x = b.fp_reg();
        let y = b.fp_reg();
        b.store(x, m(0, 16, 0));
        b.store(y, m(0, 16, 8));
        let mut l = b.build();
        assert_eq!(coalesce(&mut l), 1);
        assert_eq!(l.count_ops(|i| i.opcode == Opcode::StorePair), 1);
    }

    #[test]
    fn misaligned_pairs_do_not_merge() {
        let mut b = LoopBuilder::new("t", TripCount::Known(10));
        let x = b.fp_reg();
        let y = b.fp_reg();
        b.load(x, m(0, 16, 8)); // lower offset not 16-aligned
        b.load(y, m(0, 16, 16));
        let mut l = b.build();
        assert_eq!(coalesce(&mut l), 0);
    }

    #[test]
    fn four_loads_two_pairs() {
        let mut b = LoopBuilder::new("t", TripCount::Known(10));
        for k in 0..4 {
            let r = b.fp_reg();
            b.load(r, m(0, 32, 8 * k));
        }
        let mut l = b.build();
        assert_eq!(coalesce(&mut l), 2);
        assert_eq!(l.count_ops(|i| i.opcode == Opcode::LoadPair), 2);
    }

    #[test]
    fn odd_count_leaves_straggler() {
        let mut b = LoopBuilder::new("t", TripCount::Known(10));
        for k in 0..3 {
            let r = b.fp_reg();
            b.load(r, m(0, 24, 8 * k));
        }
        let mut l = b.build();
        assert_eq!(coalesce(&mut l), 1);
        assert_eq!(l.count_ops(|i| i.opcode == Opcode::Load), 1);
    }

    #[test]
    fn intervening_alias_store_blocks_load_pairing() {
        let mut b = LoopBuilder::new("t", TripCount::Known(10));
        let x = b.fp_reg();
        let s = b.fp_reg();
        let y = b.fp_reg();
        b.load(x, m(0, 16, 0));
        b.store(s, m(0, 16, 8));
        b.load(y, m(0, 16, 8));
        let mut l = b.build();
        assert_eq!(coalesce(&mut l), 0);
    }

    #[test]
    fn different_strides_do_not_merge() {
        let mut b = LoopBuilder::new("t", TripCount::Known(10));
        let x = b.fp_reg();
        let y = b.fp_reg();
        b.load(x, m(0, 16, 0));
        b.load(y, m(0, 8, 8));
        let mut l = b.build();
        assert_eq!(coalesce(&mut l), 0);
    }

    #[test]
    fn predicated_accesses_are_skipped() {
        let mut b = LoopBuilder::new("t", TripCount::Known(10));
        let x = b.fp_reg();
        let y = b.fp_reg();
        let p = b.pred_reg();
        b.inst(Inst::new(Opcode::Cmp, vec![p], vec![]));
        b.inst(Inst::mem(Opcode::Load, vec![x], vec![], m(0, 16, 0)).predicated(p));
        b.load(y, m(0, 16, 8));
        let mut l = b.build();
        assert_eq!(coalesce(&mut l), 0);
    }
}
