//! A reference interpreter for loop bodies.
//!
//! The interpreter gives the IR concrete (if arbitrary) arithmetic
//! semantics so that transformation correctness can be *executed*: a loop
//! and its unrolled-and-optimized form must leave identical memory states
//! after covering the same iteration span. Branch opcodes are treated as
//! no-ops — the interpreter drives the iteration count externally — so
//! equivalence checking applies to loops without data-dependent early
//! exits and with divisible trip spans.

use std::collections::HashMap;

use loopml_ir::{Loop, Opcode, Reg};

/// Memory state: values keyed by (base array, byte address).
pub type Memory = HashMap<(u32, i64), f64>;

/// Default contents of a never-written cell: a deterministic non-trivial
/// function of the address, so reordered reads are distinguishable.
fn initial_value(base: u32, addr: i64) -> f64 {
    let h = (i64::from(base) * 1_000_003 + addr).wrapping_mul(2654435761);
    ((h.rem_euclid(1000)) as f64) / 7.0 + 1.0
}

/// Executes `l` for `iters` iterations starting from `memory`, returning
/// the final memory state. Register state starts at zero and branch
/// semantics are ignored (see module docs).
pub fn execute(l: &Loop, iters: u64, mut memory: Memory) -> Memory {
    let mut regs: HashMap<Reg, f64> = HashMap::new();
    let rd = |regs: &HashMap<Reg, f64>, r: Reg| regs.get(&r).copied().unwrap_or(0.0);

    for iter in 0..iters as i64 {
        for inst in &l.body {
            // Predicated execution: skip when the guard is false. Guards
            // default to true when never written (loop-control predicates).
            if let Some(p) = inst.predicate {
                if inst.opcode != Opcode::Br && inst.opcode != Opcode::BrExit {
                    let v = regs.get(&p).copied().unwrap_or(1.0);
                    if v == 0.0 {
                        continue;
                    }
                }
            }
            let a = inst.uses.first().map(|&r| rd(&regs, r)).unwrap_or(0.0);
            let b = inst.uses.get(1).map(|&r| rd(&regs, r)).unwrap_or(0.0);
            let c = inst.uses.get(2).map(|&r| rd(&regs, r)).unwrap_or(0.0);
            match inst.opcode {
                Opcode::Load | Opcode::LoadPair => {
                    let m = inst.mem.expect("load has memref");
                    let addr = m.stride * iter + m.offset;
                    let w = i64::from(m.width) / i64::from(inst.defs.len().max(1) as i32);
                    for (k, &d) in inst.defs.iter().enumerate() {
                        let a_k = addr + w * k as i64;
                        // Reads of never-written cells see a deterministic
                        // address-derived pattern without mutating the map,
                        // so memory states stay comparable across variants
                        // that elide dead loads.
                        let v = memory
                            .get(&(m.base.0, a_k))
                            .copied()
                            .unwrap_or_else(|| initial_value(m.base.0, a_k));
                        regs.insert(d, v);
                    }
                }
                Opcode::Store | Opcode::StorePair => {
                    let m = inst.mem.expect("store has memref");
                    let addr = m.stride * iter + m.offset;
                    let w = i64::from(m.width) / i64::from(inst.uses.len().max(1) as i32);
                    for (k, &s) in inst.uses.iter().enumerate() {
                        memory.insert((m.base.0, addr + w * k as i64), rd(&regs, s));
                    }
                }
                Opcode::Prefetch | Opcode::Br | Opcode::BrExit | Opcode::Call | Opcode::Nop => {}
                _ => {
                    let v = scalar_semantics(inst.opcode, a, b, c);
                    for &d in &inst.defs {
                        regs.insert(d, v);
                    }
                }
            }
        }
    }
    memory
}

/// Concrete arithmetic semantics for non-memory opcodes.
fn scalar_semantics(op: Opcode, a: f64, b: f64, c: f64) -> f64 {
    match op {
        Opcode::Add => a + b + 1.0, // +1 keeps single-operand iv updates moving
        Opcode::Sub => a - b,
        Opcode::Mul => a * b + 0.5,
        Opcode::Shl => a * 2.0,
        Opcode::Shr => a / 2.0,
        Opcode::And => a.min(b),
        Opcode::Or => a.max(b),
        Opcode::Xor => (a - b).abs(),
        Opcode::Cmp | Opcode::FCmp => f64::from(a < b),
        Opcode::Ext => a,
        Opcode::FAdd => a + b,
        Opcode::FSub => a - b,
        Opcode::FMul => a * b,
        Opcode::Fma => a * b + c,
        Opcode::FDiv => {
            if b == 0.0 {
                a
            } else {
                a / b
            }
        }
        Opcode::FSqrt => a.abs().sqrt(),
        Opcode::CvtIf | Opcode::CvtFi => a,
        Opcode::Mov => a,
        Opcode::MovI => 3.25,
        Opcode::Select => {
            if a != 0.0 {
                b
            } else {
                c
            }
        }
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopml_ir::{ArrayId, Inst, LoopBuilder, MemRef, TripCount};

    #[test]
    fn store_writes_memory() {
        let mut b = LoopBuilder::new("t", TripCount::Known(4));
        let x = b.fp_reg();
        b.inst(Inst::new(Opcode::MovI, vec![x], vec![]));
        b.store(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        let l = b.build();
        let mem = execute(&l, 4, Memory::new());
        for i in 0..4 {
            assert_eq!(mem.get(&(0, 8 * i)).copied(), Some(3.25));
        }
    }

    #[test]
    fn load_reads_default_pattern_deterministically() {
        let mut b = LoopBuilder::new("t", TripCount::Known(2));
        let x = b.fp_reg();
        let y = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(1), 8, 0, 8));
        b.binop(Opcode::FMul, y, x, x);
        b.store(y, MemRef::affine(ArrayId(2), 8, 0, 8));
        let l = b.build();
        let m1 = execute(&l, 2, Memory::new());
        let m2 = execute(&l, 2, Memory::new());
        assert_eq!(m1, m2);
        assert!(m1.get(&(2, 0)).copied().unwrap() > 0.0);
    }

    #[test]
    fn predicated_inst_skipped_when_false() {
        let mut b = LoopBuilder::new("t", TripCount::Known(1));
        let x = b.fp_reg();
        let p = b.pred_reg();
        let one = b.fp_reg();
        let two = b.fp_reg();
        b.inst(Inst::new(Opcode::MovI, vec![one], vec![]));
        b.inst(Inst::new(Opcode::MovI, vec![two], vec![]));
        // p = (one < one) == false
        b.inst(Inst::new(Opcode::FCmp, vec![p], vec![one, one]));
        b.inst(Inst::new(Opcode::Mov, vec![x], vec![two]).predicated(p));
        b.store(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        let l = b.build();
        let mem = execute(&l, 1, Memory::new());
        // x never written: stores 0.0 (initial register value)
        assert_eq!(mem.get(&(0, 0)).copied(), Some(0.0));
    }

    #[test]
    fn pair_ops_touch_both_cells() {
        let mut b = LoopBuilder::new("t", TripCount::Known(1));
        let x = b.fp_reg();
        let y = b.fp_reg();
        b.inst(Inst::new(Opcode::MovI, vec![x], vec![]));
        b.inst(Inst::new(Opcode::MovI, vec![y], vec![]));
        b.inst(Inst {
            opcode: Opcode::StorePair,
            defs: vec![],
            uses: vec![x, y],
            mem: Some(MemRef::affine(ArrayId(0), 16, 0, 16)),
            predicate: None,
            induction: false,
        });
        let l = b.build();
        let mem = execute(&l, 1, Memory::new());
        assert_eq!(mem.get(&(0, 0)).copied(), Some(3.25));
        assert_eq!(mem.get(&(0, 8)).copied(), Some(3.25));
    }
}
