//! # loopml-opt — loop unrolling and the optimizations it enables
//!
//! This crate implements the transformation side of the `loopml`
//! reproduction of *Stephenson & Amarasinghe (CGO 2005)*: the loop
//! unroller itself plus the secondary optimizations whose interaction with
//! unrolling makes the unroll-factor decision hard (§3 of the paper):
//!
//! * [`unroll::unroll`] — body replication with register renaming,
//!   induction folding, memory-reference advancement, remainder handling
//!   and boundary early exits for unknown trip counts;
//! * [`scalar::scalar_replace`] — cross-copy elimination of redundant
//!   loads (and store-to-load forwarding);
//! * [`scalar::copy_propagate`] / [`scalar::dead_code_eliminate`] —
//!   cleanup that turns forwarded values into erased instructions;
//! * [`coalesce::coalesce`] — merging adjacent accesses into wide paired
//!   memory operations (alignment-sensitive, hence the power-of-two
//!   preference);
//! * [`interp`] — a reference interpreter used to *execute* equivalence
//!   between a loop and its transformed form.
//!
//! The one-call entry point is [`unroll_and_optimize`].
//!
//! # Examples
//!
//! ```
//! use loopml_ir::{ArrayId, Inst, LoopBuilder, MemRef, Opcode, TripCount};
//! use loopml_opt::{unroll_and_optimize, OptConfig};
//!
//! let mut b = LoopBuilder::new("copy", TripCount::Known(1024));
//! let x = b.fp_reg();
//! b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
//! b.store(x, MemRef::affine(ArrayId(1), 8, 0, 8));
//! let l = b.build();
//!
//! let u = unroll_and_optimize(&l, 4, &OptConfig::default());
//! // 4 loads + 4 stores coalesce into 2 wide loads + 2 wide stores.
//! assert_eq!(u.body.count_ops(|i| i.opcode == Opcode::LoadPair), 2);
//! assert_eq!(u.body.count_ops(|i| i.opcode == Opcode::StorePair), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coalesce;
pub mod interp;
pub mod scalar;
pub mod unroll;

pub use coalesce::coalesce;
pub use scalar::{copy_propagate, dead_code_eliminate, scalar_replace};
pub use unroll::{unroll, Unrolled};

/// Which post-unroll optimizations to run. The default matches an
/// ORC-at-`-O3`-like pipeline with everything enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Run scalar replacement (plus copy propagation and DCE).
    pub scalar_replacement: bool,
    /// Run memory-access coalescing.
    pub coalescing: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            scalar_replacement: true,
            coalescing: true,
        }
    }
}

/// Unrolls `l` by `factor` and runs the enabled post-unroll optimizations.
///
/// # Panics
///
/// Panics if `factor == 0` or `l` is not unrollable (see
/// [`loopml_ir::Loop::is_unrollable`]).
pub fn unroll_and_optimize(l: &loopml_ir::Loop, factor: u32, config: &OptConfig) -> Unrolled {
    let live_out = scalar::original_regs(l);
    let mut u = unroll(l, factor);
    if config.scalar_replacement {
        scalar_replace(&mut u.body);
        copy_propagate(&mut u.body);
        dead_code_eliminate(&mut u.body, &live_out);
    }
    if config.coalescing {
        coalesce(&mut u.body);
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp::{execute, Memory};
    use loopml_ir::{ArrayId, Inst, Loop, LoopBuilder, MemRef, Opcode, TripCount};

    /// Stencil: out[i] = a[i] + a[i+1]; unrolling enables cross-copy reuse
    /// of a[i+1].
    fn stencil() -> Loop {
        let mut b = LoopBuilder::new("stencil", TripCount::Known(1024));
        let x = b.fp_reg();
        let y = b.fp_reg();
        let r = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.load(y, MemRef::affine(ArrayId(0), 8, 8, 8));
        b.inst(Inst::new(Opcode::FAdd, vec![r], vec![x, y]));
        b.store(r, MemRef::affine(ArrayId(1), 8, 0, 8));
        b.build()
    }

    #[test]
    fn stencil_reuse_reduces_loads() {
        let u = unroll_and_optimize(&stencil(), 4, &OptConfig::default());
        // Naive unroll: 8 loads. Reuse kills 3 (copies 1..3 reuse the
        // previous copy's a[i+1]); coalescing may pair some of the rest.
        let loads =
            u.body.count_ops(|i| i.is_load()) + u.body.count_ops(|i| i.opcode == Opcode::LoadPair);
        assert!(
            loads <= 5,
            "expected ≤5 memory reads, got {loads}:\n{}",
            u.body
        );
    }

    #[test]
    fn disabled_config_keeps_naive_shape() {
        let cfg = OptConfig {
            scalar_replacement: false,
            coalescing: false,
        };
        let u = unroll_and_optimize(&stencil(), 4, &cfg);
        assert_eq!(u.body.count_ops(|i| i.opcode == Opcode::Load), 8);
    }

    /// Executes original vs transformed over the same iteration span and
    /// compares final memory states.
    fn assert_equivalent(l: &Loop, factor: u32, iters: u64) {
        assert_eq!(iters % u64::from(factor), 0, "test spans must divide");
        let reference = execute(l, iters, Memory::new());
        let u = unroll_and_optimize(l, factor, &OptConfig::default());
        let transformed = execute(&u.body, iters / u64::from(factor), Memory::new());
        // Compare on cells the reference wrote (the transformed version
        // may have *read* more cells into existence via default values).
        for (k, v) in &reference {
            let tv = transformed.get(k);
            assert_eq!(
                tv,
                Some(v),
                "cell {k:?} differs (factor {factor}):\noriginal:\n{l}\ntransformed:\n{}",
                u.body
            );
        }
    }

    #[test]
    fn stencil_semantics_preserved_all_factors() {
        for f in 1..=8 {
            assert_equivalent(&stencil(), f, 840); // 840 = lcm(1..=8)
        }
    }

    #[test]
    fn reduction_semantics_preserved() {
        // acc += a[i]; materialize acc to memory each iteration so the
        // memory-state comparison sees it.
        let mut b = LoopBuilder::new("red", TripCount::Known(64));
        let x = b.fp_reg();
        let acc = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.inst(Inst::new(Opcode::FAdd, vec![acc], vec![acc, x]));
        b.store(acc, MemRef::affine(ArrayId(1), 0, 0, 8));
        let l = b.build();
        for f in [2, 4, 8] {
            assert_equivalent(&l, f, 16);
        }
    }

    #[test]
    fn in_place_update_semantics_preserved() {
        // a[i] = a[i] * a[i-1] — a loop-carried memory recurrence.
        let mut b = LoopBuilder::new("recur", TripCount::Known(64));
        let x = b.fp_reg();
        let y = b.fp_reg();
        let r = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.load(y, MemRef::affine(ArrayId(0), 8, -8, 8));
        b.inst(Inst::new(Opcode::FMul, vec![r], vec![x, y]));
        b.store(r, MemRef::affine(ArrayId(0), 8, 0, 8));
        let l = b.build();
        for f in [2, 3, 4, 8] {
            assert_equivalent(&l, f, 24);
        }
    }

    #[test]
    fn strided_gather_semantics_preserved() {
        let mut b = LoopBuilder::new("strided", TripCount::Known(64));
        let x = b.fp_reg();
        let r = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 24, 0, 8));
        b.binop(Opcode::FMul, r, x, x);
        b.store(r, MemRef::affine(ArrayId(1), 8, 0, 8));
        let l = b.build();
        for f in [2, 5, 7] {
            assert_equivalent(&l, f, 70);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use interp::{execute, Memory};
    use loopml_ir::{ArrayId, Inst, Loop, LoopBuilder, MemRef, Opcode, TripCount};
    use loopml_rt::{check, Rng};

    /// Generates a random but well-formed arithmetic loop over a couple of
    /// arrays: a few loads, a chain of arithmetic, one or two stores.
    fn arb_loop(rng: &mut Rng) -> Loop {
        let n_loads = rng.gen_range(1..5usize);
        let n_ops = rng.gen_range(1..6usize);
        let n_stores = rng.gen_range(1u32..3);
        let mut b = LoopBuilder::new("arb", TripCount::Known(512));
        let mut vals = Vec::new();
        for _ in 0..n_loads {
            let arr: u32 = rng.gen_range(0..3u32);
            let off: i64 = rng.gen_range(0..4i64);
            let r = b.fp_reg();
            b.load(r, MemRef::affine(ArrayId(arr), 8, off * 8, 8));
            vals.push(r);
        }
        for k in 0..n_ops {
            let a = vals[k % vals.len()];
            let c = vals[(k + 1) % vals.len()];
            let r = b.fp_reg();
            let op =
                [Opcode::FAdd, Opcode::FMul, Opcode::FSub, Opcode::FAdd][rng.gen_range(0..4usize)];
            b.inst(Inst::new(op, vec![r], vec![a, c]));
            vals.push(r);
        }
        for s in 0..n_stores {
            let v = vals[vals.len() - 1 - s as usize % vals.len()];
            // Store to dedicated output arrays (10+) to keep loads
            // reusable across copies.
            b.store(v, MemRef::affine(ArrayId(10 + s), 8, 0, 8));
        }
        b.build()
    }

    #[test]
    fn unroll_preserves_semantics() {
        check("unroll_preserves_semantics", 48, |rng| {
            let l = arb_loop(rng);
            let f: u32 = rng.gen_range(1..=8u32);
            let span = 24u64 * 35; // 840 = lcm(1..=8)
            let reference = execute(&l, span, Memory::new());
            let u = unroll_and_optimize(&l, f, &OptConfig::default());
            let transformed = execute(&u.body, span / u64::from(f), Memory::new());
            for (k, v) in &reference {
                assert_eq!(transformed.get(k), Some(v));
            }
        });
    }

    #[test]
    fn unroll_scales_real_work() {
        check("unroll_scales_real_work", 48, |rng| {
            let l = arb_loop(rng);
            let f: u32 = rng.gen_range(1..=8u32);
            let u = unroll(&l, f);
            let orig_stores = l.count_ops(|i| i.is_store());
            assert_eq!(u.body.count_ops(|i| i.is_store()), orig_stores * f as usize);
            assert_eq!(u.body.count_ops(|i| i.opcode == Opcode::Br), 1);
            assert_eq!(u.body.count_ops(|i| i.induction), 1);
        });
    }

    #[test]
    fn optimization_never_adds_memory_ops() {
        check("optimization_never_adds_memory_ops", 48, |rng| {
            let l = arb_loop(rng);
            let f: u32 = rng.gen_range(1..=8u32);
            let naive = unroll(&l, f);
            let opt = unroll_and_optimize(&l, f, &OptConfig::default());
            let count_mem = |lp: &Loop| lp.count_ops(|i| i.opcode.is_mem());
            assert!(count_mem(&opt.body) <= count_mem(&naive.body));
        });
    }
}
