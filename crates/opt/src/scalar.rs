//! Post-unroll scalar cleanups: scalar replacement of redundant memory
//! accesses, copy propagation, and dead-code elimination.
//!
//! Unrolling exposes loads that re-read an address another copy already
//! loaded or stored (e.g. the overlapping reads of a stencil). Scalar
//! replacement rewrites those loads into register moves; copy propagation
//! and DCE then erase the moves. These are the "enabled optimizations" the
//! paper identifies as the main source of unrolling benefit on the memory
//! side.

use std::collections::{HashMap, HashSet};

use loopml_ir::{ArrayId, Inst, Loop, MemRef, Opcode, Reg};

/// Rewrites loads whose address was already loaded or stored earlier in
/// the body into `Mov`s from the register holding the value.
///
/// Returns the number of loads replaced.
///
/// Predicated memory operations are left untouched (their execution is
/// conditional), and any store that may alias an address invalidates the
/// remembered value.
pub fn scalar_replace(l: &mut Loop) -> usize {
    // Address key: (base, stride, offset, width). Only exact matches are
    // reused; stride is included because the unroller already folded the
    // iteration space.
    type Key = (ArrayId, i64, i64, u8);
    let key = |m: &MemRef| -> Option<Key> {
        if m.indirect || m.ambiguous {
            None
        } else {
            Some((m.base, m.stride, m.offset, m.width))
        }
    };

    let mut avail: HashMap<Key, Reg> = HashMap::new();
    let mut replaced = 0;
    for inst in &mut l.body {
        let Some(m) = inst.mem else { continue };
        if inst.predicate.is_some() {
            // Conditional accesses neither provide nor consume values, and
            // conditional stores kill everything on their base.
            if inst.is_store() {
                avail.retain(|k, _| k.0 != m.base);
            }
            continue;
        }
        match inst.opcode {
            Opcode::Load => {
                if let Some(k) = key(&m) {
                    if let Some(&src) = avail.get(&k) {
                        let dst = inst.defs[0];
                        *inst = Inst::new(Opcode::Mov, vec![dst], vec![src]);
                        replaced += 1;
                        // The moved-to register now also holds the value,
                        // but the map tracks one register per address and
                        // `src` remains valid.
                        continue;
                    }
                    avail.insert(k, inst.defs[0]);
                }
            }
            Opcode::Store => {
                if m.ambiguous {
                    // A store through an unanalyzable pointer may hit any
                    // remembered address.
                    avail.clear();
                    continue;
                }
                // Kill anything this store may overwrite, then remember
                // the stored value for forwarding.
                avail.retain(|k, _| {
                    k.0 != m.base || (key(&m) == Some(*k)) // exact match replaced below
                });
                if let Some(k) = key(&m) {
                    avail.insert(k, inst.uses[0]);
                } else {
                    avail.retain(|k, _| k.0 != m.base);
                }
            }
            Opcode::LoadPair | Opcode::StorePair => {
                // Wide ops appear only after coalescing, which runs later;
                // treat conservatively if encountered.
                avail.retain(|k, _| k.0 != m.base);
            }
            _ => {}
        }
    }
    replaced
}

/// Forward-propagates `Mov dst = src`: subsequent uses of `dst` become
/// `src` until either register is redefined. Returns the number of operand
/// rewrites performed.
pub fn copy_propagate(l: &mut Loop) -> usize {
    let mut map: HashMap<Reg, Reg> = HashMap::new();
    let mut rewrites = 0;
    let n = l.body.len();
    for idx in 0..n {
        // Rewrite uses first.
        let inst = &mut l.body[idx];
        for u in &mut inst.uses {
            if let Some(&s) = map.get(u) {
                *u = s;
                rewrites += 1;
            }
        }
        if let Some(p) = &mut inst.predicate {
            if let Some(&s) = map.get(p) {
                *p = s;
                rewrites += 1;
            }
        }
        // Kill mappings clobbered by this instruction's defs.
        let defs = inst.defs.clone();
        map.retain(|d, s| !defs.contains(d) && !defs.contains(s));
        // Record new copies.
        if inst.opcode == Opcode::Mov && inst.defs.len() == 1 && inst.uses.len() == 1 {
            map.insert(inst.defs[0], inst.uses[0]);
        }
    }
    rewrites
}

/// Removes instructions with no side effects whose defined registers are
/// never read later in the body, are not loop-carried (read earlier), and
/// are not in `live_out`. Returns the number of instructions removed.
pub fn dead_code_eliminate(l: &mut Loop, live_out: &HashSet<Reg>) -> usize {
    let mut removed = 0;
    loop {
        let mut read_anywhere: HashSet<Reg> = HashSet::new();
        for inst in &l.body {
            for r in inst.reads() {
                read_anywhere.insert(r);
            }
        }
        let before = l.body.len();
        l.body.retain(|inst| {
            let side_effecting = inst.is_store()
                || inst.opcode.is_branch()
                || inst.opcode == Opcode::Call
                || inst.opcode == Opcode::Prefetch
                || inst.induction;
            if side_effecting || inst.defs.is_empty() {
                return true;
            }
            let dead = inst
                .defs
                .iter()
                .all(|d| !read_anywhere.contains(d) && !live_out.contains(d));
            !dead
        });
        let r = before - l.body.len();
        removed += r;
        if r == 0 {
            return removed;
        }
    }
}

/// The registers of the original (pre-unroll) loop, which must be treated
/// as live-out by cleanup passes: the loop's consumers read them.
pub fn original_regs(l: &Loop) -> HashSet<Reg> {
    l.body
        .iter()
        .flat_map(|i| i.defs.iter().copied().chain(i.reads()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopml_ir::{ArrayId, LoopBuilder, TripCount};

    fn m(base: u32, stride: i64, offset: i64) -> MemRef {
        MemRef::affine(ArrayId(base), stride, offset, 8)
    }

    #[test]
    fn redundant_load_becomes_mov() {
        let mut b = LoopBuilder::new("t", TripCount::Known(10));
        let x = b.fp_reg();
        let y = b.fp_reg();
        b.load(x, m(0, 8, 0));
        b.load(y, m(0, 8, 0));
        let mut l = b.build();
        assert_eq!(scalar_replace(&mut l), 1);
        assert_eq!(l.count_ops(|i| i.is_load()), 1);
        assert_eq!(l.count_ops(|i| i.opcode == Opcode::Mov), 1);
    }

    #[test]
    fn store_forwards_to_load() {
        let mut b = LoopBuilder::new("t", TripCount::Known(10));
        let x = b.fp_reg();
        let y = b.fp_reg();
        b.store(x, m(0, 8, 0));
        b.load(y, m(0, 8, 0));
        let mut l = b.build();
        assert_eq!(scalar_replace(&mut l), 1);
        let mov = l
            .body
            .iter()
            .find(|i| i.opcode == Opcode::Mov)
            .expect("forwarded");
        assert_eq!(mov.uses, vec![x]);
    }

    #[test]
    fn aliasing_store_kills_availability() {
        let mut b = LoopBuilder::new("t", TripCount::Known(10));
        let x = b.fp_reg();
        let s = b.fp_reg();
        let y = b.fp_reg();
        b.load(x, m(0, 8, 0));
        // Store to the same base at a different (maybe-overlapping under
        // unknown bounds) offset kills the remembered load.
        b.store(s, m(0, 8, 8));
        b.load(y, m(0, 8, 0));
        let mut l = b.build();
        assert_eq!(scalar_replace(&mut l), 0);
        assert_eq!(l.count_ops(|i| i.is_load()), 2);
    }

    #[test]
    fn indirect_loads_are_not_replaced() {
        let mut b = LoopBuilder::new("t", TripCount::Known(10));
        let x = b.fp_reg();
        let y = b.fp_reg();
        let ind = MemRef::indirect(ArrayId(0), 8, 8);
        b.load(x, ind);
        b.load(y, ind);
        let mut l = b.build();
        assert_eq!(scalar_replace(&mut l), 0);
    }

    #[test]
    fn copy_prop_rewrites_uses() {
        let mut b = LoopBuilder::new("t", TripCount::Known(10));
        let x = b.fp_reg();
        let y = b.fp_reg();
        let z = b.fp_reg();
        b.load(x, m(0, 8, 0));
        b.inst(Inst::new(Opcode::Mov, vec![y], vec![x]));
        b.binop(Opcode::FAdd, z, y, y);
        let mut l = b.build();
        let rw = copy_propagate(&mut l);
        assert!(rw >= 2, "both uses of y rewritten, got {rw}");
        let add = l.body.iter().find(|i| i.opcode == Opcode::FAdd).unwrap();
        assert_eq!(add.uses, vec![x, x]);
    }

    #[test]
    fn copy_prop_stops_at_redefinition() {
        let mut b = LoopBuilder::new("t", TripCount::Known(10));
        let x = b.fp_reg();
        let y = b.fp_reg();
        let z = b.fp_reg();
        b.load(x, m(0, 8, 0));
        b.inst(Inst::new(Opcode::Mov, vec![y], vec![x]));
        b.load(x, m(0, 8, 8)); // x redefined: the copy is stale
        b.binop(Opcode::FAdd, z, y, y);
        let mut l = b.build();
        copy_propagate(&mut l);
        let add = l.body.iter().find(|i| i.opcode == Opcode::FAdd).unwrap();
        assert_eq!(add.uses, vec![y, y], "must not propagate past the kill");
    }

    #[test]
    fn dce_removes_dead_movs_but_keeps_live_outs() {
        let mut b = LoopBuilder::new("t", TripCount::Known(10));
        let x = b.fp_reg();
        let y = b.fp_reg();
        b.load(x, m(0, 8, 0));
        b.inst(Inst::new(Opcode::Mov, vec![y], vec![x]));
        let mut l = b.build();
        copy_propagate(&mut l);
        // With y live-out the mov stays; without, it goes.
        let mut keep: HashSet<Reg> = HashSet::new();
        keep.insert(y);
        let mut l2 = l.clone();
        assert_eq!(
            dead_code_eliminate(&mut l, &keep),
            0,
            "mov feeds live-out y, load feeds mov"
        );
        assert!(l.body.iter().any(|i| i.opcode == Opcode::Mov));
        assert_eq!(dead_code_eliminate(&mut l2, &HashSet::new()), 2);
        assert!(!l2.body.iter().any(|i| i.opcode == Opcode::Mov));
    }

    #[test]
    fn dce_keeps_stores_and_control() {
        let mut b = LoopBuilder::new("t", TripCount::Known(10));
        let x = b.fp_reg();
        b.store(x, m(0, 8, 0));
        let mut l = b.build();
        let n = l.len();
        // The loop-closing cmp's predicate feeds the branch; nothing to remove.
        assert_eq!(dead_code_eliminate(&mut l, &HashSet::new()), 0);
        assert_eq!(l.len(), n);
    }
}
