//! Layer 2½: the static unroll/SWP legality prover.
//!
//! The differential-execution oracle ([`crate::differential_check`])
//! interprets every loop at every factor, which dominates labeling cost
//! as the corpus grows. This module replaces most oracle runs with
//! static proofs over the affine access descriptors:
//!
//! * [`prove_factor`] analyzes every dependence-relevant reference pair
//!   of the *original* loop (see [`AliasClass`]) and returns
//!   [`Verdict::Proven`] with a [`Certificate`] — the disjointness and
//!   distance facts used — when every pair is exactly resolved, or
//!   [`Verdict::Unknown`] naming the blocker otherwise. It never
//!   refutes: the original loop is the semantics being preserved.
//! * [`check_transform`] additionally compares the statically expanded
//!   store-cell sets of original and transformed bodies and returns
//!   [`Verdict::Refuted`] with a [`Witness`] — a concrete iteration
//!   pair and memory cell that exactly one side writes — when the
//!   transform provably diverges.
//!
//! # Why `Proven` may skip the oracle
//!
//! A `Proven` certificate means every reference pair is fully analyzed:
//! non-indirect, non-ambiguous, and either on distinct bases, at an
//! exactly known same-stride distance, or GCD-disjoint. Under those
//! conditions every pass in the unroll-and-optimize pipeline is
//! semantics-preserving by construction: unrolling replicates bodies
//! and advances affine descriptors exactly, scalar replacement forwards
//! only between *identical* descriptors (killed across same-base
//! stores), and coalescing merges only provably adjacent accesses. The
//! oracle can therefore be skipped — except for a deterministic 1-in-[`CROSS_CHECK_DENOM`]
//! sample ([`cross_check_sample`]) kept as a cross-check, where any
//! prover/oracle disagreement is a hard deny
//! ([`crate::rules::XF_LEGALITY_DISAGREE`]). The structural checks
//! ([`crate::validate_unroll`], the verifier) still run on every loop.
//!
//! # Why a `Witness` is guaranteed to reproduce
//!
//! The interpreter writes exactly the cells of the stores it executes:
//! a store with `n` source registers writes `(base,
//! stride·iter + offset + (width/n)·k)` for `k < n`, and loads never
//! insert cells. The refuter expands those same cell sets statically
//! (affine loops only) and reports a divergence only when a cell from
//! an *unpredicated* store on one side is covered by *no* store —
//! predicated or not — on the other. Such a cell is a guaranteed
//! membership mismatch in [`crate::differential_check`]'s final-state
//! comparison, independent of the values stored. Predicated-store
//! differences are never grounds for refutation (their guards may be
//! false), and loops with indirect references skip the refuter
//! entirely: the interpreter models their addresses as affine
//! pretend-values, so honest transforms legitimately diverge there.

use std::collections::BTreeMap;
use std::fmt;

use loopml_ir::{AliasClass, Loop, MemRef, MAX_CARRIED_DISTANCE};

/// Trip counts the static refuter expands store-cell sets at (smallest
/// first, so witnesses name the earliest diverging span). Trip 0 is
/// omitted: both sides write nothing.
pub const REFUTE_TRIPS: &[u64] = &[1, 2, 5];

/// One in this many `Proven` (loop, factor) pairs is cross-checked
/// against the differential oracle (see [`cross_check_sample`]).
pub const CROSS_CHECK_DENOM: u64 = 8;

/// Alias-class histogram over a loop's dependence-relevant reference
/// pairs (pairs with at least one store; load-load pairs carry no
/// constraint). Doubles as a prover-derived feature block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AliasCounts {
    /// Pairs on provably distinct bases.
    pub distinct_bases: usize,
    /// Same-base same-stride pairs with an exactly known relation.
    pub exact_affine: usize,
    /// Mixed-stride pairs proven disjoint by the GCD test.
    pub gcd_disjoint: usize,
    /// Mixed-stride pairs the GCD test cannot separate.
    pub irregular_overlap: usize,
    /// Pairs involving an indirect (data-dependent) reference.
    pub indirect: usize,
    /// Pairs involving an unanalyzable (ambiguous) base.
    pub ambiguous: usize,
}

impl AliasCounts {
    /// Total dependence-relevant pairs.
    pub fn total(&self) -> usize {
        self.distinct_bases
            + self.exact_affine
            + self.gcd_disjoint
            + self.irregular_overlap
            + self.indirect
            + self.ambiguous
    }
}

/// One dependence fact recorded in a [`Certificate`]. `src`/`dst` index
/// the loop's memory-operation list (loads and stores in body order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fact {
    /// The pair lives on provably distinct base arrays.
    DistinctBases {
        /// First memory operation of the pair.
        src: usize,
        /// Second memory operation of the pair.
        dst: usize,
    },
    /// Same-base mixed-stride lattices proven disjoint by the GCD test.
    GcdDisjoint {
        /// First memory operation of the pair.
        src: usize,
        /// Second memory operation of the pair.
        dst: usize,
        /// The modulus `gcd(|stride_a|, |stride_b|)` that proves it.
        gcd: i64,
    },
    /// Same-base same-stride pair with a fully determined relation:
    /// `Some(d)` is the exact dependence distance from `src` to `dst`,
    /// `None` is proven independence (within the analysis horizon).
    AffineDistance {
        /// Source memory operation (executes `distance` iterations
        /// before `dst` touches the same address).
        src: usize,
        /// Destination memory operation.
        dst: usize,
        /// The dependence distance, `None` for proven independence.
        distance: Option<i64>,
    },
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fact::DistinctBases { src, dst } => write!(f, "mem{src}|mem{dst}: distinct bases"),
            Fact::GcdDisjoint { src, dst, gcd } => {
                write!(f, "mem{src}|mem{dst}: gcd({gcd})-disjoint")
            }
            Fact::AffineDistance {
                src,
                dst,
                distance: Some(d),
            } => write!(f, "mem{src}->mem{dst}: distance {d}"),
            Fact::AffineDistance { src, dst, .. } => {
                write!(f, "mem{src}->mem{dst}: independent")
            }
        }
    }
}

/// The facts a [`Verdict::Proven`] rests on. The dependence facts are a
/// property of the original loop and do not vary with the factor; the
/// factor is recorded because verdicts, sampling and stats are all
/// per-(loop, factor).
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Unroll factor the verdict was issued for.
    pub factor: u32,
    /// Per-pair disjointness/distance facts (see [`Fact`]).
    pub facts: Vec<Fact>,
    /// Alias-class histogram of the dependence-relevant pairs.
    pub alias: AliasCounts,
    /// Minimum positive proven dependence distance, if any pair carries
    /// one.
    pub min_carried: Option<i64>,
}

/// A concrete conflict refuting a transform: a memory cell written by
/// exactly one side over a compared iteration span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Witness {
    /// Unroll factor under refutation.
    pub factor: u32,
    /// Transformed-loop trip count exposing the divergence (the
    /// original runs `trip × factor` iterations).
    pub trip: u64,
    /// Base array of the diverging cell.
    pub base: u32,
    /// Byte address of the diverging cell.
    pub addr: i64,
    /// Original-loop iteration at which an unpredicated store writes
    /// the cell (for extra cells: the representative `xform_iter ×
    /// factor`).
    pub orig_iter: u64,
    /// Transformed-loop iteration involved (for missing cells: the copy
    /// span `orig_iter / factor` that should have covered it).
    pub xform_iter: u64,
    /// `true`: the original writes the cell and the transformed never
    /// does. `false`: the transformed writes a cell the original never
    /// touches.
    pub missing_in_transformed: bool,
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell (A{}, {}) {} at factor {}, trip {} (original iteration {}, transformed iteration {})",
            self.base,
            self.addr,
            if self.missing_in_transformed {
                "written by the original but never by the transform"
            } else {
                "written by the transform but never by the original"
            },
            self.factor,
            self.trip,
            self.orig_iter,
            self.xform_iter,
        )
    }
}

/// Why the prover could not resolve a loop (the oracle runs instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownReason {
    /// A data-dependent reference defeats affine analysis — and the
    /// interpreter cannot model it either, so these loops are recorded
    /// as unverified ([`crate::rules::XF_INDIRECT_UNVERIFIED`]) rather
    /// than silently skipped.
    Indirect,
    /// An unanalyzable base may alias any other access.
    Ambiguous,
    /// Same-base accesses whose differing strides the GCD test cannot
    /// separate: conflicts recur at irregular intervals.
    IrregularOverlap,
    /// The loop contains an opaque call; nothing is provable about its
    /// memory effects.
    OpaqueCall,
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnknownReason::Indirect => "indirect reference",
            UnknownReason::Ambiguous => "ambiguous base",
            UnknownReason::IrregularOverlap => "irregular mixed-stride overlap",
            UnknownReason::OpaqueCall => "opaque call",
        })
    }
}

/// The legality lattice for one (loop, factor) pair.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Legal, with the facts that prove it; the oracle runs only on the
    /// deterministic cross-check sample.
    Proven(Certificate),
    /// Provably wrong, with a reproducing conflict; a hard deny.
    Refuted(Witness),
    /// Not statically resolvable; the oracle decides (or, for indirect
    /// loops, cannot — they are recorded as unverified).
    Unknown(UnknownReason),
}

impl Verdict {
    /// `true` for [`Verdict::Proven`].
    pub fn is_proven(&self) -> bool {
        matches!(self, Verdict::Proven(_))
    }

    /// `true` for [`Verdict::Refuted`].
    pub fn is_refuted(&self) -> bool {
        matches!(self, Verdict::Refuted(_))
    }

    /// Stable label for stats/reporting.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Proven(_) => "proven",
            Verdict::Refuted(_) => "refuted",
            Verdict::Unknown(UnknownReason::Indirect) => "unknown_indirect",
            Verdict::Unknown(UnknownReason::Ambiguous) => "unknown_ambiguous",
            Verdict::Unknown(UnknownReason::IrregularOverlap) => "unknown_irregular",
            Verdict::Unknown(UnknownReason::OpaqueCall) => "unknown_call",
        }
    }
}

/// The loop's memory operations (loads and stores) in body order, each
/// with its store-ness.
fn mem_ops(l: &Loop) -> Vec<(MemRef, bool)> {
    l.body
        .iter()
        .filter_map(|i| {
            let m = i.mem?;
            (i.is_load() || i.is_store()).then_some((m, i.is_store()))
        })
        .collect()
}

/// Shared pair analysis: facts, alias histogram, minimum proven carried
/// distance, and the severest blocker (if any pair is unresolved).
struct PairAnalysis {
    facts: Vec<Fact>,
    alias: AliasCounts,
    min_carried: Option<i64>,
    blocker: Option<UnknownReason>,
}

fn severity(r: UnknownReason) -> u8 {
    match r {
        UnknownReason::Indirect => 3,
        UnknownReason::Ambiguous => 2,
        UnknownReason::IrregularOverlap => 1,
        UnknownReason::OpaqueCall => 0,
    }
}

fn analyze_pairs(l: &Loop) -> PairAnalysis {
    let mems = mem_ops(l);
    let mut facts = Vec::new();
    let mut alias = AliasCounts::default();
    let mut min_carried: Option<i64> = None;
    let mut blocker: Option<UnknownReason> = None;
    let block = |cur: &mut Option<UnknownReason>, new: UnknownReason| {
        if cur.is_none_or(|c| severity(new) > severity(c)) {
            *cur = Some(new);
        }
    };
    let carried = |min: &mut Option<i64>, d: i64| {
        if d > 0 {
            *min = Some(min.map_or(d, |m| m.min(d)));
        }
    };
    for (a, &(ma, sa)) in mems.iter().enumerate() {
        for (off, &(mb, sb)) in mems[a + 1..].iter().enumerate() {
            let b = a + 1 + off;
            if !sa && !sb {
                continue; // load-load pairs carry no dependence
            }
            match ma.alias_class(mb) {
                AliasClass::DistinctBases => {
                    alias.distinct_bases += 1;
                    facts.push(Fact::DistinctBases { src: a, dst: b });
                }
                AliasClass::GcdDisjoint => {
                    alias.gcd_disjoint += 1;
                    let gcd = ma.gcd_disjoint(mb).expect("classified GcdDisjoint");
                    facts.push(Fact::GcdDisjoint {
                        src: a,
                        dst: b,
                        gcd,
                    });
                }
                AliasClass::ExactAffine => {
                    alias.exact_affine += 1;
                    let fwd = ma.dependence_distance(mb, MAX_CARRIED_DISTANCE);
                    facts.push(Fact::AffineDistance {
                        src: a,
                        dst: b,
                        distance: fwd,
                    });
                    if let Some(d) = fwd {
                        carried(&mut min_carried, d);
                    }
                    if let Some(d) = mb.dependence_distance(ma, MAX_CARRIED_DISTANCE) {
                        if d > 0 {
                            facts.push(Fact::AffineDistance {
                                src: b,
                                dst: a,
                                distance: Some(d),
                            });
                            carried(&mut min_carried, d);
                        }
                    }
                }
                AliasClass::IrregularOverlap => {
                    alias.irregular_overlap += 1;
                    block(&mut blocker, UnknownReason::IrregularOverlap);
                }
                AliasClass::Indirect => {
                    alias.indirect += 1;
                    block(&mut blocker, UnknownReason::Indirect);
                }
                AliasClass::Ambiguous => {
                    alias.ambiguous += 1;
                    block(&mut blocker, UnknownReason::Ambiguous);
                }
            }
        }
    }
    PairAnalysis {
        facts,
        alias,
        min_carried,
        blocker,
    }
}

/// Alias-class histogram over the loop's dependence-relevant pairs (a
/// prover-derived feature block; see [`AliasCounts`]).
pub fn alias_counts(l: &Loop) -> AliasCounts {
    analyze_pairs(l).alias
}

/// Minimum positive dependence distance among exactly analyzed pairs,
/// independent of the overall verdict (a prover-derived feature).
pub fn min_proven_carried(l: &Loop) -> Option<i64> {
    analyze_pairs(l).min_carried
}

/// `true` if any reference of `l` is indirect.
pub fn has_indirect(l: &Loop) -> bool {
    l.body.iter().any(|i| i.mem.is_some_and(|m| m.indirect))
}

/// Static legality proof for unrolling `l` by `factor`: [`Verdict::Proven`]
/// when every dependence-relevant pair is exactly resolved (see the
/// module docs for why that makes the whole pipeline sound),
/// [`Verdict::Unknown`] otherwise. Never [`Verdict::Refuted`] — the
/// original loop *is* the semantics; only a transform can be refuted
/// ([`check_transform`]).
///
/// Any indirect reference makes the whole loop `Unknown(Indirect)` even
/// when no pair involves it: the cross-check oracle cannot interpret
/// indirect addressing, so such loops must never enter the `Proven`
/// sample pool.
pub fn prove_factor(l: &Loop, factor: u32) -> Verdict {
    if l.has_call() {
        return Verdict::Unknown(UnknownReason::OpaqueCall);
    }
    if has_indirect(l) {
        return Verdict::Unknown(UnknownReason::Indirect);
    }
    let pa = analyze_pairs(l);
    match pa.blocker {
        Some(r) => Verdict::Unknown(r),
        None => Verdict::Proven(Certificate {
            factor,
            facts: pa.facts,
            alias: pa.alias,
            min_carried: pa.min_carried,
        }),
    }
}

/// Memory cell identity, exactly as the interpreter keys memory.
type Cell = (u32, i64);

/// Statically expands the cells the loop's stores write over `iters`
/// iterations, mirroring `interp::execute`'s store addressing: a store
/// with `n` source registers writes `(base, stride·iter + offset +
/// (width/n)·k)` for `k < n`. With `must_only`, predicated stores (which
/// the interpreter may skip) are excluded. Returns cell → earliest
/// writing iteration.
fn store_cells(l: &Loop, iters: u64, must_only: bool) -> BTreeMap<Cell, u64> {
    let mut cells = BTreeMap::new();
    for inst in &l.body {
        if !inst.is_store() || (must_only && inst.predicate.is_some()) {
            continue;
        }
        let m = inst.mem.expect("store has memref");
        let w = i64::from(m.width) / inst.uses.len().max(1) as i64;
        for iter in 0..iters as i64 {
            let addr = m.stride * iter + m.offset;
            for k in 0..inst.uses.len() as i64 {
                cells.entry((m.base.0, addr + w * k)).or_insert(iter as u64);
            }
        }
    }
    cells
}

/// Looks for a guaranteed store-set divergence at one trip count; see
/// the module docs for the soundness argument.
fn refute_at_trip(original: &Loop, factor: u32, transformed: &Loop, trip: u64) -> Option<Witness> {
    let orig_iters = trip * u64::from(factor);
    let must_orig = store_cells(original, orig_iters, true);
    let may_x = store_cells(transformed, trip, false);
    for (cell, &it) in &must_orig {
        if !may_x.contains_key(cell) {
            return Some(Witness {
                factor,
                trip,
                base: cell.0,
                addr: cell.1,
                orig_iter: it,
                xform_iter: it / u64::from(factor),
                missing_in_transformed: true,
            });
        }
    }
    let must_x = store_cells(transformed, trip, true);
    let may_orig = store_cells(original, orig_iters, false);
    for (cell, &it) in &must_x {
        if !may_orig.contains_key(cell) {
            return Some(Witness {
                factor,
                trip,
                base: cell.0,
                addr: cell.1,
                orig_iter: it * u64::from(factor),
                xform_iter: it,
                missing_in_transformed: false,
            });
        }
    }
    None
}

/// Static refutation of a transformed body against its original:
/// `Some(witness)` when the store-cell sets provably diverge at one of
/// [`REFUTE_TRIPS`]. `None` for loops with indirect references (the
/// cell expansion would model pretend-addresses).
pub fn refute(original: &Loop, factor: u32, transformed: &Loop) -> Option<Witness> {
    if has_indirect(original) || has_indirect(transformed) {
        return None;
    }
    REFUTE_TRIPS
        .iter()
        .find_map(|&t| refute_at_trip(original, factor, transformed, t))
}

/// Full per-(loop, factor) verdict for a transform: [`Verdict::Refuted`]
/// when the store-cell sets provably diverge, otherwise the
/// [`prove_factor`] verdict of the original.
pub fn check_transform(original: &Loop, factor: u32, transformed: &Loop) -> Verdict {
    if let Some(w) = refute(original, factor, transformed) {
        return Verdict::Refuted(w);
    }
    prove_factor(original, factor)
}

/// Deterministic, thread- and order-invariant cross-check sampling: a
/// pure FNV-1a hash of the loop name folded with the factor selects one
/// in [`CROSS_CHECK_DENOM`] `Proven` pairs for an oracle run. Loop
/// names are unique across the corpus, so the sample is a stable
/// property of the (loop, factor) pair — identical at any
/// `LOOPML_THREADS` and in any visit order.
pub fn cross_check_sample(loop_name: &str, factor: u32) -> bool {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in loop_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= u64::from(factor);
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    h.is_multiple_of(CROSS_CHECK_DENOM)
}

/// Aggregated prover statistics over a set of (loop, factor) pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LegalityStats {
    /// Pairs resolved `Proven`.
    pub proven: usize,
    /// Pairs resolved `Refuted`.
    pub refuted: usize,
    /// Pairs `Unknown` due to indirect references.
    pub unknown_indirect: usize,
    /// Pairs `Unknown` due to ambiguous bases.
    pub unknown_ambiguous: usize,
    /// Pairs `Unknown` due to irregular mixed-stride overlap.
    pub unknown_irregular: usize,
    /// Pairs `Unknown` due to opaque calls.
    pub unknown_call: usize,
    /// `Proven` pairs the deterministic sample sent to the oracle.
    pub cross_checked: usize,
    /// Cross-checked pairs where prover and oracle disagreed (must be
    /// zero; each is a hard deny).
    pub disagreements: usize,
    /// Differential-oracle executions actually performed.
    pub oracle_runs: usize,
}

impl LegalityStats {
    /// Records one verdict.
    pub fn record(&mut self, v: &Verdict) {
        match v {
            Verdict::Proven(_) => self.proven += 1,
            Verdict::Refuted(_) => self.refuted += 1,
            Verdict::Unknown(UnknownReason::Indirect) => self.unknown_indirect += 1,
            Verdict::Unknown(UnknownReason::Ambiguous) => self.unknown_ambiguous += 1,
            Verdict::Unknown(UnknownReason::IrregularOverlap) => self.unknown_irregular += 1,
            Verdict::Unknown(UnknownReason::OpaqueCall) => self.unknown_call += 1,
        }
    }

    /// Folds another stats block into this one (order-independent).
    pub fn merge(&mut self, o: &LegalityStats) {
        self.proven += o.proven;
        self.refuted += o.refuted;
        self.unknown_indirect += o.unknown_indirect;
        self.unknown_ambiguous += o.unknown_ambiguous;
        self.unknown_irregular += o.unknown_irregular;
        self.unknown_call += o.unknown_call;
        self.cross_checked += o.cross_checked;
        self.disagreements += o.disagreements;
        self.oracle_runs += o.oracle_runs;
    }

    /// All recorded pairs.
    pub fn total(&self) -> usize {
        self.proven
            + self.refuted
            + self.unknown_indirect
            + self.unknown_ambiguous
            + self.unknown_irregular
            + self.unknown_call
    }

    /// Pairs resolved statically (`Proven` + `Refuted`).
    pub fn resolved(&self) -> usize {
        self.proven + self.refuted
    }

    /// Pairs on the affine corpus: everything except indirect-ref loops,
    /// which no static *or* dynamic check can currently decide.
    pub fn affine_total(&self) -> usize {
        self.total() - self.unknown_indirect
    }

    /// Statically resolved fraction of the affine corpus, in `[0, 1]`
    /// (1.0 when the affine corpus is empty).
    pub fn coverage(&self) -> f64 {
        if self.affine_total() == 0 {
            1.0
        } else {
            self.resolved() as f64 / self.affine_total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopml_ir::{ArrayId, Inst, LoopBuilder, Opcode, TripCount};
    use loopml_opt::{interp, unroll, unroll_and_optimize, OptConfig};

    /// y[i] = x[i] + x[i+1] — distinct bases throughout.
    fn stencil() -> Loop {
        let mut b = LoopBuilder::new("stencil", TripCount::Known(64));
        let x = b.fp_reg();
        let y = b.fp_reg();
        let r = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.load(y, MemRef::affine(ArrayId(0), 8, 8, 8));
        b.binop(Opcode::FAdd, r, x, y);
        b.store(r, MemRef::affine(ArrayId(1), 8, 0, 8));
        b.build()
    }

    /// a[i+2] = a[i] + a[i] — an exact carried distance of 2.
    fn carried() -> Loop {
        let mut b = LoopBuilder::new("carried", TripCount::Known(64));
        let x = b.fp_reg();
        let y = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.binop(Opcode::FAdd, y, x, x);
        b.store(y, MemRef::affine(ArrayId(0), 8, 16, 8));
        b.build()
    }

    #[test]
    fn distinct_base_loop_is_proven_with_facts() {
        let l = stencil();
        for f in 1..=8 {
            match prove_factor(&l, f) {
                Verdict::Proven(c) => {
                    assert_eq!(c.factor, f);
                    assert_eq!(c.alias.distinct_bases, 2, "{:?}", c.alias);
                    assert_eq!(c.min_carried, None);
                    assert_eq!(c.facts.len(), 2);
                }
                v => panic!("expected Proven at factor {f}, got {v:?}"),
            }
        }
    }

    #[test]
    fn carried_loop_is_proven_with_exact_distance() {
        match prove_factor(&carried(), 4) {
            Verdict::Proven(c) => {
                assert_eq!(c.alias.exact_affine, 1);
                assert_eq!(c.min_carried, Some(2));
                assert!(c.facts.iter().any(|f| matches!(
                    f,
                    Fact::AffineDistance {
                        distance: Some(2),
                        ..
                    }
                )));
            }
            v => panic!("expected Proven, got {v:?}"),
        }
    }

    #[test]
    fn opaque_blockers_are_classified() {
        // Ambiguous store: may alias the load.
        let mut b = LoopBuilder::new("amb", TripCount::Known(32));
        let x = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.store(x, MemRef::affine(ArrayId(1), 8, 0, 8).as_ambiguous());
        let amb = b.build();
        assert_eq!(
            prove_factor(&amb, 2),
            Verdict::Unknown(UnknownReason::Ambiguous)
        );

        // Indirect anywhere in the loop: Unknown even if no pair
        // involves it (here the scatter-side pair is same-base).
        let mut b = LoopBuilder::new("gather", TripCount::Known(32));
        let x = b.fp_reg();
        b.load(x, MemRef::indirect(ArrayId(0), 8, 8));
        b.store(x, MemRef::affine(ArrayId(1), 8, 0, 8));
        let gather = b.build();
        assert_eq!(
            prove_factor(&gather, 2),
            Verdict::Unknown(UnknownReason::Indirect)
        );

        // Irregular mixed strides on one base.
        let mut b = LoopBuilder::new("mix", TripCount::Known(32));
        let x = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 16, 0, 8));
        b.store(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        let mix = b.build();
        assert_eq!(
            prove_factor(&mix, 2),
            Verdict::Unknown(UnknownReason::IrregularOverlap)
        );

        // An opaque call.
        let mut b = LoopBuilder::new("call", TripCount::Known(32));
        let x = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.inst(Inst::new(Opcode::Call, vec![], vec![x]));
        let call = b.build();
        assert_eq!(
            prove_factor(&call, 2),
            Verdict::Unknown(UnknownReason::OpaqueCall)
        );
    }

    #[test]
    fn gcd_disjoint_pairs_prove() {
        // Store 16j+4/w4 against load 8i/w4: gcd-disjoint.
        let mut b = LoopBuilder::new("gcd", TripCount::Known(32));
        let x = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 4));
        b.store(x, MemRef::affine(ArrayId(0), 16, 4, 4));
        match prove_factor(&b.build(), 2) {
            Verdict::Proven(c) => {
                assert_eq!(c.alias.gcd_disjoint, 1);
                assert!(c
                    .facts
                    .iter()
                    .any(|f| matches!(f, Fact::GcdDisjoint { gcd: 8, .. })));
            }
            v => panic!("expected Proven, got {v:?}"),
        }
    }

    #[test]
    fn honest_transforms_are_never_refuted() {
        for l in [stencil(), carried()] {
            for f in 1..=8u32 {
                let raw = unroll(&l, f);
                assert_eq!(refute(&l, f, &raw.body), None, "raw factor {f}");
                let opt = unroll_and_optimize(&l, f, &OptConfig::default());
                assert_eq!(refute(&l, f, &opt.body), None, "opt factor {f}");
                assert!(check_transform(&l, f, &opt.body).is_proven());
            }
        }
    }

    #[test]
    fn dropped_store_yields_a_reproducing_witness() {
        let l = stencil();
        let mut u = unroll(&l, 2);
        let pos = u.body.body.iter().position(|i| i.is_store()).unwrap();
        u.body.body.remove(pos);
        let w = match check_transform(&l, 2, &u.body) {
            Verdict::Refuted(w) => w,
            v => panic!("expected Refuted, got {v:?}"),
        };
        assert!(w.missing_in_transformed);
        assert_eq!(w.base, 1);
        // The witness must reproduce under interpretation: the cell is
        // in the reference memory but not the transformed one.
        let reference = interp::execute(&l, w.trip * 2, interp::Memory::new());
        let got = interp::execute(&u.body, w.trip, interp::Memory::new());
        assert!(reference.contains_key(&(w.base, w.addr)));
        assert!(!got.contains_key(&(w.base, w.addr)));
    }

    #[test]
    fn extra_store_yields_a_reproducing_witness() {
        let l = stencil();
        let mut u = unroll(&l, 2);
        let pos = u.body.body.iter().position(|i| i.is_store()).unwrap();
        let mut extra = u.body.body[pos].clone();
        let mut m = extra.mem.unwrap();
        m.base = ArrayId(5); // a base the original never writes
        extra.mem = Some(m);
        u.body.body.insert(pos, extra);
        let w = match check_transform(&l, 2, &u.body) {
            Verdict::Refuted(w) => w,
            v => panic!("expected Refuted, got {v:?}"),
        };
        assert!(!w.missing_in_transformed);
        let reference = interp::execute(&l, w.trip * 2, interp::Memory::new());
        let got = interp::execute(&u.body, w.trip, interp::Memory::new());
        assert!(!reference.contains_key(&(w.base, w.addr)));
        assert!(got.contains_key(&(w.base, w.addr)));
    }

    #[test]
    fn predicated_stores_never_ground_a_refutation() {
        // Original with an unpredicated store; transform predicates it:
        // statically inconclusive (the guard may be true), not Refuted.
        let mut b = LoopBuilder::new("pred", TripCount::Known(32));
        let x = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.store(x, MemRef::affine(ArrayId(1), 8, 0, 8));
        let l = b.build();
        let mut t = l.clone();
        let p = loopml_ir::Reg::pred(99);
        let pos = t.body.iter().position(|i| i.is_store()).unwrap();
        t.body[pos] = t.body[pos].clone().predicated(p);
        assert_eq!(refute(&l, 1, &t), None);
    }

    #[test]
    fn indirect_loops_are_never_refuted() {
        let mut b = LoopBuilder::new("scatter", TripCount::Known(32));
        let x = b.fp_reg();
        b.load(x, MemRef::affine(ArrayId(0), 8, 0, 8));
        b.store(x, MemRef::indirect(ArrayId(1), 8, 8));
        let l = b.build();
        let u = unroll(&l, 4);
        assert_eq!(refute(&l, 4, &u.body), None);
        assert_eq!(
            check_transform(&l, 4, &u.body),
            Verdict::Unknown(UnknownReason::Indirect)
        );
    }

    #[test]
    fn cross_check_sampling_is_deterministic_and_sparse() {
        let names: Vec<String> = (0..400).map(|i| format!("bench/loop{i:03}")).collect();
        let mut picked = 0;
        for n in &names {
            for f in 1..=8 {
                let a = cross_check_sample(n, f);
                assert_eq!(a, cross_check_sample(n, f), "unstable sample");
                picked += usize::from(a);
            }
        }
        let total = names.len() * 8;
        let expect = total / CROSS_CHECK_DENOM as usize;
        // A pure hash at denominator 8 should land near 1/8 of pairs.
        assert!(
            picked > expect / 2 && picked < expect * 2,
            "sample rate off: {picked}/{total}"
        );
        // And it must depend on the factor, not just the name.
        assert!(
            (1..=8)
                .map(|f| cross_check_sample("bench/loop000", f))
                .collect::<Vec<_>>()
                != vec![cross_check_sample("bench/loop000", 1); 8]
                || picked > 0
        );
    }

    #[test]
    fn stats_aggregate_and_cover() {
        let mut s = LegalityStats::default();
        s.record(&prove_factor(&stencil(), 2));
        s.record(&prove_factor(&carried(), 2));
        s.record(&Verdict::Unknown(UnknownReason::Indirect));
        s.record(&Verdict::Unknown(UnknownReason::Ambiguous));
        assert_eq!(s.total(), 4);
        assert_eq!(s.resolved(), 2);
        assert_eq!(s.affine_total(), 3);
        assert!((s.coverage() - 2.0 / 3.0).abs() < 1e-12);
        let mut t = LegalityStats::default();
        t.merge(&s);
        t.merge(&s);
        assert_eq!(t.total(), 8);
        assert_eq!(t.unknown_ambiguous, 2);
    }
}
