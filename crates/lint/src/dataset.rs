//! Layer 3: dataset lints.
//!
//! Quality checks on a labeled training set before it reaches the
//! classifiers: non-finite feature values and out-of-range labels are
//! hard errors (deny), while constant feature columns, contradictory
//! duplicates and degenerate cross-validation folds are warnings — they
//! are legitimate properties of small corpora but bound the accuracy any
//! classifier can reach, so they belong in the report.

use std::collections::HashMap;

use loopml_ml::{Dataset, MinMaxNormalizer};

use crate::{rules, Diagnostic, Report};

/// Number of unroll-factor classes the paper's label space has.
const CLASSES: usize = 8;

/// Lints a labeled dataset. `groups` is the benchmark index of each
/// example when leave-one-benchmark-out folds should be checked too.
pub fn lint_dataset(data: &Dataset, groups: Option<&[usize]>) -> Report {
    let mut out = Report::new();
    if data.is_empty() {
        out.push(Diagnostic::deny(
            rules::DS_FOLDS,
            "dataset",
            "dataset has no examples",
        ));
        return out;
    }

    // Non-finite features: one diagnostic per offending example, naming
    // the first bad column.
    for (i, row) in data.x.iter().enumerate() {
        if let Some(j) = row.iter().position(|v| !v.is_finite()) {
            out.push(Diagnostic::deny(
                rules::DS_NONFINITE,
                example(data, i),
                format!("feature '{}' is {}", feature(data, j), row[j]),
            ));
        }
    }

    // Labels must encode factors 1..=8 (class = factor - 1).
    if data.classes != CLASSES {
        out.push(Diagnostic::deny(
            rules::DS_LABEL_RANGE,
            "dataset",
            format!(
                "{} classes, expected {CLASSES} (factors 1..=8)",
                data.classes
            ),
        ));
    }
    for (i, &y) in data.y.iter().enumerate() {
        if y >= CLASSES {
            out.push(Diagnostic::deny(
                rules::DS_LABEL_RANGE,
                example(data, i),
                format!("label {y} encodes factor {}, outside 1..=8", y + 1),
            ));
        }
    }

    // Constant columns carry no information for any classifier.
    for j in 0..data.dims() {
        let first = data.x[0][j];
        if data.x.iter().all(|r| r[j] == first) {
            out.push(Diagnostic::warning(
                rules::DS_CONSTANT,
                format!("feature '{}'", feature(data, j)),
                format!("constant at {first} across all {} examples", data.len()),
            ));
        }
    }

    // Contradictory duplicates: identical normalized feature vectors with
    // different labels put a hard ceiling on training accuracy.
    let norm = MinMaxNormalizer::fit(&data.x);
    let normalized = norm.transform(&data.x);
    let mut seen: HashMap<Vec<u64>, usize> = HashMap::new();
    for (i, row) in normalized.iter().enumerate() {
        let key: Vec<u64> = row.iter().map(|v| v.to_bits()).collect();
        match seen.get(&key) {
            Some(&first) if data.y[first] != data.y[i] => {
                out.push(Diagnostic::warning(
                    rules::DS_CONTRADICTION,
                    example(data, i),
                    format!(
                        "identical normalized features as {} but label {} vs {}",
                        data.example_names[first], data.y[i], data.y[first]
                    ),
                ));
            }
            Some(_) => {}
            None => {
                seen.insert(key, i);
            }
        }
    }

    // Leave-one-benchmark-out folds: every fold needs a non-empty
    // training side, which requires at least two distinct groups.
    if let Some(groups) = groups {
        if groups.len() != data.len() {
            out.push(Diagnostic::deny(
                rules::DS_FOLDS,
                "dataset",
                format!("{} group entries for {} examples", groups.len(), data.len()),
            ));
        } else {
            let mut distinct: Vec<usize> = groups.to_vec();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() < 2 {
                out.push(Diagnostic::warning(
                    rules::DS_FOLDS,
                    "dataset",
                    format!(
                        "only {} benchmark group(s): leave-one-out folds have an empty training side",
                        distinct.len()
                    ),
                ));
            }
        }
    }

    out
}

/// Quarantine share above which fault-tolerant labeling warns: a few
/// dropped loops are the price of finishing the run, but they must be
/// visible.
pub const QUARANTINE_WARN_RATE: f64 = 0.02;

/// Quarantine share above which the run is denied: past this point the
/// surviving corpus is no longer the corpus that was asked for, and a
/// model trained on it would silently learn from a biased sample.
pub const QUARANTINE_DENY_RATE: f64 = 0.25;

/// Lints the outcome of a fault-tolerant labeling run: `labeled` loops
/// survived, `quarantined` work items (loops or whole benchmarks)
/// exhausted their retry budget and were excluded. Any quarantine above
/// [`QUARANTINE_WARN_RATE`] warns; above [`QUARANTINE_DENY_RATE`] the
/// data loss is denied so it can never pass silently.
pub fn lint_quarantine(labeled: usize, quarantined: usize) -> Report {
    let mut out = Report::new();
    let total = labeled + quarantined;
    if total == 0 {
        out.push(Diagnostic::deny(
            rules::DS_QUARANTINE,
            "labeling run",
            "no work items completed or were quarantined (empty run)",
        ));
        return out;
    }
    let rate = quarantined as f64 / total as f64;
    let location = "labeling run";
    let detail = format!(
        "{quarantined} of {total} work items quarantined ({:.1}%)",
        rate * 100.0
    );
    if rate > QUARANTINE_DENY_RATE {
        out.push(Diagnostic::deny(
            rules::DS_QUARANTINE,
            location,
            format!(
                "{detail}, above the {:.0}% deny threshold",
                QUARANTINE_DENY_RATE * 100.0
            ),
        ));
    } else if rate > QUARANTINE_WARN_RATE {
        out.push(Diagnostic::warning(
            rules::DS_QUARANTINE,
            location,
            format!(
                "{detail}, above the {:.0}% warn threshold",
                QUARANTINE_WARN_RATE * 100.0
            ),
        ));
    }
    out
}

fn example(data: &Dataset, i: usize) -> String {
    format!("example {}", data.example_names[i])
}

fn feature(data: &Dataset, j: usize) -> &str {
    &data.feature_names[j]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(x: Vec<Vec<f64>>, y: Vec<usize>) -> Dataset {
        let d = x[0].len();
        let n = x.len();
        Dataset::new(
            x,
            y,
            CLASSES,
            (0..d).map(|j| format!("f{j}")).collect(),
            (0..n).map(|i| format!("e{i}")).collect(),
        )
    }

    #[test]
    fn clean_dataset_is_clean() {
        let d = toy(
            vec![vec![0.0, 1.0], vec![1.0, 3.0], vec![2.0, 2.0]],
            vec![0, 3, 7],
        );
        let r = lint_dataset(&d, Some(&[0, 1, 2]));
        assert!(r.is_empty(), "{r}");
    }

    #[test]
    fn nonfinite_features_denied() {
        let d = toy(vec![vec![0.0, f64::NAN], vec![1.0, 2.0]], vec![0, 1]);
        let r = lint_dataset(&d, None);
        assert!(r.has_rule(rules::DS_NONFINITE));
        assert!(r.deny_count() > 0);
    }

    #[test]
    fn out_of_range_labels_denied() {
        // Dataset::new validates against `classes`, so widen the class
        // count to smuggle in a label past factor 8.
        let mut d = toy(vec![vec![0.0], vec![1.0]], vec![0, 1]);
        d.classes = 9;
        d.y[1] = 8;
        let r = lint_dataset(&d, None);
        assert!(r.has_rule(rules::DS_LABEL_RANGE));
    }

    #[test]
    fn constant_column_warned() {
        let d = toy(vec![vec![5.0, 1.0], vec![5.0, 2.0]], vec![0, 1]);
        let r = lint_dataset(&d, None);
        assert!(r.has_rule(rules::DS_CONSTANT));
        assert_eq!(r.deny_count(), 0);
    }

    #[test]
    fn quarantine_rate_thresholds() {
        assert!(lint_quarantine(100, 0).is_empty());
        assert!(lint_quarantine(100, 1).is_empty()); // 1% < warn threshold

        let warn = lint_quarantine(90, 10); // 10%
        assert!(warn.has_rule(rules::DS_QUARANTINE));
        assert_eq!(warn.deny_count(), 0);
        assert_eq!(warn.warning_count(), 1);

        let deny = lint_quarantine(60, 40); // 40%
        assert_eq!(deny.deny_count(), 1);

        let empty = lint_quarantine(0, 0);
        assert_eq!(empty.deny_count(), 1);
    }

    #[test]
    fn contradictory_duplicates_warned() {
        let d = toy(
            vec![vec![1.0, 2.0], vec![1.0, 2.0], vec![0.0, 0.0]],
            vec![2, 5, 0],
        );
        let r = lint_dataset(&d, None);
        assert!(r.has_rule(rules::DS_CONTRADICTION));
        // Agreeing duplicates are fine.
        let d2 = toy(
            vec![vec![1.0, 2.0], vec![1.0, 2.0], vec![0.0, 0.0]],
            vec![2, 2, 0],
        );
        assert!(!lint_dataset(&d2, None).has_rule(rules::DS_CONTRADICTION));
    }

    #[test]
    fn degenerate_folds_flagged() {
        let d = toy(vec![vec![0.0], vec![1.0]], vec![0, 1]);
        let r = lint_dataset(&d, Some(&[4, 4]));
        assert!(r.has_rule(rules::DS_FOLDS));
        let bad_len = lint_dataset(&d, Some(&[0]));
        assert!(bad_len.deny_count() > 0);
    }
}
